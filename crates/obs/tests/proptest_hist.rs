//! Property tests for the log-bucketed latency histogram: the invariants
//! any monitoring consumer relies on — counts survive merges exactly,
//! bucket indices are monotone in the recorded value, cumulative bucket
//! series are monotone, and quantile estimates stay inside the recorded
//! extrema.

// The vendored proptest! macro expands tests recursively; five property
// tests in one block need a deeper expansion budget than the default.
#![recursion_limit = "1024"]

use obs::hist::{bucket_lower_edge_us, bucket_upper_edge_us, NUM_BUCKETS};
use obs::{HistogramSnapshot, LatencyHistogram};
use proptest::prelude::*;

fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    // Spread across the full dynamic range: sub-µs, mid-range, and
    // beyond-60s overflow values.
    prop::collection::vec(
        prop_oneof![
            0u64..4,
            1u64..1_000,
            1_000u64..1_000_000,
            1_000_000u64..100_000_000,
        ],
        0..200,
    )
}

fn record_all(values: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::new();
    for &v in values {
        h.record_us(v);
    }
    h.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Merging two snapshots preserves the recorded count, the sum, and
    /// the extrema exactly — merge order included.
    #[test]
    fn merge_preserves_population(a in arb_values(), b in arb_values()) {
        let sa = record_all(&a);
        let sb = record_all(&b);
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);
        prop_assert_eq!(ab.count, (a.len() + b.len()) as u64);
        prop_assert_eq!(ab.sum_us, a.iter().sum::<u64>() + b.iter().sum::<u64>());
        let combined = record_all(&a.iter().chain(&b).copied().collect::<Vec<_>>());
        prop_assert_eq!(&ab, &combined);
    }

    /// Bucket assignment is monotone: a larger value never lands in an
    /// earlier bucket, and every edge pair brackets its bucket.
    #[test]
    fn buckets_are_monotone(values in arb_values()) {
        let mut values = values;
        values.sort_unstable();
        let mut last_first_occupied = 0usize;
        for &v in &values {
            let h = LatencyHistogram::new();
            h.record_us(v);
            let s = h.snapshot();
            let idx = s.buckets.iter().position(|&c| c == 1).unwrap();
            prop_assert!(idx >= last_first_occupied, "value {} regressed to bucket {}", v, idx);
            last_first_occupied = idx;
            prop_assert!(bucket_lower_edge_us(idx) <= v.max(1) as f64);
            prop_assert!((v as f64) < bucket_upper_edge_us(idx));
        }
    }

    /// The cumulative bucket series is monotone and totals the count —
    /// the property Prometheus `_bucket` exposition depends on.
    #[test]
    fn cumulative_series_is_monotone(values in arb_values()) {
        let s = record_all(&values);
        let mut cumulative = 0u64;
        for &c in &s.buckets {
            let next = cumulative + c;
            prop_assert!(next >= cumulative);
            cumulative = next;
        }
        prop_assert_eq!(cumulative, s.count);
        prop_assert_eq!(s.buckets.len(), NUM_BUCKETS);
    }

    /// Every quantile estimate lies within the exactly-tracked recorded
    /// extrema, and quantiles are monotone in q.
    #[test]
    fn quantiles_stay_within_extrema(values in arb_values(), qs in prop::collection::vec(0.0f64..1.0, 1..8)) {
        if values.is_empty() {
            return;
        }
        let s = record_all(&values);
        let min = *values.iter().min().unwrap() as f64;
        let max = *values.iter().max().unwrap() as f64;
        for &q in &qs {
            let est = s.quantile_us(q);
            prop_assert!(est >= min, "q={} est={} min={}", q, est, min);
            prop_assert!(est <= max, "q={} est={} max={}", q, est, max);
        }
        let mut sorted = qs.clone();
        sorted.sort_by(f64::total_cmp);
        let ests: Vec<f64> = sorted.iter().map(|&q| s.quantile_us(q)).collect();
        for w in ests.windows(2) {
            prop_assert!(w[0] <= w[1], "quantiles must be monotone: {:?}", ests);
        }
    }

    /// A snapshot delta between two points in time describes exactly the
    /// values recorded in between.
    #[test]
    fn delta_counts_the_interval(a in arb_values(), b in arb_values()) {
        let h = LatencyHistogram::new();
        for &v in &a {
            h.record_us(v);
        }
        let before = h.snapshot();
        for &v in &b {
            h.record_us(v);
        }
        let delta = h.snapshot().delta_since(&before);
        prop_assert_eq!(delta.count, b.len() as u64);
        prop_assert_eq!(delta.sum_us, b.iter().sum::<u64>());
        prop_assert_eq!(&delta.buckets, &record_all(&b).buckets);
    }
}
