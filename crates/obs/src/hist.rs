//! Log-bucketed latency histograms: HDR-style bucket layout with ~2
//! buckets per octave from 1 µs to 60 s, lock-free recording (a handful
//! of relaxed atomic RMWs), and mergeable plain-value snapshots with
//! quantile estimation.
//!
//! # Bucket layout
//!
//! Values are microseconds. Each power-of-two octave `[2^k, 2^(k+1))` is
//! split at its midpoint into two buckets, `[2^k, 1.5·2^k)` and
//! `[1.5·2^k, 2^(k+1))` — the one-sub-bucket-bit HDR scheme, giving a
//! worst-case quantile error of ~33% of the value (one half-octave).
//! Octaves 0..=25 cover 1 µs up to 2^26 µs ≈ 67 s (so the nominal 60 s
//! ceiling lands inside the last regular bucket); everything above goes
//! to a final overflow bucket. Exact `min`/`max`/`sum`/`count` are
//! tracked alongside, so means are exact and quantile estimates are
//! clamped into `[min, max]`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Highest split octave: buckets cover `[1, 2^(OCTAVES+1))` µs.
const OCTAVES: usize = 26;

/// Total bucket count: two per octave plus the overflow bucket.
pub const NUM_BUCKETS: usize = 2 * OCTAVES + 1;

/// Bucket index for a recorded value in microseconds.
#[inline]
fn bucket_index(us: u64) -> usize {
    if us < 2 {
        // 0 µs and 1 µs both land in the first bucket.
        return 0;
    }
    let k = 63 - us.leading_zeros() as usize; // floor(log2(us)), >= 1
    if k >= OCTAVES {
        return NUM_BUCKETS - 1;
    }
    let half = ((us >> (k - 1)) & 1) as usize; // above the octave midpoint?
    2 * k + half
}

/// Inclusive-exclusive upper edge of bucket `i`, in microseconds
/// (`f64::INFINITY` for the overflow bucket).
pub fn bucket_upper_edge_us(i: usize) -> f64 {
    if i >= NUM_BUCKETS - 1 {
        return f64::INFINITY;
    }
    let k = (i / 2) as u32;
    if i.is_multiple_of(2) {
        1.5 * f64::from(2u32).powi(k as i32)
    } else {
        f64::from(2u32).powi(k as i32 + 1)
    }
}

/// Inclusive lower edge of bucket `i`, in microseconds.
pub fn bucket_lower_edge_us(i: usize) -> f64 {
    if i == 0 {
        return 0.0;
    }
    bucket_upper_edge_us(i - 1)
}

/// A lock-free log-bucketed latency histogram.
///
/// Recording is a fixed handful of `Relaxed` atomic read-modify-writes
/// (bucket, count, sum, min, max) — no locks, no allocation — so it is
/// safe on the hottest paths. Reads go through [`LatencyHistogram::snapshot`],
/// which materializes a plain-value [`HistogramSnapshot`].
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_us: AtomicU64,
    min_us: AtomicU64,
    max_us: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_us: AtomicU64::new(0),
            min_us: AtomicU64::new(u64::MAX),
            max_us: AtomicU64::new(0),
        }
    }

    /// Records one value in microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        self.buckets[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(us, Ordering::Relaxed);
        self.min_us.fetch_min(us, Ordering::Relaxed);
        self.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records one duration (saturating at `u64::MAX` µs).
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Materializes a plain-value snapshot of the current state.
    ///
    /// Buckets are read individually (not under a lock), so a snapshot
    /// taken during concurrent recording is a consistent-enough view for
    /// monitoring: every bucket value is monotone, and the invariant
    /// checks in [`HistogramSnapshot`] tolerate in-flight records.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            // Derive count/sum from what we saw; the independent `count`
            // atomic may be ahead or behind mid-record.
            count: buckets.iter().sum(),
            sum_us: self.sum_us.load(Ordering::Relaxed),
            min_us: self.min_us.load(Ordering::Relaxed),
            max_us: self.max_us.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A plain-value copy of a histogram: mergeable, subtractable, and the
/// basis for quantile estimation and exposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts (see the module docs for the layout).
    pub buckets: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values, µs (exact).
    pub sum_us: u64,
    /// Smallest recorded value, µs (`u64::MAX` when empty).
    pub min_us: u64,
    /// Largest recorded value, µs (0 when empty).
    pub max_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self::empty()
    }
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a merge identity).
    pub fn empty() -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: vec![0; NUM_BUCKETS],
            count: 0,
            sum_us: 0,
            min_us: u64::MAX,
            max_us: 0,
        }
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Merges another snapshot into this one: counts add bucket-wise,
    /// the extrema combine. The merged snapshot describes the union of
    /// the two recorded populations exactly (up to bucket resolution).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_us += other.sum_us;
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
    }

    /// The recordings that happened *since* `earlier` (bucket-wise
    /// saturating subtraction of two snapshots of the same histogram).
    /// The delta's extrema are re-derived from its occupied bucket edges
    /// — the exact min/max of the interval is not recoverable from two
    /// endpoint snapshots.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let count: u64 = buckets.iter().sum();
        let first = buckets.iter().position(|&c| c > 0);
        let last = buckets.iter().rposition(|&c| c > 0);
        HistogramSnapshot {
            count,
            sum_us: self.sum_us.saturating_sub(earlier.sum_us),
            min_us: first.map_or(u64::MAX, |i| bucket_lower_edge_us(i) as u64),
            max_us: last.map_or(0, |i| {
                let edge = bucket_upper_edge_us(i);
                if edge.is_finite() {
                    edge as u64
                } else {
                    self.max_us
                }
            }),
            buckets,
        }
    }

    /// Mean recorded value in microseconds (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0..=1.0`) in microseconds from the
    /// bucket counts, clamped into `[min_us, max_us]`. Returns 0 for an
    /// empty snapshot.
    pub fn quantile_us(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        // Rank of the target value, 1-based; ceil so q=1.0 maps to the
        // last recorded value and q=0.0 to the first.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        let mut idx = self.buckets.len() - 1;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                idx = i;
                break;
            }
        }
        // Report the bucket's upper edge (the conservative estimate),
        // clamped into the exactly-tracked extrema.
        let edge = bucket_upper_edge_us(idx);
        let est = if edge.is_finite() {
            edge
        } else {
            self.max_us as f64
        };
        est.clamp(self.min_us as f64, self.max_us as f64)
    }

    /// p50 in microseconds.
    pub fn p50_us(&self) -> f64 {
        self.quantile_us(0.50)
    }

    /// p90 in microseconds.
    pub fn p90_us(&self) -> f64 {
        self.quantile_us(0.90)
    }

    /// p99 in microseconds.
    pub fn p99_us(&self) -> f64 {
        self.quantile_us(0.99)
    }

    /// p99.9 in microseconds.
    pub fn p999_us(&self) -> f64 {
        self.quantile_us(0.999)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotone_and_in_range() {
        let mut last = 0usize;
        for shift in 0..40u32 {
            for base in [1u64 << shift, (1u64 << shift) + (1u64 << shift) / 2] {
                let idx = bucket_index(base);
                assert!(idx < NUM_BUCKETS);
                assert!(idx >= last, "bucket index regressed at {base}");
                last = idx;
            }
        }
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn edges_bracket_their_bucket() {
        for us in [1u64, 2, 3, 7, 100, 1000, 1_000_000, 59_000_000] {
            let i = bucket_index(us);
            assert!(
                (us as f64) < bucket_upper_edge_us(i),
                "{us} >= upper edge of bucket {i}"
            );
            assert!(
                us as f64 >= bucket_lower_edge_us(i) || us < 2,
                "{us} < lower edge of bucket {i}"
            );
        }
    }

    #[test]
    fn record_and_quantiles() {
        let h = LatencyHistogram::new();
        for us in 1..=1000u64 {
            h.record_us(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min_us, 1);
        assert_eq!(s.max_us, 1000);
        assert_eq!(s.sum_us, 500_500);
        let p50 = s.p50_us();
        // Within one half-octave of the true median.
        assert!((300.0..=1000.0).contains(&p50), "p50 {p50}");
        assert!(s.p99_us() >= p50);
        assert!(s.p999_us() <= 1000.0);
        assert!((s.mean_us() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn merge_preserves_count_and_extrema() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record_us(5);
        a.record_us(10_000);
        b.record_us(70_000_000); // overflow bucket
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.min_us, 5);
        assert_eq!(m.max_us, 70_000_000);
        assert_eq!(m.sum_us, 70_010_005);
    }

    #[test]
    fn delta_since_subtracts() {
        let h = LatencyHistogram::new();
        h.record_us(100);
        let before = h.snapshot();
        h.record_us(200);
        h.record_us(300);
        let delta = h.snapshot().delta_since(&before);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum_us, 500);
        assert!(delta.min_us <= 200);
        assert!(delta.max_us >= 300);
    }

    #[test]
    fn empty_snapshot_is_identity() {
        let h = LatencyHistogram::new();
        h.record_us(42);
        let mut s = h.snapshot();
        let orig = s.clone();
        s.merge(&HistogramSnapshot::empty());
        assert_eq!(s, orig);
        assert_eq!(HistogramSnapshot::empty().quantile_us(0.5), 0.0);
    }
}
