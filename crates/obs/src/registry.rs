//! The metrics registry: named counters, gauges, and latency histograms
//! with pre-resolved lock-free handles.
//!
//! Registration (`counter` / `gauge` / `histogram`) takes a short-lived
//! lock and is **idempotent** on `(name, labels)` — two call sites that
//! register the same series get handles to the same underlying atomics,
//! so there are never duplicate series. Handles are cheap `Arc` clones;
//! recording through a handle is lock-free: one relaxed load of the
//! registry's enabled flag, then a handful of relaxed atomic RMWs.
//!
//! Disabling a registry ([`Registry::set_enabled`]) turns every record
//! through its handles into a single load-and-branch — the kill switch
//! the `obs_engine` before/after bench flips to price the
//! instrumentation.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use crate::hist::{HistogramSnapshot, LatencyHistogram};

/// A label set: `(key, value)` pairs, order-significant.
pub type Labels = Vec<(String, String)>;

/// A monotonically increasing counter handle.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A point-in-time gauge handle.
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
        }
    }

    /// Adds `n` (may be negative).
    #[inline]
    pub fn add(&self, n: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A latency-histogram handle (log-bucketed, see [`crate::hist`]).
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    core: Arc<LatencyHistogram>,
}

impl Histogram {
    /// Records one value in microseconds.
    #[inline]
    pub fn record_us(&self, us: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.core.record_us(us);
        }
    }

    /// Records one duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.record_us(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Plain-value snapshot of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core.snapshot()
    }
}

/// The value side of one registered series.
#[derive(Debug, Clone)]
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<LatencyHistogram>),
}

#[derive(Debug)]
struct Entry {
    name: String,
    labels: Labels,
    help: String,
    slot: Slot,
}

/// A point-in-time value of one series, as captured by
/// [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

/// One series in a registry snapshot.
#[derive(Debug, Clone)]
pub struct MetricSnapshot {
    /// Series name.
    pub name: String,
    /// Series labels.
    pub labels: Labels,
    /// Help text supplied at registration.
    pub help: String,
    /// The captured value.
    pub value: MetricValue,
}

/// A named collection of metrics.
///
/// See the module docs for the registration/recording contract. The
/// process-wide default registry lives at [`global()`]; components that
/// need isolation (one server instance per test, say) construct their
/// own.
#[derive(Debug, Default)]
pub struct Registry {
    enabled: Arc<AtomicBool>,
    entries: Mutex<Vec<Entry>>,
}

fn to_labels(labels: &[(&str, &str)]) -> Labels {
    labels
        .iter()
        .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
        .collect()
}

impl Registry {
    /// An empty, enabled registry.
    pub fn new() -> Registry {
        Registry {
            enabled: Arc::new(AtomicBool::new(true)),
            entries: Mutex::new(Vec::new()),
        }
    }

    /// Turns recording through this registry's handles on or off.
    /// Disabled handles cost one relaxed load per record.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether recording is currently enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    fn resolve<T>(
        &self,
        name: &str,
        labels: &[(&str, &str)],
        help: &str,
        matching: impl Fn(&Slot) -> Option<T>,
        create: impl FnOnce() -> (Slot, T),
    ) -> T {
        let labels = to_labels(labels);
        let mut entries = self.entries.lock().expect("registry poisoned");
        if let Some(entry) = entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
        {
            return matching(&entry.slot)
                .unwrap_or_else(|| panic!("metric {name} re-registered as a different kind"));
        }
        let (slot, handle) = create();
        entries.push(Entry {
            name: name.to_owned(),
            labels,
            help: help.to_owned(),
            slot,
        });
        handle
    }

    /// Registers (or re-resolves) a counter series.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Counter {
        let enabled = Arc::clone(&self.enabled);
        self.resolve(
            name,
            labels,
            help,
            |slot| match slot {
                Slot::Counter(v) => Some(Counter {
                    enabled: Arc::clone(&enabled),
                    value: Arc::clone(v),
                }),
                _ => None,
            },
            || {
                let value = Arc::new(AtomicU64::new(0));
                (
                    Slot::Counter(Arc::clone(&value)),
                    Counter {
                        enabled: Arc::clone(&self.enabled),
                        value,
                    },
                )
            },
        )
    }

    /// Registers (or re-resolves) a gauge series.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Gauge {
        let enabled = Arc::clone(&self.enabled);
        self.resolve(
            name,
            labels,
            help,
            |slot| match slot {
                Slot::Gauge(v) => Some(Gauge {
                    enabled: Arc::clone(&enabled),
                    value: Arc::clone(v),
                }),
                _ => None,
            },
            || {
                let value = Arc::new(AtomicI64::new(0));
                (
                    Slot::Gauge(Arc::clone(&value)),
                    Gauge {
                        enabled: Arc::clone(&self.enabled),
                        value,
                    },
                )
            },
        )
    }

    /// Registers (or re-resolves) a latency-histogram series.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)], help: &str) -> Histogram {
        let enabled = Arc::clone(&self.enabled);
        self.resolve(
            name,
            labels,
            help,
            |slot| match slot {
                Slot::Histogram(h) => Some(Histogram {
                    enabled: Arc::clone(&enabled),
                    core: Arc::clone(h),
                }),
                _ => None,
            },
            || {
                let core = Arc::new(LatencyHistogram::new());
                (
                    Slot::Histogram(Arc::clone(&core)),
                    Histogram {
                        enabled: Arc::clone(&self.enabled),
                        core,
                    },
                )
            },
        )
    }

    /// Captures every registered series as plain values, in registration
    /// order.
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().expect("registry poisoned");
        entries
            .iter()
            .map(|e| MetricSnapshot {
                name: e.name.clone(),
                labels: e.labels.clone(),
                help: e.help.clone(),
                value: match &e.slot {
                    Slot::Counter(v) => MetricValue::Counter(v.load(Ordering::Relaxed)),
                    Slot::Gauge(v) => MetricValue::Gauge(v.load(Ordering::Relaxed)),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    }

    /// Snapshot of one histogram series, if registered.
    pub fn histogram_snapshot(
        &self,
        name: &str,
        labels: &[(&str, &str)],
    ) -> Option<HistogramSnapshot> {
        let labels = to_labels(labels);
        let entries = self.entries.lock().expect("registry poisoned");
        entries
            .iter()
            .find(|e| e.name == name && e.labels == labels)
            .and_then(|e| match &e.slot {
                Slot::Histogram(h) => Some(h.snapshot()),
                _ => None,
            })
    }
}

/// The process-wide default registry: engine-layer instrumentation
/// (pipeline stages, shard executor, score memo, substrates, simulated
/// generation) records here; `/v1/metrics` and `repro trace` read it.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent() {
        let r = Registry::new();
        let a = r.counter("hits", &[("k", "v")], "test counter");
        let b = r.counter("hits", &[("k", "v")], "test counter");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(r.snapshot().len(), 1);
        // Different labels are a different series.
        let c = r.counter("hits", &[("k", "w")], "test counter");
        c.inc();
        assert_eq!(c.get(), 1);
        assert_eq!(r.snapshot().len(), 2);
    }

    #[test]
    fn disabled_registry_drops_records() {
        let r = Registry::new();
        let c = r.counter("c", &[], "");
        let g = r.gauge("g", &[], "");
        let h = r.histogram("h", &[], "");
        r.set_enabled(false);
        c.inc();
        g.set(7);
        h.record_us(10);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert!(h.snapshot().is_empty());
        r.set_enabled(true);
        c.inc();
        g.set(7);
        h.record_us(10);
        assert_eq!(c.get(), 1);
        assert_eq!(g.get(), 7);
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn histogram_snapshot_lookup() {
        let r = Registry::new();
        let h = r.histogram("lat", &[("stage", "x")], "");
        h.record(Duration::from_micros(250));
        let snap = r.histogram_snapshot("lat", &[("stage", "x")]).unwrap();
        assert_eq!(snap.count, 1);
        assert!(r.histogram_snapshot("lat", &[]).is_none());
        assert!(r.histogram_snapshot("nope", &[]).is_none());
    }
}
