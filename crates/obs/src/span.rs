//! Trace spans: a `Span` RAII guard with monotonic timestamps and a
//! per-record/per-request [`TraceId`], collected into a bounded
//! in-memory ring plus an optional JSONL sink.
//!
//! Collection is **off by default**: [`Span::start`] against a disabled
//! collector costs one relaxed atomic load and allocates nothing. When
//! enabled (by `repro trace`, tests, or an operator), each finished span
//! is pushed into the ring — oldest evicted first, so memory stays
//! bounded no matter how long the process serves — and appended to the
//! sink if one is attached.
//!
//! Spans that share a [`TraceId`] belong to one logical unit of work
//! (one evaluation record, one HTTP request); `parent` links make the
//! generation → extraction → scoring → substrate → (repair-round) path
//! reconstructable as a tree.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Default capacity of the global span ring.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Microseconds elapsed since the process-wide monotonic epoch (first
/// call). Every span timestamp uses this clock, so spans from different
/// threads order consistently.
pub fn now_us() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Identifies one logical unit of work (an evaluation record, an HTTP
/// request). All spans of the unit carry the same id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// A fresh process-unique trace id.
    pub fn new() -> TraceId {
        static NEXT: AtomicU64 = AtomicU64::new(1);
        TraceId(mix(NEXT.fetch_add(1, Ordering::Relaxed)))
    }

    /// A trace id derived deterministically from an external correlation
    /// label (an `x-request-id` header, say): the same label always maps
    /// to the same id.
    pub fn from_label(label: &str) -> TraceId {
        // FNV-1a, the workspace's canonical content hash.
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TraceId(h)
    }

    /// A trace id derived from a run nonce and a record index — every
    /// record of one evaluation run gets its own stable trace.
    pub fn for_record(run: u64, index: usize) -> TraceId {
        TraceId(mix(run ^ (index as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)))
    }
}

impl Default for TraceId {
    fn default() -> Self {
        TraceId::new()
    }
}

/// splitmix64 finalizer: spreads sequential ids across the u64 space.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One finished span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: u64,
    /// This span's id (unique within the process).
    pub id: u64,
    /// Parent span id; 0 for a root span.
    pub parent: u64,
    /// Operation name.
    pub name: &'static str,
    /// Start, µs since the process epoch ([`now_us`]).
    pub start_us: u64,
    /// End, µs since the process epoch.
    pub end_us: u64,
    /// Free-form tags (`round`, `bucket`, `endpoint`, `request_id`, …).
    pub tags: Vec<(&'static str, String)>,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// This span as one JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"trace\":{},\"id\":{},\"parent\":{},\"name\":\"{}\",\"start_us\":{},\"end_us\":{}",
            self.trace, self.id, self.parent, self.name, self.start_us, self.end_us
        );
        if !self.tags.is_empty() {
            out.push_str(",\"tags\":{");
            for (i, (k, v)) in self.tags.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push('"');
                out.push_str(k);
                out.push_str("\":\"");
                for c in v.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\r' => out.push_str("\\r"),
                        '\t' => out.push_str("\\t"),
                        c if (c as u32) < 0x20 => {
                            out.push_str(&format!("\\u{:04x}", c as u32));
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

/// A bounded span collector: in-memory ring plus optional JSONL sink.
#[derive(Debug)]
pub struct Collector {
    enabled: AtomicBool,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    sink: Mutex<Option<BufWriter<File>>>,
}

impl Collector {
    /// A disabled collector with the given ring capacity.
    pub fn new(capacity: usize) -> Collector {
        Collector {
            enabled: AtomicBool::new(false),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::new()),
            sink: Mutex::new(None),
        }
    }

    /// Turns span collection on or off. While off, starting a span is a
    /// single relaxed load and finished spans are discarded unrecorded.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::Relaxed);
    }

    /// Whether spans are being collected.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Ring capacity (spans beyond it evict the oldest).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Spans currently buffered.
    pub fn len(&self) -> usize {
        self.ring.lock().expect("span ring poisoned").len()
    }

    /// True when no spans are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies the buffered spans (oldest first) without draining.
    pub fn snapshot(&self) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .expect("span ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Removes and returns the buffered spans (oldest first).
    pub fn drain(&self) -> Vec<SpanRecord> {
        self.ring
            .lock()
            .expect("span ring poisoned")
            .drain(..)
            .collect()
    }

    /// Attaches a JSONL sink: every finished span is appended to `path`
    /// as one JSON object per line (buffered; flushed on every push so a
    /// crash loses at most the OS buffer).
    pub fn set_sink(&self, path: &Path) -> std::io::Result<()> {
        let file = File::create(path)?;
        *self.sink.lock().expect("span sink poisoned") = Some(BufWriter::new(file));
        Ok(())
    }

    /// Detaches the JSONL sink, flushing buffered lines.
    pub fn clear_sink(&self) {
        if let Some(mut w) = self.sink.lock().expect("span sink poisoned").take() {
            let _ = w.flush();
        }
    }

    fn push(&self, record: SpanRecord) {
        if let Some(w) = self.sink.lock().expect("span sink poisoned").as_mut() {
            let _ = writeln!(w, "{}", record.to_json());
            let _ = w.flush();
        }
        let mut ring = self.ring.lock().expect("span ring poisoned");
        while ring.len() >= self.capacity {
            ring.pop_front();
        }
        ring.push_back(record);
    }
}

/// The process-wide span collector (capacity
/// [`DEFAULT_RING_CAPACITY`], disabled until something enables it).
pub fn spans() -> &'static Collector {
    static GLOBAL: OnceLock<Collector> = OnceLock::new();
    GLOBAL.get_or_init(|| Collector::new(DEFAULT_RING_CAPACITY))
}

/// An in-flight span: records its duration into the collector when
/// dropped (or when [`Span::finish`] is called for an explicit end).
///
/// Against a disabled collector this is a no-op shell — no allocation,
/// no timestamps recorded on drop.
#[derive(Debug)]
pub struct Span<'c> {
    collector: Option<&'c Collector>,
    trace: u64,
    id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    tags: Vec<(&'static str, String)>,
}

fn next_span_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl<'c> Span<'c> {
    /// Starts a root span of `trace` against the global collector.
    pub fn start(name: &'static str, trace: TraceId) -> Span<'static> {
        Span::start_in(spans(), name, trace)
    }

    /// Starts a root span against an explicit collector.
    pub fn start_in(collector: &'c Collector, name: &'static str, trace: TraceId) -> Span<'c> {
        if !collector.is_enabled() {
            return Span {
                collector: None,
                trace: 0,
                id: 0,
                parent: 0,
                name,
                start_us: 0,
                tags: Vec::new(),
            };
        }
        Span {
            collector: Some(collector),
            trace: trace.0,
            id: next_span_id(),
            parent: 0,
            name,
            start_us: now_us(),
            tags: Vec::new(),
        }
    }

    /// Starts a child span (same trace, this span as parent).
    pub fn child(&self, name: &'static str) -> Span<'c> {
        let Some(collector) = self.collector else {
            return Span {
                collector: None,
                trace: 0,
                id: 0,
                parent: 0,
                name,
                start_us: 0,
                tags: Vec::new(),
            };
        };
        Span {
            collector: Some(collector),
            trace: self.trace,
            id: next_span_id(),
            parent: self.id,
            name,
            start_us: now_us(),
            tags: Vec::new(),
        }
    }

    /// Attaches a tag (no-op on a disabled span).
    pub fn tag(&mut self, key: &'static str, value: impl Into<String>) {
        if self.collector.is_some() {
            self.tags.push((key, value.into()));
        }
    }

    /// Whether this span is actually recording (collector enabled at
    /// start time).
    pub fn is_recording(&self) -> bool {
        self.collector.is_some()
    }

    /// Ends the span now (equivalent to dropping it).
    pub fn finish(self) {}
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(collector) = self.collector else {
            return;
        };
        collector.push(SpanRecord {
            trace: self.trace,
            id: self.id,
            parent: self.parent,
            name: self.name,
            start_us: self.start_us,
            end_us: now_us(),
            tags: std::mem::take(&mut self.tags),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_collector_records_nothing() {
        let c = Collector::new(8);
        {
            let mut s = Span::start_in(&c, "work", TraceId::new());
            s.tag("k", "v");
            assert!(!s.is_recording());
        }
        assert!(c.is_empty());
    }

    #[test]
    fn spans_form_a_tree_and_order_by_time() {
        let c = Collector::new(64);
        c.set_enabled(true);
        let trace = TraceId::new();
        {
            let mut root = Span::start_in(&c, "request", trace);
            root.tag("round", "1");
            {
                let _child = root.child("score");
            }
        }
        let spans = c.snapshot();
        assert_eq!(spans.len(), 2);
        // Children finish first.
        let child = &spans[0];
        let root = &spans[1];
        assert_eq!(child.name, "score");
        assert_eq!(child.parent, root.id);
        assert_eq!(child.trace, root.trace);
        assert_eq!(root.parent, 0);
        assert!(root.start_us <= child.start_us);
        assert!(root.end_us >= child.end_us);
        assert_eq!(root.tags, vec![("round", "1".to_owned())]);
    }

    #[test]
    fn ring_stays_bounded() {
        let c = Collector::new(16);
        c.set_enabled(true);
        for i in 0..100 {
            let mut s = Span::start_in(&c, "op", TraceId::new());
            s.tag("i", i.to_string());
        }
        assert_eq!(c.len(), 16);
        // Oldest evicted: the survivors are the last 16.
        let spans = c.drain();
        assert_eq!(spans[0].tags[0].1, "84");
        assert!(c.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_span() {
        let path = std::env::temp_dir().join(format!("obs_span_sink_{}.jsonl", std::process::id()));
        let c = Collector::new(8);
        c.set_enabled(true);
        c.set_sink(&path).unwrap();
        {
            let mut s = Span::start_in(&c, "op", TraceId::from_label("req-1"));
            s.tag("note", "a \"quoted\"\nvalue");
        }
        c.clear_sink();
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with('{') && lines[0].ends_with('}'));
        assert!(lines[0].contains("\"name\":\"op\""));
        assert!(lines[0].contains("\\\"quoted\\\"\\n"));
    }

    #[test]
    fn trace_ids_are_stable_per_label() {
        assert_eq!(TraceId::from_label("abc"), TraceId::from_label("abc"));
        assert_ne!(TraceId::from_label("abc"), TraceId::from_label("abd"));
        assert_ne!(TraceId::new(), TraceId::new());
        assert_eq!(TraceId::for_record(7, 3), TraceId::for_record(7, 3));
        assert_ne!(TraceId::for_record(7, 3), TraceId::for_record(7, 4));
    }
}
