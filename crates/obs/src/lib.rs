//! # obs
//!
//! Dependency-free observability for the CloudEval-YAML engine: a
//! metrics registry of atomic counters, gauges, and log-bucketed latency
//! [histograms](hist) with lock-free recording and mergeable snapshots;
//! [trace spans](span) with monotonic timestamps, per-record/per-request
//! [`TraceId`]s, a bounded in-memory ring, and an optional JSONL sink;
//! and [Prometheus text exposition](expo) of registry snapshots.
//!
//! # Overhead budget
//!
//! Recording through a handle is a relaxed load of the registry's
//! enabled flag plus a handful of relaxed atomic RMWs (one for a
//! counter, five for a histogram) — no locks, no allocation. Starting a
//! span against a disabled collector (the default) is a single relaxed
//! load; nothing allocates until a collector is enabled. The
//! `obs_engine` bench group prices the full instrumented pipeline
//! against the kill switch ([`Registry::set_enabled`]).
//!
//! # Examples
//!
//! ```
//! // Handles are resolved once, recorded lock-free.
//! let registry = obs::Registry::new();
//! let hits = registry.counter("memo_hits_total", &[], "memo hits");
//! let lat = registry.histogram("job_us", &[("shard", "0")], "job latency");
//! hits.inc();
//! lat.record_us(1_250);
//! assert_eq!(lat.snapshot().count, 1);
//!
//! // Spans collect only when a collector is enabled.
//! let spans = obs::Collector::new(1024);
//! spans.set_enabled(true);
//! let trace = obs::TraceId::new();
//! {
//!     let mut root = obs::Span::start_in(&spans, "evaluate", trace);
//!     root.tag("round", "0");
//!     let _score = root.child("score");
//! }
//! assert_eq!(spans.len(), 2);
//!
//! // Prometheus text format from a snapshot.
//! let text = obs::expo::render(&registry.snapshot());
//! assert!(text.contains("memo_hits_total 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod expo;
pub mod hist;
pub mod registry;
pub mod span;

pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use registry::{global, Counter, Gauge, Histogram, MetricSnapshot, MetricValue, Registry};
pub use span::{now_us, spans, Collector, Span, SpanRecord, TraceId};
