//! Prometheus text-format exposition (format version 0.0.4) of a
//! registry snapshot.
//!
//! Counters and gauges render as `name{labels} value`; histograms render
//! the conventional triple — cumulative `name_bucket{le="…"}` series (in
//! **seconds**, Prometheus's base unit, up to the last occupied bucket
//! plus `+Inf`), `name_sum` (seconds), and `name_count` — so any scraper
//! can compute rates and quantiles. Series are unique by construction:
//! registration is idempotent on `(name, labels)`.

use crate::hist::{bucket_upper_edge_us, HistogramSnapshot};
use crate::registry::{Labels, MetricSnapshot, MetricValue};

/// The content type of the rendered exposition.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn escape_label_value(v: &str, out: &mut String) {
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
}

/// Renders `{k="v",…}` (empty string for no labels); `extra` is appended
/// after the registered labels (used for histogram `le`).
fn render_labels(labels: &Labels, extra: Option<(&str, &str)>, out: &mut String) {
    if labels.is_empty() && extra.is_none() {
        return;
    }
    out.push('{');
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(v, out);
        out.push('"');
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        escape_label_value(v, out);
        out.push('"');
    }
    out.push('}');
}

/// Formats an `le` edge (µs → seconds) without scientific notation.
fn le_value(edge_us: f64) -> String {
    if edge_us.is_infinite() {
        return "+Inf".to_owned();
    }
    let secs = edge_us / 1e6;
    // Bucket edges are k·2^n µs, so 9 decimal places are exact enough
    // and trailing zeros trim cleanly.
    let mut s = format!("{secs:.9}");
    while s.ends_with('0') {
        s.pop();
    }
    if s.ends_with('.') {
        s.push('0');
    }
    s
}

fn render_histogram(name: &str, labels: &Labels, h: &HistogramSnapshot, out: &mut String) {
    let last_occupied = h.buckets.iter().rposition(|&c| c > 0);
    let mut cumulative = 0u64;
    if let Some(last) = last_occupied {
        for (i, &c) in h.buckets.iter().enumerate().take(last + 1) {
            cumulative += c;
            out.push_str(name);
            out.push_str("_bucket");
            render_labels(
                labels,
                Some(("le", &le_value(bucket_upper_edge_us(i)))),
                out,
            );
            out.push(' ');
            out.push_str(&cumulative.to_string());
            out.push('\n');
        }
    }
    out.push_str(name);
    out.push_str("_bucket");
    render_labels(labels, Some(("le", "+Inf")), out);
    out.push(' ');
    out.push_str(&h.count.to_string());
    out.push('\n');
    out.push_str(name);
    out.push_str("_sum");
    render_labels(labels, None, out);
    out.push_str(&format!(" {}\n", h.sum_us as f64 / 1e6));
    out.push_str(name);
    out.push_str("_count");
    render_labels(labels, None, out);
    out.push_str(&format!(" {}\n", h.count));
}

/// Renders a registry snapshot as Prometheus text format.
///
/// `# HELP` / `# TYPE` headers are emitted once per metric name, before
/// its first series.
pub fn render(snapshot: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut announced: Vec<&str> = Vec::new();
    for m in snapshot {
        if !announced.contains(&m.name.as_str()) {
            announced.push(&m.name);
            let kind = match m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram(_) => "histogram",
            };
            if !m.help.is_empty() {
                out.push_str(&format!("# HELP {} {}\n", m.name, m.help));
            }
            out.push_str(&format!("# TYPE {} {kind}\n", m.name));
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&m.name);
                render_labels(&m.labels, None, &mut out);
                out.push_str(&format!(" {v}\n"));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&m.name);
                render_labels(&m.labels, None, &mut out);
                out.push_str(&format!(" {v}\n"));
            }
            MetricValue::Histogram(h) => render_histogram(&m.name, &m.labels, h, &mut out),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn renders_counters_gauges_and_histograms() {
        let r = Registry::new();
        r.counter("reqs_total", &[("endpoint", "evaluate")], "requests")
            .add(3);
        r.gauge("depth", &[], "queue depth").set(-2);
        let h = r.histogram("lat_us", &[("stage", "score")], "latency");
        h.record_us(100);
        h.record_us(2_000_000);
        let text = render(&r.snapshot());
        assert!(text.contains("# TYPE reqs_total counter"));
        assert!(text.contains("reqs_total{endpoint=\"evaluate\"} 3"));
        assert!(text.contains("depth -2"));
        assert!(text.contains("# TYPE lat_us histogram"));
        assert!(text.contains("lat_us_bucket{stage=\"score\",le=\"+Inf\"} 2"));
        assert!(text.contains("lat_us_count{stage=\"score\"} 2"));
        assert!(text.contains("lat_us_sum{stage=\"score\"} 2.0001"));
    }

    #[test]
    fn bucket_series_are_cumulative_and_end_at_count() {
        let r = Registry::new();
        let h = r.histogram("x_us", &[], "");
        for us in [1u64, 10, 100, 1000, 10_000] {
            h.record_us(us);
        }
        let text = render(&r.snapshot());
        let mut last = 0u64;
        let mut inf = None;
        for line in text.lines().filter(|l| l.starts_with("x_us_bucket")) {
            let v: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(v >= last, "buckets must be cumulative: {line}");
            last = v;
            if line.contains("+Inf") {
                inf = Some(v);
            }
        }
        assert_eq!(inf, Some(5));
    }

    #[test]
    fn le_values_are_plain_decimals() {
        assert_eq!(le_value(f64::INFINITY), "+Inf");
        assert_eq!(le_value(1.5), "0.0000015");
        assert_eq!(le_value(2_000_000.0), "2.0");
        assert_eq!(le_value(1_500_000.0), "1.5");
    }
}
