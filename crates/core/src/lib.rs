//! # cloudeval-core
//!
//! The benchmark orchestration layer: everything in Figure 3 wired
//! together, plus the §4 analyses.
//!
//! * [`harness`] — dataset → prompt → query → §3.1 post-processing → six
//!   metrics → unit tests on the evaluation cluster, as a streaming
//!   stage-graph ([`harness::evaluate`]) with the phase-barriered seed
//!   driver kept as the reference ([`harness::evaluate_barriered`]);
//! * [`pipeline`] — the composable [`pipeline::Stage`] /
//!   [`pipeline::Pipeline`] machinery the streaming driver is built on;
//! * [`analysis`] — Figure 6 / Table 9 factor breakdowns and Figure 7
//!   failure modes;
//! * [`passk`] — §4.2 multi-sample generation and pass@k;
//! * [`predict`] — §4.4 unit-test prediction (leave-one-model-out) and
//!   SHAP feature importance;
//! * [`tables`] — text renderers for every table and figure;
//! * [`survey`] / [`related`] — the static Table 8 and Table 7 data.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use cedataset::Dataset;
//! use cloudeval_core::harness::{evaluate, pass_count, EvalOptions};
//! use llmsim::{ModelProfile, SimulatedModel};
//!
//! let dataset = Arc::new(Dataset::generate());
//! let model = SimulatedModel::new(ModelProfile::by_name("gpt-4").unwrap(), Arc::clone(&dataset));
//! // Evaluate a 1-in-25 subsample of the original questions.
//! let records = evaluate(&model, &dataset, &EvalOptions { stride: 25, ..Default::default() });
//! assert_eq!(records.len(), 14);
//! assert!(pass_count(&records) > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod harness;
pub mod passk;
pub mod pipeline;
pub mod predict;
pub mod related;
pub mod survey;
pub mod tables;

pub use harness::{
    default_workers, evaluate, evaluate_barriered, evaluate_repair, evaluate_repair_barriered,
    mean_scores, pass_count, score_submission, score_submissions_stream, EvalOptions, EvalRecord,
    RepairAttempt, RepairReport, RepairTrace, StageGauges, Submission, SubmissionVerdict,
};
pub use pipeline::{Pipeline, Stage};
