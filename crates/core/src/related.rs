//! Table 7: CloudEval-YAML against other code-generation benchmarks.

/// One benchmark in the comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BenchmarkInfo {
    /// Dataset name.
    pub dataset: &'static str,
    /// Problem domain.
    pub domain: &'static str,
    /// Evaluation metric beyond text-level ones.
    pub special_metric: &'static str,
    /// Problem count (as reported).
    pub problems: &'static str,
    /// Data source.
    pub source: &'static str,
    /// Natural languages covered.
    pub languages: &'static str,
}

/// The comparison rows of Table 7.
pub const RELATED: &[BenchmarkInfo] = &[
    BenchmarkInfo {
        dataset: "HumanEval",
        domain: "Python algorithm",
        special_metric: "Unit tests",
        problems: "164",
        source: "Hand-written",
        languages: "EN",
    },
    BenchmarkInfo {
        dataset: "MBPP",
        domain: "Basic Python",
        special_metric: "Unit tests",
        problems: "974",
        source: "Hand-verified",
        languages: "EN",
    },
    BenchmarkInfo {
        dataset: "WikiSQL",
        domain: "SQL query",
        special_metric: "Execution Accuracy",
        problems: "88k",
        source: "Hand-annotated",
        languages: "EN",
    },
    BenchmarkInfo {
        dataset: "CodeApex",
        domain: "C++ algorithm",
        special_metric: "Unit tests",
        problems: "476",
        source: "Online judge system",
        languages: "EN, ZH",
    },
    BenchmarkInfo {
        dataset: "MCoNaLa",
        domain: "Python",
        special_metric: "-",
        problems: "896",
        source: "StackOverflow",
        languages: "EN, ES, JA, RU",
    },
    BenchmarkInfo {
        dataset: "Lyra",
        domain: "Python w/ embed. SQL",
        special_metric: "Code exec./AST",
        problems: "2000",
        source: "GitHub",
        languages: "EN, ZH",
    },
    BenchmarkInfo {
        dataset: "APPS",
        domain: "Python",
        special_metric: "Unit tests",
        problems: "10k",
        source: "Codeforces, Kattis",
        languages: "EN",
    },
    BenchmarkInfo {
        dataset: "CoNaLa",
        domain: "Python, Java",
        special_metric: "-",
        problems: "2879",
        source: "StackOverflow",
        languages: "EN",
    },
    BenchmarkInfo {
        dataset: "Django",
        domain: "Python Django",
        special_metric: "Human study",
        problems: "19k",
        source: "Django codebase",
        languages: "EN",
    },
    BenchmarkInfo {
        dataset: "Shellcode_IA32",
        domain: "Assembly",
        special_metric: "-",
        problems: "3200",
        source: "shell-storm, Exploit",
        languages: "EN",
    },
    BenchmarkInfo {
        dataset: "CodeXGLUE",
        domain: "Python, Java",
        special_metric: "-",
        problems: "645k",
        source: "Various sources",
        languages: "EN",
    },
    BenchmarkInfo {
        dataset: "CONCODE",
        domain: "Java classes",
        special_metric: "-",
        problems: "100k",
        source: "GitHub repositories",
        languages: "EN",
    },
    BenchmarkInfo {
        dataset: "DS-1000",
        domain: "Python data science",
        special_metric: "Unit tests",
        problems: "1000",
        source: "StackOverflow",
        languages: "EN",
    },
    BenchmarkInfo {
        dataset: "Ansible",
        domain: "YAML for Ansible",
        special_metric: "K-V match",
        problems: "112k",
        source: "GitHub, GitLab",
        languages: "EN",
    },
    BenchmarkInfo {
        dataset: "CloudEval-YAML",
        domain: "YAML for Cloud apps",
        special_metric: "Unit tests, K-V wildcard",
        problems: "1011",
        source: "Hand-written (337/1011)",
        languages: "EN, ZH",
    },
];

/// Renders Table 7 as aligned text.
pub fn table7() -> String {
    let mut out = String::from(
        "Dataset           Problem Domain         Special Eval. Metric        # Problems  Data Source              Natural Lang.\n",
    );
    for b in RELATED {
        out.push_str(&format!(
            "{:<18}{:<23}{:<28}{:<12}{:<25}{}\n",
            b.dataset, b.domain, b.special_metric, b.problems, b.source, b.languages
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cloudeval_is_last_row_and_unique_in_domain() {
        let last = RELATED.last().unwrap();
        assert_eq!(last.dataset, "CloudEval-YAML");
        // The only cloud-application YAML benchmark with unit tests.
        let cloud_unit_tested = RELATED
            .iter()
            .filter(|b| b.domain.contains("Cloud") && b.special_metric.contains("Unit tests"))
            .count();
        assert_eq!(cloud_unit_tested, 1);
    }

    #[test]
    fn table_renders() {
        let t = table7();
        assert!(t.contains("HumanEval"));
        assert!(t.contains("K-V wildcard"));
        assert_eq!(t.lines().count(), RELATED.len() + 1);
    }
}
