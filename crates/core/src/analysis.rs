//! Post-hoc analysis: the per-factor breakdowns of Figure 6 / Table 9 and
//! the failure-mode histogram of Figure 7.

use cedataset::Application;
use llmsim::AnswerCategory;

use crate::harness::EvalRecord;

/// Unit-test score of a record subset.
fn unit_test_score<'a, I: Iterator<Item = &'a EvalRecord>>(records: I) -> f64 {
    let mut n = 0usize;
    let mut sum = 0.0;
    for r in records {
        n += 1;
        sum += r.scores.unit_test;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// One model's Table 9 row: unit-test score per factor bucket.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorRow {
    /// Model name.
    pub model: String,
    /// By application: Kubernetes, Envoy, Istio.
    pub by_application: [f64; 3],
    /// With vs without code context.
    pub by_context: [f64; 2],
    /// Reference length buckets `[0,15)`, `[15,30)`, `>=30` lines.
    pub by_ref_length: [f64; 3],
    /// Question token buckets `[0,50)`, `[50,100)`, `>=100`.
    pub by_question_tokens: [f64; 3],
}

/// Computes the Table 9 / Figure 6 factor analysis for one model's
/// records.
pub fn factor_analysis(model: &str, records: &[EvalRecord]) -> FactorRow {
    let of_model: Vec<&EvalRecord> = records.iter().filter(|r| r.model == model).collect();
    let by_application = [
        unit_test_score(
            of_model
                .iter()
                .copied()
                .filter(|r| r.category.application() == Application::Kubernetes),
        ),
        unit_test_score(
            of_model
                .iter()
                .copied()
                .filter(|r| r.category.application() == Application::Envoy),
        ),
        unit_test_score(
            of_model
                .iter()
                .copied()
                .filter(|r| r.category.application() == Application::Istio),
        ),
    ];
    let by_context = [
        unit_test_score(of_model.iter().copied().filter(|r| r.has_context)),
        unit_test_score(of_model.iter().copied().filter(|r| !r.has_context)),
    ];
    let by_ref_length = [
        unit_test_score(of_model.iter().copied().filter(|r| r.reference_lines < 15)),
        unit_test_score(
            of_model
                .iter()
                .copied()
                .filter(|r| (15..30).contains(&r.reference_lines)),
        ),
        unit_test_score(of_model.iter().copied().filter(|r| r.reference_lines >= 30)),
    ];
    let by_question_tokens = [
        unit_test_score(of_model.iter().copied().filter(|r| r.question_tokens < 50)),
        unit_test_score(
            of_model
                .iter()
                .copied()
                .filter(|r| (50..100).contains(&r.question_tokens)),
        ),
        unit_test_score(
            of_model
                .iter()
                .copied()
                .filter(|r| r.question_tokens >= 100),
        ),
    ];
    FactorRow {
        model: model.to_owned(),
        by_application,
        by_context,
        by_ref_length,
        by_question_tokens,
    }
}

/// Figure 7: counts per answer category (1–6) for one model.
pub fn failure_modes(model: &str, records: &[EvalRecord]) -> [usize; 6] {
    let mut counts = [0usize; 6];
    for r in records.iter().filter(|r| r.model == model) {
        let idx = match r.answer_class {
            AnswerCategory::EmptyOrTiny => 0,
            AnswerCategory::NoKind => 1,
            AnswerCategory::IncompleteYaml => 2,
            AnswerCategory::WrongKind => 3,
            AnswerCategory::FailsTest => 4,
            AnswerCategory::Correct => 5,
        };
        counts[idx] += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{evaluate, EvalOptions};
    use cedataset::Dataset;
    use llmsim::{ModelProfile, SimulatedModel};
    use std::sync::Arc;

    fn records(model_name: &str, stride: usize) -> Vec<EvalRecord> {
        let ds = Arc::new(Dataset::generate());
        let model =
            SimulatedModel::new(ModelProfile::by_name(model_name).unwrap(), Arc::clone(&ds));
        evaluate(
            &model,
            &ds,
            &EvalOptions {
                stride,
                ..EvalOptions::default()
            },
        )
    }

    #[test]
    fn envoy_scores_below_kubernetes() {
        // Use a moderate subsample for speed; shape is robust.
        let recs = records("gpt-4", 3);
        let row = factor_analysis("gpt-4", &recs);
        let [k8s, envoy, _istio] = row.by_application;
        assert!(envoy < k8s, "envoy {envoy} !< k8s {k8s}");
    }

    #[test]
    fn longer_references_score_lower() {
        let recs = records("gpt-4", 3);
        let row = factor_analysis("gpt-4", &recs);
        let [short, medium, long] = row.by_ref_length;
        assert!(short >= medium, "short {short} < medium {medium}");
        assert!(medium >= long, "medium {medium} < long {long}");
        assert!(short > long, "no gradient: {short} vs {long}");
    }

    #[test]
    fn failure_mode_counts_sum_to_records() {
        let recs = records("llama-2-70b-chat", 5);
        let counts = failure_modes("llama-2-70b-chat", &recs);
        assert_eq!(counts.iter().sum::<usize>(), recs.len());
        // Llama-2 70B's dominant failure is category 5 (Figure 7).
        let max_fail = counts[..5].iter().max().copied().unwrap_or(0);
        assert_eq!(counts[4], max_fail, "{counts:?}");
    }

    #[test]
    fn unknown_model_yields_empty_analysis() {
        let recs = records("gpt-4", 20);
        let counts = failure_modes("nonexistent", &recs);
        assert_eq!(counts.iter().sum::<usize>(), 0);
    }
}
