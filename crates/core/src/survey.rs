//! Appendix A / Table 8: the YAML-usage survey over the top-100
//! most-starred CNCF-landscape repositories, which motivates the
//! benchmark's focus on YAML ("90 out of the top 100 ... use more than 10
//! YAML files").

/// One surveyed repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepoStat {
    /// Repository name.
    pub name: &'static str,
    /// GitHub stars at survey time.
    pub stars: u32,
    /// Total files in the repository.
    pub total_files: u32,
    /// YAML files in the repository.
    pub yaml_files: u32,
}

/// The full survey table (Table 8), transcribed from the paper.
pub const SURVEY: &[RepoStat] = &[
    RepoStat {
        name: "GitLab",
        stars: 23368,
        total_files: 58372,
        yaml_files: 4721,
    },
    RepoStat {
        name: "Kubernetes",
        stars: 101881,
        total_files: 29662,
        yaml_files: 4715,
    },
    RepoStat {
        name: "Elastic",
        stars: 65213,
        total_files: 35747,
        yaml_files: 3143,
    },
    RepoStat {
        name: "GraphQL",
        stars: 30135,
        total_files: 13667,
        yaml_files: 2169,
    },
    RepoStat {
        name: "Istio",
        stars: 33694,
        total_files: 6261,
        yaml_files: 2081,
    },
    RepoStat {
        name: "Ansible",
        stars: 58659,
        total_files: 7236,
        yaml_files: 1914,
    },
    RepoStat {
        name: "ShardingSphere",
        stars: 18807,
        total_files: 21945,
        yaml_files: 1632,
    },
    RepoStat {
        name: "llvm",
        stars: 21975,
        total_files: 148442,
        yaml_files: 1202,
    },
    RepoStat {
        name: "Argo",
        stars: 14145,
        total_files: 4172,
        yaml_files: 1118,
    },
    RepoStat {
        name: "Skaffold",
        stars: 14219,
        total_files: 16345,
        yaml_files: 1044,
    },
    RepoStat {
        name: "Kubespray",
        stars: 14472,
        total_files: 2093,
        yaml_files: 900,
    },
    RepoStat {
        name: "SkyWalking",
        stars: 22442,
        total_files: 5999,
        yaml_files: 802,
    },
    RepoStat {
        name: "Cilium",
        stars: 16516,
        total_files: 19972,
        yaml_files: 780,
    },
    RepoStat {
        name: "MongoDB",
        stars: 24425,
        total_files: 49784,
        yaml_files: 743,
    },
    RepoStat {
        name: "Backstage",
        stars: 23285,
        total_files: 12300,
        yaml_files: 613,
    },
    RepoStat {
        name: "Grafana Loki",
        stars: 20163,
        total_files: 15520,
        yaml_files: 554,
    },
    RepoStat {
        name: "Helm",
        stars: 24953,
        total_files: 1784,
        yaml_files: 540,
    },
    RepoStat {
        name: "Envoy",
        stars: 22759,
        total_files: 13470,
        yaml_files: 520,
    },
    RepoStat {
        name: "Pulumi",
        stars: 17622,
        total_files: 8179,
        yaml_files: 467,
    },
    RepoStat {
        name: "Teleport",
        stars: 14225,
        total_files: 8884,
        yaml_files: 419,
    },
    RepoStat {
        name: "Traefik",
        stars: 44719,
        total_files: 1870,
        yaml_files: 339,
    },
    RepoStat {
        name: "minikube",
        stars: 27261,
        total_files: 2368,
        yaml_files: 316,
    },
    RepoStat {
        name: "SlimToolkit",
        stars: 17269,
        total_files: 6545,
        yaml_files: 305,
    },
    RepoStat {
        name: "Prometheus",
        stars: 49987,
        total_files: 1389,
        yaml_files: 255,
    },
    RepoStat {
        name: "Grafana",
        stars: 57207,
        total_files: 15782,
        yaml_files: 242,
    },
    RepoStat {
        name: "Podman",
        stars: 19128,
        total_files: 10589,
        yaml_files: 203,
    },
    RepoStat {
        name: "ClickHouse",
        stars: 30874,
        total_files: 27331,
        yaml_files: 200,
    },
    RepoStat {
        name: "Rancher K8s",
        stars: 21560,
        total_files: 3655,
        yaml_files: 196,
    },
    RepoStat {
        name: "Netdata",
        stars: 65199,
        total_files: 3069,
        yaml_files: 190,
    },
    RepoStat {
        name: "Dapr",
        stars: 22320,
        total_files: 2027,
        yaml_files: 186,
    },
    RepoStat {
        name: "Trivy",
        stars: 18709,
        total_files: 2250,
        yaml_files: 178,
    },
    RepoStat {
        name: "Vector",
        stars: 14432,
        total_files: 9320,
        yaml_files: 174,
    },
    RepoStat {
        name: "JHipster",
        stars: 20853,
        total_files: 3874,
        yaml_files: 173,
    },
    RepoStat {
        name: "RethinkDB",
        stars: 26257,
        total_files: 2121,
        yaml_files: 165,
    },
    RepoStat {
        name: "Dgraph",
        stars: 19620,
        total_files: 2231,
        yaml_files: 161,
    },
    RepoStat {
        name: "Salt Project",
        stars: 13513,
        total_files: 7242,
        yaml_files: 153,
    },
    RepoStat {
        name: "Docker Compose",
        stars: 30543,
        total_files: 466,
        yaml_files: 147,
    },
    RepoStat {
        name: "Vitess",
        stars: 16897,
        total_files: 5579,
        yaml_files: 142,
    },
    RepoStat {
        name: "containerd",
        stars: 14857,
        total_files: 6523,
        yaml_files: 138,
    },
    RepoStat {
        name: "Serverless",
        stars: 45187,
        total_files: 1805,
        yaml_files: 131,
    },
    RepoStat {
        name: "CockroachDB",
        stars: 27828,
        total_files: 18499,
        yaml_files: 118,
    },
    RepoStat {
        name: "k3s",
        stars: 24517,
        total_files: 750,
        yaml_files: 97,
    },
    RepoStat {
        name: "Logstash",
        stars: 13639,
        total_files: 3835,
        yaml_files: 88,
    },
    RepoStat {
        name: "Apache Spark",
        stars: 36800,
        total_files: 24415,
        yaml_files: 85,
    },
    RepoStat {
        name: "Kong",
        stars: 35947,
        total_files: 1888,
        yaml_files: 75,
    },
    RepoStat {
        name: "SST",
        stars: 17715,
        total_files: 4683,
        yaml_files: 73,
    },
    RepoStat {
        name: "Rust",
        stars: 85579,
        total_files: 46998,
        yaml_files: 69,
    },
    RepoStat {
        name: "gRPC",
        stars: 39066,
        total_files: 12629,
        yaml_files: 68,
    },
    RepoStat {
        name: "Vault",
        stars: 27546,
        total_files: 9175,
        yaml_files: 66,
    },
    RepoStat {
        name: "DragonflyDB",
        stars: 21064,
        total_files: 615,
        yaml_files: 64,
    },
    RepoStat {
        name: "Consul",
        stars: 26921,
        total_files: 13084,
        yaml_files: 62,
    },
    RepoStat {
        name: "Keycloak",
        stars: 17472,
        total_files: 14535,
        yaml_files: 59,
    },
    RepoStat {
        name: "Presto",
        stars: 15087,
        total_files: 13493,
        yaml_files: 57,
    },
    RepoStat {
        name: "InfluxData",
        stars: 26133,
        total_files: 2007,
        yaml_files: 56,
    },
    RepoStat {
        name: "ORY Hydra",
        stars: 14434,
        total_files: 2556,
        yaml_files: 56,
    },
    RepoStat {
        name: "OpenAPI",
        stars: 27136,
        total_files: 181,
        yaml_files: 55,
    },
    RepoStat {
        name: "Sentry",
        stars: 35169,
        total_files: 14388,
        yaml_files: 54,
    },
    RepoStat {
        name: "TDengine",
        stars: 21762,
        total_files: 4620,
        yaml_files: 51,
    },
    RepoStat {
        name: "Jaeger",
        stars: 18318,
        total_files: 1469,
        yaml_files: 48,
    },
    RepoStat {
        name: "MinIO",
        stars: 40904,
        total_files: 1391,
        yaml_files: 46,
    },
    RepoStat {
        name: "Zipkin",
        stars: 16425,
        total_files: 1076,
        yaml_files: 43,
    },
    RepoStat {
        name: "k6",
        stars: 21566,
        total_files: 3382,
        yaml_files: 40,
    },
    RepoStat {
        name: "Nomad",
        stars: 13968,
        total_files: 6080,
        yaml_files: 39,
    },
    RepoStat {
        name: "Timescale",
        stars: 15534,
        total_files: 2289,
        yaml_files: 39,
    },
    RepoStat {
        name: "etcd",
        stars: 44537,
        total_files: 1600,
        yaml_files: 38,
    },
    RepoStat {
        name: "Gradle Build Tool",
        stars: 15205,
        total_files: 35647,
        yaml_files: 38,
    },
    RepoStat {
        name: "Terraform",
        stars: 38875,
        total_files: 5704,
        yaml_files: 36,
    },
    RepoStat {
        name: "Apache RocketMQ",
        stars: 19814,
        total_files: 2985,
        yaml_files: 36,
    },
    RepoStat {
        name: "Flink",
        stars: 21993,
        total_files: 27228,
        yaml_files: 30,
    },
    RepoStat {
        name: "Apollo",
        stars: 28360,
        total_files: 1512,
        yaml_files: 28,
    },
    RepoStat {
        name: "gVisor",
        stars: 14172,
        total_files: 3723,
        yaml_files: 26,
    },
    RepoStat {
        name: "Sentinel",
        stars: 21422,
        total_files: 3487,
        yaml_files: 25,
    },
    RepoStat {
        name: "go-zero",
        stars: 25550,
        total_files: 1382,
        yaml_files: 22,
    },
    RepoStat {
        name: "Seata",
        stars: 24226,
        total_files: 3904,
        yaml_files: 21,
    },
    RepoStat {
        name: "Packer",
        stars: 14612,
        total_files: 1450,
        yaml_files: 20,
    },
    RepoStat {
        name: "Wasmer",
        stars: 16300,
        total_files: 2007,
        yaml_files: 19,
    },
    RepoStat {
        name: "Portainer",
        stars: 26644,
        total_files: 3063,
        yaml_files: 19,
    },
    RepoStat {
        name: "Golang",
        stars: 114620,
        total_files: 14022,
        yaml_files: 18,
    },
    RepoStat {
        name: "SOPS",
        stars: 13823,
        total_files: 190,
        yaml_files: 18,
    },
    RepoStat {
        name: "Redis",
        stars: 61572,
        total_files: 1679,
        yaml_files: 16,
    },
    RepoStat {
        name: "kratos",
        stars: 21387,
        total_files: 861,
        yaml_files: 16,
    },
    RepoStat {
        name: "NATS",
        stars: 24451,
        total_files: 580,
        yaml_files: 16,
    },
    RepoStat {
        name: "Zig",
        stars: 26009,
        total_files: 16173,
        yaml_files: 15,
    },
    RepoStat {
        name: "Jenkins",
        stars: 21453,
        total_files: 13139,
        yaml_files: 15,
    },
    RepoStat {
        name: "Apache Hadoop",
        stars: 13858,
        total_files: 9562,
        yaml_files: 14,
    },
    RepoStat {
        name: "Dubbo",
        stars: 39400,
        total_files: 5399,
        yaml_files: 14,
    },
    RepoStat {
        name: "TiDB",
        stars: 34880,
        total_files: 6235,
        yaml_files: 14,
    },
    RepoStat {
        name: "OpenFaaS",
        stars: 23512,
        total_files: 1100,
        yaml_files: 14,
    },
    RepoStat {
        name: "emscripten",
        stars: 24266,
        total_files: 9596,
        yaml_files: 11,
    },
    RepoStat {
        name: "OpenCV",
        stars: 71360,
        total_files: 8613,
        yaml_files: 10,
    },
    RepoStat {
        name: "Caddy",
        stars: 49844,
        total_files: 465,
        yaml_files: 9,
    },
    RepoStat {
        name: "Apache bRPC",
        stars: 15290,
        total_files: 1632,
        yaml_files: 9,
    },
    RepoStat {
        name: "Firecracker",
        stars: 22578,
        total_files: 822,
        yaml_files: 8,
    },
    RepoStat {
        name: "Nacos",
        stars: 27577,
        total_files: 3501,
        yaml_files: 6,
    },
    RepoStat {
        name: "Kotlin",
        stars: 45845,
        total_files: 98293,
        yaml_files: 5,
    },
    RepoStat {
        name: "TiKV",
        stars: 13617,
        total_files: 1705,
        yaml_files: 3,
    },
    RepoStat {
        name: "Kafka",
        stars: 25883,
        total_files: 7020,
        yaml_files: 2,
    },
    RepoStat {
        name: "V8",
        stars: 21722,
        total_files: 14237,
        yaml_files: 1,
    },
    RepoStat {
        name: "FFmpeg",
        stars: 38520,
        total_files: 8287,
        yaml_files: 1,
    },
    RepoStat {
        name: "NGINX(Wasm)",
        stars: 19089,
        total_files: 559,
        yaml_files: 0,
    },
];

/// Repositories with at least `threshold` YAML files (the paper's "more
/// than 10" headline counts repositories at the threshold).
pub fn repos_with_at_least(threshold: u32) -> usize {
    SURVEY.iter().filter(|r| r.yaml_files >= threshold).count()
}

/// Renders Table 8 as aligned text (sorted by YAML file count).
pub fn table8() -> String {
    let mut out = String::from("Repo Name             Stars    Total Files   YAML Files\n");
    for r in SURVEY {
        out.push_str(&format!(
            "{:<22}{:>6}{:>14}{:>12}\n",
            r.name, r.stars, r.total_files, r.yaml_files
        ));
    }
    out.push_str(&format!(
        "\n{} of {} repositories contain more than 10 YAML files.\n",
        repos_with_at_least(10),
        SURVEY.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hundred_repos_surveyed() {
        assert_eq!(SURVEY.len(), 100);
    }

    #[test]
    fn ninety_of_one_hundred_exceed_ten_yaml_files() {
        // The headline claim of Appendix A.
        assert_eq!(repos_with_at_least(10), 90);
    }

    #[test]
    fn kubernetes_is_yaml_heavy() {
        let k8s = SURVEY.iter().find(|r| r.name == "Kubernetes").unwrap();
        assert!(k8s.yaml_files > 4000);
    }

    #[test]
    fn table_renders_every_repo() {
        let t = table8();
        assert!(t.contains("GitLab"));
        assert!(t.contains("NGINX(Wasm)"));
        assert!(t.contains("90 of 100"));
    }
}
