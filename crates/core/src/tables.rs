//! Text renderers for every table and figure in the paper's evaluation.
//! The `repro` binary in `cloudeval-bench` calls these with freshly
//! computed data.

use cescore::Scores;

use crate::analysis::FactorRow;
use crate::passk::PassAtK;
use crate::predict::LomoResult;

/// A Table 4 row: model metadata plus mean scores.
#[derive(Debug, Clone)]
pub struct Table4Row {
    /// Model name.
    pub model: String,
    /// Parameter count in billions, if disclosed.
    pub size_b: Option<u32>,
    /// Open-source?
    pub open_source: bool,
    /// Mean of all six metrics over the evaluated set.
    pub scores: Scores,
}

/// Renders Table 4 (zero-shot benchmark, all metrics), sorted by unit-test
/// score descending.
pub fn table4(rows: &[Table4Row]) -> String {
    let mut sorted: Vec<&Table4Row> = rows.iter().collect();
    sorted.sort_by(|a, b| {
        b.scores
            .unit_test
            .partial_cmp(&a.scores.unit_test)
            .expect("scores are finite")
    });
    let mut out = String::from(
        "Rank  Model                     Size  Open    BLEU  EditD  Exact  KVExact  KVWild  UnitTest\n",
    );
    for (i, r) in sorted.iter().enumerate() {
        let size = r
            .size_b
            .map(|s| format!("{s}B"))
            .unwrap_or_else(|| "?".to_owned());
        out.push_str(&format!(
            "{:<6}{:<26}{:<6}{:<6}{:>6.3} {:>6.3} {:>6.3} {:>8.3} {:>7.3} {:>9.3}\n",
            i + 1,
            r.model,
            size,
            if r.open_source { "Y" } else { "N" },
            r.scores.bleu,
            r.scores.edit_distance,
            r.scores.exact_match,
            r.scores.kv_exact,
            r.scores.kv_wildcard,
            r.scores.unit_test,
        ));
    }
    out
}

/// Renders Table 5 (passes on original / simplified / translated).
pub fn table5(rows: &[(String, usize, usize, Option<usize>)]) -> String {
    let mut out = String::from("Model                      Original  Simplified   Translated\n");
    for (model, orig, simp, trans) in rows {
        let t = trans
            .map(|t| format!("{t} ({:+})", t as i64 - *orig as i64))
            .unwrap_or_else(|| "N/A".to_owned());
        out.push_str(&format!(
            "{:<27}{:>8}  {:>5} ({:+})  {:>11}\n",
            model,
            orig,
            simp,
            *simp as i64 - *orig as i64,
            t
        ));
    }
    out
}

/// Renders Table 6 (few-shot prompting; passes for 0–3 shots).
pub fn table6(rows: &[(String, [usize; 4])]) -> String {
    let mut out = String::from("Model                      0-shot   1-shot   2-shot   3-shot\n");
    for (model, counts) in rows {
        out.push_str(&format!(
            "{:<27}{:>6}  {:>4} ({:+})  {:>3} ({:+})  {:>3} ({:+})\n",
            model,
            counts[0],
            counts[1],
            counts[1] as i64 - counts[0] as i64,
            counts[2],
            counts[2] as i64 - counts[0] as i64,
            counts[3],
            counts[3] as i64 - counts[0] as i64,
        ));
    }
    out
}

/// Renders Figure 5 (evaluation time vs workers, with/without cache).
pub fn figure5(rows: &[(usize, f64, f64)]) -> String {
    let mut out = String::from("Workers   w/o caching (h)   w/ caching (h)\n");
    for (workers, without, with) in rows {
        out.push_str(&format!("{workers:>7}   {without:>15.2}   {with:>14.2}\n"));
    }
    if let (Some(first), Some(last)) = (rows.first(), rows.last()) {
        out.push_str(&format!(
            "\nSpeedup (1 worker w/o cache -> {} workers w/ cache): {:.1}x\n",
            last.0,
            first.1 / last.2.max(1e-9)
        ));
    }
    out
}

/// Renders Figure 6 / Table 9 (factor analysis rows per model).
pub fn figure6(rows: &[FactorRow]) -> String {
    let mut out = String::from(
        "Model                      K8s    Envoy  Istio | w/ctx  w/o   | <15L   15-30  >=30  | <50t   50-100 >=100\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<26}{:>5.3}  {:>5.3}  {:>5.3} | {:>5.3} {:>5.3} | {:>5.3}  {:>5.3} {:>5.3} | {:>5.3}  {:>5.3} {:>5.3}\n",
            r.model,
            r.by_application[0],
            r.by_application[1],
            r.by_application[2],
            r.by_context[0],
            r.by_context[1],
            r.by_ref_length[0],
            r.by_ref_length[1],
            r.by_ref_length[2],
            r.by_question_tokens[0],
            r.by_question_tokens[1],
            r.by_question_tokens[2],
        ));
    }
    out
}

/// Renders Figure 7 (failure-mode histogram).
pub fn figure7(rows: &[(String, [usize; 6])]) -> String {
    let mut out = String::from("Model                       #1    #2    #3    #4    #5    #6\n");
    for (model, counts) in rows {
        out.push_str(&format!(
            "{:<26}{:>4}  {:>4}  {:>4}  {:>4}  {:>4}  {:>4}\n",
            model, counts[0], counts[1], counts[2], counts[3], counts[4], counts[5]
        ));
    }
    out.push_str("\n(#1 empty/<3 lines, #2 no kind, #3 incomplete YAML, #4 wrong kind, #5 fails test, #6 passes)\n");
    out
}

/// Renders Figure 8 (pass@k curves + normalized performance).
pub fn figure8(curves: &[PassAtK]) -> String {
    let mut out = String::from("pass@k:\n");
    let max_k = curves.iter().map(|c| c.curve.len()).max().unwrap_or(0);
    out.push_str("k      ");
    for k in 1..=max_k {
        out.push_str(&format!("{k:>6}"));
    }
    out.push('\n');
    for c in curves {
        out.push_str(&format!("{:<7}", c.model));
        for v in &c.curve {
            out.push_str(&format!("{v:>6}"));
        }
        out.push('\n');
    }
    out.push_str("\nnormalized (pass@k / pass@1):\n");
    for c in curves {
        let norm = c.normalized();
        out.push_str(&format!("{:<22}", c.model));
        for v in &norm {
            out.push_str(&format!("{v:>6.2}"));
        }
        out.push('\n');
    }
    out
}

/// Renders Figure 9 (predicted vs actual unit-test scores and SHAP
/// importances).
pub fn figure9(lomo: &[LomoResult], shap: &[f64]) -> String {
    let mut out = String::from("(a) Leave-one-model-out prediction:\n");
    out.push_str("Model                      Predicted   Ground Truth   Rel. Error\n");
    let mut sorted: Vec<&LomoResult> = lomo.iter().collect();
    sorted.sort_by_key(|r| std::cmp::Reverse(r.actual));
    for r in sorted {
        out.push_str(&format!(
            "{:<27}{:>9}   {:>12}   {:>9.1}%\n",
            r.model,
            r.predicted,
            r.actual,
            r.relative_error_pct()
        ));
    }
    out.push_str("\n(b) SHAP importance (mean |phi|):\n");
    let names = [
        "bleu",
        "edit_distance",
        "exact_match",
        "kv_match",
        "kv_wildcard",
    ];
    let max = shap.iter().cloned().fold(1e-12, f64::max);
    let mut ranked: Vec<(usize, f64)> = shap.iter().copied().enumerate().collect();
    ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite shap"));
    for (i, v) in ranked {
        let bar = "#".repeat(((v / max) * 40.0).round() as usize);
        out.push_str(&format!("{:<14}{:>8.4}  {bar}\n", names[i], v));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_sorts_by_unit_test() {
        let rows = vec![
            Table4Row {
                model: "weak".into(),
                size_b: Some(7),
                open_source: true,
                scores: Scores {
                    unit_test: 0.1,
                    ..Default::default()
                },
            },
            Table4Row {
                model: "strong".into(),
                size_b: None,
                open_source: false,
                scores: Scores {
                    unit_test: 0.5,
                    ..Default::default()
                },
            },
        ];
        let t = table4(&rows);
        let strong_at = t.find("strong").unwrap();
        let weak_at = t.find("weak").unwrap();
        assert!(strong_at < weak_at, "{t}");
    }

    #[test]
    fn table5_shows_deltas_and_na() {
        let t = table5(&[
            ("gpt-4".into(), 179, 164, Some(178)),
            ("palm".into(), 120, 97, None),
        ]);
        assert!(t.contains("(-15)"), "{t}");
        assert!(t.contains("N/A"));
    }

    #[test]
    fn figure7_renders_all_categories() {
        let t = figure7(&[("gpt-4".into(), [8, 1, 42, 30, 77, 179])]);
        assert!(t.contains("179"));
        assert!(t.contains("#6"));
    }

    #[test]
    fn figure8_normalized_starts_at_one() {
        let t = figure8(&[PassAtK {
            model: "m".into(),
            curve: vec![10, 12, 13],
        }]);
        assert!(t.contains("1.00"));
        assert!(t.contains("1.30"));
    }

    #[test]
    fn figure9_ranks_shap() {
        let lomo = vec![LomoResult {
            model: "m".into(),
            actual: 100,
            predicted: 90,
        }];
        let t = figure9(&lomo, &[0.1, 0.2, 0.05, 0.3, 0.9]);
        let kv_wild_at = t.find("kv_wildcard").unwrap();
        let bleu_at = t.find("bleu").unwrap();
        assert!(kv_wild_at < bleu_at, "{t}");
        assert!(t.contains("10.0%"));
    }
}
