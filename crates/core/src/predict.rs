//! Predicting unit-test results from static scores (§4.4, Figure 9).
//!
//! The paper trains an XGBoost classifier on ~4000 scored YAML files from
//! 12 models (features: BLEU, edit distance, exact match, kv-exact,
//! kv-wildcard; label: unit-test pass), evaluates it leave-one-model-out,
//! and uses SHAP to rank feature importance. Here the classifier is
//! `gboost` and the study runs over the harness's records.

use gboost::{BoostParams, Classifier};

use crate::harness::EvalRecord;

/// Feature vector for the classifier: the five static metrics.
pub fn features(record: &EvalRecord) -> Vec<f64> {
    record.scores.static_metrics().to_vec()
}

/// One leave-one-model-out result.
#[derive(Debug, Clone, PartialEq)]
pub struct LomoResult {
    /// Held-out model.
    pub model: String,
    /// Ground-truth unit-test passes.
    pub actual: usize,
    /// Predicted passes (count of positive classifications).
    pub predicted: usize,
}

impl LomoResult {
    /// Relative error in percent (against max(actual, 1)).
    pub fn relative_error_pct(&self) -> f64 {
        let a = self.actual.max(1) as f64;
        (self.predicted as f64 - a).abs() / a * 100.0
    }
}

/// Runs the leave-one-model-out study of Figure 9(a).
pub fn leave_one_model_out(records: &[EvalRecord]) -> Vec<LomoResult> {
    let mut model_names: Vec<String> = records.iter().map(|r| r.model.clone()).collect();
    model_names.sort();
    model_names.dedup();
    let mut results = Vec::new();
    for held_out in &model_names {
        let mut train_x = Vec::new();
        let mut train_y = Vec::new();
        let mut test_x = Vec::new();
        let mut actual = 0usize;
        for r in records {
            if &r.model == held_out {
                test_x.push(features(r));
                if r.scores.unit_test > 0.5 {
                    actual += 1;
                }
            } else {
                train_x.push(features(r));
                train_y.push(r.scores.unit_test);
            }
        }
        if train_x.is_empty() || test_x.is_empty() {
            continue;
        }
        let clf = Classifier::fit(&train_x, &train_y, &BoostParams::default());
        let predicted = test_x.iter().filter(|x| clf.predict(x)).count();
        results.push(LomoResult {
            model: held_out.clone(),
            actual,
            predicted,
        });
    }
    results
}

/// Kendall-tau-style rank agreement between actual and predicted scores:
/// fraction of concordant model pairs (1.0 = identical ranking).
pub fn rank_agreement(results: &[LomoResult]) -> f64 {
    let mut concordant = 0usize;
    let mut total = 0usize;
    for i in 0..results.len() {
        for j in i + 1..results.len() {
            let (a, b) = (&results[i], &results[j]);
            if a.actual == b.actual {
                continue;
            }
            total += 1;
            let actual_order = a.actual > b.actual;
            let predicted_order =
                a.predicted > b.predicted || (a.predicted == b.predicted && actual_order);
            if actual_order == predicted_order {
                concordant += 1;
            }
        }
    }
    if total == 0 {
        1.0
    } else {
        concordant as f64 / total as f64
    }
}

/// Figure 9(b): mean |SHAP| per feature from a classifier trained on all
/// records. Returns values in [`cescore::METRIC_NAMES`] static-metric
/// order: bleu, edit_distance, exact_match, kv_exact, kv_wildcard.
pub fn shap_importance(records: &[EvalRecord], sample_cap: usize) -> Vec<f64> {
    let xs: Vec<Vec<f64>> = records.iter().map(features).collect();
    let ys: Vec<f64> = records.iter().map(|r| r.scores.unit_test).collect();
    let clf = Classifier::fit(&xs, &ys, &BoostParams::default());
    // SHAP over a deterministic subsample keeps the study fast.
    let step = (xs.len() / sample_cap.max(1)).max(1);
    let sample: Vec<Vec<f64>> = xs.iter().step_by(step).cloned().collect();
    gboost::mean_abs_shap(&clf, &sample)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{evaluate, EvalOptions};
    use cedataset::Dataset;
    use llmsim::{ModelProfile, SimulatedModel};
    use std::sync::Arc;

    /// Records from a handful of models on a subsample.
    fn study_records(stride: usize) -> Vec<EvalRecord> {
        let ds = Arc::new(Dataset::generate());
        let mut records = Vec::new();
        for name in ["gpt-4", "gpt-3.5", "llama-2-70b-chat", "llama-7b"] {
            let model = SimulatedModel::new(ModelProfile::by_name(name).unwrap(), Arc::clone(&ds));
            records.extend(evaluate(
                &model,
                &ds,
                &EvalOptions {
                    stride,
                    ..Default::default()
                },
            ));
        }
        records
    }

    #[test]
    fn lomo_preserves_model_ranking() {
        let records = study_records(4);
        let results = leave_one_model_out(&records);
        assert_eq!(results.len(), 4);
        let agreement = rank_agreement(&results);
        assert!(agreement >= 0.8, "rank agreement {agreement}: {results:?}");
    }

    #[test]
    fn predictions_are_rough_but_not_wild() {
        // The paper: "most errors between 5% to 30%", worst ~80%.
        let records = study_records(4);
        let results = leave_one_model_out(&records);
        for r in &results {
            assert!(
                r.relative_error_pct() <= 120.0,
                "{}: {} vs {} ({}%)",
                r.model,
                r.predicted,
                r.actual,
                r.relative_error_pct()
            );
        }
    }

    #[test]
    fn kv_wildcard_dominates_shap() {
        let records = study_records(4);
        let importance = shap_importance(&records, 150);
        assert_eq!(importance.len(), 5);
        let kv_wildcard = importance[4];
        for (i, v) in importance.iter().enumerate().take(4) {
            assert!(
                kv_wildcard >= *v,
                "kv_wildcard ({kv_wildcard:.3}) not dominant over feature {i} ({v:.3}): {importance:?}"
            );
        }
    }
}
