//! Multi-sample generation and pass@k (§4.2, Figure 8).
//!
//! pass@k counts a problem as passed when **any** of its first k samples
//! passes the unit test (Kulal et al., 2019). The paper samples with the
//! models' default randomness (temperature 0.75/top-p 0.9/top-k 50 for
//! Llama-2-70B) and runs GPT-4 for only 6 samples due to rate limits.

use cedataset::{Dataset, Variant};
use evalcluster::executor::{run_jobs_cached, UnitTestJob};
use evalcluster::memo::ScoreMemo;
use llmsim::{extract_yaml, GenParams, LanguageModel, SimulatedModel};

/// Pass@k curve for one model.
#[derive(Debug, Clone, PartialEq)]
pub struct PassAtK {
    /// Model name.
    pub model: String,
    /// `curve[i]` = number of problems passed with any of the first
    /// `i + 1` samples.
    pub curve: Vec<usize>,
}

impl PassAtK {
    /// pass@1 (the zero-shot single-sample score).
    pub fn pass_at_1(&self) -> usize {
        self.curve.first().copied().unwrap_or(0)
    }

    /// Normalized performance: pass@k / pass@1 (Figure 8, right panel).
    pub fn normalized(&self) -> Vec<f64> {
        let base = self.pass_at_1().max(1) as f64;
        self.curve.iter().map(|c| *c as f64 / base).collect()
    }
}

/// Runs `k` samples per problem for one model and computes the pass@k
/// curve over the original dataset, with a run-local verdict cache.
///
/// `stride` subsamples problems (1 = all 337). Convenience wrapper over
/// [`pass_at_k_cached`].
pub fn pass_at_k(
    model: &SimulatedModel,
    dataset: &Dataset,
    k: usize,
    stride: usize,
    workers: usize,
) -> PassAtK {
    pass_at_k_cached(model, dataset, k, stride, workers, &ScoreMemo::new())
}

/// [`pass_at_k`] with a caller-owned [`ScoreMemo`].
///
/// Sampling re-produces identical candidates constantly (strong models
/// converge on the same answer, weak models repeat boilerplate), so the
/// content-addressed cache collapses most of the `problems × k` grid to
/// one execution each — and sharing one memo across models/sweeps (as the
/// experiment harness does) carries those verdicts over entire sessions.
pub fn pass_at_k_cached(
    model: &SimulatedModel,
    dataset: &Dataset,
    k: usize,
    stride: usize,
    workers: usize,
    memo: &ScoreMemo,
) -> PassAtK {
    let problems: Vec<&cedataset::Problem> =
        dataset.problems().iter().step_by(stride.max(1)).collect();
    // Generate all samples, then unit-test them in one parallel batch.
    // Candidates travel as parse-once `PreparedDoc`s; sampling repeats
    // the same answer constantly, so identical extractions share one
    // document (keyed by content hash) and parse exactly once.
    let mut docs: std::collections::HashMap<u64, std::sync::Arc<yamlkit::PreparedDoc>> =
        std::collections::HashMap::new();
    let mut jobs = Vec::with_capacity(problems.len() * k);
    for p in &problems {
        let prompt = cedataset::fewshot::build_prompt(&p.prompt_body(Variant::Original), 0);
        for sample in 0..k {
            let params = GenParams::sampling(sample as u64);
            let raw = model.generate(&prompt, &params);
            let yaml = extract_yaml(&raw);
            let doc = docs
                .entry(yamlkit::doc::content_hash(&yaml))
                .or_insert_with(|| yamlkit::PreparedDoc::shared(yaml))
                .clone();
            jobs.push(UnitTestJob::prepared(
                format!("{}#{sample}", p.id),
                p.unit_test.clone(),
                doc,
            ));
        }
    }
    let report = run_jobs_cached(&jobs, workers, memo);
    // curve[i]: problems with >=1 pass among samples 0..=i.
    let mut curve = vec![0usize; k];
    for (p_idx, _) in problems.iter().enumerate() {
        let mut passed_yet = false;
        for (sample, passes) in curve.iter_mut().enumerate() {
            let job = &report.results[p_idx * k + sample];
            passed_yet |= job.passed;
            if passed_yet {
                *passes += 1;
            }
        }
    }
    PassAtK {
        model: model.name().to_owned(),
        curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::ModelProfile;
    use std::sync::Arc;

    fn curve_for(name: &str, k: usize, stride: usize) -> PassAtK {
        let ds = Arc::new(Dataset::generate());
        let model = SimulatedModel::new(ModelProfile::by_name(name).unwrap(), Arc::clone(&ds));
        pass_at_k(&model, &ds, k, stride, 8)
    }

    #[test]
    fn curve_is_monotone_nondecreasing() {
        let c = curve_for("gpt-3.5", 6, 6);
        for pair in c.curve.windows(2) {
            assert!(pair[0] <= pair[1], "{:?}", c.curve);
        }
    }

    #[test]
    fn multi_sample_improves_over_single() {
        // Mid-tier models gain the most from resampling (Figure 8 shows
        // 30–39% at k≈20; at k=8 the gain is already visible).
        let c = curve_for("llama-2-70b-chat", 8, 3);
        let norm = c.normalized();
        assert!(
            *norm.last().unwrap() > 1.10,
            "no multi-sample gain: {:?}",
            c.curve
        );
    }

    #[test]
    fn stronger_model_stays_ahead_no_crossover() {
        // "the curves of different models will not cross over each other"
        let strong = curve_for("gpt-4", 4, 6);
        let weak = curve_for("llama-2-70b-chat", 4, 6);
        for (s, w) in strong.curve.iter().zip(&weak.curve) {
            assert!(s >= w, "crossover: {:?} vs {:?}", strong.curve, weak.curve);
        }
    }

    #[test]
    fn k_equals_one_matches_pass_at_1() {
        let c = curve_for("gpt-3.5", 1, 10);
        assert_eq!(c.curve.len(), 1);
        assert_eq!(c.pass_at_1(), c.curve[0]);
    }

    #[test]
    fn shared_memo_preserves_curves_and_caches_verdicts() {
        let ds = Arc::new(Dataset::generate());
        let model = SimulatedModel::new(ModelProfile::by_name("gpt-3.5").unwrap(), Arc::clone(&ds));
        let memo = ScoreMemo::new();
        let cold = pass_at_k_cached(&model, &ds, 4, 8, 8, &memo);
        assert!(!memo.is_empty(), "memo never populated");
        let warm = pass_at_k_cached(&model, &ds, 4, 8, 8, &memo);
        // Deterministic sampling → identical candidates → identical
        // curves, with the second sweep answered from cache.
        assert_eq!(cold, warm);
        assert_eq!(cold, pass_at_k(&model, &ds, 4, 8, 8));
    }
}
