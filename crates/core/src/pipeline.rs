//! The streaming stage-graph: composable pipeline stages over bounded
//! channels.
//!
//! The paper's Figure-3 pipeline (dataset → prompt → query →
//! post-process → score → cloud evaluation) was originally reproduced as
//! phase barriers: every prompt answered before any YAML was extracted,
//! every metric computed before any unit test ran. This module replaces
//! the barrier shape with the stage-graph shape: each phase is a
//! [`Stage`] with its own worker pool, stages are chained over **bounded**
//! mpsc channels (a slow stage backpressures its producers instead of
//! buffering unboundedly), and records flow through the whole graph
//! independently — record 0 can be unit-testing while record 50 is still
//! generating. Throughput is bound by the slowest *record chain*, not the
//! sum of the slowest phases.
//!
//! Every record carries its input index end-to-end and the driver
//! reassembles output by index, so results are **deterministic and
//! order-identical to the barriered evaluation** regardless of worker
//! counts, channel bounds or thread interleaving.
//!
//! # Examples
//!
//! ```
//! use cloudeval_core::pipeline::{Pipeline, Stage};
//!
//! struct Double;
//! impl Stage for Double {
//!     type In = u64;
//!     type Out = u64;
//!     fn workers(&self) -> usize { 4 }
//!     fn process(&self, _index: usize, input: u64) -> u64 { input * 2 }
//! }
//!
//! struct Stringify;
//! impl Stage for Stringify {
//!     type In = u64;
//!     type Out = String;
//!     fn process(&self, index: usize, input: u64) -> String {
//!         format!("{index}:{input}")
//!     }
//! }
//!
//! let pipeline = Pipeline::new(Double).then(Stringify);
//! let out = pipeline.run((0..5).collect());
//! assert_eq!(out, vec!["0:0", "1:2", "2:4", "3:6", "4:8"]);
//! ```

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::sync::{Arc, Mutex};
use std::thread::Scope;
use std::time::Instant;

/// Default bound of every inter-stage channel: deep enough to absorb
/// jitter between stages of different speeds, shallow enough that a
/// stalled consumer backpressures its producers within a few hundred
/// records instead of buffering a whole grid.
pub const DEFAULT_CHANNEL_BOUND: usize = 128;

/// One stage of the graph: a typed record transformer with its own
/// worker pool.
///
/// `process` is called concurrently from [`workers`](Stage::workers)
/// threads, each invocation owning one record; the stage itself is shared
/// behind `&self` and must therefore be [`Sync`]. Records are `'static`
/// (owned data) so they can cross channel and thread boundaries freely —
/// the *stage* may still borrow context (dataset, model, senders) from
/// the caller's stack.
pub trait Stage: Sync {
    /// Input record type.
    type In: Send + 'static;
    /// Output record type.
    type Out: Send + 'static;

    /// Worker-pool width for this stage (default 1; clamped to ≥ 1).
    fn workers(&self) -> usize {
        1
    }

    /// Stable name of this stage, used as the `stage` label of the
    /// per-stage latency series in the global [`obs`] registry
    /// (`stage_queue_wait_us{stage=…}` / `stage_service_us{stage=…}`).
    /// Stages that keep the default share one anonymous series.
    fn name(&self) -> &'static str {
        "stage"
    }

    /// Transforms one record. `index` is the record's position in the
    /// pipeline input and is stable across stages.
    fn process(&self, index: usize, input: Self::In) -> Self::Out;
}

/// A spawnable segment of the stage graph: either one [`Stage`] pool
/// ([`StageLink`]) or two segments glued together ([`Chain`]). Users
/// compose links through [`Pipeline::then`]; the trait is public so the
/// composed pipeline types can be named.
pub trait Link: Sync {
    /// Input record type of the segment.
    type In: Send + 'static;
    /// Output record type of the segment.
    type Out: Send + 'static;

    /// Spawns the segment's worker threads on `scope`, consuming
    /// `(index, record)` pairs from `input` and returning the segment's
    /// output channel. Workers exit when the input channel disconnects
    /// (upstream done) or the output channel hangs up (downstream gone).
    fn spawn<'scope, 'env>(
        &'env self,
        scope: &'scope Scope<'scope, 'env>,
        input: Receiver<(usize, Self::In)>,
        bound: usize,
    ) -> Receiver<(usize, Self::Out)>;
}

/// A [`Link`] wrapping a single [`Stage`] with its worker pool.
pub struct StageLink<S: Stage> {
    stage: S,
}

impl<S: Stage> Link for StageLink<S> {
    type In = S::In;
    type Out = S::Out;

    fn spawn<'scope, 'env>(
        &'env self,
        scope: &'scope Scope<'scope, 'env>,
        input: Receiver<(usize, Self::In)>,
        bound: usize,
    ) -> Receiver<(usize, Self::Out)> {
        let (tx, out) = sync_channel(bound.max(1));
        // Per-stage latency series, resolved once per spawn so the worker
        // loop records lock-free: queue wait is the worker's blocking
        // time on the upstream handoff (starvation), service time is the
        // `process` call itself.
        let labels = [("stage", self.stage.name())];
        let queue_wait = obs::global().histogram(
            "stage_queue_wait_us",
            &labels,
            "time a stage worker spent blocked waiting for its next record",
        );
        let service = obs::global().histogram(
            "stage_service_us",
            &labels,
            "time a stage worker spent processing one record",
        );
        // Workers share the upstream receiver; the lock is held only for
        // the blocking handoff, never across `process`.
        let input = Arc::new(Mutex::new(input));
        for _ in 0..self.stage.workers().max(1) {
            let input = Arc::clone(&input);
            let tx = tx.clone();
            let stage = &self.stage;
            let queue_wait = queue_wait.clone();
            let service = service.clone();
            scope.spawn(move || loop {
                let idle_from = Instant::now();
                let received = input.lock().expect("stage input poisoned").recv();
                let Ok((index, record)) = received else { break };
                queue_wait.record(idle_from.elapsed());
                let started = Instant::now();
                let out = stage.process(index, record);
                service.record(started.elapsed());
                if tx.send((index, out)).is_err() {
                    break; // downstream hung up; stop early
                }
            });
        }
        out
    }
}

/// Two chained links: `first`'s output channel feeds `second`'s pool.
pub struct Chain<A, B> {
    first: A,
    second: B,
}

impl<A: Link, B: Link<In = A::Out>> Link for Chain<A, B> {
    type In = A::In;
    type Out = B::Out;

    fn spawn<'scope, 'env>(
        &'env self,
        scope: &'scope Scope<'scope, 'env>,
        input: Receiver<(usize, Self::In)>,
        bound: usize,
    ) -> Receiver<(usize, Self::Out)> {
        let mid = self.first.spawn(scope, input, bound);
        self.second.spawn(scope, mid, bound)
    }
}

/// A composed stage graph ready to run.
///
/// Build with [`Pipeline::new`], extend with [`Pipeline::then`], execute
/// with [`Pipeline::run`] (a ready `Vec` of inputs) or
/// [`Pipeline::run_fed`] (inputs produced concurrently by a feeder — e.g.
/// a streaming LLM query pool). Output is always in input-index order.
pub struct Pipeline<L: Link> {
    link: L,
    bound: usize,
}

impl<S: Stage> Pipeline<StageLink<S>> {
    /// A single-stage pipeline.
    pub fn new(stage: S) -> Pipeline<StageLink<S>> {
        Pipeline {
            link: StageLink { stage },
            bound: DEFAULT_CHANNEL_BOUND,
        }
    }
}

impl<L: Link> Pipeline<L> {
    /// Appends a stage whose input type is the current output type.
    pub fn then<S: Stage<In = L::Out>>(self, stage: S) -> Pipeline<Chain<L, StageLink<S>>> {
        Pipeline {
            link: Chain {
                first: self.link,
                second: StageLink { stage },
            },
            bound: self.bound,
        }
    }

    /// Sets the bound of every inter-stage channel (default
    /// [`DEFAULT_CHANNEL_BOUND`]; clamped to ≥ 1). Smaller bounds mean
    /// tighter backpressure and lower peak memory; larger bounds absorb
    /// more inter-stage jitter.
    pub fn channel_bound(mut self, bound: usize) -> Pipeline<L> {
        self.bound = bound.max(1);
        self
    }

    /// Streams `inputs` through the graph and returns the outputs in
    /// input order.
    pub fn run(&self, inputs: Vec<L::In>) -> Vec<L::Out> {
        let expected = inputs.len();
        self.run_fed(expected, move |feed| {
            for (i, record) in inputs.into_iter().enumerate() {
                if feed.send((i, record)).is_err() {
                    break; // pipeline torn down; nothing left to feed
                }
            }
        })
    }

    /// Streams records produced by `feeder` through the graph.
    ///
    /// `feeder` runs on its own thread and must send each index in
    /// `0..expected` exactly once (any order); the sender it receives is
    /// bounded, so a feeder that outruns the pipeline blocks instead of
    /// buffering. This is the entry point for *overlapping generation
    /// with the rest of the graph*: the feeder wraps a streaming producer
    /// (e.g. `llmsim::query_stream`) whose emissions become pipeline
    /// records the moment they complete.
    ///
    /// Panics if the graph produces fewer than `expected` records (a
    /// feeder that under-delivers) or an out-of-range index.
    pub fn run_fed<F>(&self, expected: usize, feeder: F) -> Vec<L::Out>
    where
        F: FnOnce(SyncSender<(usize, L::In)>) + Send,
    {
        let (feed_tx, feed_rx) = sync_channel(self.bound);
        std::thread::scope(|scope| {
            let out = self.link.spawn(scope, feed_rx, self.bound);
            scope.spawn(move || feeder(feed_tx));
            let mut slots: Vec<Option<L::Out>> = (0..expected).map(|_| None).collect();
            for (index, record) in out {
                let slot = slots
                    .get_mut(index)
                    .unwrap_or_else(|| panic!("pipeline emitted out-of-range index {index}"));
                assert!(slot.is_none(), "pipeline emitted index {index} twice");
                *slot = Some(record);
            }
            slots
                .into_iter()
                .map(|slot| slot.expect("pipeline dropped a record"))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct AddOne {
        workers: usize,
    }
    impl Stage for AddOne {
        type In = u64;
        type Out = u64;
        fn workers(&self) -> usize {
            self.workers
        }
        fn process(&self, _index: usize, input: u64) -> u64 {
            input + 1
        }
    }

    struct SlowSquare;
    impl Stage for SlowSquare {
        type In = u64;
        type Out = u64;
        fn workers(&self) -> usize {
            3
        }
        fn process(&self, index: usize, input: u64) -> u64 {
            if index.is_multiple_of(7) {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            input * input
        }
    }

    #[test]
    fn single_stage_preserves_order() {
        let p = Pipeline::new(AddOne { workers: 8 });
        let out = p.run((0..500).collect());
        assert_eq!(out, (1..=500).collect::<Vec<u64>>());
    }

    #[test]
    fn chained_stages_preserve_order_across_bounds_and_widths() {
        for bound in [1, 2, 64] {
            for workers in [1, 2, 8] {
                let p = Pipeline::new(AddOne { workers })
                    .then(SlowSquare)
                    .then(AddOne { workers })
                    .channel_bound(bound);
                let out = p.run((0..200).collect());
                let want: Vec<u64> = (0..200u64).map(|v| (v + 1) * (v + 1) + 1).collect();
                assert_eq!(out, want, "bound {bound}, workers {workers}");
            }
        }
    }

    #[test]
    fn stage_can_borrow_caller_state() {
        struct Counting<'a> {
            hits: &'a AtomicUsize,
        }
        impl Stage for Counting<'_> {
            type In = u64;
            type Out = u64;
            fn workers(&self) -> usize {
                4
            }
            fn process(&self, _index: usize, input: u64) -> u64 {
                self.hits.fetch_add(1, Ordering::Relaxed);
                input
            }
        }
        let hits = AtomicUsize::new(0);
        let p = Pipeline::new(Counting { hits: &hits });
        let out = p.run((0..64).collect());
        assert_eq!(out.len(), 64);
        assert_eq!(hits.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn run_fed_accepts_out_of_order_feeding() {
        let p = Pipeline::new(AddOne { workers: 4 });
        let out = p.run_fed(100, |feed| {
            // Feed even indices first, then odd — output must still be
            // index-ordered.
            for i in (0..100).step_by(2).chain((1..100).step_by(2)) {
                feed.send((i, i as u64)).unwrap();
            }
        });
        assert_eq!(out, (1..=100).collect::<Vec<u64>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let p = Pipeline::new(AddOne { workers: 4 }).then(SlowSquare);
        assert!(p.run(Vec::new()).is_empty());
    }

    #[test]
    fn stage_latency_series_record_every_record() {
        struct Named;
        impl Stage for Named {
            type In = u64;
            type Out = u64;
            fn workers(&self) -> usize {
                2
            }
            fn name(&self) -> &'static str {
                "test_named_stage"
            }
            fn process(&self, _index: usize, input: u64) -> u64 {
                input
            }
        }
        let out = Pipeline::new(Named).run((0..50).collect());
        assert_eq!(out.len(), 50);
        // The stage name is unique to this test, so the global series
        // counts exactly this run's records.
        let labels = [("stage", "test_named_stage")];
        let service = obs::global()
            .histogram_snapshot("stage_service_us", &labels)
            .expect("service series registered");
        assert_eq!(service.count, 50);
        let wait = obs::global()
            .histogram_snapshot("stage_queue_wait_us", &labels)
            .expect("queue-wait series registered");
        assert_eq!(wait.count, 50);
    }

    #[test]
    #[should_panic(expected = "pipeline dropped a record")]
    fn under_delivering_feeder_panics_instead_of_hanging() {
        let p = Pipeline::new(AddOne { workers: 2 });
        let _ = p.run_fed(3, |feed| {
            feed.send((0, 0)).unwrap(); // indices 1 and 2 never arrive
        });
    }
}
