//! The end-to-end benchmark pipeline (Figure 3): dataset → prompt →
//! query → post-process → score → cloud evaluation.
//!
//! Two drivers share one record vocabulary and produce **identical
//! output**:
//!
//! * [`evaluate`] — the streaming stage-graph driver: generation
//!   ([`llmsim::query_stream`]), `extract_yaml` post-processing, static
//!   scoring ([`cescore::score_pair`] on its own worker pool, off the
//!   main thread) and substrate execution
//!   ([`evalcluster::run_jobs_stream`]) all run **concurrently**, records
//!   flowing between stages over bounded channels
//!   ([`crate::pipeline`]). Wall-clock tracks the slowest record chain,
//!   not the slowest phase.
//! * [`evaluate_barriered`] — the seed phase-barrier driver (all prompts,
//!   then all extractions, then all unit tests, then serial scoring),
//!   kept as the reference semantics and the benchmark baseline.
//!
//! Both drivers dedupe unit-test executions by content hash (identical
//! extracted YAML for the same unit test scores once) and honor
//! [`EvalOptions::memo`] so verdicts carry across runs.

use std::sync::mpsc::{sync_channel, SyncSender};
use std::sync::{Arc, Mutex};

use cedataset::{Category, Dataset, Problem, Variant};
use cescore::{
    score_pair_prepared, score_pair_prepared_with, PreparedDoc, RefCache, ScoreScratch, Scores,
};
use evalcluster::executor::{run_jobs_cached, run_jobs_stream, UnitTestJob};
use evalcluster::memo::ScoreMemo;
use llmsim::{
    extract_yaml, AnswerCategory, FeedbackMode, GenParams, LanguageModel, QueryConfig,
    SimulatedModel,
};
use obs::{Span, TraceId};

use crate::pipeline::{Pipeline, Stage, DEFAULT_CHANNEL_BOUND};

/// Default unit-test worker count: one per available hardware thread,
/// clamped to `[2, 32]`.
///
/// The seed hard-coded 8 workers, which under-drove big machines and
/// oversubscribed small containers. Override per run via
/// [`EvalOptions::workers`] (or `repro --workers N` on the CLI).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(8)
        .clamp(2, 32)
}

/// One scored (model, problem, variant) evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Model name.
    pub model: String,
    /// Problem id.
    pub problem_id: String,
    /// Dataset variant.
    pub variant: Variant,
    /// Problem category.
    pub category: Category,
    /// Whether the question carried a YAML context.
    pub has_context: bool,
    /// Reference solution length in lines.
    pub reference_lines: usize,
    /// Question length in (approximate) tokens.
    pub question_tokens: usize,
    /// Extracted YAML (after §3.1 post-processing).
    pub extracted: String,
    /// All six metrics, including the unit-test outcome.
    pub scores: Scores,
    /// Figure 7 failure class.
    pub answer_class: AnswerCategory,
}

/// Evaluation options.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Variants to include.
    pub variants: Vec<Variant>,
    /// Few-shot exemplar count (0–3).
    pub shots: usize,
    /// Generation parameters.
    pub params: GenParams,
    /// Unit-test worker threads. Defaults to [`default_workers`]
    /// (available parallelism, clamped); set explicitly to pin a run to a
    /// fixed width.
    pub workers: usize,
    /// Optional problem subsample: keep every `stride`-th problem
    /// (1 = full dataset). Used by fast tests.
    pub stride: usize,
    /// Shared content-addressed verdict cache. `None` (the default) uses
    /// a run-local memo — identical candidates still execute once within
    /// the run; supply one `Arc<ScoreMemo>` across runs to carry verdicts
    /// over a whole grid or pass@k sweep.
    pub memo: Option<Arc<ScoreMemo>>,
    /// Bound of every inter-stage channel in the streaming driver
    /// (backpressure depth; ignored by [`evaluate_barriered`]).
    pub channel_bound: usize,
    /// When `Some(ms)`, generation runs in the latency-realistic remote
    /// regime: each request really occupies its query worker for `ms` of
    /// wall-clock ([`QueryConfig::live_latency`]), as a remote API would.
    /// Applied identically by both drivers (so comparisons stay fair);
    /// `None` (the default) generates at pure simulation speed.
    pub live_latency_ms: Option<u64>,
    /// Parse-once document model (the default). Each candidate is parsed
    /// exactly once into a shared [`PreparedDoc`] that flows from the
    /// scoring stage into substrate execution, and each reference is
    /// prepared once per [`RefCache`] lifetime. `false` selects the
    /// pre-refactor text path — every layer re-parses the text — kept as
    /// the A/B baseline (`repro pipeline --prepared off`); verdicts are
    /// identical either way.
    pub prepared: bool,
    /// Shared prepared-reference cache. `None` (the default) uses a
    /// run-local cache — each reference still parses at most once within
    /// the run; supply one `Arc<RefCache>` across runs to parse each
    /// reference exactly once per session (grid sweeps, pass@k).
    pub refs: Option<Arc<RefCache>>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            variants: vec![Variant::Original],
            shots: 0,
            params: GenParams::default(),
            workers: default_workers(),
            stride: 1,
            memo: None,
            channel_bound: DEFAULT_CHANNEL_BOUND,
            live_latency_ms: None,
            prepared: true,
            refs: None,
        }
    }
}

impl EvalOptions {
    /// All three variants (Table 4's full 1011-problem evaluation).
    pub fn full() -> EvalOptions {
        EvalOptions {
            variants: Variant::ALL.to_vec(),
            ..EvalOptions::default()
        }
    }

    /// The memo to use: the shared one when provided, else `fallback`.
    fn memo_or<'a>(&'a self, fallback: &'a ScoreMemo) -> &'a ScoreMemo {
        self.memo.as_deref().unwrap_or(fallback)
    }

    /// The prepared-reference cache to use: the shared one when provided,
    /// else `fallback`.
    fn refs_or<'a>(&'a self, fallback: &'a RefCache) -> &'a RefCache {
        self.refs.as_deref().unwrap_or(fallback)
    }

    /// The query configuration both drivers dispatch generation with.
    fn query_config(&self) -> QueryConfig {
        QueryConfig {
            parallelism: self.workers.max(1),
            request_latency_ms: self
                .live_latency_ms
                .unwrap_or(QueryConfig::default().request_latency_ms),
            live_latency: self.live_latency_ms.is_some(),
            ..QueryConfig::default()
        }
    }
}

/// The (problem, variant) grid selected by the options, with prompts.
fn plan<'d>(
    dataset: &'d Dataset,
    options: &EvalOptions,
) -> (Vec<(&'d Problem, Variant)>, Vec<String>) {
    let problems: Vec<&Problem> = dataset
        .problems()
        .iter()
        .step_by(options.stride.max(1))
        .collect();
    let mut coords: Vec<(&Problem, Variant)> = Vec::new();
    for &variant in &options.variants {
        for p in &problems {
            coords.push((p, variant));
        }
    }
    let prompts: Vec<String> = coords
        .iter()
        .map(|(p, v)| cedataset::fewshot::build_prompt(&p.prompt_body(*v), options.shots))
        .collect();
    (coords, prompts)
}

/// Assembles the final record for one coordinate — shared verbatim by
/// both drivers so their outputs stay bit-identical. `clean_reference` is
/// the label-stripped reference: the text driver computes it per record
/// (the seed behavior), the prepared driver reads it off the session's
/// [`cescore::PreparedRef`] — the strings are identical by construction.
fn assemble_record(
    model_name: &str,
    problem: &Problem,
    variant: Variant,
    clean_reference: &str,
    yaml: String,
    mut scores: Scores,
    passed: bool,
) -> EvalRecord {
    scores.unit_test = f64::from(u8::from(passed));
    let answer_class = llmsim::classify_answer(&yaml, clean_reference, passed);
    EvalRecord {
        model: model_name.to_owned(),
        problem_id: problem.id.clone(),
        variant,
        category: problem.category,
        has_context: problem.has_context(),
        reference_lines: clean_reference.lines().count(),
        question_tokens: cedataset::stats::token_count(problem.description_for(variant)),
        extracted: yaml,
        scores,
        answer_class,
    }
}

/// §3.1 post-processing as a pipeline stage: raw model output in,
/// extracted YAML out.
struct ExtractStage {
    workers: usize,
}

impl Stage for ExtractStage {
    type In = String;
    type Out = String;
    fn name(&self) -> &'static str {
        "extract"
    }
    fn workers(&self) -> usize {
        self.workers
    }
    fn process(&self, _index: usize, raw: String) -> String {
        extract_yaml(&raw)
    }
}

/// Static scoring as a pipeline stage: extracted YAML in, `(yaml, static
/// scores)` out — scoring runs on this stage's pool, off the main
/// thread. As a side effect each record's unit-test job is forwarded to
/// the substrate execution pool the moment the YAML is known, so cloud
/// evaluation overlaps scoring *and* generation.
///
/// In prepared mode (`refs` set) this is where the candidate's
/// one-and-only parse happens: the [`PreparedDoc`] built here is shared
/// by `Arc` with the substrate job, and the reference comes pre-parsed
/// from the [`RefCache`]. In text mode every layer re-parses, exactly
/// like the seed pipeline.
struct ScoreStage<'a> {
    coords: &'a [(&'a Problem, Variant)],
    /// `Some` → parse-once prepared scoring; `None` → seed text path.
    refs: Option<&'a RefCache>,
    jobs: SyncSender<(usize, UnitTestJob)>,
    workers: usize,
}

impl Stage for ScoreStage<'_> {
    type In = String;
    type Out = (String, Scores);
    fn name(&self) -> &'static str {
        "score"
    }
    fn workers(&self) -> usize {
        self.workers
    }
    fn process(&self, index: usize, yaml: String) -> (String, Scores) {
        let (problem, variant) = self.coords[index];
        let problem_id = format!("{}@{variant:?}", problem.id);
        // Dispatch before scoring: the substrate pool starts while this
        // thread computes BLEU/edit-distance/kv metrics. A send error
        // means the execution pool is gone; the collector will flag the
        // missing verdict.
        match self.refs {
            Some(refs) => {
                let doc = PreparedDoc::shared(yaml);
                let job =
                    UnitTestJob::prepared(problem_id, problem.unit_test.clone(), Arc::clone(&doc));
                let _ = self.jobs.send((index, job));
                let reference = refs.prepare(&problem.labeled_reference);
                // Stage workers are long-lived pool threads, so the
                // thread-local kernel scratch inside score_pair_prepared
                // is reused across every record this worker scores.
                let scores = score_pair_prepared(&reference, &doc);
                (doc.text().to_owned(), scores)
            }
            None => {
                let job = UnitTestJob::new(problem_id, problem.unit_test.clone(), yaml.clone());
                let _ = self.jobs.send((index, job));
                let scores = cescore::score_pair_text(&problem.labeled_reference, &yaml);
                (yaml, scores)
            }
        }
    }
}

/// Runs the full pipeline for one model — the streaming stage-graph
/// driver.
///
/// Output is record-for-record identical to [`evaluate_barriered`] (same
/// `EvalRecord`s in the same order) for any worker count, stride or
/// channel bound; only the schedule differs. See the
/// `pipeline_determinism` test suite for the property-based proof.
pub fn evaluate(
    model: &SimulatedModel,
    dataset: &Dataset,
    options: &EvalOptions,
) -> Vec<EvalRecord> {
    let (coords, prompts) = plan(dataset, options);
    let n = coords.len();
    let workers = options.workers.max(1);
    let local_memo = ScoreMemo::new();
    let memo = options.memo_or(&local_memo);
    let local_refs = RefCache::new();
    let refs = options.prepared.then(|| options.refs_or(&local_refs));
    let bound = options.channel_bound.max(1);

    let verdicts: Mutex<Vec<Option<bool>>> = Mutex::new(vec![None; n]);
    let (job_tx, job_rx) = sync_channel::<(usize, UnitTestJob)>(bound);
    let statics: Vec<(String, Scores)> = std::thread::scope(|scope| {
        // Substrate execution pool: consumes jobs as scoring emits them.
        let verdicts = &verdicts;
        scope.spawn(move || {
            run_jobs_stream(job_rx, workers, memo, |index, result| {
                verdicts.lock().expect("verdict slots poisoned")[index] = Some(result.passed);
            });
        });
        // Post-processing + static scoring stages. Extraction is cheap
        // string peeling — a quarter of the pool suffices; scoring is the
        // static-metric hot path and gets the full width. Both are pure
        // CPU, so their pools are additionally capped at the hardware
        // width: threads beyond the core count only add context switches
        // (generation and substrate pools keep the requested width — the
        // former idles on live request latency, the latter is the
        // user-facing `workers` contract).
        let hw = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(workers);
        let pipeline = Pipeline::new(ExtractStage {
            workers: workers.div_ceil(4).min(hw).max(1),
        })
        .then(ScoreStage {
            coords: &coords,
            refs,
            jobs: job_tx,
            workers: workers.min(hw).max(1),
        })
        .channel_bound(bound);
        // Generation feeds the graph: query_stream's worker pool emits
        // each response the moment it completes.
        let statics = pipeline.run_fed(n, |feed| {
            let feed = Mutex::new(feed);
            llmsim::query_stream(
                model,
                &prompts,
                &options.params,
                &options.query_config(),
                |index, response| {
                    // A send error means the pipeline tore down early;
                    // the collector accounts for the missing record.
                    let _ = feed
                        .lock()
                        .expect("feed sender poisoned")
                        .send((index, response));
                },
            );
        });
        // `pipeline` (and with it the ScoreStage's job sender) drops
        // here, disconnecting the stream engine so the spawned execution
        // pool drains and joins at scope exit.
        drop(pipeline);
        statics
    });

    let verdicts = verdicts.into_inner().expect("verdict slots poisoned");
    coords
        .into_iter()
        .zip(statics)
        .zip(verdicts)
        .map(|(((problem, variant), (yaml, scores)), passed)| {
            let passed = passed.expect("substrate pool dropped a verdict");
            let clean = match refs {
                // Cache hit: the reference was prepared during scoring.
                Some(refs) => refs
                    .prepare(&problem.labeled_reference)
                    .clean_text()
                    .to_owned(),
                None => problem.clean_reference(),
            };
            assemble_record(model.name(), problem, variant, &clean, yaml, scores, passed)
        })
        .collect()
}

/// Runs the full pipeline for one model with the seed's phase barriers:
/// every prompt is answered before any YAML is extracted, every unit
/// test runs before any static metric is computed, and the static
/// metrics are computed serially on the calling thread — **on the
/// pre-refactor text path** (every layer re-parses the candidate), which
/// this driver preserves verbatim regardless of
/// [`EvalOptions::prepared`].
///
/// Kept as the reference semantics [`evaluate`] must reproduce exactly
/// (the `pipeline_determinism` suite proves record equality, which also
/// certifies the parse-once document model against the text path), and
/// as the baseline the `pipeline_engine` bench group and `repro
/// pipeline` measure the stage-graph against.
pub fn evaluate_barriered(
    model: &SimulatedModel,
    dataset: &Dataset,
    options: &EvalOptions,
) -> Vec<EvalRecord> {
    let (coords, prompts) = plan(dataset, options);
    // 1. YAML generation: prompts through the query module.
    let batch = llmsim::query_batch(model, &prompts, &options.params, &options.query_config());
    // 2. Post-processing.
    let extracted: Vec<String> = batch.responses.iter().map(|r| extract_yaml(r)).collect();
    // 3. Function-level scoring on the evaluation cluster.
    let jobs: Vec<UnitTestJob> = coords
        .iter()
        .zip(&extracted)
        .map(|((p, v), yaml)| {
            UnitTestJob::new(format!("{}@{v:?}", p.id), p.unit_test.clone(), yaml.clone())
        })
        .collect();
    let local_memo = ScoreMemo::new();
    let report = run_jobs_cached(&jobs, options.workers, options.memo_or(&local_memo));
    // 4. Static scoring + assembly, serially on this thread.
    coords
        .into_iter()
        .zip(extracted)
        .zip(report.results)
        .map(|(((problem, variant), yaml), job_result)| {
            let scores = cescore::score_pair_text(&problem.labeled_reference, &yaml);
            assemble_record(
                model.name(),
                problem,
                variant,
                &problem.clean_reference(),
                yaml,
                scores,
                job_result.passed,
            )
        })
        .collect()
}

/// One generation→extraction→scoring→deployment attempt inside a repair
/// trace. `round` 0 is the first attempt; each later round re-generates
/// from a [`llmsim::repair_prompt`] carrying the prior candidate and the
/// taxonomy feedback of its failure.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairAttempt {
    /// 0-based repair round this attempt ran in.
    pub round: usize,
    /// Extracted YAML of this attempt.
    pub extracted: String,
    /// Static metrics of this attempt, `unit_test` included.
    pub scores: Scores,
    /// Whether the deployment passed.
    pub passed: bool,
    /// Taxonomy bucket label of the failure
    /// ([`substrate::taxonomy::Bucket::label`]); `None` when the attempt
    /// passed (or a legacy memo entry carried no diagnosis).
    pub bucket: Option<String>,
    /// Offending subject from the diagnosis, when the classifier isolated
    /// one.
    pub subject: Option<String>,
}

/// The attempt history of one (problem, variant) coordinate through the
/// repair loop: one entry per round actually run, stopping early at the
/// first pass.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairTrace {
    /// Problem id.
    pub problem_id: String,
    /// Dataset variant.
    pub variant: Variant,
    /// Attempts in round order; the last one either passed or exhausted
    /// the round budget.
    pub attempts: Vec<RepairAttempt>,
}

impl RepairTrace {
    /// Whether the coordinate passed at any attempt up to and including
    /// `round`.
    pub fn passed_by(&self, round: usize) -> bool {
        self.attempts.iter().any(|a| a.round <= round && a.passed)
    }
}

/// The outcome of a fail–learn–refine run for one model:
/// pass@repair-round-r and taxonomy-bucketed failure counts per round.
#[derive(Debug, Clone, PartialEq)]
pub struct RepairReport {
    /// Model name.
    pub model: String,
    /// Maximum repair rounds after the first attempt (a report spans
    /// rounds `0..=rounds`).
    pub rounds: usize,
    /// How much of each failure diagnosis the repair prompts revealed.
    pub feedback: FeedbackMode,
    /// One trace per (problem, variant) coordinate, in plan order.
    pub traces: Vec<RepairTrace>,
}

impl RepairReport {
    /// Coordinates in the report.
    pub fn total(&self) -> usize {
        self.traces.len()
    }

    /// pass@repair-round-`round`: coordinates whose candidate passed at
    /// any attempt up to and including `round` (cumulative, so it is
    /// non-decreasing in `round`).
    pub fn pass_at_round(&self, round: usize) -> usize {
        self.traces.iter().filter(|t| t.passed_by(round)).count()
    }

    /// Taxonomy histogram of the failures standing at `round`: coordinates
    /// whose attempt at that round ran and failed, counted by bucket label
    /// in taxonomy order (zero-count buckets omitted). A failed attempt
    /// with no diagnosis counts as `unknown`.
    pub fn bucket_counts(&self, round: usize) -> Vec<(&'static str, usize)> {
        use substrate::taxonomy::Bucket;
        let mut counts = [0usize; Bucket::ALL.len()];
        for trace in &self.traces {
            if let Some(attempt) = trace
                .attempts
                .iter()
                .find(|a| a.round == round && !a.passed)
            {
                let bucket = attempt
                    .bucket
                    .as_deref()
                    .and_then(Bucket::from_label)
                    .unwrap_or(Bucket::Unknown);
                counts[bucket.index()] += 1;
            }
        }
        Bucket::ALL
            .into_iter()
            .zip(counts)
            .filter(|&(_, c)| c > 0)
            .map(|(b, c)| (b.label(), c))
            .collect()
    }
}

/// The unit-test job for one repair attempt. Attempt content is what the
/// memo keys on; the round only names the job and — past round 0 — marks
/// it a resubmission, so the memo answers deterministic failures from
/// cache and re-executes only retryable ones
/// ([`evalcluster::CachedVerdict::retryable_failure`]).
fn repair_job(
    problem: &Problem,
    variant: Variant,
    round: usize,
    doc: &Arc<PreparedDoc>,
) -> UnitTestJob {
    let job = UnitTestJob::prepared(
        format!("{}@{variant:?}#r{round}", problem.id),
        problem.unit_test.clone(),
        Arc::clone(doc),
    );
    if round > 0 {
        job.retry()
    } else {
        job
    }
}

/// Runs the fail–learn–refine loop on the streaming stage graph: every
/// coordinate's first attempt flows through generation → extraction →
/// static scoring → substrate execution exactly as in [`evaluate`], and a
/// failing verdict below the round cap **loops back** — the substrate
/// stage synthesizes taxonomy feedback ([`llmsim::synthesize_feedback`]),
/// builds the repair prompt, and re-feeds the coordinate to the
/// generation pool while other records keep streaming. No phase barrier:
/// one coordinate can be on round 2 while another is still generating
/// round 0.
///
/// Memo-aware end to end: repeat candidates are answered from the
/// [`ScoreMemo`], and repair resubmissions (round > 0) re-execute only
/// retryable failures. Output is identical to
/// [`evaluate_repair_barriered`] for any worker count or channel bound —
/// repair generation is seeded by the prior attempt's content, so the
/// schedule cannot leak into the traces.
pub fn evaluate_repair(
    model: &SimulatedModel,
    dataset: &Dataset,
    options: &EvalOptions,
    rounds: usize,
    feedback: FeedbackMode,
) -> RepairReport {
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    let (coords, prompts) = plan(dataset, options);
    let n = coords.len();
    let rounds_per = rounds + 1;
    // Distinct nonce per repair run so span trace ids from concurrent or
    // successive runs never collide (`TraceId::for_record(run, slot)`).
    static RUN_NONCE: AtomicU64 = AtomicU64::new(1);
    let run_nonce = RUN_NONCE.fetch_add(1, Ordering::Relaxed);
    let workers = options.workers.max(1);
    let local_memo = ScoreMemo::new();
    let memo = options.memo_or(&local_memo);
    let local_refs = RefCache::new();
    let refs = options.refs_or(&local_refs);
    if n == 0 {
        return RepairReport {
            model: model.name().to_owned(),
            rounds,
            feedback,
            traces: Vec::new(),
        };
    }

    // Flat attempt index: slot * (rounds + 1) + round. `statics` is
    // written by the generation pool strictly before the attempt's job is
    // dispatched; `outcomes` by the substrate stage's verdict callback.
    let statics: Vec<Mutex<Option<(String, Scores)>>> =
        (0..n * rounds_per).map(|_| Mutex::new(None)).collect();
    type Outcome = (bool, Option<substrate::taxonomy::Diagnosis>);
    let outcomes: Vec<Mutex<Option<Outcome>>> =
        (0..n * rounds_per).map(|_| Mutex::new(None)).collect();

    // The loop-back edge: an unbounded task channel in front of the
    // generation pool. Unbounded is what makes the cycle in the stage
    // graph deadlock-free — the substrate stage never blocks re-feeding a
    // failure, so the bounded job channel always drains.
    let (task_tx, task_rx) = std::sync::mpsc::channel::<(usize, usize, String)>();
    for (slot, prompt) in prompts.into_iter().enumerate() {
        task_tx.send((slot, 0, prompt)).expect("fresh channel");
    }
    let task_tx = Mutex::new(Some(task_tx));
    let task_rx = Mutex::new(task_rx);
    // Coordinates not yet settled (passed, or failed at the round cap).
    // The last one to settle closes the task channel, draining the
    // generation pool and with it the whole graph.
    let outstanding = AtomicUsize::new(n);
    let (job_tx, job_rx) = sync_channel::<(usize, UnitTestJob)>(options.channel_bound.max(1));
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(workers);

    std::thread::scope(|scope| {
        let coords = &coords;
        let statics = &statics;
        let outcomes = &outcomes;
        let task_tx = &task_tx;
        let task_rx = &task_rx;
        let outstanding = &outstanding;
        // Substrate execution stage with the loop-back edge.
        scope.spawn(move || {
            run_jobs_stream(job_rx, workers, memo, |flat, result| {
                let (slot, round) = (flat / rounds_per, flat % rounds_per);
                let diagnosis = result.diagnosis;
                // The verdict leg of the attempt's trace: round number and
                // taxonomy bucket, correlated by the shared trace id.
                let mut verdict_span =
                    Span::start("repair_verdict", TraceId::for_record(run_nonce, slot));
                if verdict_span.is_recording() {
                    verdict_span.tag("round", round.to_string());
                    verdict_span.tag("passed", result.passed.to_string());
                    verdict_span.tag(
                        "bucket",
                        diagnosis
                            .as_ref()
                            .map_or("none", |d| d.bucket.label())
                            .to_owned(),
                    );
                }
                verdict_span.finish();
                *outcomes[flat].lock().expect("outcome slot poisoned") =
                    Some((result.passed, diagnosis.clone()));
                if !result.passed && round < rounds {
                    let (problem, variant) = coords[slot];
                    let prior = statics[flat]
                        .lock()
                        .expect("statics slot poisoned")
                        .as_ref()
                        .expect("statics written before dispatch")
                        .0
                        .clone();
                    let fb = llmsim::synthesize_feedback(diagnosis.as_ref(), feedback);
                    let prompt = llmsim::repair_prompt(
                        &problem.prompt_body(variant),
                        &prior,
                        &fb,
                        round + 1,
                    );
                    if let Some(tx) = task_tx.lock().expect("task sender poisoned").as_ref() {
                        let _ = tx.send((slot, round + 1, prompt));
                    }
                } else if outstanding.fetch_sub(1, Ordering::AcqRel) == 1 {
                    *task_tx.lock().expect("task sender poisoned") = None;
                }
            });
        });
        // Generation + extraction + static-scoring pool (pure CPU apart
        // from the simulated generation, capped at the hardware width like
        // evaluate()'s scoring stage). Initial and repair tasks take the
        // same path — a repair request is just a prompt.
        for _ in 0..workers.min(hw).max(1) {
            let job_tx = job_tx.clone();
            scope.spawn(move || loop {
                let task = task_rx.lock().expect("task receiver poisoned").recv();
                let Ok((slot, round, prompt)) = task else {
                    break;
                };
                let (problem, variant) = coords[slot];
                // One span per attempt, child spans per stage — the
                // generation→extraction→scoring path of this round,
                // correlated with its verdict leg by the trace id.
                let mut attempt =
                    Span::start("repair_attempt", TraceId::for_record(run_nonce, slot));
                if attempt.is_recording() {
                    attempt.tag("round", round.to_string());
                    attempt.tag("problem", problem.id.clone());
                }
                let raw = {
                    let _gen = attempt.child("generate");
                    model.generate(&prompt, &options.params)
                };
                let doc = {
                    let _extract = attempt.child("extract");
                    PreparedDoc::shared(extract_yaml(&raw))
                };
                let reference = refs.prepare(&problem.labeled_reference);
                let scores = {
                    let _score = attempt.child("score");
                    score_pair_prepared(&reference, &doc)
                };
                attempt.finish();
                let flat = slot * rounds_per + round;
                *statics[flat].lock().expect("statics slot poisoned") =
                    Some((doc.text().to_owned(), scores));
                if job_tx
                    .send((flat, repair_job(problem, variant, round, &doc)))
                    .is_err()
                {
                    break;
                }
            });
        }
        drop(job_tx);
    });

    let traces = coords
        .iter()
        .enumerate()
        .map(|(slot, &(problem, variant))| {
            let mut attempts = Vec::new();
            for round in 0..rounds_per {
                let flat = slot * rounds_per + round;
                let Some((extracted, mut scores)) =
                    statics[flat].lock().expect("statics slot poisoned").take()
                else {
                    break;
                };
                let (passed, diagnosis) = outcomes[flat]
                    .lock()
                    .expect("outcome slot poisoned")
                    .take()
                    .expect("verdict for every dispatched attempt");
                scores.unit_test = f64::from(u8::from(passed));
                attempts.push(RepairAttempt {
                    round,
                    extracted,
                    scores,
                    passed,
                    bucket: diagnosis.as_ref().map(|d| d.bucket.label().to_owned()),
                    subject: diagnosis.and_then(|d| d.subject),
                });
                if passed {
                    break;
                }
            }
            RepairTrace {
                problem_id: problem.id.clone(),
                variant,
                attempts,
            }
        })
        .collect();
    RepairReport {
        model: model.name().to_owned(),
        rounds,
        feedback,
        traces,
    }
}

/// [`evaluate_repair`] with a phase barrier between rounds: every active
/// coordinate generates, extracts and scores serially, all jobs of the
/// round execute together ([`run_jobs_cached`]), and only then does the
/// next round start from the collected failures. Kept as the reference
/// semantics the streamed loop-back driver must reproduce byte for byte,
/// and as the baseline the `repair_engine` bench group measures against.
pub fn evaluate_repair_barriered(
    model: &SimulatedModel,
    dataset: &Dataset,
    options: &EvalOptions,
    rounds: usize,
    feedback: FeedbackMode,
) -> RepairReport {
    let (coords, prompts) = plan(dataset, options);
    let local_memo = ScoreMemo::new();
    let memo = options.memo_or(&local_memo);
    let local_refs = RefCache::new();
    let refs = options.refs_or(&local_refs);
    let mut traces: Vec<RepairTrace> = coords
        .iter()
        .map(|&(p, v)| RepairTrace {
            problem_id: p.id.clone(),
            variant: v,
            attempts: Vec::new(),
        })
        .collect();
    // Coordinates still failing, each with its next prompt.
    let mut pending: Vec<(usize, String)> = prompts.into_iter().enumerate().collect();
    for round in 0..=rounds {
        if pending.is_empty() {
            break;
        }
        // 1. Generation + extraction + static scoring, serially.
        let prepared: Vec<(usize, Arc<PreparedDoc>, Scores)> = pending
            .iter()
            .map(|(slot, prompt)| {
                let (problem, _) = coords[*slot];
                let raw = model.generate(prompt, &options.params);
                let doc = PreparedDoc::shared(extract_yaml(&raw));
                let reference = refs.prepare(&problem.labeled_reference);
                let scores = score_pair_prepared(&reference, &doc);
                (*slot, doc, scores)
            })
            .collect();
        // 2. Substrate execution behind the phase barrier.
        let jobs: Vec<UnitTestJob> = prepared
            .iter()
            .map(|(slot, doc, _)| {
                let (problem, variant) = coords[*slot];
                repair_job(problem, variant, round, doc)
            })
            .collect();
        let report = run_jobs_cached(&jobs, options.workers, memo);
        // 3. Record the round; failures below the cap become next round's
        // repair prompts.
        let mut next = Vec::new();
        for ((slot, doc, mut scores), result) in prepared.into_iter().zip(report.results) {
            let (problem, variant) = coords[slot];
            scores.unit_test = f64::from(u8::from(result.passed));
            traces[slot].attempts.push(RepairAttempt {
                round,
                extracted: doc.text().to_owned(),
                scores,
                passed: result.passed,
                bucket: result
                    .diagnosis
                    .as_ref()
                    .map(|d| d.bucket.label().to_owned()),
                subject: result.diagnosis.as_ref().and_then(|d| d.subject.clone()),
            });
            if !result.passed && round < rounds {
                let fb = llmsim::synthesize_feedback(result.diagnosis.as_ref(), feedback);
                let prompt = llmsim::repair_prompt(
                    &problem.prompt_body(variant),
                    doc.text(),
                    &fb,
                    round + 1,
                );
                next.push((slot, prompt));
            }
        }
        pending = next;
    }
    RepairReport {
        model: model.name().to_owned(),
        rounds,
        feedback,
        traces,
    }
}

/// One externally-submitted candidate awaiting evaluation — the
/// benchmark-as-a-service entry point (`ceserve`'s `/v1/evaluate` and
/// `/v1/batch` bodies land here).
#[derive(Debug, Clone, PartialEq)]
pub struct Submission<'p> {
    /// The problem the candidate answers.
    pub problem: &'p Problem,
    /// Which dataset variant the candidate was produced against (affects
    /// only bookkeeping: reference, unit test and scoring are shared).
    pub variant: Variant,
    /// Raw model output; §3.1 post-processing is applied before scoring.
    pub raw: String,
    /// Already-extracted candidate, when the caller ran §3.1
    /// post-processing itself (the `ceserve` batch decoder does, to key
    /// its response cache) — the streaming scorer then skips the second
    /// extraction. `None` extracts from `raw`.
    pub extracted: Option<String>,
}

/// The scored outcome of one [`Submission`] — the same numbers, bit for
/// bit, that a direct [`evaluate`] run produces for an identical
/// candidate, plus service-level metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmissionVerdict {
    /// Problem id.
    pub problem_id: String,
    /// Submitted variant.
    pub variant: Variant,
    /// Extracted YAML (after §3.1 post-processing).
    pub extracted: String,
    /// All six metrics, `unit_test` included.
    pub scores: Scores,
    /// Whether the unit test passed.
    pub passed: bool,
    /// Simulated in-substrate milliseconds of the (original) execution.
    pub simulated_ms: u64,
    /// Figure 7 failure class of the candidate.
    pub answer_class: AnswerCategory,
    /// Taxonomy bucket label of the deployment failure
    /// ([`substrate::taxonomy::Bucket::label`]); `None` on a pass (or
    /// when a legacy memo entry carried no diagnosis).
    pub failure_bucket: Option<String>,
    /// `true` when the verdict was served from the score memo without
    /// touching a substrate this call.
    pub cached: bool,
    /// A benchmark-input defect detected while scoring (e.g. an
    /// unparseable reference — see [`cescore::ScoreIssue`]), in wire
    /// form. A broken reference is a benchmark bug, not a model failure:
    /// the YAML-aware metrics still read 0.0 (unchanged numbers), but the
    /// defect is surfaced here instead of silently blaming the model.
    pub score_issue: Option<String>,
}

/// Live occupancy gauges of the submission-scoring stages, for a serving
/// layer's statistics endpoint. All counters are instantaneous gauges
/// except `completed`, which accumulates.
#[derive(Debug, Default)]
pub struct StageGauges {
    extracting: std::sync::atomic::AtomicUsize,
    scoring: std::sync::atomic::AtomicUsize,
    executing: std::sync::atomic::AtomicUsize,
    completed: std::sync::atomic::AtomicUsize,
}

impl StageGauges {
    /// Fresh gauges, all zero.
    pub fn new() -> StageGauges {
        StageGauges::default()
    }

    /// Submissions currently in §3.1 extraction.
    pub fn extracting(&self) -> usize {
        self.extracting.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Submissions currently in static scoring.
    pub fn scoring(&self) -> usize {
        self.scoring.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Submissions dispatched to the substrate stage and not yet judged
    /// (queued or executing).
    pub fn executing(&self) -> usize {
        self.executing.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Total submissions fully judged through these gauges.
    pub fn completed(&self) -> usize {
        self.completed.load(std::sync::atomic::Ordering::Relaxed)
    }
}

/// RAII increment/decrement of one gauge.
struct GaugeGuard<'a>(&'a std::sync::atomic::AtomicUsize);

impl<'a> GaugeGuard<'a> {
    fn enter(gauge: &'a std::sync::atomic::AtomicUsize) -> GaugeGuard<'a> {
        gauge.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        GaugeGuard(gauge)
    }
}

impl Drop for GaugeGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
    }
}

/// Builds the final verdict from the scored pieces — shared by the single
/// and streaming submission paths so both stay identical to [`evaluate`]'s
/// [`assemble_record`] semantics.
fn assemble_verdict(
    problem: &Problem,
    variant: Variant,
    reference: &cescore::PreparedRef,
    yaml: String,
    mut scores: Scores,
    execution: evalcluster::CachedVerdict,
    cached: bool,
) -> SubmissionVerdict {
    let passed = execution.passed;
    scores.unit_test = f64::from(u8::from(passed));
    let answer_class = llmsim::classify_answer(&yaml, reference.clean_text(), passed);
    SubmissionVerdict {
        problem_id: problem.id.clone(),
        variant,
        extracted: yaml,
        scores,
        passed,
        simulated_ms: execution.simulated_ms,
        answer_class,
        failure_bucket: execution
            .diagnosis
            .as_ref()
            .map(|d| d.bucket.label().to_owned()),
        cached,
        score_issue: reference.issue().map(cescore::ScoreIssue::wire),
    }
}

/// Scores one externally-submitted candidate: §3.1 extraction, **one**
/// parse into a [`PreparedDoc`] shared with every metric and the
/// substrate, the five static metrics from cached views, and the unit
/// test through the shared [`ScoreMemo`] — a repeat submission of an
/// already-judged candidate is answered from cache without touching a
/// substrate.
pub fn score_submission(
    problem: &Problem,
    variant: Variant,
    raw: &str,
    memo: &ScoreMemo,
    refs: &RefCache,
) -> SubmissionVerdict {
    score_submission_doc(
        problem,
        variant,
        &PreparedDoc::shared(extract_yaml(raw)),
        memo,
        refs,
    )
}

/// [`score_submission`] from an already-extracted, already-prepared
/// candidate — the entry point for callers (the `ceserve` HTTP layer)
/// that decoded the request body straight into a [`PreparedDoc`], so a
/// service request parses candidate YAML exactly once end-to-end.
pub fn score_submission_doc(
    problem: &Problem,
    variant: Variant,
    doc: &Arc<PreparedDoc>,
    memo: &ScoreMemo,
    refs: &RefCache,
) -> SubmissionVerdict {
    let reference = refs.prepare(&problem.labeled_reference);
    let scores = score_pair_prepared(&reference, doc);
    let key = (
        doc.content_hash(),
        substrate::content_hash(&problem.unit_test),
    );
    let (verdict, cached) = match memo.get(key) {
        Some(v) => (v, true),
        None => {
            let verdict = evalcluster::execute_uncached(doc, &problem.unit_test);
            memo.insert(key, verdict.clone());
            (verdict, false)
        }
    };
    assemble_verdict(
        problem,
        variant,
        &reference,
        doc.text().to_owned(),
        scores,
        verdict,
        cached,
    )
}

/// Streams a batch of submissions through the stage-graph: a CPU pool
/// runs extraction + static scoring, feeding the memo-aware substrate
/// stage ([`run_jobs_stream`]) over a bounded channel; `emit` fires once
/// per submission **in completion order** (the submission's index makes
/// reassembly trivial). Verdicts are identical to calling
/// [`score_submission`] per item — only the schedule differs.
///
/// `gauges` exposes live per-stage occupancy to a serving layer; pass a
/// fresh [`StageGauges`] when nothing is watching.
pub fn score_submissions_stream<F>(
    submissions: &[Submission<'_>],
    workers: usize,
    memo: &ScoreMemo,
    refs: &RefCache,
    gauges: &StageGauges,
    emit: F,
) -> evalcluster::StreamStats
where
    F: Fn(usize, SubmissionVerdict) + Send + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    type StaticSlot = (Arc<PreparedDoc>, Scores, bool, Arc<cescore::PreparedRef>);
    let n = submissions.len();
    let workers = workers.max(1);
    let hw = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(workers);
    // Per-slot static results, written by the scoring pool strictly
    // before the slot's job is dispatched, read by the verdict callback.
    let statics: Vec<Mutex<Option<StaticSlot>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let (job_tx, job_rx) = sync_channel::<(usize, UnitTestJob)>(DEFAULT_CHANNEL_BOUND);
    let next = AtomicUsize::new(0);
    let stats = Mutex::new(None);
    std::thread::scope(|scope| {
        let statics = &statics;
        let stats = &stats;
        let emit = &emit;
        // Substrate execution stage: memo-aware, in-flight-deduplicated.
        scope.spawn(move || {
            let run = evalcluster::run_jobs_stream(job_rx, workers, memo, |index, result| {
                gauges.executing.fetch_sub(1, Ordering::Relaxed);
                gauges.completed.fetch_add(1, Ordering::Relaxed);
                let (doc, scores, cached, reference) = statics[index]
                    .lock()
                    .expect("statics slot poisoned")
                    .take()
                    .expect("statics written before dispatch");
                let sub = &submissions[index];
                emit(
                    index,
                    assemble_verdict(
                        sub.problem,
                        sub.variant,
                        &reference,
                        doc.text().to_owned(),
                        scores,
                        evalcluster::CachedVerdict {
                            passed: result.passed,
                            simulated_ms: result.simulated_ms,
                            diagnosis: result.diagnosis,
                        },
                        cached,
                    ),
                );
            });
            *stats.lock().expect("stats slot poisoned") = Some(run);
        });
        // Extraction + static scoring pool (pure CPU, capped at the
        // hardware width like evaluate()'s scoring stage). The candidate
        // is parsed exactly once here — the job carries the same
        // `Arc<PreparedDoc>` into the substrate stage.
        for _ in 0..workers.min(hw).max(1) {
            let job_tx = job_tx.clone();
            let next = &next;
            scope.spawn(move || {
                // One kernel scratch per scoring worker: count tables,
                // translation buffers, and LCS bit vectors are reused
                // across every record this worker scores.
                let mut scratch = ScoreScratch::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let sub = &submissions[i];
                    let doc = {
                        let _g = GaugeGuard::enter(&gauges.extracting);
                        let yaml = match &sub.extracted {
                            Some(done) => done.clone(),
                            None => extract_yaml(&sub.raw),
                        };
                        PreparedDoc::shared(yaml)
                    };
                    let reference = refs.prepare(&sub.problem.labeled_reference);
                    let scores = {
                        let _g = GaugeGuard::enter(&gauges.scoring);
                        score_pair_prepared_with(&reference, &doc, &mut scratch)
                    };
                    let cached = memo
                        .peek((
                            doc.content_hash(),
                            substrate::content_hash(&sub.problem.unit_test),
                        ))
                        .is_some();
                    let job = UnitTestJob::prepared(
                        format!("{}@{:?}", sub.problem.id, sub.variant),
                        sub.problem.unit_test.clone(),
                        Arc::clone(&doc),
                    );
                    *statics[i].lock().expect("statics slot poisoned") =
                        Some((doc, scores, cached, reference));
                    gauges.executing.fetch_add(1, Ordering::Relaxed);
                    // A send error means the execution stage tore down
                    // early; nothing to do but stop feeding.
                    if job_tx.send((i, job)).is_err() {
                        break;
                    }
                }
            });
        }
        drop(job_tx);
    });
    stats
        .into_inner()
        .expect("stats slot poisoned")
        .expect("execution stage always reports")
}

/// Mean scores over records (a Table 4 row).
pub fn mean_scores(records: &[EvalRecord]) -> Scores {
    cescore::ScoreTable::aggregate(records.iter().map(|r| &r.scores)).mean
}

/// Count of unit-test passes.
pub fn pass_count(records: &[EvalRecord]) -> usize {
    records.iter().filter(|r| r.scores.unit_test > 0.5).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::ModelProfile;
    use std::sync::Arc;

    fn quick_eval(model_name: &str, stride: usize) -> Vec<EvalRecord> {
        let dataset = Arc::new(Dataset::generate());
        let model = SimulatedModel::new(
            ModelProfile::by_name(model_name).unwrap(),
            Arc::clone(&dataset),
        );
        evaluate(
            &model,
            &dataset,
            &EvalOptions {
                stride,
                workers: 8,
                ..EvalOptions::default()
            },
        )
    }

    #[test]
    fn repair_spans_reconstruct_the_attempt_tree() {
        let dataset = Arc::new(Dataset::generate());
        let model = SimulatedModel::new(
            ModelProfile::by_name("llama-7b").unwrap(),
            Arc::clone(&dataset),
        );
        obs::spans().set_enabled(true);
        let report = evaluate_repair(
            &model,
            &dataset,
            &EvalOptions {
                stride: 40,
                workers: 4,
                ..EvalOptions::default()
            },
            1,
            FeedbackMode::Full,
        );
        obs::spans().set_enabled(false);
        let spans = obs::spans().drain();
        assert!(!report.traces.is_empty());
        // Every attempt root carries round + problem tags and owns
        // generate/extract/score children parented to it.
        let attempts: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "repair_attempt")
            .collect();
        assert!(!attempts.is_empty());
        for root in &attempts {
            assert_eq!(root.parent, 0);
            assert!(root.tags.iter().any(|(k, _)| *k == "round"));
            assert!(root.tags.iter().any(|(k, _)| *k == "problem"));
            for child in ["generate", "extract", "score"] {
                assert!(
                    spans.iter().any(|s| s.name == child
                        && s.parent == root.id
                        && s.trace == root.trace
                        && s.start_us >= root.start_us),
                    "missing {child} child for trace {:?}",
                    root.trace
                );
            }
        }
        // Verdict legs share the attempt's trace id and carry the
        // taxonomy bucket.
        let verdicts: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "repair_verdict")
            .collect();
        assert!(!verdicts.is_empty());
        for v in &verdicts {
            assert!(v.tags.iter().any(|(k, _)| *k == "bucket"));
            assert!(attempts.iter().any(|a| a.trace == v.trace));
        }
    }

    #[test]
    fn default_workers_tracks_hardware_within_bounds() {
        let w = default_workers();
        assert!((2..=32).contains(&w), "{w}");
        assert_eq!(EvalOptions::default().workers, w);
    }

    #[test]
    fn pipeline_produces_scored_records() {
        let records = quick_eval("gpt-4", 10); // 34 problems
        assert_eq!(records.len(), 34);
        for r in &records {
            let s = &r.scores;
            for v in [
                s.bleu,
                s.edit_distance,
                s.exact_match,
                s.kv_exact,
                s.kv_wildcard,
                s.unit_test,
            ] {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "{v} out of range for {}",
                    r.problem_id
                );
            }
        }
        // GPT-4 passes a healthy share even on a subsample.
        let passes = pass_count(&records);
        assert!(passes >= 10, "gpt-4 passed only {passes}/34");
    }

    #[test]
    fn weak_model_rarely_passes() {
        let records = quick_eval("codellama-13b-instruct", 10);
        let passes = pass_count(&records);
        assert!(passes <= 4, "codellama passed {passes}/34");
    }

    #[test]
    fn passing_records_have_consistent_classification() {
        let records = quick_eval("gpt-3.5", 12);
        for r in &records {
            if r.scores.unit_test > 0.5 {
                assert_eq!(r.answer_class, AnswerCategory::Correct, "{}", r.problem_id);
            } else {
                assert_ne!(r.answer_class, AnswerCategory::Correct, "{}", r.problem_id);
            }
        }
    }

    #[test]
    fn metric_ordering_better_model_wins() {
        let strong = mean_scores(&quick_eval("gpt-4", 8));
        let weak = mean_scores(&quick_eval("llama-7b", 8));
        assert!(strong.unit_test > weak.unit_test);
        assert!(strong.bleu > weak.bleu);
        assert!(strong.kv_wildcard > weak.kv_wildcard);
    }

    #[test]
    fn streamed_matches_barriered_exactly() {
        let dataset = Arc::new(Dataset::generate());
        let model = SimulatedModel::new(
            ModelProfile::by_name("gpt-3.5").unwrap(),
            Arc::clone(&dataset),
        );
        let options = EvalOptions {
            stride: 15,
            workers: 4,
            variants: vec![Variant::Original, Variant::Translated],
            ..EvalOptions::default()
        };
        let streamed = evaluate(&model, &dataset, &options);
        let barriered = evaluate_barriered(&model, &dataset, &options);
        assert_eq!(streamed, barriered);
    }

    #[test]
    fn prepared_and_text_paths_produce_identical_records() {
        // The parse-once document model must be invisible in the output:
        // the same grid through `prepared: false` (every layer re-parses,
        // the seed cost model) and the default prepared path yields
        // byte-identical records, and both match the barriered driver.
        let dataset = Arc::new(Dataset::generate());
        let model = SimulatedModel::new(
            ModelProfile::by_name("llama-2-70b-chat").unwrap(),
            Arc::clone(&dataset),
        );
        let base = EvalOptions {
            stride: 13,
            workers: 4,
            variants: vec![Variant::Original, Variant::Simplified],
            ..EvalOptions::default()
        };
        let prepared = evaluate(&model, &dataset, &base);
        let text = evaluate(
            &model,
            &dataset,
            &EvalOptions {
                prepared: false,
                ..base.clone()
            },
        );
        assert_eq!(prepared, text);
        let barriered = evaluate_barriered(&model, &dataset, &base);
        assert_eq!(prepared, barriered);
    }

    #[test]
    fn shared_ref_cache_parses_each_reference_once_per_session() {
        let dataset = Arc::new(Dataset::generate());
        let model = SimulatedModel::new(
            ModelProfile::by_name("gpt-4").unwrap(),
            Arc::clone(&dataset),
        );
        let refs = Arc::new(RefCache::new());
        let options = EvalOptions {
            stride: 20,
            workers: 4,
            variants: vec![Variant::Original, Variant::Translated],
            refs: Some(Arc::clone(&refs)),
            ..EvalOptions::default()
        };
        let first = evaluate(&model, &dataset, &options);
        // Variants share one labeled reference per problem: the cache
        // holds one entry per problem, not per (problem, variant).
        let problems = dataset.problems().iter().step_by(20).count();
        assert_eq!(refs.len(), problems);
        let second = evaluate(&model, &dataset, &options);
        assert_eq!(first, second);
        assert_eq!(refs.len(), problems, "re-run grew the ref cache");
    }

    #[test]
    fn submission_scores_match_direct_evaluation() {
        // Scoring a raw model response through the service entry point
        // must reproduce evaluate()'s records bit for bit.
        let dataset = Arc::new(Dataset::generate());
        let model = SimulatedModel::new(
            ModelProfile::by_name("gpt-3.5").unwrap(),
            Arc::clone(&dataset),
        );
        let options = EvalOptions {
            stride: 18,
            workers: 4,
            variants: vec![Variant::Original, Variant::Translated],
            ..EvalOptions::default()
        };
        let records = evaluate(&model, &dataset, &options);
        // Regenerate the same raw responses the run scored (generation is
        // deterministic per prompt/params).
        let (coords, prompts) = plan(&dataset, &options);
        let batch = llmsim::query_batch(&model, &prompts, &options.params, &options.query_config());
        let memo = ScoreMemo::new();
        let refs = RefCache::new();
        for (i, record) in records.iter().enumerate() {
            let (problem, variant) = coords[i];
            let verdict = score_submission(problem, variant, &batch.responses[i], &memo, &refs);
            assert_eq!(verdict.extracted, record.extracted, "{}", record.problem_id);
            assert_eq!(verdict.scores, record.scores, "{}", record.problem_id);
            assert_eq!(verdict.answer_class, record.answer_class);
            assert_eq!(verdict.problem_id, record.problem_id);
        }
    }

    #[test]
    fn repeat_submission_is_served_from_cache() {
        let dataset = Dataset::generate();
        let problem = &dataset.problems()[0];
        let raw = format!("```yaml\n{}```", problem.clean_reference());
        let memo = ScoreMemo::new();
        let refs = RefCache::new();
        let first = score_submission(problem, Variant::Original, &raw, &memo, &refs);
        assert!(!first.cached);
        let second = score_submission(problem, Variant::Original, &raw, &memo, &refs);
        assert!(second.cached);
        assert_eq!(first.scores, second.scores);
        assert_eq!(first.simulated_ms, second.simulated_ms);
        assert_eq!(memo.len(), 1);
    }

    #[test]
    fn streamed_submissions_match_single_scoring() {
        let dataset = Dataset::generate();
        let problems = dataset.problems();
        // A mixed batch: references (pass), garbage (fail), duplicates
        // (dedup path).
        let mut submissions: Vec<Submission<'_>> = Vec::new();
        for (i, problem) in problems.iter().step_by(23).enumerate() {
            let raw = if i % 3 == 0 {
                "not yaml at all {{{".to_owned()
            } else {
                format!("```yaml\n{}```", problem.clean_reference())
            };
            submissions.push(Submission {
                problem,
                variant: Variant::Original,
                raw,
                extracted: None,
            });
        }
        let dup = submissions[1].clone();
        submissions.push(dup);

        let gauges = StageGauges::new();
        let memo = ScoreMemo::new();
        let refs = RefCache::new();
        let collected: Mutex<Vec<Option<SubmissionVerdict>>> =
            Mutex::new(vec![None; submissions.len()]);
        let stats = score_submissions_stream(&submissions, 4, &memo, &refs, &gauges, |i, v| {
            let slot = &mut collected.lock().unwrap()[i];
            assert!(slot.is_none(), "duplicate emit for {i}");
            *slot = Some(v);
        });
        assert_eq!(stats.executed + stats.cache_hits, submissions.len());
        assert!(stats.cache_hits >= 1, "duplicate should hit the dedup path");

        // Every stage drained; every submission judged exactly once.
        assert_eq!(
            (gauges.extracting(), gauges.scoring(), gauges.executing()),
            (0, 0, 0)
        );
        assert_eq!(gauges.completed(), submissions.len());

        let reference_memo = ScoreMemo::new();
        let reference_refs = RefCache::new();
        for (i, sub) in submissions.iter().enumerate() {
            let got = collected.lock().unwrap()[i].clone().expect("emitted");
            let want = score_submission(
                sub.problem,
                sub.variant,
                &sub.raw,
                &reference_memo,
                &reference_refs,
            );
            // `cached` depends on arrival timing for in-batch duplicates;
            // everything that matters must agree.
            assert_eq!(got.scores, want.scores, "{}", sub.problem.id);
            assert_eq!(got.extracted, want.extracted);
            assert_eq!(got.passed, want.passed);
            assert_eq!(got.simulated_ms, want.simulated_ms);
            assert_eq!(got.answer_class, want.answer_class);
        }
    }

    #[test]
    fn shared_memo_eliminates_reexecution_across_runs() {
        let dataset = Arc::new(Dataset::generate());
        let model = SimulatedModel::new(
            ModelProfile::by_name("gpt-4").unwrap(),
            Arc::clone(&dataset),
        );
        let memo = Arc::new(ScoreMemo::new());
        let options = EvalOptions {
            stride: 20,
            workers: 4,
            memo: Some(Arc::clone(&memo)),
            ..EvalOptions::default()
        };
        let first = evaluate(&model, &dataset, &options);
        let stored_after_first = memo.len();
        assert!(stored_after_first > 0, "memo never populated");
        let second = evaluate(&model, &dataset, &options);
        assert_eq!(first, second);
        // Deterministic generation → identical candidates → the second
        // run adds nothing new to the memo.
        assert_eq!(memo.len(), stored_after_first);
    }
}
