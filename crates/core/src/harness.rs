//! The end-to-end benchmark pipeline (Figure 3): dataset → prompt →
//! query → post-process → score → cloud evaluation.
//!
//! Function-level scoring drives the whole (model × problem × variant)
//! grid through the [`substrate::Substrate`] execution engine in
//! `evalcluster`: jobs are deduplicated by content hash (identical
//! extracted YAML for the same unit test scores once), sharded across
//! worker threads and balanced by work stealing.

use cedataset::{Category, Dataset, Problem, Variant};
use cescore::Scores;
use evalcluster::executor::{run_jobs, UnitTestJob};
use llmsim::{extract_yaml, AnswerCategory, GenParams, LanguageModel, QueryConfig, SimulatedModel};

/// Default unit-test worker count: one per available hardware thread,
/// clamped to `[2, 32]`.
///
/// The seed hard-coded 8 workers, which under-drove big machines and
/// oversubscribed small containers. Override per run via
/// [`EvalOptions::workers`] (or `repro --workers N` on the CLI).
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(8)
        .clamp(2, 32)
}

/// One scored (model, problem, variant) evaluation.
#[derive(Debug, Clone)]
pub struct EvalRecord {
    /// Model name.
    pub model: String,
    /// Problem id.
    pub problem_id: String,
    /// Dataset variant.
    pub variant: Variant,
    /// Problem category.
    pub category: Category,
    /// Whether the question carried a YAML context.
    pub has_context: bool,
    /// Reference solution length in lines.
    pub reference_lines: usize,
    /// Question length in (approximate) tokens.
    pub question_tokens: usize,
    /// Extracted YAML (after §3.1 post-processing).
    pub extracted: String,
    /// All six metrics, including the unit-test outcome.
    pub scores: Scores,
    /// Figure 7 failure class.
    pub answer_class: AnswerCategory,
}

/// Evaluation options.
#[derive(Debug, Clone)]
pub struct EvalOptions {
    /// Variants to include.
    pub variants: Vec<Variant>,
    /// Few-shot exemplar count (0–3).
    pub shots: usize,
    /// Generation parameters.
    pub params: GenParams,
    /// Unit-test worker threads. Defaults to [`default_workers`]
    /// (available parallelism, clamped); set explicitly to pin a run to a
    /// fixed width.
    pub workers: usize,
    /// Optional problem subsample: keep every `stride`-th problem
    /// (1 = full dataset). Used by fast tests.
    pub stride: usize,
}

impl Default for EvalOptions {
    fn default() -> Self {
        EvalOptions {
            variants: vec![Variant::Original],
            shots: 0,
            params: GenParams::default(),
            workers: default_workers(),
            stride: 1,
        }
    }
}

impl EvalOptions {
    /// All three variants (Table 4's full 1011-problem evaluation).
    pub fn full() -> EvalOptions {
        EvalOptions {
            variants: Variant::ALL.to_vec(),
            ..EvalOptions::default()
        }
    }
}

/// Runs the full pipeline for one model.
pub fn evaluate(
    model: &SimulatedModel,
    dataset: &Dataset,
    options: &EvalOptions,
) -> Vec<EvalRecord> {
    let problems: Vec<&Problem> = dataset
        .problems()
        .iter()
        .step_by(options.stride.max(1))
        .collect();
    // 1. YAML generation: prompts through the query module.
    let mut coords: Vec<(&Problem, Variant)> = Vec::new();
    for &variant in &options.variants {
        for p in &problems {
            coords.push((p, variant));
        }
    }
    let prompts: Vec<String> = coords
        .iter()
        .map(|(p, v)| cedataset::fewshot::build_prompt(&p.prompt_body(*v), options.shots))
        .collect();
    let batch = llmsim::query_batch(
        model,
        &prompts,
        &options.params,
        &QueryConfig {
            parallelism: options.workers.max(1),
            ..QueryConfig::default()
        },
    );
    // 2. Post-processing + static scoring.
    let extracted: Vec<String> = batch.responses.iter().map(|r| extract_yaml(r)).collect();
    // 3. Function-level scoring on the evaluation cluster.
    let jobs: Vec<UnitTestJob> = coords
        .iter()
        .zip(&extracted)
        .map(|((p, v), yaml)| UnitTestJob {
            problem_id: format!("{}@{v:?}", p.id),
            script: p.unit_test.clone(),
            candidate_yaml: yaml.clone(),
        })
        .collect();
    let report = run_jobs(&jobs, options.workers);
    // 4. Assemble records.
    coords
        .into_iter()
        .zip(extracted)
        .zip(report.results)
        .map(|(((problem, variant), yaml), job_result)| {
            let mut scores = cescore::score_pair(&problem.labeled_reference, &yaml);
            scores.unit_test = f64::from(u8::from(job_result.passed));
            let answer_class =
                llmsim::classify_answer(&yaml, &problem.clean_reference(), job_result.passed);
            EvalRecord {
                model: model.name().to_owned(),
                problem_id: problem.id.clone(),
                variant,
                category: problem.category,
                has_context: problem.has_context(),
                reference_lines: problem.reference_lines(),
                question_tokens: cedataset::stats::token_count(problem.description_for(variant)),
                extracted: yaml,
                scores,
                answer_class,
            }
        })
        .collect()
}

/// Mean scores over records (a Table 4 row).
pub fn mean_scores(records: &[EvalRecord]) -> Scores {
    cescore::ScoreTable::aggregate(records.iter().map(|r| &r.scores)).mean
}

/// Count of unit-test passes.
pub fn pass_count(records: &[EvalRecord]) -> usize {
    records.iter().filter(|r| r.scores.unit_test > 0.5).count()
}

#[cfg(test)]
mod tests {
    use super::*;
    use llmsim::ModelProfile;
    use std::sync::Arc;

    fn quick_eval(model_name: &str, stride: usize) -> Vec<EvalRecord> {
        let dataset = Arc::new(Dataset::generate());
        let model = SimulatedModel::new(
            ModelProfile::by_name(model_name).unwrap(),
            Arc::clone(&dataset),
        );
        evaluate(
            &model,
            &dataset,
            &EvalOptions {
                stride,
                workers: 8,
                ..EvalOptions::default()
            },
        )
    }

    #[test]
    fn default_workers_tracks_hardware_within_bounds() {
        let w = default_workers();
        assert!((2..=32).contains(&w), "{w}");
        assert_eq!(EvalOptions::default().workers, w);
    }

    #[test]
    fn pipeline_produces_scored_records() {
        let records = quick_eval("gpt-4", 10); // 34 problems
        assert_eq!(records.len(), 34);
        for r in &records {
            let s = &r.scores;
            for v in [
                s.bleu,
                s.edit_distance,
                s.exact_match,
                s.kv_exact,
                s.kv_wildcard,
                s.unit_test,
            ] {
                assert!(
                    (0.0..=1.0).contains(&v),
                    "{v} out of range for {}",
                    r.problem_id
                );
            }
        }
        // GPT-4 passes a healthy share even on a subsample.
        let passes = pass_count(&records);
        assert!(passes >= 10, "gpt-4 passed only {passes}/34");
    }

    #[test]
    fn weak_model_rarely_passes() {
        let records = quick_eval("codellama-13b-instruct", 10);
        let passes = pass_count(&records);
        assert!(passes <= 4, "codellama passed {passes}/34");
    }

    #[test]
    fn passing_records_have_consistent_classification() {
        let records = quick_eval("gpt-3.5", 12);
        for r in &records {
            if r.scores.unit_test > 0.5 {
                assert_eq!(r.answer_class, AnswerCategory::Correct, "{}", r.problem_id);
            } else {
                assert_ne!(r.answer_class, AnswerCategory::Correct, "{}", r.problem_id);
            }
        }
    }

    #[test]
    fn metric_ordering_better_model_wins() {
        let strong = mean_scores(&quick_eval("gpt-4", 8));
        let weak = mean_scores(&quick_eval("llama-7b", 8));
        assert!(strong.unit_test > weak.unit_test);
        assert!(strong.bleu > weak.bleu);
        assert!(strong.kv_wildcard > weak.kv_wildcard);
    }
}
