//! The fail–learn–refine repair loop, end to end: the streamed loop-back
//! driver against the round-barriered reference, and the feedback
//! ablation — taxonomy feedback is what closes the loop, bare retry is
//! not.

use std::sync::Arc;

use cedataset::Dataset;
use cloudeval_core::harness::{evaluate_repair, evaluate_repair_barriered, EvalOptions};
use llmsim::{FeedbackMode, ModelProfile, SimulatedModel};

fn model(name: &str, dataset: &Arc<Dataset>) -> SimulatedModel {
    SimulatedModel::new(ModelProfile::by_name(name).unwrap(), Arc::clone(dataset))
}

fn options(stride: usize, workers: usize, channel_bound: usize) -> EvalOptions {
    EvalOptions {
        stride,
        workers,
        channel_bound,
        ..EvalOptions::default()
    }
}

#[test]
fn streamed_and_barriered_repair_reports_are_identical() {
    let dataset = Arc::new(Dataset::generate());
    let gpt4 = model("gpt-4", &dataset);
    let reference = evaluate_repair_barriered(
        &gpt4,
        &dataset,
        &options(17, 4, 8),
        2,
        FeedbackMode::BucketOnly,
    );
    assert!(reference.total() > 0);
    // Any worker count or channel bound must reproduce the reference byte
    // for byte — the repair chain is seeded by attempt content, so the
    // schedule cannot leak into the traces.
    for (workers, bound) in [(1, 1), (4, 8), (16, 64)] {
        let streamed = evaluate_repair(
            &gpt4,
            &dataset,
            &options(17, workers, bound),
            2,
            FeedbackMode::BucketOnly,
        );
        assert_eq!(streamed, reference, "workers={workers} bound={bound}");
    }
}

#[test]
fn bucket_feedback_repairs_but_bare_retry_does_not() {
    let dataset = Arc::new(Dataset::generate());
    let gpt4 = model("gpt-4", &dataset);
    let opts = options(7, 8, 16);
    let rounds = 2;
    let bucketed = evaluate_repair(&gpt4, &dataset, &opts, rounds, FeedbackMode::BucketOnly);
    let blind = evaluate_repair(&gpt4, &dataset, &opts, rounds, FeedbackMode::None);
    let full = evaluate_repair(&gpt4, &dataset, &opts, rounds, FeedbackMode::Full);

    // Identical first attempts: the ablation only changes what the repair
    // prompts reveal.
    assert_eq!(bucketed.pass_at_round(0), blind.pass_at_round(0));
    assert_eq!(bucketed.pass_at_round(0), full.pass_at_round(0));
    eprintln!(
        "total={} round0={} bucketed@2={} blind@2={} full@2={}",
        bucketed.total(),
        bucketed.pass_at_round(0),
        bucketed.pass_at_round(rounds),
        blind.pass_at_round(rounds),
        full.pass_at_round(rounds),
    );
    eprintln!("round-0 buckets: {:?}", bucketed.bucket_counts(0));
    eprintln!("round-2 buckets: {:?}", bucketed.bucket_counts(rounds));

    // Named-bucket feedback converts failures into passes...
    assert!(bucketed.pass_at_round(rounds) > bucketed.pass_at_round(0));
    // ...and beats retry-without-learning, which barely moves.
    assert!(bucketed.pass_at_round(rounds) > blind.pass_at_round(rounds));
    // Full diagnostics repair at least as well as the bucket alone.
    assert!(full.pass_at_round(rounds) >= bucketed.pass_at_round(rounds));
    // pass@repair-round-r is cumulative and bounded.
    for r in 1..=rounds {
        assert!(bucketed.pass_at_round(r) >= bucketed.pass_at_round(r - 1));
    }
    assert!(bucketed.pass_at_round(rounds) <= bucketed.total());
}

#[test]
fn every_failure_bucket_sees_repairs_under_bucket_feedback() {
    let dataset = Arc::new(Dataset::generate());
    // A mid-tier model fails often enough to populate several buckets.
    let llama = model("llama-2-70b-chat", &dataset);
    let opts = options(3, 8, 16);
    let rounds = 3;
    let bucketed = evaluate_repair(&llama, &dataset, &opts, rounds, FeedbackMode::BucketOnly);
    let blind = evaluate_repair(&llama, &dataset, &opts, rounds, FeedbackMode::None);
    eprintln!(
        "llama total={} round0={} bucketed@{rounds}={} blind@{rounds}={}",
        bucketed.total(),
        bucketed.pass_at_round(0),
        bucketed.pass_at_round(rounds),
        blind.pass_at_round(rounds),
    );
    eprintln!("llama round-0 buckets: {:?}", bucketed.bucket_counts(0));

    // For every taxonomy bucket seen at round 0, at least one trace that
    // failed with that bucket is repaired within the round budget when
    // the feedback names the bucket.
    for (bucket, count) in bucketed.bucket_counts(0) {
        let repaired = bucketed
            .traces
            .iter()
            .filter(|t| {
                t.attempts
                    .first()
                    .is_some_and(|a| !a.passed && a.bucket.as_deref() == Some(bucket))
                    && t.passed_by(rounds)
            })
            .count();
        eprintln!("  {bucket}: {count} at round 0, {repaired} repaired");
        assert!(
            repaired > 0,
            "bucket {bucket} ({count} failures) saw no repairs in {rounds} rounds"
        );
    }
    // Bare retry repairs strictly less overall.
    assert!(bucketed.pass_at_round(rounds) > blind.pass_at_round(rounds));
}
