//! Ordering-determinism proof for the streaming stage-graph driver: for
//! arbitrary worker counts, strides, channel bounds, models and variant
//! subsets, `evaluate` must produce **record-for-record identical**
//! output to the barriered seed path `evaluate_barriered` — same
//! `EvalRecord`s, same order, same scores, same classifications.

use std::sync::{Arc, OnceLock};

use cedataset::{Dataset, Variant};
use cloudeval_core::harness::{evaluate, evaluate_barriered, EvalOptions};
use llmsim::{standard_models, SimulatedModel};
use proptest::prelude::*;

fn models() -> &'static (Arc<Dataset>, Vec<SimulatedModel>) {
    static CTX: OnceLock<(Arc<Dataset>, Vec<SimulatedModel>)> = OnceLock::new();
    CTX.get_or_init(|| {
        let dataset = Arc::new(Dataset::generate());
        let models = standard_models(Arc::clone(&dataset));
        (dataset, models)
    })
}

fn variant_subset(mask: usize) -> Vec<Variant> {
    let all = Variant::ALL;
    let picked: Vec<Variant> = all
        .iter()
        .enumerate()
        .filter(|(i, _)| mask & (1 << i) != 0)
        .map(|(_, v)| *v)
        .collect();
    if picked.is_empty() {
        vec![Variant::Original]
    } else {
        picked
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// The core determinism property: streamed output is bit-identical
    /// to the barriered reference across the scheduling parameter space
    /// — with the parse-once document model both on (the default; this
    /// also certifies prepared scoring against the barriered text path)
    /// and off (pure scheduling comparison).
    #[test]
    fn streamed_evaluate_is_record_identical_to_barriered(
        workers in 1usize..6,
        stride in 18usize..48,
        bound in 1usize..48,
        model_idx in 0usize..12,
        variant_mask in 1usize..8,
        prepared in any::<bool>(),
    ) {
        let (dataset, models) = models();
        let model = &models[model_idx % models.len()];
        let options = EvalOptions {
            workers,
            stride,
            channel_bound: bound,
            variants: variant_subset(variant_mask),
            prepared,
            ..EvalOptions::default()
        };
        let streamed = evaluate(model, dataset, &options);
        let barriered = evaluate_barriered(model, dataset, &options);
        prop_assert_eq!(streamed, barriered);
    }
}

/// The same property pinned to the adversarial corners proptest's random
/// draws can miss: single-worker pools, a channel bound of 1 (maximum
/// backpressure: every stage handoff is a rendezvous), and worker counts
/// far above the record count.
#[test]
fn determinism_holds_at_scheduling_extremes() {
    let (dataset, models) = models();
    let model = &models[0];
    let reference = evaluate_barriered(
        model,
        dataset,
        &EvalOptions {
            workers: 4,
            stride: 30,
            ..EvalOptions::default()
        },
    );
    for (workers, bound) in [(1, 1), (1, 256), (16, 1), (32, 2)] {
        let streamed = evaluate(
            model,
            dataset,
            &EvalOptions {
                workers,
                stride: 30,
                channel_bound: bound,
                ..EvalOptions::default()
            },
        );
        assert_eq!(
            streamed, reference,
            "divergence at workers={workers}, bound={bound}"
        );
    }
}
