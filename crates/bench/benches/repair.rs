//! The `repair_engine` bench group: the fail–learn–refine loop's
//! streamed loop-back driver vs the round-barriered reference, and the
//! feedback-mode ablation's cost profile.
//!
//! Both drivers run with run-local memos so the numbers measure the loop
//! schedule — per-round phase barriers vs failures re-entering generation
//! while other records stream — not cache warmth. CI runs this group with
//! `CRITERION_JSON=BENCH_repair.json` to record the trajectory.

use std::sync::Arc;

use cedataset::Dataset;
use cloudeval_core::harness::{evaluate_repair, evaluate_repair_barriered, EvalOptions};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use llmsim::{FeedbackMode, ModelProfile, SimulatedModel};

fn repair_options() -> EvalOptions {
    EvalOptions {
        stride: 6, // 57 problems per iteration, original variant
        workers: 8,
        ..EvalOptions::default()
    }
}

/// Streamed vs barriered wall-clock of the repair loop on one pass-heavy
/// and one fail-heavy model (the fail-heavy load is where the loop-back
/// edge carries most of the traffic).
fn bench_repair_engine(c: &mut Criterion) {
    let dataset = Arc::new(Dataset::generate());
    let options = repair_options();
    let mut group = c.benchmark_group("repair_engine");
    group.sample_size(10);
    for name in ["gpt-4", "llama-2-70b-chat"] {
        let model = SimulatedModel::new(ModelProfile::by_name(name).unwrap(), Arc::clone(&dataset));
        group.bench_with_input(
            BenchmarkId::new("barriered", name),
            &options,
            |b, options| {
                b.iter(|| {
                    black_box(evaluate_repair_barriered(
                        &model,
                        &dataset,
                        options,
                        2,
                        FeedbackMode::BucketOnly,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streamed", name),
            &options,
            |b, options| {
                b.iter(|| {
                    black_box(evaluate_repair(
                        &model,
                        &dataset,
                        options,
                        2,
                        FeedbackMode::BucketOnly,
                    ))
                })
            },
        );
    }
    group.finish();
}

/// The feedback ablation's cost: bucket-only feedback repairs early and
/// drains the loop; no feedback keeps failures circulating for the full
/// round budget, so the same loop does more generation and substrate
/// work.
fn bench_feedback_modes(c: &mut Criterion) {
    let dataset = Arc::new(Dataset::generate());
    let model = SimulatedModel::new(
        ModelProfile::by_name("llama-2-70b-chat").unwrap(),
        Arc::clone(&dataset),
    );
    let options = repair_options();
    let mut group = c.benchmark_group("repair_feedback");
    group.sample_size(10);
    for mode in FeedbackMode::ALL {
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.label()),
            &options,
            |b, options| b.iter(|| black_box(evaluate_repair(&model, &dataset, options, 2, mode))),
        );
    }
    group.finish();
}

criterion_group!(repair_benches, bench_repair_engine, bench_feedback_modes);
criterion_main!(repair_benches);
