//! The parse engine benchmark: legacy boxed-tree parser vs the arena +
//! interner path, over the full generated corpus (labeled references
//! plus clean references — the exact texts every scoring session
//! parses). Acceptance floor for the refactor: arena ≥ 1.5x legacy in
//! the same run.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

/// Every YAML text the pipeline parses per session: the labeled
/// reference and the clean reference of each generated problem.
fn corpus() -> Vec<String> {
    let ds = cedataset::Dataset::generate();
    ds.problems()
        .iter()
        .flat_map(|p| [p.labeled_reference.clone(), p.clean_reference()])
        .collect()
}

fn bench_parse_engine(c: &mut Criterion) {
    let texts = corpus();
    let bytes: usize = texts.iter().map(String::len).sum();
    eprintln!(
        "parse_engine corpus: {} documents, {} bytes",
        texts.len(),
        bytes
    );
    let mut group = c.benchmark_group("parse_engine");
    group.sample_size(20);
    // Baseline leg: the pre-arena parser, retained verbatim.
    group.bench_function("legacy_full_corpus", |b| {
        b.iter(|| {
            let mut leaves = 0usize;
            for text in &texts {
                if let Ok(nodes) = yamlkit::parse_legacy(black_box(text)) {
                    leaves += nodes.len();
                }
            }
            leaves
        })
    });
    // The arena path as PreparedDoc consumes it: spans + interner + flat
    // node table, no boxed trees materialized.
    group.bench_function("arena_full_corpus", |b| {
        b.iter(|| {
            let mut leaves = 0usize;
            for text in &texts {
                let doc = yamlkit::ArenaDoc::parse(black_box(text.as_str()));
                if doc.error().is_none() {
                    leaves += doc.leaf_count();
                }
            }
            leaves
        })
    });
    // The compatibility wrapper (arena parse + Node materialization):
    // what callers of the public `parse()` front door pay.
    group.bench_function("arena_materialized_full_corpus", |b| {
        b.iter(|| {
            let mut leaves = 0usize;
            for text in &texts {
                if let Ok(nodes) = yamlkit::parse(black_box(text)) {
                    leaves += nodes.len();
                }
            }
            leaves
        })
    });
    // End-to-end document preparation: arena parse + leaf count + content
    // hash, i.e. one PreparedDoc per corpus text.
    group.bench_function("prepared_doc_full_corpus", |b| {
        b.iter(|| {
            let mut leaves = 0usize;
            for text in &texts {
                let doc = yamlkit::PreparedDoc::new(black_box(text.as_str()));
                leaves += doc.leaf_count();
            }
            leaves
        })
    });
    group.finish();
}

criterion_group!(benches, bench_parse_engine);
criterion_main!(benches);
