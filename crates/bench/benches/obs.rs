//! The `obs_engine` bench group: the price of the observability layer.
//!
//! Two complementary measurements:
//!
//! * `streamed-grid` — one model's streamed evaluation grid with the
//!   global metrics registry live (the shipping default) vs disabled
//!   through the kill switch. The two must be within noise of each
//!   other: recording is a handful of relaxed atomic RMWs per sample,
//!   and the span collector is off unless something turns it on.
//! * `record` — the raw per-sample cost of one histogram record with
//!   the registry enabled and disabled, isolating the instrumentation
//!   primitive from pipeline noise.
//!
//! CI runs this group non-gating with `CRITERION_JSON=BENCH_obs.json`
//! to record the overhead trajectory.

use std::sync::Arc;

use cedataset::{Dataset, Variant};
use cloudeval_core::harness::{evaluate, EvalOptions};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use llmsim::{ModelProfile, SimulatedModel};

fn bench_obs_engine(c: &mut Criterion) {
    let dataset = Arc::new(Dataset::generate());
    let model = SimulatedModel::new(
        ModelProfile::by_name("gpt-4").unwrap(),
        Arc::clone(&dataset),
    );
    let options = EvalOptions {
        variants: Variant::ALL.to_vec(),
        stride: 6,
        workers: 8,
        ..EvalOptions::default()
    };
    let mut group = c.benchmark_group("obs_engine");
    group.sample_size(10);
    for (label, enabled) in [("instrumented", true), ("uninstrumented", false)] {
        group.bench_with_input(
            BenchmarkId::new("streamed-grid", label),
            &enabled,
            |b, &enabled| {
                obs::global().set_enabled(enabled);
                b.iter(|| black_box(evaluate(&model, &dataset, &options)));
                obs::global().set_enabled(true);
            },
        );
    }
    let hist = obs::global().histogram("obs_bench_record_us", &[], "obs_engine micro-bench series");
    for (label, enabled) in [("enabled", true), ("disabled", false)] {
        group.bench_with_input(
            BenchmarkId::new("record", label),
            &enabled,
            |b, &enabled| {
                obs::global().set_enabled(enabled);
                let mut us = 0u64;
                b.iter(|| {
                    us = us.wrapping_add(17) % 1_000_000;
                    hist.record_us(black_box(us));
                });
                obs::global().set_enabled(true);
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_obs_engine);
criterion_main!(benches);
