//! Micro-benchmarks of the substrate crates: YAML engine, JSONPath,
//! Kubernetes simulator, shell interpreter, Envoy router.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

const DEPLOY: &str = "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx-deployment
  labels:
    app: nginx
spec:
  replicas: 3
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      containers:
      - name: nginx-container
        image: nginx:latest
        ports:
        - containerPort: 80
        env:
        - name: MODE
          value: production
        resources:
          limits:
            cpu: 500m
            memory: 256Mi
";

fn bench_yaml(c: &mut Criterion) {
    c.bench_function("yaml_parse_deployment", |b| {
        b.iter(|| yamlkit::parse(black_box(DEPLOY)).unwrap())
    });
    let value = yamlkit::parse_one(DEPLOY).unwrap().to_value();
    c.bench_function("yaml_emit_deployment", |b| {
        b.iter(|| yamlkit::emit(black_box(&value)))
    });
    c.bench_function("yaml_round_trip", |b| {
        b.iter(|| yamlkit::canonicalize(black_box(DEPLOY)).unwrap())
    });
}

fn bench_jsonpath(c: &mut Criterion) {
    let doc = yamlkit::parse_one(DEPLOY).unwrap().to_value();
    let path =
        yamlkit::path::JsonPath::compile(".spec.template.spec.containers[0].env[*].name").unwrap();
    c.bench_function("jsonpath_select", |b| {
        b.iter(|| path.render(black_box(&doc)))
    });
    c.bench_function("jsonpath_compile", |b| {
        b.iter(|| {
            yamlkit::path::JsonPath::compile(black_box(
                "{.items[?(@.metadata.name==\"x\")].spec.containers[*].image}",
            ))
            .unwrap()
        })
    });
}

fn bench_kubesim(c: &mut Criterion) {
    c.bench_function("cluster_apply_and_reconcile", |b| {
        b.iter(|| {
            let mut cluster = kubesim::Cluster::new();
            cluster
                .apply_manifest(black_box(DEPLOY), "default")
                .unwrap();
            cluster.advance(10_000);
            cluster
        })
    });
    c.bench_function("kubectl_get_jsonpath", |b| {
        let mut cluster = kubesim::Cluster::new();
        cluster.apply_manifest(DEPLOY, "default").unwrap();
        cluster.advance(10_000);
        let args: Vec<String> = "get pods -l app=nginx -o jsonpath={.items[*].metadata.name}"
            .split_whitespace()
            .map(str::to_owned)
            .collect();
        b.iter(|| kubesim::kubectl::run(&mut cluster, black_box(&args), "", &|_| None))
    });
}

fn bench_minishell(c: &mut Criterion) {
    let script = r#"
total=0
for i in 1 2 3 4 5 6 7 8 9 10; do
  ((total += i))
done
if [ "$total" -eq 55 ]; then echo ok; fi
echo "a b c" | tr ' ' '\n' | grep -c .
"#;
    c.bench_function("shell_parse", |b| {
        b.iter(|| minishell::lang::parse(black_box(script)).unwrap())
    });
    c.bench_function("shell_run_loop_script", |b| {
        b.iter(|| {
            let mut sandbox = minishell::EmptySandbox;
            let mut sh = minishell::Interp::new(&mut sandbox);
            sh.run_script(black_box(script)).unwrap()
        })
    });
}

fn bench_envoy(c: &mut Criterion) {
    c.bench_function("envoy_parse_validate", |b| {
        b.iter(|| envoysim::EnvoyConfig::parse(black_box(envoysim::SAMPLE_CONFIG)).unwrap())
    });
    let cfg = envoysim::EnvoyConfig::parse(envoysim::SAMPLE_CONFIG).unwrap();
    c.bench_function("envoy_route", |b| {
        b.iter(|| {
            cfg.route(
                black_box(10000),
                black_box("example.com"),
                black_box("/api/v1"),
            )
        })
    });
}

fn bench_regex(c: &mut Criterion) {
    let re = minishell::regex::Regex::new("unit_test_pass(ed)?").unwrap();
    let haystack = "long transcript line with cn1000_unit_test_passed marker at the end";
    c.bench_function("shell_regex_match", |b| {
        b.iter(|| re.is_match(black_box(haystack)))
    });
}

criterion_group!(
    benches,
    bench_yaml,
    bench_jsonpath,
    bench_kubesim,
    bench_minishell,
    bench_envoy,
    bench_regex
);
criterion_main!(benches);
