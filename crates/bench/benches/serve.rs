//! The `serve_engine` bench group: requests/s through the full HTTP
//! serving stack — a real `ceserve` instance on a loopback socket driven
//! by the built-in load generator.
//!
//! Three axes:
//!
//! * `cold` — the memo is cleared before every iteration, so every
//!   distinct candidate pays extraction + static scoring + a substrate
//!   execution;
//! * `warm` — the memo stays hot across iterations, so repeat
//!   submissions are served from the verdict store without touching a
//!   substrate (the acceptance bar is warm ≥ 2x cold);
//! * `warm-workers/N` — memo-warm throughput across worker-pool widths;
//! * `keepalive-conns/N` — memo-warm throughput with N concurrent
//!   keep-alive connections (64/256/1024) held open against a fixed
//!   4-worker pool: the C10K axis. The event-driven core serves 1024
//!   connections from `workers + 1` threads; the old thread-per-
//!   connection pool could not hold more connections than threads.
//!
//! CI runs this group with `CRITERION_JSON=BENCH_serve.json` to record
//! the trajectory.

use std::sync::Arc;

use cedataset::Dataset;
use ceserve::loadgen::{self, LoadGenConfig};
use ceserve::ServerConfig;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

const REQUESTS_PER_ITER: usize = 64;
const CORPUS_SIZE: usize = 24;

fn load_config() -> LoadGenConfig {
    LoadGenConfig {
        clients: 4,
        requests: REQUESTS_PER_ITER,
        ..LoadGenConfig::default()
    }
}

fn bench_serve_engine(c: &mut Criterion) {
    let dataset = Arc::new(Dataset::generate());
    let corpus = loadgen::build_corpus(&dataset, CORPUS_SIZE);
    let mut group = c.benchmark_group("serve_engine");
    group.sample_size(10);

    // One server per scenario; the loadgen reconnects per iteration.
    let server = ceserve::spawn(
        "127.0.0.1:0",
        Arc::clone(&dataset),
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .expect("bind bench server");
    let addr = server.addr();
    let config = load_config();

    group.bench_function("cold", |b| {
        b.iter(|| {
            // Clearing both caches makes every iteration a fresh service:
            // each distinct candidate re-scores and re-executes.
            server.service().clear_caches();
            let report = loadgen::run(addr, &corpus, &config).expect("cold run");
            assert_eq!(report.outcomes.len(), REQUESTS_PER_ITER);
        })
    });

    // Pre-warm: one uniform sweep covers the whole corpus.
    let warmup = LoadGenConfig {
        clients: 4,
        requests: CORPUS_SIZE * 2,
        zipf_exponent: 0.0,
        ..LoadGenConfig::default()
    };
    loadgen::run(addr, &corpus, &warmup).expect("warmup");
    group.bench_function("warm", |b| {
        b.iter(|| {
            let report = loadgen::run(addr, &corpus, &config).expect("warm run");
            assert_eq!(report.outcomes.len(), REQUESTS_PER_ITER);
        })
    });
    server.shutdown().expect("bench server shutdown");

    // Memo-warm throughput across worker-pool widths.
    for workers in [1usize, 2, 8] {
        let server = ceserve::spawn(
            "127.0.0.1:0",
            Arc::clone(&dataset),
            ServerConfig {
                workers,
                ..ServerConfig::default()
            },
        )
        .expect("bind bench server");
        let addr = server.addr();
        loadgen::run(addr, &corpus, &warmup).expect("warmup");
        group.bench_with_input(
            BenchmarkId::new("warm-workers", workers),
            &workers,
            |b, _| {
                b.iter(|| {
                    let report = loadgen::run(addr, &corpus, &config).expect("scaling run");
                    assert_eq!(report.outcomes.len(), REQUESTS_PER_ITER);
                })
            },
        );
        server.shutdown().expect("bench server shutdown");
    }

    // The C10K sweep: N keep-alive connections, all held open for the
    // whole iteration, from 16 client threads round-robining across
    // them. One request per connection per iteration keeps wall-clock
    // proportional to N while every connection stays live.
    for conns in [64usize, 256, 1024] {
        let server = ceserve::spawn(
            "127.0.0.1:0",
            Arc::clone(&dataset),
            ServerConfig {
                workers: 4,
                max_connections: 2048,
                ..ServerConfig::default()
            },
        )
        .expect("bind bench server");
        let addr = server.addr();
        loadgen::run(addr, &corpus, &warmup).expect("warmup");
        let sweep = LoadGenConfig {
            clients: 16,
            requests: conns,
            connections_per_client: conns / 16,
            ..LoadGenConfig::default()
        };
        group.bench_with_input(
            BenchmarkId::new("keepalive-conns", conns),
            &conns,
            |b, _| {
                b.iter(|| {
                    let report = loadgen::run(addr, &corpus, &sweep).expect("sweep run");
                    assert_eq!(
                        report.outcomes.len(),
                        conns,
                        "dropped requests at {conns} conns"
                    );
                    assert_eq!(report.transport_errors, 0);
                })
            },
        );
        server.shutdown().expect("bench server shutdown");
    }
    group.finish();
}

criterion_group!(serve, bench_serve_engine);
criterion_main!(serve);
