//! The `pipeline_engine` bench group: the barriered seed evaluation
//! driver vs the streaming stage-graph driver on the
//! (model × problem × variant) grid.
//!
//! Both drivers run with run-local memos (no shared cache) so the
//! numbers measure scheduling — phase barriers + serial main-thread
//! scoring vs overlapped generation / extraction / scoring / substrate
//! execution. CI runs this group with `CRITERION_JSON=BENCH_pipeline.json`
//! to record the trajectory.

use std::sync::Arc;

use cedataset::{Dataset, Variant};
use cloudeval_core::harness::{evaluate, evaluate_barriered, EvalOptions};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use llmsim::{ModelProfile, SimulatedModel};

fn grid_models(dataset: &Arc<Dataset>) -> Vec<SimulatedModel> {
    // One model per tier keeps an iteration affordable while exercising
    // the full quality range (pass-heavy and fail-heavy substrate loads).
    ["gpt-4", "gpt-3.5", "llama-2-70b-chat"]
        .into_iter()
        .map(|name| SimulatedModel::new(ModelProfile::by_name(name).unwrap(), Arc::clone(dataset)))
        .collect()
}

/// Streamed vs barriered wall-clock over a sampled grid, in both
/// generation regimes:
///
/// * `grid` — instant generation (pure simulation speed). CPU-bound: the
///   stage-graph wins by parallelizing the phases the seed ran serially,
///   so the margin tracks the machine's core count.
/// * `remote-grid` — the paper's regime: each request really occupies
///   its query worker for a service latency. The stage-graph fills that
///   idle wire time with scoring and substrate execution, so it wins on
///   any machine — including single-core CI runners.
fn bench_pipeline_engine(c: &mut Criterion) {
    let dataset = Arc::new(Dataset::generate());
    let models = grid_models(&dataset);
    let instant = EvalOptions {
        variants: Variant::ALL.to_vec(),
        stride: 6, // 57 problems x 3 variants x 3 models per iteration
        workers: 8,
        ..EvalOptions::default()
    };
    let remote = EvalOptions {
        live_latency_ms: Some(15),
        ..instant.clone()
    };
    let mut group = c.benchmark_group("pipeline_engine");
    group.sample_size(10);
    for (label, options) in [("grid", &instant), ("remote-grid", &remote)] {
        group.bench_with_input(
            BenchmarkId::new("barriered", label),
            options,
            |b, options| {
                b.iter(|| {
                    for model in &models {
                        black_box(evaluate_barriered(model, &dataset, options));
                    }
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("streamed", label),
            options,
            |b, options| {
                b.iter(|| {
                    for model in &models {
                        black_box(evaluate(model, &dataset, options));
                    }
                })
            },
        );
    }
    group.finish();
}

/// Worker-scaling of the streamed driver alone: the stage-graph should
/// keep winning as the pool grows instead of serializing on a phase.
fn bench_streamed_scaling(c: &mut Criterion) {
    let dataset = Arc::new(Dataset::generate());
    let model = SimulatedModel::new(
        ModelProfile::by_name("gpt-3.5").unwrap(),
        Arc::clone(&dataset),
    );
    let mut group = c.benchmark_group("pipeline_workers");
    group.sample_size(10);
    for workers in [2usize, 8] {
        let options = EvalOptions {
            variants: vec![Variant::Original],
            stride: 4,
            workers,
            ..EvalOptions::default()
        };
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &options,
            |b, options| b.iter(|| black_box(evaluate(&model, &dataset, options))),
        );
    }
    group.finish();
}

criterion_group!(
    pipeline_benches,
    bench_pipeline_engine,
    bench_streamed_scaling
);
criterion_main!(pipeline_benches);
