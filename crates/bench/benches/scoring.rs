//! Benchmarks for the §3.2 score calculation — the paper reports that
//! text-level + YAML-aware scores over the whole dataset take 21.9 s
//! (against the 10+ hours of real-cluster unit tests). `full_dataset_*`
//! measures our equivalent.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn dataset_pairs() -> Vec<(String, String)> {
    let ds = cedataset::Dataset::generate();
    ds.problems()
        .iter()
        .map(|p| {
            // Score a realistic near-miss answer, not the identity pair.
            let candidate = p.clean_reference().replace("latest", "1.25");
            (p.labeled_reference.clone(), candidate)
        })
        .collect()
}

fn bench_individual_metrics(c: &mut Criterion) {
    let pairs = dataset_pairs();
    let (reference, candidate) = pairs[0].clone();
    c.bench_function("bleu_single", |b| {
        b.iter(|| {
            cescore::bleu(
                black_box(&reference),
                black_box(&candidate),
                cescore::Smoothing::Epsilon,
            )
        })
    });
    c.bench_function("edit_distance_single", |b| {
        b.iter(|| cescore::edit_distance_score(black_box(&reference), black_box(&candidate)))
    });
    c.bench_function("kv_exact_single", |b| {
        b.iter(|| cescore::kv_exact_match(black_box(&reference), black_box(&candidate)))
    });
    c.bench_function("kv_wildcard_single", |b| {
        b.iter(|| cescore::kv_wildcard_match(black_box(&reference), black_box(&candidate)))
    });
}

fn bench_full_dataset_static_scores(c: &mut Criterion) {
    let pairs = dataset_pairs();
    // All five static metrics over all 337 problems (the paper's "21.9
    // seconds to compute over the entire dataset" workload, modulo 3x for
    // the variants, which share references).
    let mut group = c.benchmark_group("full_dataset");
    group.sample_size(10);
    group.bench_function("static_scores_337", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (reference, candidate) in &pairs {
                let s = cescore::score_pair(black_box(reference), black_box(candidate));
                acc += s.bleu + s.kv_wildcard;
            }
            acc
        })
    });
    group.finish();
}

/// The parse-once document model against the cold-parse text path, on a
/// pass@k-shaped workload: each labeled reference scores k candidate
/// variants (what Figure 8's sweeps and every served problem do).
/// Cold-parse re-parses the reference three times and the candidate
/// twice per pair; the prepared path parses each reference once per
/// session and each candidate once. Acceptance floor for the refactor:
/// prepared ≥ 1.5x cold.
fn bench_score_engine(c: &mut Criterion) {
    const K: usize = 8;
    let ds = cedataset::Dataset::generate();
    // A representative slice of the corpus: every 6th problem, each with
    // k near-miss candidate variants (distinct texts, so candidate-side
    // preparation is not amortized — only the reference side is).
    let workload: Vec<(String, Vec<String>)> = ds
        .problems()
        .iter()
        .step_by(6)
        .map(|p| {
            let base = p.clean_reference();
            let candidates = (0..K)
                .map(|k| match k % 4 {
                    0 => base.clone(),
                    1 => base.replace("latest", "1.25"),
                    2 => format!("{base}extra-{k}: {k}\n"),
                    _ => base.replace("name:", "name: variant-"),
                })
                .collect();
            (p.labeled_reference.clone(), candidates)
        })
        .collect();
    let mut group = c.benchmark_group("score_engine");
    group.sample_size(10);
    group.bench_function("cold_parse_passk", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (reference, candidates) in &workload {
                for candidate in candidates {
                    let s = cescore::score_pair_text(black_box(reference), black_box(candidate));
                    acc += s.bleu + s.kv_wildcard;
                }
            }
            acc
        })
    });
    group.bench_function("prepared_passk", |b| {
        b.iter(|| {
            // One RefCache per iteration: the reference parse amortizes
            // across its k candidates, exactly like one session does.
            // Candidates dedupe by content hash the way pass_at_k_cached
            // shares documents between identical samples.
            let refs = cescore::RefCache::new();
            let mut docs: std::collections::HashMap<u64, cescore::PreparedDoc> =
                std::collections::HashMap::new();
            let mut acc = 0.0;
            for (reference, candidates) in &workload {
                let prepared = refs.prepare(black_box(reference));
                for candidate in candidates {
                    let doc = docs
                        .entry(yamlkit::doc::content_hash(black_box(candidate)))
                        .or_insert_with(|| cescore::PreparedDoc::new(candidate.as_str()));
                    let s = cescore::score_pair_prepared(&prepared, doc);
                    acc += s.bleu + s.kv_wildcard;
                }
            }
            acc
        })
    });
    // Kernel-level series over the same pass@k pairs, everything
    // prepared up front so each series times exactly one metric: the
    // symbol-interned kernels against the legacy string-slice kernels
    // they replaced (`repro score` prints the same A/B with a PASS/MISS
    // floor and an identical-scores check).
    let prepared: Vec<(cescore::PreparedRef, Vec<cescore::PreparedDoc>)> = workload
        .iter()
        .map(|(reference, candidates)| {
            (
                cescore::PreparedRef::new(reference),
                candidates
                    .iter()
                    .map(|c| cescore::PreparedDoc::new(c.as_str()))
                    .collect(),
            )
        })
        .collect();
    let kernel_refs: Vec<(cescore::RefNgrams, cescore::RefLineIndex)> = prepared
        .iter()
        .map(|(r, _)| {
            (
                cescore::RefNgrams::build(r.clean_doc().sym_stream()),
                cescore::RefLineIndex::build(&r.clean_doc().lines()),
            )
        })
        .collect();
    // Warm every lazy per-document cache (sym streams, line hashes,
    // token/line span tables) so the series time kernels, not caching.
    for (r, docs) in &prepared {
        r.clean_doc().sym_stream();
        r.clean_doc().line_hashes();
        for d in docs {
            d.sym_stream();
            d.line_hashes();
        }
    }
    group.bench_function("bleu_kernel", |b| {
        let mut scratch = cescore::ScoreScratch::new();
        b.iter(|| {
            let mut acc = 0.0;
            for ((r, docs), (ngrams, _)) in prepared.iter().zip(&kernel_refs) {
                for d in docs {
                    acc += cescore::bleu_kernel(
                        r.clean_doc().sym_stream(),
                        black_box(ngrams),
                        d.sym_stream(),
                        &mut scratch,
                        cescore::Smoothing::Epsilon,
                    );
                }
            }
            acc
        })
    });
    group.bench_function("bleu_legacy", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (r, docs) in &prepared {
                let ref_tokens = r.clean_doc().tokens();
                for d in docs {
                    acc += cescore::bleu_tokens_ref(
                        black_box(&ref_tokens),
                        &d.tokens(),
                        cescore::Smoothing::Epsilon,
                    );
                }
            }
            acc
        })
    });
    group.bench_function("editdist_kernel", |b| {
        let mut scratch = cescore::ScoreScratch::new();
        b.iter(|| {
            let mut acc = 0.0;
            for ((_, docs), (_, index)) in prepared.iter().zip(&kernel_refs) {
                for d in docs {
                    acc += cescore::edit_distance_score_kernel(
                        black_box(index),
                        &d.lines(),
                        d.line_hashes(),
                        &mut scratch,
                    );
                }
            }
            acc
        })
    });
    group.bench_function("editdist_legacy", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (r, docs) in &prepared {
                let ref_lines = r.clean_doc().lines();
                for d in docs {
                    acc += cescore::edit_distance_score_lines(black_box(&ref_lines), &d.lines());
                }
            }
            acc
        })
    });
    group.finish();
}

fn bench_unit_test_single(c: &mut Criterion) {
    let ds = cedataset::Dataset::generate();
    let p = ds.get("pod-000").expect("pod-000 exists");
    let answer = p.clean_reference();
    let mut group = c.benchmark_group("unit_test");
    group.sample_size(20);
    group.bench_function("single_problem", |b| {
        b.iter(|| minishell::run_unit_test(black_box(&p.unit_test), black_box(&answer)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_individual_metrics,
    bench_full_dataset_static_scores,
    bench_score_engine,
    bench_unit_test_single
);
criterion_main!(benches);
