//! Benchmarks for the §3.2 score calculation — the paper reports that
//! text-level + YAML-aware scores over the whole dataset take 21.9 s
//! (against the 10+ hours of real-cluster unit tests). `full_dataset_*`
//! measures our equivalent.

use criterion::{black_box, criterion_group, criterion_main, Criterion};

fn dataset_pairs() -> Vec<(String, String)> {
    let ds = cedataset::Dataset::generate();
    ds.problems()
        .iter()
        .map(|p| {
            // Score a realistic near-miss answer, not the identity pair.
            let candidate = p.clean_reference().replace("latest", "1.25");
            (p.labeled_reference.clone(), candidate)
        })
        .collect()
}

fn bench_individual_metrics(c: &mut Criterion) {
    let pairs = dataset_pairs();
    let (reference, candidate) = pairs[0].clone();
    c.bench_function("bleu_single", |b| {
        b.iter(|| {
            cescore::bleu(
                black_box(&reference),
                black_box(&candidate),
                cescore::Smoothing::Epsilon,
            )
        })
    });
    c.bench_function("edit_distance_single", |b| {
        b.iter(|| cescore::edit_distance_score(black_box(&reference), black_box(&candidate)))
    });
    c.bench_function("kv_exact_single", |b| {
        b.iter(|| cescore::kv_exact_match(black_box(&reference), black_box(&candidate)))
    });
    c.bench_function("kv_wildcard_single", |b| {
        b.iter(|| cescore::kv_wildcard_match(black_box(&reference), black_box(&candidate)))
    });
}

fn bench_full_dataset_static_scores(c: &mut Criterion) {
    let pairs = dataset_pairs();
    // All five static metrics over all 337 problems (the paper's "21.9
    // seconds to compute over the entire dataset" workload, modulo 3x for
    // the variants, which share references).
    let mut group = c.benchmark_group("full_dataset");
    group.sample_size(10);
    group.bench_function("static_scores_337", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (reference, candidate) in &pairs {
                let s = cescore::score_pair(black_box(reference), black_box(candidate));
                acc += s.bleu + s.kv_wildcard;
            }
            acc
        })
    });
    group.finish();
}

fn bench_unit_test_single(c: &mut Criterion) {
    let ds = cedataset::Dataset::generate();
    let p = ds.get("pod-000").expect("pod-000 exists");
    let answer = p.clean_reference();
    let mut group = c.benchmark_group("unit_test");
    group.sample_size(20);
    group.bench_function("single_problem", |b| {
        b.iter(|| minishell::run_unit_test(black_box(&p.unit_test), black_box(&answer)))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_individual_metrics,
    bench_full_dataset_static_scores,
    bench_unit_test_single
);
criterion_main!(benches);
