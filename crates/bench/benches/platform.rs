//! Platform benchmarks: parallel unit-test execution (the real-speedup
//! counterpart of Figure 5), the discrete-event cluster simulation, the
//! query module, and the unit-test predictor.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn executor_jobs(n: usize) -> Vec<evalcluster::UnitTestJob> {
    let ds = cedataset::Dataset::generate();
    ds.problems()
        .iter()
        .cycle()
        .take(n)
        .map(|p| {
            evalcluster::UnitTestJob::prepared(
                p.id.clone(),
                p.unit_test.clone(),
                yamlkit::PreparedDoc::shared(p.clean_reference()),
            )
        })
        .collect()
}

/// Real parallel speedup of the executor: the in-process analogue of the
/// paper's 13x from parallel unit testing.
fn bench_executor_scaling(c: &mut Criterion) {
    let jobs = executor_jobs(48);
    let mut group = c.benchmark_group("executor_workers");
    group.sample_size(10);
    for workers in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(workers), &workers, |b, &w| {
            b.iter(|| evalcluster::run_jobs(black_box(&jobs), w))
        });
    }
    group.finish();
}

/// Seed queue engine vs the sharded work-stealing + memo engine on the
/// same workload — the scoring-throughput number the ROADMAP tracks.
///
/// Two workload shapes: `distinct` (every candidate unique, measures pure
/// scheduling overhead) and `passk` (4 samples per problem where weak
/// models repeat answers, measures the content-addressed cache too).
fn bench_executor_engines(c: &mut Criterion) {
    let distinct = executor_jobs(96);
    // pass@k-shaped: each problem appears 4x; half the samples are
    // identical to sample 0 (models converge on the same answer).
    let passk: Vec<evalcluster::UnitTestJob> = executor_jobs(24)
        .into_iter()
        .flat_map(|job| {
            (0..4).map(move |sample| {
                if sample % 2 == 1 {
                    evalcluster::UnitTestJob::new(
                        format!("{}#{sample}", job.problem_id),
                        job.script.clone(),
                        format!("{}# sample {sample}\n", job.candidate_yaml()),
                    )
                } else {
                    let mut j = job.clone();
                    j.problem_id = format!("{}#{sample}", j.problem_id);
                    j
                }
            })
        })
        .collect();
    let mut group = c.benchmark_group("executor_engine");
    group.sample_size(10);
    for (label, jobs) in [("distinct", &distinct), ("passk", &passk)] {
        group.bench_with_input(
            BenchmarkId::new("queue_seed", label),
            jobs,
            |b, jobs: &Vec<evalcluster::UnitTestJob>| {
                b.iter(|| evalcluster::run_jobs_queue(black_box(jobs), 8))
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sharded_memo", label),
            jobs,
            |b, jobs: &Vec<evalcluster::UnitTestJob>| {
                b.iter(|| evalcluster::run_jobs(black_box(jobs), 8))
            },
        );
    }
    group.finish();
}

fn bench_des(c: &mut Criterion) {
    let jobs = evalcluster::dataset_workload(evalcluster::des::DEFAULT_OVERHEAD_S);
    c.bench_function("des_simulate_64_workers_1011_jobs", |b| {
        b.iter(|| {
            evalcluster::simulate(
                black_box(&jobs),
                &evalcluster::SimConfig {
                    workers: 64,
                    ..Default::default()
                },
            )
        })
    });
    c.bench_function("des_figure5_full_sweep", |b| {
        b.iter(|| evalcluster::figure5(black_box(evalcluster::des::DEFAULT_OVERHEAD_S)))
    });
}

fn bench_query_module(c: &mut Criterion) {
    let dataset = std::sync::Arc::new(cedataset::Dataset::generate());
    let model = llmsim::SimulatedModel::new(
        llmsim::ModelProfile::by_name("gpt-4").unwrap(),
        std::sync::Arc::clone(&dataset),
    );
    let prompts: Vec<String> = dataset
        .problems()
        .iter()
        .take(64)
        .map(|p| cedataset::fewshot::build_prompt(&p.prompt_body(cedataset::Variant::Original), 0))
        .collect();
    let mut group = c.benchmark_group("query_batch");
    group.sample_size(10);
    for parallelism in [1usize, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(parallelism),
            &parallelism,
            |b, &p| {
                let config = llmsim::QueryConfig {
                    parallelism: p,
                    ..Default::default()
                };
                b.iter(|| {
                    llmsim::query_batch(
                        black_box(&model),
                        black_box(&prompts),
                        &llmsim::GenParams::default(),
                        &config,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_predictor(c: &mut Criterion) {
    // Synthetic score-shaped features: 5 metrics -> pass/fail.
    let n = 2000;
    let mut xs = Vec::with_capacity(n);
    let mut ys = Vec::with_capacity(n);
    let mut state = 0xdeadbeefu64;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state % 1000) as f64 / 1000.0
    };
    for _ in 0..n {
        let row = vec![rng(), rng(), rng(), rng(), rng()];
        let pass = f64::from(row[4] * 0.8 + row[0] * 0.2 > 0.55);
        xs.push(row);
        ys.push(pass);
    }
    c.bench_function("gbdt_fit_2000x5", |b| {
        b.iter(|| {
            gboost::Classifier::fit(
                black_box(&xs),
                black_box(&ys),
                &gboost::BoostParams::default(),
            )
        })
    });
    let clf = gboost::Classifier::fit(&xs, &ys, &gboost::BoostParams::default());
    c.bench_function("shap_values_single", |b| {
        b.iter(|| gboost::shap_values(black_box(&clf), black_box(&xs[0])))
    });
}

fn bench_postprocess(c: &mut Criterion) {
    let wrapped = "Sure! Here is the YAML you requested:\n```yaml\napiVersion: v1\nkind: Pod\nmetadata:\n  name: x\nspec:\n  containers:\n  - name: c\n    image: nginx\n```\nLet me know if you need more help.";
    c.bench_function("extract_yaml_from_wrapped_response", |b| {
        b.iter(|| llmsim::extract_yaml(black_box(wrapped)))
    });
}

criterion_group!(
    benches,
    bench_executor_scaling,
    bench_executor_engines,
    bench_des,
    bench_query_module,
    bench_predictor,
    bench_postprocess
);
criterion_main!(benches);
