//! # cloudeval-bench
//!
//! The experiment harness: [`experiments`] computes every table and figure
//! in the paper from a fresh benchmark run; [`serve`] boots the
//! benchmark-as-a-service layer and load-tests it; the `repro` binary
//! prints both (`cargo run --release -p cloudeval-bench --bin repro -- all`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod parsebench;
pub mod serve;
