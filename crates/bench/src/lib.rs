//! # cloudeval-bench
//!
//! The experiment harness: [`experiments`] computes every table and figure
//! in the paper from a fresh benchmark run; the `repro` binary prints
//! them (`cargo run --release -p cloudeval-bench --bin repro -- all`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
