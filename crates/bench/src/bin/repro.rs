//! Regenerates every table and figure from the paper's evaluation.
//!
//! ```text
//! cargo run --release -p cloudeval-bench --bin repro -- all
//! cargo run --release -p cloudeval-bench --bin repro -- table4 fig8
//! cargo run --release -p cloudeval-bench --bin repro -- --stride 4 all
//! ```
//!
//! `--stride N` evaluates every N-th problem (default 1 = the complete
//! 337/1011-problem benchmark).

use cloudeval_bench::experiments::Experiments;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stride = 1usize;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stride" => {
                i += 1;
                stride = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--stride needs a positive integer"));
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            t => targets.push(t.to_owned()),
        }
        i += 1;
    }
    if targets.is_empty() {
        print_usage();
        return;
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL_TARGETS.iter().map(|s| (*s).to_owned()).collect();
    }
    eprintln!("# generating dataset and calibrating 12 models (stride {stride})...");
    let experiments = Experiments::new(stride);
    for target in &targets {
        let started = std::time::Instant::now();
        let output = match target.as_str() {
            "table1" => experiments.table1(),
            "table2" => experiments.table2(),
            "table3" => experiments.table3(),
            "table4" => experiments.table4(),
            "table5" => experiments.table5(),
            "table6" => experiments.table6(),
            "table7" => experiments.table7(),
            "table8" => experiments.table8(),
            "table9" => experiments.table9(),
            "fig5" => experiments.fig5(),
            "fig6" => experiments.fig6(),
            "fig7" => experiments.fig7(),
            "fig8" => experiments.fig8(16),
            "fig9" => experiments.fig9(),
            other => {
                eprintln!("unknown target {other:?} (see --help)");
                continue;
            }
        };
        println!(
            "==================== {} ====================",
            target.to_uppercase()
        );
        println!("{output}");
        eprintln!("# {target} took {:.1}s", started.elapsed().as_secs_f64());
    }
}

const ALL_TARGETS: &[&str] = &[
    "table1", "table2", "table3", "table4", "table5", "table6", "table7", "table8", "table9",
    "fig5", "fig6", "fig7", "fig8", "fig9",
];

fn print_usage() {
    eprintln!("usage: repro [--stride N] <target>...");
    eprintln!("targets: {} | all", ALL_TARGETS.join(" | "));
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
