//! Regenerates every table and figure from the paper's evaluation, plus
//! the full evaluation grid through the substrate engine.
//!
//! ```text
//! cargo run --release -p cloudeval-bench --bin repro -- all
//! cargo run --release -p cloudeval-bench --bin repro -- table4 fig8
//! cargo run --release -p cloudeval-bench --bin repro -- --stride 4 all
//! cargo run --release -p cloudeval-bench --bin repro -- --workers 16 grid
//! cargo run --release -p cloudeval-bench --bin repro -- --variants original,translated grid
//! cargo run --release -p cloudeval-bench --bin repro -- --stride 4 pipeline
//! ```
//!
//! Flags:
//!
//! * `--stride N` — evaluate every N-th problem (default 1 = the complete
//!   337/1011-problem benchmark);
//! * `--workers N` — unit-test worker threads (default: available
//!   hardware parallelism, clamped to 2–32);
//! * `--variants LIST` — comma-separated subset of
//!   `original,simplified,translated` used by the `grid` and `pipeline`
//!   targets (default: all three);
//! * `--channel-bound N` — inter-stage channel depth of the streaming
//!   stage-graph driver (default 128), used by the `pipeline` target;
//! * `--live-latency MS` — per-request wall-clock latency of the
//!   `pipeline` target's remote-generation section (default 15 ms);
//! * `--prepared on|off` — parse-once document model for the `pipeline`
//!   target's streamed driver (default `on`; `off` re-parses at every
//!   layer like the seed pipeline). Either way the target also prints a
//!   dedicated prepared-vs-text A/B speedup line with a verdict-identity
//!   check;
//! * `--rounds N` — repair rounds after the first attempt (default 2),
//!   used by the `repair` target;
//! * `--feedback full|bucket-only|none` — how much of each failure's
//!   taxonomy diagnosis the repair prompts reveal (default
//!   `bucket-only`), used by the `repair` target.

use cedataset::Variant;
use cloudeval_bench::experiments::Experiments;
use cloudeval_bench::serve::ServeOptions;
use llmsim::FeedbackMode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut stride = 1usize;
    let mut workers = cloudeval_core::harness::default_workers();
    let mut variants: Vec<Variant> = Variant::ALL.to_vec();
    let mut channel_bound = cloudeval_core::pipeline::DEFAULT_CHANNEL_BOUND;
    let mut live_latency_ms = 15u64;
    let mut prepared = true;
    let mut port = 0u16;
    let mut requests = 200usize;
    let mut clients = 4usize;
    let mut conns = 1usize;
    let mut memo_path: Option<std::path::PathBuf> = None;
    let mut rounds = 2usize;
    let mut feedback = FeedbackMode::BucketOnly;
    let mut targets: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--stride" => {
                i += 1;
                stride = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--stride needs a positive integer"));
            }
            "--workers" => {
                i += 1;
                workers = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|w| *w > 0)
                    .unwrap_or_else(|| die("--workers needs a positive integer"));
            }
            "--variants" => {
                i += 1;
                variants = parse_variants(args.get(i).map(String::as_str).unwrap_or(""))
                    .unwrap_or_else(|bad| die(&format!("unknown variant {bad:?}")));
            }
            "--channel-bound" => {
                i += 1;
                channel_bound = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|b| *b > 0)
                    .unwrap_or_else(|| die("--channel-bound needs a positive integer"));
            }
            "--live-latency" => {
                i += 1;
                live_latency_ms = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--live-latency needs milliseconds"));
            }
            "--prepared" => {
                i += 1;
                prepared = match args.get(i).map(String::as_str) {
                    Some("on") => true,
                    Some("off") => false,
                    _ => die("--prepared needs on|off"),
                };
            }
            "--port" => {
                i += 1;
                port = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--port needs a port number"));
            }
            "--requests" => {
                i += 1;
                requests = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|r| *r > 0)
                    .unwrap_or_else(|| die("--requests needs a positive integer"));
            }
            "--clients" => {
                i += 1;
                clients = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|c| *c > 0)
                    .unwrap_or_else(|| die("--clients needs a positive integer"));
            }
            "--conns" => {
                i += 1;
                conns = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|c| *c > 0)
                    .unwrap_or_else(|| die("--conns needs a positive integer"));
            }
            "--memo" => {
                i += 1;
                memo_path = Some(std::path::PathBuf::from(
                    args.get(i)
                        .unwrap_or_else(|| die("--memo needs a file path")),
                ));
            }
            "--rounds" => {
                i += 1;
                rounds = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--rounds needs a non-negative integer"));
            }
            "--feedback" => {
                i += 1;
                feedback = args
                    .get(i)
                    .and_then(|s| FeedbackMode::from_label(s))
                    .unwrap_or_else(|| die("--feedback needs full|bucket-only|none"));
            }
            "--help" | "-h" => {
                print_usage();
                return;
            }
            t => targets.push(t.to_owned()),
        }
        i += 1;
    }
    if targets.is_empty() {
        print_usage();
        return;
    }
    if targets.iter().any(|t| t == "all") {
        targets = ALL_TARGETS.iter().map(|s| (*s).to_owned()).collect();
    }
    // The serve target boots its own corpus; the table/figure targets
    // share one lazily-built experiment context.
    let mut experiments: Option<Experiments> = None;
    fn context(
        experiments: &mut Option<Experiments>,
        stride: usize,
        workers: usize,
    ) -> &Experiments {
        experiments.get_or_insert_with(|| {
            eprintln!(
                "# generating dataset and calibrating 12 models (stride {stride}, {workers} workers)..."
            );
            Experiments::with_workers(stride, workers)
        })
    }
    for target in &targets {
        let started = std::time::Instant::now();
        let output = match target.as_str() {
            "parse" => cloudeval_bench::parsebench::parse_report(),
            "score" => cloudeval_bench::parsebench::score_report(),
            "bench" => cloudeval_bench::parsebench::bench_report(),
            "serve" => cloudeval_bench::serve::serve_report(&ServeOptions {
                port,
                workers,
                requests,
                clients,
                conns_per_client: conns,
                memo_path: memo_path.clone(),
                ..ServeOptions::default()
            }),
            "table1" => context(&mut experiments, stride, workers).table1(),
            "table2" => context(&mut experiments, stride, workers).table2(),
            "table3" => context(&mut experiments, stride, workers).table3(),
            "table4" => context(&mut experiments, stride, workers).table4(),
            "table5" => context(&mut experiments, stride, workers).table5(),
            "table6" => context(&mut experiments, stride, workers).table6(),
            "table7" => context(&mut experiments, stride, workers).table7(),
            "table8" => context(&mut experiments, stride, workers).table8(),
            "table9" => context(&mut experiments, stride, workers).table9(),
            "fig5" => context(&mut experiments, stride, workers).fig5(),
            "fig6" => context(&mut experiments, stride, workers).fig6(),
            "fig7" => context(&mut experiments, stride, workers).fig7(),
            "fig8" => context(&mut experiments, stride, workers).fig8(16),
            "fig9" => context(&mut experiments, stride, workers).fig9(),
            "grid" => context(&mut experiments, stride, workers).grid(&variants),
            "trace" => context(&mut experiments, stride, workers).trace(&variants),
            "repair" => context(&mut experiments, stride, workers).repair(rounds, feedback),
            "pipeline" => context(&mut experiments, stride, workers).pipeline(
                &variants,
                channel_bound,
                live_latency_ms,
                prepared,
            ),
            other => {
                eprintln!("unknown target {other:?} (see --help)");
                continue;
            }
        };
        println!(
            "==================== {} ====================",
            target.to_uppercase()
        );
        println!("{output}");
        eprintln!("# {target} took {:.1}s", started.elapsed().as_secs_f64());
    }
}

const ALL_TARGETS: &[&str] = &[
    "parse", "score", "table1", "table2", "table3", "table4", "table5", "table6", "table7",
    "table8", "table9", "fig5", "fig6", "fig7", "fig8", "fig9", "grid", "trace", "pipeline",
    "repair", "serve",
];

fn parse_variants(list: &str) -> Result<Vec<Variant>, String> {
    let mut out = Vec::new();
    for part in list.split(',').filter(|p| !p.is_empty()) {
        out.push(match part.to_ascii_lowercase().as_str() {
            "original" | "orig" => Variant::Original,
            "simplified" | "simp" => Variant::Simplified,
            "translated" | "trans" => Variant::Translated,
            other => return Err(other.to_owned()),
        });
    }
    if out.is_empty() {
        return Err(list.to_owned());
    }
    Ok(out)
}

fn print_usage() {
    eprintln!(
        "usage: repro [--stride N] [--workers N] [--variants LIST] [--channel-bound N] [--live-latency MS] [--prepared on|off] [--rounds N] [--feedback full|bucket-only|none] [--port N] [--requests N] [--clients N] [--conns N] [--memo PATH] <target>..."
    );
    eprintln!("targets: {} | all | bench", ALL_TARGETS.join(" | "));
    eprintln!("parse: legacy-vs-arena YAML parse A/B with 1.5x verdict");
    eprintln!("score: symbol-interned vs legacy scoring-kernel A/B with identical-scores check and 1.5x verdict");
    eprintln!("bench: run every criterion engine group, refreshing BENCH_*.json at the repo root (not part of `all`)");
    eprintln!("variants: original,simplified,translated (grid/trace/pipeline targets)");
    eprintln!("trace: per-stage time breakdown of one grid run from the obs layer, plus one repair attempt's span tree");
    eprintln!("channel-bound: stage-graph backpressure depth (pipeline target)");
    eprintln!("prepared: parse-once document model A/B (pipeline target)");
    eprintln!("rounds/feedback: fail-learn-refine loop knobs (repair target)");
    eprintln!("port/requests/clients/memo: benchmark-as-a-service knobs (serve target)");
    eprintln!("conns: keep-alive connections per client thread (serve target)");
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
