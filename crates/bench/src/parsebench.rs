//! The `repro parse`, `repro score`, and `repro bench` targets.
//!
//! `parse` is a self-contained A/B of the legacy boxed-tree parser
//! against the arena + interner path over the full generated corpus —
//! no criterion harness, so it runs in seconds and prints a PASS/MISS
//! verdict against the 1.5x acceptance floor.
//!
//! `score` is the same shape for the scoring engine: the
//! symbol-interned kernels (rolling-hash BLEU + bit-parallel edit
//! distance) against the kept legacy string-slice kernels on the pass@k
//! workload, with a bit-for-bit identical-scores check and a PASS/MISS
//! verdict on the same 1.5x floor.
//!
//! `bench` drives every criterion engine group and writes each one's
//! machine-readable report to `BENCH_<name>.json` at the repository
//! root, which is exactly what CI archives — running it locally keeps
//! the checked-in perf trajectory current.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Every YAML text the pipeline parses per session: the labeled
/// reference and the clean reference of each generated problem.
fn corpus() -> Vec<String> {
    let ds = cedataset::Dataset::generate();
    ds.problems()
        .iter()
        .flat_map(|p| [p.labeled_reference.clone(), p.clean_reference()])
        .collect()
}

/// Runs `f` once as warmup, then `reps` timed repetitions, returning
/// the best wall-clock time and the (checksum) result of the last run.
fn best_of<F: FnMut() -> usize>(reps: usize, mut f: F) -> (Duration, usize) {
    let mut check = f();
    let mut best = Duration::MAX;
    for _ in 0..reps {
        let started = Instant::now();
        check = f();
        best = best.min(started.elapsed());
    }
    (best, check)
}

/// Legacy-vs-arena parse throughput over the full corpus, with the
/// 1.5x acceptance verdict. Returned as a printable report.
pub fn parse_report() -> String {
    const REPS: usize = 7;
    let texts = corpus();
    let bytes: usize = texts.iter().map(String::len).sum();
    let (legacy, legacy_check) = best_of(REPS, || {
        texts
            .iter()
            .filter_map(|t| yamlkit::parse_legacy(t).ok())
            .map(|nodes| nodes.len())
            .sum()
    });
    let (arena, arena_check) = best_of(REPS, || {
        texts
            .iter()
            .map(|t| {
                let doc = yamlkit::ArenaDoc::parse(t.as_str());
                if doc.error().is_none() {
                    doc.doc_count()
                } else {
                    0
                }
            })
            .sum()
    });
    let (materialized, materialized_check) = best_of(REPS, || {
        texts
            .iter()
            .filter_map(|t| yamlkit::parse(t).ok())
            .map(|nodes| nodes.len())
            .sum()
    });
    assert_eq!(legacy_check, arena_check, "parser disagreement on corpus");
    assert_eq!(legacy_check, materialized_check);
    let mbps = |d: Duration| bytes as f64 / 1e6 / d.as_secs_f64();
    let speedup = legacy.as_secs_f64() / arena.as_secs_f64();
    let verdict = if speedup >= 1.5 { "PASS" } else { "MISS" };
    format!(
        "parse engine A/B — {} documents, {:.2} MB, best of {REPS}\n\
         legacy boxed-tree     {:>9.3} ms  {:>7.1} MB/s\n\
         arena + interner      {:>9.3} ms  {:>7.1} MB/s\n\
         arena, materialized   {:>9.3} ms  {:>7.1} MB/s\n\
         speedup (arena vs legacy): {speedup:.2}x — {verdict} (floor 1.5x)\n",
        texts.len(),
        bytes as f64 / 1e6,
        legacy.as_secs_f64() * 1e3,
        mbps(legacy),
        arena.as_secs_f64() * 1e3,
        mbps(arena),
        materialized.as_secs_f64() * 1e3,
        mbps(materialized),
    )
}

/// Kernel-vs-legacy static scoring over the pass@k workload (the same
/// reference × k-candidate shape the `score_engine` criterion group
/// uses), with the bit-for-bit identity check and the 1.5x acceptance
/// verdict. Returned as a printable report; CI greps it for
/// `identical` and `PASS`.
pub fn score_report() -> String {
    const REPS: usize = 7;
    const K: usize = 8;
    let ds = cedataset::Dataset::generate();
    // Every 6th problem, each with k near-miss candidate variants —
    // identical to the score_engine bench workload.
    let workload: Vec<(cescore::PreparedRef, Vec<cescore::PreparedDoc>)> = ds
        .problems()
        .iter()
        .step_by(6)
        .map(|p| {
            let base = p.clean_reference();
            let candidates = (0..K)
                .map(|k| match k % 4 {
                    0 => base.clone(),
                    1 => base.replace("latest", "1.25"),
                    2 => format!("{base}extra-{k}: {k}\n"),
                    _ => base.replace("name:", "name: variant-"),
                })
                .map(|c| cescore::PreparedDoc::new(c.as_str()))
                .collect();
            (cescore::PreparedRef::new(&p.labeled_reference), candidates)
        })
        .collect();
    let pairs: usize = workload.iter().map(|(_, cands)| cands.len()).sum();

    // Identity first: every pair, every static metric, bit for bit.
    let mut scratch = cescore::ScoreScratch::new();
    for (reference, candidates) in &workload {
        for doc in candidates {
            let kernel = cescore::score_pair_prepared_with(reference, doc, &mut scratch);
            let legacy = cescore::score_pair_prepared_legacy(reference, doc);
            assert_eq!(
                kernel, legacy,
                "kernel/legacy divergence — scoring is broken, not just slow"
            );
        }
    }

    // A fingerprint of all five metric bit patterns, so the timed runs
    // also prove both paths compute the same numbers.
    let fingerprint = |s: &cescore::Scores| {
        s.static_metrics()
            .iter()
            .fold(0usize, |acc, v| acc.rotate_left(7) ^ v.to_bits() as usize)
    };
    let (legacy, legacy_check) = best_of(REPS, || {
        workload
            .iter()
            .flat_map(|(reference, candidates)| {
                candidates
                    .iter()
                    .map(|doc| fingerprint(&cescore::score_pair_prepared_legacy(reference, doc)))
            })
            .fold(0usize, usize::wrapping_add)
    });
    let mut scratch = cescore::ScoreScratch::new();
    let (kernel, kernel_check) = best_of(REPS, || {
        let mut acc = 0usize;
        for (reference, candidates) in &workload {
            for doc in candidates {
                acc = acc.wrapping_add(fingerprint(&cescore::score_pair_prepared_with(
                    reference,
                    doc,
                    &mut scratch,
                )));
            }
        }
        acc
    });
    assert_eq!(legacy_check, kernel_check, "timed runs disagree");
    let speedup = legacy.as_secs_f64() / kernel.as_secs_f64();
    let verdict = if speedup >= 1.5 { "PASS" } else { "MISS" };
    format!(
        "scoring kernel A/B — {} references x {K} candidates ({pairs} pairs), best of {REPS}\n\
         legacy string-slice kernels   {:>9.3} ms  {:>7.1} us/pair\n\
         symbol-interned kernels       {:>9.3} ms  {:>7.1} us/pair\n\
         scores: identical across {pairs} pairs (all five static metrics, bit-for-bit)\n\
         speedup (kernel vs legacy): {speedup:.2}x — {verdict} (floor 1.5x)\n",
        workload.len(),
        legacy.as_secs_f64() * 1e3,
        legacy.as_secs_f64() * 1e6 / pairs as f64,
        kernel.as_secs_f64() * 1e3,
        kernel.as_secs_f64() * 1e6 / pairs as f64,
    )
}

/// `(bench file, criterion group filter, repo-root artifact)` for every
/// engine group CI tracks. `repro bench` and the CI steps stay in sync
/// through this table.
pub const ENGINE_BENCHES: &[(&str, &str, &str)] = &[
    ("parse", "parse_engine", "BENCH_parse.json"),
    ("platform", "executor_engine", "BENCH_executor.json"),
    ("pipeline", "pipeline_engine", "BENCH_pipeline.json"),
    ("scoring", "score_engine", "BENCH_score.json"),
    ("repair", "repair_engine", "BENCH_repair.json"),
    ("serve", "serve_engine", "BENCH_serve.json"),
    ("obs", "obs_engine", "BENCH_obs.json"),
];

/// The repository root, resolved from this crate's manifest directory
/// (`crates/bench` → two levels up).
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("bench crate sits two levels below the repo root")
        .to_path_buf()
}

/// Runs every criterion engine group via `cargo bench`, pointing
/// `CRITERION_JSON` at `BENCH_<name>.json` in the repository root so
/// the perf-trajectory artifacts CI archives are refreshed in place.
pub fn bench_report() -> String {
    let root = repo_root();
    let mut out = String::new();
    for (bench, group, artifact) in ENGINE_BENCHES {
        let json = root.join(artifact);
        let status = std::process::Command::new("cargo")
            .args([
                "bench",
                "-p",
                "cloudeval-bench",
                "--bench",
                bench,
                "--",
                group,
            ])
            .env("CRITERION_JSON", &json)
            .status();
        let line = match status {
            Ok(s) if s.success() => format!("{group:<16} -> {}\n", json.display()),
            Ok(s) => format!("{group:<16} FAILED ({s})\n"),
            Err(e) => format!("{group:<16} could not launch cargo: {e}\n"),
        };
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_bench_table_names_are_consistent() {
        for (bench, group, artifact) in ENGINE_BENCHES {
            assert!(artifact.starts_with("BENCH_") && artifact.ends_with(".json"));
            assert!(!bench.is_empty() && group.ends_with("_engine"));
        }
    }

    #[test]
    fn repo_root_contains_workspace_manifest() {
        assert!(repo_root().join("Cargo.toml").exists());
    }
}
