//! One function per paper table/figure, each returning rendered text.
//!
//! `stride` subsamples the dataset (1 = the full benchmark, matching the
//! paper's problem counts; larger values trade fidelity for speed and are
//! used by the test suite).

use std::sync::Arc;

use cedataset::{Dataset, Variant};
use cescore::RefCache;
use cloudeval_core::analysis::{factor_analysis, failure_modes};
use cloudeval_core::harness::{
    default_workers, evaluate, evaluate_barriered, evaluate_repair, evaluate_repair_barriered,
    mean_scores, pass_count, EvalOptions, EvalRecord,
};
use cloudeval_core::passk::{pass_at_k_cached, PassAtK};
use cloudeval_core::predict::{leave_one_model_out, shap_importance};
use cloudeval_core::tables;
use evalcluster::memo::ScoreMemo;
use llmsim::{standard_models, FeedbackMode, GenParams, SimulatedModel};

/// A lazily-evaluated benchmark context shared across experiments.
///
/// All evaluations run through one shared content-addressed
/// [`ScoreMemo`]: a `(candidate, script)` pair unit-tested for Table 4 is
/// never re-executed for Table 5, the grid, or a pass@k sweep. The
/// [`RefCache`] plays the same role for the reference side of static
/// scoring: each problem's labeled reference is parsed exactly once per
/// `Experiments` session, no matter how many tables, figures or grid
/// cells score against it.
pub struct Experiments {
    dataset: Arc<Dataset>,
    models: Vec<SimulatedModel>,
    stride: usize,
    workers: usize,
    memo: Arc<ScoreMemo>,
    refs: Arc<RefCache>,
}

impl Experiments {
    /// Builds the context. `stride` of 1 runs the complete benchmark;
    /// unit-test workers default to the hardware width.
    pub fn new(stride: usize) -> Experiments {
        Experiments::with_workers(stride, default_workers())
    }

    /// Builds the context with an explicit unit-test worker count.
    pub fn with_workers(stride: usize, workers: usize) -> Experiments {
        let dataset = Arc::new(Dataset::generate());
        let models = standard_models(Arc::clone(&dataset));
        Experiments {
            dataset,
            models,
            stride: stride.max(1),
            workers: workers.max(1),
            memo: Arc::new(ScoreMemo::new()),
            refs: Arc::new(RefCache::new()),
        }
    }

    /// The shared dataset.
    pub fn dataset(&self) -> &Dataset {
        &self.dataset
    }

    /// The session-wide verdict cache (hit/miss counters included).
    pub fn memo(&self) -> &ScoreMemo {
        &self.memo
    }

    /// The session-wide prepared-reference cache.
    pub fn refs(&self) -> &RefCache {
        &self.refs
    }

    fn options(&self, variants: Vec<Variant>, shots: usize) -> EvalOptions {
        EvalOptions {
            variants,
            shots,
            params: GenParams::default(),
            workers: self.workers,
            stride: self.stride,
            memo: Some(Arc::clone(&self.memo)),
            refs: Some(Arc::clone(&self.refs)),
            ..EvalOptions::default()
        }
    }

    fn eval(
        &self,
        model: &SimulatedModel,
        variants: Vec<Variant>,
        shots: usize,
    ) -> Vec<EvalRecord> {
        evaluate(model, &self.dataset, &self.options(variants, shots))
    }

    /// The full (model × problem × variant) grid through the substrate
    /// engine: per-model pass counts for the selected variants plus a
    /// throughput line (records/s) for the perf trajectory.
    pub fn grid(&self, variants: &[Variant]) -> String {
        let mut out = String::from("Evaluation grid (substrate engine)\n");
        out.push_str(&format!(
            "variants: {} | stride: {} | workers: {}\n",
            variants
                .iter()
                .map(|v| v.label())
                .collect::<Vec<_>>()
                .join(","),
            self.stride,
            self.workers
        ));
        let started = std::time::Instant::now();
        let mut total_records = 0usize;
        for model in &self.models {
            let records = self.eval(model, variants.to_vec(), 0);
            total_records += records.len();
            out.push_str(&format!(
                "  {:<24} {:>4}/{:<4} unit-test passes\n",
                model.profile().name,
                pass_count(&records),
                records.len()
            ));
        }
        let secs = started.elapsed().as_secs_f64();
        out.push_str(&format!(
            "grid: {total_records} records in {secs:.2}s ({:.0} records/s)\n",
            total_records as f64 / secs.max(1e-9)
        ));
        out
    }

    /// Head-to-head of the two evaluation drivers on the full
    /// (model × problem × variant) grid: the barriered seed path vs the
    /// streaming stage-graph, wall-clock and per-model agreement — first
    /// at pure simulation speed (CPU-bound), then in the
    /// latency-realistic remote regime (`live_latency_ms`), where
    /// generation workers really idle on the simulated wire and the
    /// stage-graph fills that idle time with scoring and substrate
    /// execution.
    ///
    /// Both drivers run with **fresh run-local memos** (not the session
    /// cache) so the comparison measures scheduling, not cache warmth.
    pub fn pipeline(
        &self,
        variants: &[Variant],
        channel_bound: usize,
        live_latency_ms: u64,
        prepared: bool,
    ) -> String {
        let mut out = String::from("Pipeline drivers: barriered vs streamed (stage-graph)\n");
        out.push_str(&format!(
            "variants: {} | stride: {} | workers: {} | channel bound: {} | prepared: {}\n",
            variants
                .iter()
                .map(|v| v.label())
                .collect::<Vec<_>>()
                .join(","),
            self.stride,
            self.workers,
            channel_bound,
            if prepared { "on" } else { "off" },
        ));
        out.push_str("-- instant generation (CPU-bound) --\n");
        out.push_str(&self.pipeline_section(variants, channel_bound, None, prepared));
        out.push_str(&format!(
            "-- remote generation ({live_latency_ms} ms live request latency) --\n"
        ));
        out.push_str(&self.pipeline_section(
            variants,
            channel_bound,
            Some(live_latency_ms),
            prepared,
        ));
        out.push_str("-- prepared A/B (streamed driver, instant generation) --\n");
        out.push_str(&self.prepared_ab_section(variants, channel_bound));
        out
    }

    /// The parse-once A/B: the same streamed grid with the document model
    /// off (every layer re-parses, the pre-refactor cost profile) and on
    /// (one parse per candidate, references prepared once per run), with
    /// the verdict-identity check and one speedup line.
    fn prepared_ab_section(&self, variants: &[Variant], channel_bound: usize) -> String {
        let options = |prepared: bool| EvalOptions {
            variants: variants.to_vec(),
            workers: self.workers,
            stride: self.stride,
            channel_bound,
            memo: None, // run-local caches: measure parsing, not warmth
            refs: None,
            prepared,
            ..EvalOptions::default()
        };
        let mut out = String::new();
        let mut text_total = 0.0f64;
        let mut prepared_total = 0.0f64;
        let mut all_identical = true;
        for model in &self.models {
            let started = std::time::Instant::now();
            let text = evaluate(model, &self.dataset, &options(false));
            let text_s = started.elapsed().as_secs_f64();
            let started = std::time::Instant::now();
            let prep = evaluate(model, &self.dataset, &options(true));
            let prepared_s = started.elapsed().as_secs_f64();
            all_identical &= text == prep;
            text_total += text_s;
            prepared_total += prepared_s;
        }
        out.push_str(&format!(
            "prepared A/B: text-path {text_total:.2}s | prepared {prepared_total:.2}s | speedup {:.2}x | verdicts {}\n",
            text_total / prepared_total.max(1e-9),
            if all_identical { "identical" } else { "DIVERGED" },
        ));
        out
    }

    fn pipeline_section(
        &self,
        variants: &[Variant],
        channel_bound: usize,
        live_latency_ms: Option<u64>,
        prepared: bool,
    ) -> String {
        let options = EvalOptions {
            variants: variants.to_vec(),
            workers: self.workers,
            stride: self.stride,
            channel_bound,
            live_latency_ms,
            memo: None, // run-local memos: measure scheduling, not cache
            refs: None,
            prepared,
            ..EvalOptions::default()
        };
        let mut out = String::new();
        let mut barriered_total = 0.0f64;
        let mut streamed_total = 0.0f64;
        let mut records_total = 0usize;
        let mut all_identical = true;
        for model in &self.models {
            let started = std::time::Instant::now();
            let barriered = evaluate_barriered(model, &self.dataset, &options);
            let barriered_s = started.elapsed().as_secs_f64();
            let started = std::time::Instant::now();
            let streamed = evaluate(model, &self.dataset, &options);
            let streamed_s = started.elapsed().as_secs_f64();
            let identical = barriered == streamed;
            all_identical &= identical;
            barriered_total += barriered_s;
            streamed_total += streamed_s;
            records_total += streamed.len();
            out.push_str(&format!(
                "  {:<24} barriered {:>7.3}s | streamed {:>7.3}s | {:>5.2}x | records {}\n",
                model.profile().name,
                barriered_s,
                streamed_s,
                barriered_s / streamed_s.max(1e-9),
                if identical { "identical" } else { "DIVERGED" },
            ));
        }
        out.push_str(&format!(
            "grid: {records_total} records | barriered {barriered_total:.2}s | streamed {streamed_total:.2}s | speedup {:.2}x | outputs {}\n",
            barriered_total / streamed_total.max(1e-9),
            if all_identical { "identical" } else { "DIVERGED" },
        ));
        out
    }

    /// The fail–learn–refine repair experiment: every model's failing
    /// records loop back through generation → extraction → scoring →
    /// substrate execution for up to `rounds` repair rounds, with
    /// taxonomy-synthesized deployment feedback revealed per `feedback`.
    /// Prints cumulative pass@repair-round-r per model, the taxonomy
    /// histogram of the failures standing at each round, and the
    /// streamed-vs-barriered driver identity verdict.
    pub fn repair(&self, rounds: usize, feedback: FeedbackMode) -> String {
        let mut out =
            format!("Fail-learn-refine repair loop (feedback: {feedback}, rounds: {rounds})\n");
        out.push_str(&format!(
            "stride: {} | workers: {} | variant: original\n",
            self.stride, self.workers
        ));
        let mut header = format!("  {:<24} pass@repair-round-r (cumulative)", "model");
        header.push('\n');
        out.push_str(&header);
        let options = self.options(vec![Variant::Original], 0);
        let started = std::time::Instant::now();
        let mut all_identical = true;
        for model in &self.models {
            let streamed = evaluate_repair(model, &self.dataset, &options, rounds, feedback);
            let barriered =
                evaluate_repair_barriered(model, &self.dataset, &options, rounds, feedback);
            all_identical &= streamed == barriered;
            let mut row = format!("  {:<24}", model.profile().name);
            for r in 0..=rounds {
                row.push_str(&format!(
                    " r{r} {:>4}/{:<4}",
                    streamed.pass_at_round(r),
                    streamed.total()
                ));
            }
            row.push('\n');
            out.push_str(&row);
            for r in 0..=rounds {
                let histogram = streamed.bucket_counts(r);
                if histogram.is_empty() {
                    continue;
                }
                let rendered: Vec<String> = histogram
                    .iter()
                    .map(|(bucket, n)| format!("{bucket} {n}"))
                    .collect();
                out.push_str(&format!("    failures r{r}: {}\n", rendered.join(", ")));
            }
        }
        let secs = started.elapsed().as_secs_f64();
        out.push_str(&format!(
            "drivers: streamed vs barriered repair verdicts {}\n",
            if all_identical {
                "identical"
            } else {
                "DIVERGED"
            },
        ));
        out.push_str(&format!("repair grid: {secs:.2}s\n"));
        out
    }

    /// The `repro trace` target: one model's grid run with the global
    /// metrics registry snapshotted before and after, rendered as a
    /// per-series time-breakdown table (deltas only, so registry warmth
    /// from earlier targets never pollutes the numbers), plus one traced
    /// repair attempt reconstructed as a span tree from the span ring.
    pub fn trace(&self, variants: &[Variant]) -> String {
        use std::collections::HashMap;

        use obs::{HistogramSnapshot, MetricSnapshot, MetricValue, SpanRecord};

        let series_key = |s: &MetricSnapshot| -> String {
            if s.labels.is_empty() {
                s.name.clone()
            } else {
                let labels: Vec<String> =
                    s.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
                format!("{}{{{}}}", s.name, labels.join(","))
            }
        };
        let histograms = |snaps: Vec<MetricSnapshot>| -> Vec<(String, String, HistogramSnapshot)> {
            snaps
                .into_iter()
                .filter_map(|s| {
                    let k = series_key(&s);
                    match s.value {
                        MetricValue::Histogram(h) => Some((s.name, k, h)),
                        _ => None,
                    }
                })
                .collect()
        };

        let registry = obs::global();
        let model = self.model("gpt-4");
        let mut out = String::from("Per-stage time breakdown (obs layer, one grid run)\n");
        out.push_str(&format!(
            "model: {} | variants: {} | stride: {} | workers: {}\n",
            model.profile().name,
            variants
                .iter()
                .map(|v| v.label())
                .collect::<Vec<_>>()
                .join(","),
            self.stride,
            self.workers,
        ));

        let before: HashMap<String, HistogramSnapshot> = histograms(registry.snapshot())
            .into_iter()
            .map(|(_, k, h)| (k, h))
            .collect();
        let started = std::time::Instant::now();
        let records = self.eval(model, variants.to_vec(), 0);
        let wall = started.elapsed();

        out.push_str(&format!(
            "  {:<44} {:>7} {:>10} {:>9} {:>9} {:>9}\n",
            "series", "count", "total ms", "mean us", "p50 us", "p99 us"
        ));
        let mut consistent = true;
        // Per stage-pool invariant: each of the run's `workers` threads
        // can be busy for at most the run's wall-clock, so one series'
        // recorded service time can never exceed wall x workers (5%
        // slack for clock edges).
        let budget_us = wall.as_secs_f64() * 1e6 * self.workers as f64 * 1.05 + 1.0;
        for (name, key, now) in histograms(registry.snapshot()) {
            let delta = match before.get(&key) {
                Some(earlier) => now.delta_since(earlier),
                None => now,
            };
            if delta.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "  {:<44} {:>7} {:>10.2} {:>9.1} {:>9.1} {:>9.1}\n",
                key,
                delta.count,
                delta.sum_us as f64 / 1e3,
                delta.mean_us(),
                delta.p50_us(),
                delta.p99_us(),
            ));
            if name == "stage_service_us" {
                consistent &= (delta.sum_us as f64) <= budget_us;
            }
        }
        out.push_str(&format!(
            "grid: {} records in {:.2}s\n",
            records.len(),
            wall.as_secs_f64(),
        ));
        out.push_str(&format!(
            "consistency: per-stage service time vs wall x {} workers -> {}\n",
            self.workers,
            if consistent { "consistent" } else { "VIOLATED" },
        ));

        // One traced repair attempt: flip the span ring on for a
        // single-round repair pass and reconstruct the last attempt's
        // generation -> extraction -> scoring tree, plus its verdict.
        let collector = obs::spans();
        collector.set_enabled(true);
        let _ = collector.drain();
        let repair = evaluate_repair(
            model,
            &self.dataset,
            &self.options(vec![Variant::Original], 0),
            1,
            FeedbackMode::Full,
        );
        collector.set_enabled(false);
        let spans = collector.drain();
        out.push_str(&format!(
            "span ring: {} spans captured over a 1-round repair pass ({} records, ring capacity {})\n",
            spans.len(),
            repair.total(),
            collector.capacity(),
        ));
        fn render_tree(out: &mut String, spans: &[SpanRecord], node: &SpanRecord, depth: usize) {
            let tags: String = node.tags.iter().map(|(k, v)| format!(" {k}={v}")).collect();
            out.push_str(&format!(
                "{}{} {}us{}\n",
                "  ".repeat(depth),
                node.name,
                node.duration_us(),
                tags,
            ));
            for child in spans.iter().filter(|s| s.parent == node.id) {
                render_tree(out, spans, child, depth + 1);
            }
        }
        if let Some(attempt) = spans
            .iter()
            .rev()
            .find(|s| s.name == "repair_attempt" && s.parent == 0)
        {
            out.push_str("one traced attempt (same trace id across spans):\n");
            for root in spans
                .iter()
                .filter(|s| s.trace == attempt.trace && s.parent == 0)
            {
                render_tree(&mut out, &spans, root, 1);
            }
        }
        out
    }

    /// Table 1: practical data augmentation statistics.
    pub fn table1(&self) -> String {
        cedataset::stats::table1(&self.dataset)
    }

    /// Table 2: dataset statistics per category.
    pub fn table2(&self) -> String {
        cedataset::stats::table2(&self.dataset)
    }

    /// Table 3: running cost, using evaluation hours from the Figure 5
    /// simulation.
    pub fn table3(&self) -> String {
        let rows = evalcluster::figure5(evalcluster::des::DEFAULT_OVERHEAD_S);
        let hours_x1 = rows[0].2; // 1 worker, with cache
        let hours_x64 = rows[3].2; // 64 workers, with cache
        let (cost_rows, min_total, max_total) = evalcluster::table3(hours_x1, hours_x64);
        let mut out = String::from("Sample Running Cost of the Benchmark in $\n");
        for r in &cost_rows {
            out.push_str(&format!("  {:<38}${:>6.2}\n", r.label, r.dollars));
        }
        out.push_str(&format!(
            "Total cost range: ${min_total:.2} - ${max_total:.2}\n"
        ));
        out
    }

    /// Table 4: zero-shot benchmark of all 12 models across all metrics
    /// over the three-variant dataset.
    pub fn table4(&self) -> String {
        let mut rows = Vec::new();
        for model in &self.models {
            let records = self.eval(model, Variant::ALL.to_vec(), 0);
            // PaLM's English-only API: translated questions are excluded
            // from its averages (Table 4 footnote).
            let records: Vec<EvalRecord> = if model.profile().passes_translated.is_none() {
                records
                    .into_iter()
                    .filter(|r| r.variant != Variant::Translated)
                    .collect()
            } else {
                records
            };
            rows.push(tables::Table4Row {
                model: model.profile().name.to_owned(),
                size_b: model.profile().size_b,
                open_source: model.profile().open_source,
                scores: mean_scores(&records),
            });
        }
        tables::table4(&rows)
    }

    /// Table 5: unit-test passes per dataset variant.
    pub fn table5(&self) -> String {
        let mut rows = Vec::new();
        for model in &self.models {
            let orig = pass_count(&self.eval(model, vec![Variant::Original], 0));
            let simp = pass_count(&self.eval(model, vec![Variant::Simplified], 0));
            let trans = if model.profile().passes_translated.is_none() {
                None
            } else {
                Some(pass_count(&self.eval(model, vec![Variant::Translated], 0)))
            };
            rows.push((model.profile().name.to_owned(), orig, simp, trans));
        }
        tables::table5(&rows)
    }

    /// Table 6: few-shot prompting for the three models the paper reports.
    pub fn table6(&self) -> String {
        let mut rows = Vec::new();
        for name in ["gpt-3.5", "llama-2-70b-chat", "llama-2-7b-chat"] {
            let model = self.model(name);
            let mut counts = [0usize; 4];
            for (shots, slot) in counts.iter_mut().enumerate() {
                *slot = pass_count(&self.eval(model, vec![Variant::Original], shots));
            }
            rows.push((name.to_owned(), counts));
        }
        tables::table6(&rows)
    }

    /// Table 7: benchmark landscape comparison (static).
    pub fn table7(&self) -> String {
        cloudeval_core::related::table7()
    }

    /// Table 8: the CNCF YAML survey (static).
    pub fn table8(&self) -> String {
        cloudeval_core::survey::table8()
    }

    /// Table 9 / Figure 6: per-factor unit-test scores for all models.
    pub fn table9(&self) -> String {
        let mut rows = Vec::new();
        for model in &self.models {
            let records = self.eval(model, vec![Variant::Original], 0);
            rows.push(factor_analysis(model.profile().name, &records));
        }
        tables::figure6(&rows)
    }

    /// Figure 5: evaluation time vs worker count, with/without the shared
    /// image cache.
    pub fn fig5(&self) -> String {
        tables::figure5(&evalcluster::figure5(evalcluster::des::DEFAULT_OVERHEAD_S))
    }

    /// Figure 6 is the graphical form of Table 9.
    pub fn fig6(&self) -> String {
        self.table9()
    }

    /// Figure 7: failure-mode histogram for GPT-4 and Llama-2 70B/7B.
    pub fn fig7(&self) -> String {
        let mut rows = Vec::new();
        for name in ["gpt-4", "llama-2-70b-chat", "llama-2-7b-chat"] {
            let model = self.model(name);
            let records = self.eval(model, vec![Variant::Original], 0);
            rows.push((name.to_owned(), failure_modes(name, &records)));
        }
        tables::figure7(&rows)
    }

    /// Figure 8: pass@k for the four best models (GPT-4 limited to 6
    /// samples, like the paper's rate-limited run).
    pub fn fig8(&self, max_k: usize) -> String {
        let mut curves: Vec<PassAtK> = Vec::new();
        for (name, k) in [
            ("gpt-4", max_k.min(6)),
            ("gpt-3.5", max_k),
            ("palm-2-bison", max_k),
            ("llama-2-70b-chat", max_k),
        ] {
            let model = self.model(name);
            curves.push(pass_at_k_cached(
                model,
                &self.dataset,
                k,
                self.stride,
                self.workers,
                &self.memo,
            ));
        }
        tables::figure8(&curves)
    }

    /// Figure 9: unit-test prediction study over all models' original-set
    /// answers.
    pub fn fig9(&self) -> String {
        let mut records = Vec::new();
        for model in &self.models {
            records.extend(self.eval(model, vec![Variant::Original], 0));
        }
        let lomo = leave_one_model_out(&records);
        let shap = shap_importance(&records, 200);
        tables::figure9(&lomo, &shap)
    }

    fn model(&self, name: &str) -> &SimulatedModel {
        self.models
            .iter()
            .find(|m| m.profile().name == name)
            .unwrap_or_else(|| panic!("unknown model {name}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A coarse-stride context shared by the smoke tests.
    fn quick() -> Experiments {
        Experiments::new(16)
    }

    #[test]
    fn static_tables_render() {
        let e = quick();
        assert!(e.table1().contains("Avg. words"));
        assert!(e.table2().contains("337"));
        assert!(e.table3().contains("Total cost range"));
        assert!(e.table7().contains("CloudEval-YAML"));
        assert!(e.table8().contains("Kubernetes"));
        assert!(e.fig5().contains("Speedup"));
    }

    #[test]
    fn fig7_renders_three_models() {
        let e = quick();
        let out = e.fig7();
        assert!(out.contains("gpt-4"));
        assert!(out.contains("llama-2-7b-chat"));
    }

    #[test]
    fn grid_reports_all_models_and_throughput() {
        let e = Experiments::with_workers(24, 4);
        let out = e.grid(&[Variant::Original]);
        assert!(out.contains("gpt-4"), "{out}");
        assert!(out.contains("records/s"), "{out}");
        assert!(out.contains("workers: 4"), "{out}");
        // The session memo was warmed by the grid run.
        assert!(!e.memo().is_empty());
    }

    #[test]
    fn repair_improves_every_model_and_drivers_agree() {
        let e = Experiments::with_workers(12, 4);
        let out = e.repair(2, FeedbackMode::BucketOnly);
        assert!(out.contains("pass@repair"), "{out}");
        assert!(
            out.contains("streamed vs barriered repair verdicts identical"),
            "{out}"
        );
        assert!(!out.contains("DIVERGED"), "{out}");
        // Every model's cumulative round-2 pass count strictly beats its
        // round-0 count when the feedback names the bucket.
        for line in out.lines().filter(|l| l.contains(" r0 ")) {
            let count = |tag: &str| -> usize {
                let at = line.find(tag).unwrap_or_else(|| panic!("{tag} in {line}"));
                line[at + tag.len()..]
                    .trim_start()
                    .split('/')
                    .next()
                    .and_then(|n| n.trim().parse().ok())
                    .unwrap_or_else(|| panic!("malformed row: {line}"))
            };
            assert!(count("r2") > count("r0"), "no repair gain on row: {line}");
        }
    }

    #[test]
    fn trace_breaks_down_stage_time_and_reconstructs_an_attempt() {
        let e = Experiments::with_workers(24, 4);
        let out = e.trace(&[Variant::Original]);
        assert!(out.contains("stage_service_us{stage=extract}"), "{out}");
        assert!(out.contains("stage_service_us{stage=score}"), "{out}");
        assert!(out.contains("-> consistent"), "{out}");
        assert!(!out.contains("VIOLATED"), "{out}");
        assert!(out.contains("span ring: "), "{out}");
        assert!(out.contains("repair_attempt"), "{out}");
        assert!(out.contains("generate"), "{out}");
    }

    #[test]
    fn pipeline_compare_reports_identical_outputs() {
        let e = Experiments::with_workers(48, 4);
        let out = e.pipeline(&[Variant::Original], 64, 2, true);
        assert!(out.contains("speedup"), "{out}");
        assert!(out.contains("remote generation"), "{out}");
        assert!(out.contains("prepared A/B"), "{out}");
        assert!(out.contains("identical"), "{out}");
        assert!(!out.contains("DIVERGED"), "{out}");
    }
}
