//! The `repro serve` target: boot a real `ceserve` instance over the
//! extended problem corpus, hammer it with the built-in load generator,
//! and verify that **every** response came back with scores
//! byte-identical to a direct pipeline run on the same candidate — the
//! HTTP boundary must be invisible.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use cedataset::Dataset;
use cescore::RefCache;
use ceserve::loadgen::{self, LoadGenConfig};
use ceserve::ServerConfig;
use cloudeval_core::harness::score_submission;
use evalcluster::memo::ScoreMemo;
use yamlkit::Yaml;

/// Knobs of one `repro serve` run.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// TCP port to bind (0 = ephemeral).
    pub port: u16,
    /// Server worker threads (HTTP pool and batch stage width).
    pub workers: usize,
    /// Total load-generator requests.
    pub requests: usize,
    /// Concurrent load-generator clients.
    pub clients: usize,
    /// Keep-alive connections per client thread (total concurrent
    /// connections = `clients * conns_per_client`).
    pub conns_per_client: usize,
    /// Optional JSONL verdict-store path (persisted on shutdown).
    pub memo_path: Option<PathBuf>,
    /// Extra scenario-family problems appended to the paper corpus.
    pub extended: usize,
}

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            port: 0,
            workers: cloudeval_core::harness::default_workers(),
            requests: 200,
            clients: 4,
            conns_per_client: 1,
            memo_path: None,
            extended: 30,
        }
    }
}

/// Runs the serve target and renders its report.
///
/// # Panics
///
/// Panics when the server cannot bind or the load run fails outright —
/// `repro` treats that as a reproduction failure.
pub fn serve_report(options: &ServeOptions) -> String {
    let dataset = Arc::new(Dataset::generate_extended(options.extended));
    let server = ceserve::spawn(
        (std::net::Ipv4Addr::LOCALHOST, options.port),
        Arc::clone(&dataset),
        ServerConfig {
            workers: options.workers,
            memo_path: options.memo_path.clone(),
            ..ServerConfig::default()
        },
    )
    .expect("bind serve port");
    let addr = server.addr();

    let corpus = loadgen::build_corpus(&dataset, 48);
    let report = loadgen::run(
        addr,
        &corpus,
        &LoadGenConfig {
            clients: options.clients.max(1),
            requests: options.requests,
            connections_per_client: options.conns_per_client.max(1),
            ..LoadGenConfig::default()
        },
    )
    .expect("load generator run");

    // Verification: every response must match a direct (HTTP-free)
    // pipeline run on the same candidate, byte for byte — the **whole**
    // verdict (scores, passed, answer class, extracted YAML, simulated
    // ms), not just the scores. Only the `cached` flag is excluded: it
    // reports cache state, which legitimately differs between a fresh
    // direct run and a warm server.
    let canonical = |mut verdict_value: Yaml| -> String {
        verdict_value.remove("cached");
        yamlkit::json::to_json(&verdict_value)
    };
    let mut expected: HashMap<usize, String> = HashMap::new();
    let mut verified = 0usize;
    let mut diverged = 0usize;
    let mut failures = 0usize;
    // Second axis: the served verdicts must also agree with the
    // **pre-refactor text path** — static metrics recomputed by
    // `score_pair_text` (every layer re-parsing) and the unit test
    // re-executed through `execute_uncached_text` — so the parse-once
    // document model is provably invisible at the HTTP boundary.
    let mut text_diverged = 0usize;
    let refs = RefCache::new();
    let by_id: HashMap<&str, &cedataset::Problem> = dataset
        .problems()
        .iter()
        .map(|p| (p.id.as_str(), p))
        .collect();
    for outcome in &report.outcomes {
        if outcome.status != 200 {
            failures += 1;
            continue;
        }
        let want = expected.entry(outcome.corpus_index).or_insert_with(|| {
            let item = &corpus[outcome.corpus_index];
            let problem = by_id[item.problem_id.as_str()];
            let verdict =
                score_submission(problem, item.variant, &item.raw, &ScoreMemo::new(), &refs);
            let yaml = llmsim::extract_yaml(&item.raw);
            let text_scores = cescore::score_pair_text(&problem.labeled_reference, &yaml);
            let text_exec = evalcluster::execute_uncached_text(&yaml, &problem.unit_test);
            if verdict.scores.static_metrics() != text_scores.static_metrics()
                || verdict.passed != text_exec.passed
                || verdict.simulated_ms != text_exec.simulated_ms
            {
                // Poison the expectation so the divergence is counted for
                // every response of this item.
                return String::from("TEXT-PATH-DIVERGED");
            }
            canonical(ceserve::api::verdict_to_yaml(&verdict))
        });
        if want == "TEXT-PATH-DIVERGED" {
            text_diverged += 1;
        } else if &canonical(outcome.body.clone()) == want {
            verified += 1;
        } else {
            diverged += 1;
        }
    }

    let stats = loadgen::fetch_stats(addr).unwrap_or(Yaml::Null);
    let metrics = loadgen::fetch_metrics(addr).unwrap_or_default();
    server.shutdown().expect("clean shutdown");

    let mut out = String::new();
    out.push_str(&format!(
        "served {} requests over {} clients x {} connections against {addr} ({} workers)\n",
        report.outcomes.len(),
        options.clients.max(1),
        options.conns_per_client.max(1),
        options.workers,
    ));
    out.push_str(&format!(
        "wall {:.2}s -> {:.0} requests/s ({} transport errors, {} non-200)\n",
        report.wall.as_secs_f64(),
        report.requests_per_sec(),
        report.transport_errors,
        failures,
    ));
    out.push_str(&format!(
        "client latency: p50 {:.2}ms, p99 {:.2}ms\n",
        report.latency_p50().as_secs_f64() * 1e3,
        report.latency_p99().as_secs_f64() * 1e3,
    ));
    let stat = |path: &[&str]| -> i64 { stats.get_path(path).and_then(Yaml::as_i64).unwrap_or(-1) };
    out.push_str(&format!(
        "memo: {} entries, {} hits / {} misses; response cache: {} entries, {} hits\n",
        stat(&["memo", "entries"]),
        stat(&["memo", "hits"]),
        stat(&["memo", "misses"]),
        stat(&["response_cache", "entries"]),
        stat(&["response_cache", "hits"]),
    ));
    out.push_str(&format!(
        "stages completed: {}; accept-queue rejections: {}\n",
        stat(&["stages", "completed"]),
        stat(&["connections", "rejected_busy"]),
    ));
    // One real series line from /v1/metrics, verbatim: CI greps the
    // serve output for `http_request_us_count` to prove the exposition
    // endpoint served a request-latency histogram during the smoke.
    let sample = metrics
        .lines()
        .find(|line| line.starts_with("http_request_us_count{endpoint=\"evaluate\"}"))
        .unwrap_or("http_request_us MISSING from /v1/metrics");
    out.push_str(&format!("metrics sample: {sample}\n"));
    out.push_str(&format!(
        "verification vs direct pipeline + pre-refactor text path: {verified} identical, {} DIVERGED -> {}\n",
        diverged + text_diverged,
        if diverged == 0 && text_diverged == 0 && failures == 0 && report.transport_errors == 0 {
            "identical"
        } else {
            "DIVERGED"
        },
    ));
    out
}

/// Smoke entry used by tests: tiny run, asserts the identical verdict.
pub fn smoke(requests: usize) -> String {
    serve_report(&ServeOptions {
        requests,
        clients: 2,
        workers: 2,
        extended: 0,
        ..ServeOptions::default()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_smoke_is_identical_to_direct_pipeline() {
        let report = smoke(24);
        assert!(report.contains("-> identical"), "{report}");
        assert!(report.contains("served 24 requests"), "{report}");
        assert!(report.contains("client latency: p50 "), "{report}");
        assert!(
            report.contains("metrics sample: http_request_us_count{endpoint=\"evaluate\"}"),
            "{report}"
        );
    }
}
