//! The 12 benchmark models and their calibration targets.
//!
//! Targets come straight from the paper: Table 5 gives per-variant
//! unit-test pass counts on the 337-problem splits, Table 6 gives few-shot
//! deltas, and Figure 7 gives the failure-mode mixture for three anchor
//! models (interpolated for the rest by tier).

use cedataset::Variant;

/// Model family, which controls failure style and augmentation
/// sensitivity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tier {
    /// Frontier proprietary chat models (GPT-4/GPT-3.5/PaLM-2).
    Proprietary,
    /// Large open chat models (Llama-2 70B/13B).
    OpenLarge,
    /// Small open chat models (Llama-2 7B, Llama 7B, LoRA).
    OpenSmall,
    /// Code-specialized models (WizardCoder, CodeLlama).
    Code,
}

/// Static description of a simulated model.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelProfile {
    /// Model name as reported in Table 4.
    pub name: &'static str,
    /// Parameter count in billions (`None` for undisclosed proprietary).
    pub size_b: Option<u32>,
    /// Open-source?
    pub open_source: bool,
    /// Family tier.
    pub tier: Tier,
    /// Expected unit-test passes on the 337 originals (Table 5 col 1).
    pub passes_original: usize,
    /// Expected passes on the simplified set (Table 5 col 2).
    pub passes_simplified: usize,
    /// Expected passes on the translated set; `None` = unsupported
    /// language (PaLM's English-only API).
    pub passes_translated: Option<usize>,
    /// Few-shot pass counts on the originals for 1/2/3 shots (Table 6);
    /// `None` entries fall back to the zero-shot count.
    pub fewshot_passes: [Option<usize>; 3],
    /// Failure-mode mixture over categories 1–5 (Figure 7), conditioned
    /// on failing. Need not be normalized.
    pub failure_weights: [f64; 5],
    /// Probability an answer is wrapped in prose/markdown (§3.1's
    /// post-processing motivation). Chat models chat; code models less so.
    pub wrap_prob: f64,
    /// Inference cost per 1k output tokens in USD (§3.4/Table 3 scale).
    pub cost_per_1k_tokens: f64,
}

/// Figure 7 anchors, conditioned on failure: [cat1, cat2, cat3, cat4, cat5].
const FAIL_GPT4: [f64; 5] = [8.0, 1.0, 42.0, 30.0, 77.0];
const FAIL_L70: [f64; 5] = [0.0, 2.0, 88.0, 37.0, 180.0];
const FAIL_L7: [f64; 5] = [2.0, 2.0, 97.0, 42.0, 181.0];
/// Code models emit more truncated / non-YAML answers.
const FAIL_CODE: [f64; 5] = [10.0, 30.0, 120.0, 40.0, 120.0];

/// All 12 models in Table 4 rank order.
pub fn all_models() -> Vec<ModelProfile> {
    vec![
        ModelProfile {
            name: "gpt-4",
            size_b: None,
            open_source: false,
            tier: Tier::Proprietary,
            passes_original: 179,
            passes_simplified: 164,
            passes_translated: Some(178),
            fewshot_passes: [Some(185), Some(181), Some(188)],
            failure_weights: FAIL_GPT4,
            wrap_prob: 0.25,
            cost_per_1k_tokens: 0.06,
        },
        ModelProfile {
            name: "gpt-3.5",
            size_b: None,
            open_source: false,
            tier: Tier::Proprietary,
            passes_original: 142,
            passes_simplified: 143,
            passes_translated: Some(132),
            fewshot_passes: [Some(150), Some(143), Some(154)],
            failure_weights: FAIL_GPT4,
            wrap_prob: 0.35,
            cost_per_1k_tokens: 0.002,
        },
        ModelProfile {
            name: "palm-2-bison",
            size_b: None,
            open_source: false,
            tier: Tier::Proprietary,
            passes_original: 120,
            passes_simplified: 97,
            passes_translated: None, // English-only API
            fewshot_passes: [None, None, None],
            failure_weights: FAIL_GPT4,
            wrap_prob: 0.30,
            cost_per_1k_tokens: 0.004,
        },
        ModelProfile {
            name: "llama-2-70b-chat",
            size_b: Some(70),
            open_source: true,
            tier: Tier::OpenLarge,
            passes_original: 30,
            passes_simplified: 24,
            passes_translated: Some(32),
            fewshot_passes: [Some(23), Some(26), Some(29)],
            failure_weights: FAIL_L70,
            wrap_prob: 0.65,
            cost_per_1k_tokens: 0.003,
        },
        ModelProfile {
            name: "llama-2-13b-chat",
            size_b: Some(13),
            open_source: true,
            tier: Tier::OpenLarge,
            passes_original: 26,
            passes_simplified: 17,
            passes_translated: Some(25),
            fewshot_passes: [None, None, None],
            failure_weights: FAIL_L70,
            wrap_prob: 0.70,
            cost_per_1k_tokens: 0.001,
        },
        ModelProfile {
            name: "wizardcoder-34b-v1.0",
            size_b: Some(34),
            open_source: true,
            tier: Tier::Code,
            passes_original: 24,
            passes_simplified: 31,
            passes_translated: Some(2),
            fewshot_passes: [None, None, None],
            failure_weights: FAIL_CODE,
            wrap_prob: 0.40,
            cost_per_1k_tokens: 0.002,
        },
        ModelProfile {
            name: "llama-2-7b-chat",
            size_b: Some(7),
            open_source: true,
            tier: Tier::OpenSmall,
            passes_original: 13,
            passes_simplified: 9,
            passes_translated: Some(5),
            fewshot_passes: [Some(14), Some(13), Some(15)],
            failure_weights: FAIL_L7,
            wrap_prob: 0.75,
            cost_per_1k_tokens: 0.0007,
        },
        ModelProfile {
            name: "wizardcoder-15b-v1.0",
            size_b: Some(15),
            open_source: true,
            tier: Tier::Code,
            passes_original: 12,
            passes_simplified: 11,
            passes_translated: Some(3),
            fewshot_passes: [None, None, None],
            failure_weights: FAIL_CODE,
            wrap_prob: 0.40,
            cost_per_1k_tokens: 0.001,
        },
        ModelProfile {
            name: "llama-7b",
            size_b: Some(7),
            open_source: true,
            tier: Tier::OpenSmall,
            passes_original: 12,
            passes_simplified: 7,
            passes_translated: Some(4),
            fewshot_passes: [None, None, None],
            failure_weights: FAIL_L7,
            wrap_prob: 0.55,
            cost_per_1k_tokens: 0.0007,
        },
        ModelProfile {
            name: "llama-13b-lora",
            size_b: Some(13),
            open_source: true,
            tier: Tier::OpenSmall,
            passes_original: 8,
            passes_simplified: 9,
            passes_translated: Some(4),
            fewshot_passes: [None, None, None],
            failure_weights: FAIL_L7,
            wrap_prob: 0.55,
            cost_per_1k_tokens: 0.001,
        },
        ModelProfile {
            name: "codellama-7b-instruct",
            size_b: Some(7),
            open_source: true,
            tier: Tier::Code,
            passes_original: 5,
            passes_simplified: 6,
            passes_translated: Some(4),
            fewshot_passes: [None, None, None],
            failure_weights: FAIL_CODE,
            wrap_prob: 0.45,
            cost_per_1k_tokens: 0.0007,
        },
        ModelProfile {
            name: "codellama-13b-instruct",
            size_b: Some(13),
            open_source: true,
            tier: Tier::Code,
            passes_original: 5,
            passes_simplified: 2,
            passes_translated: Some(5),
            fewshot_passes: [None, None, None],
            failure_weights: FAIL_CODE,
            wrap_prob: 0.45,
            cost_per_1k_tokens: 0.001,
        },
    ]
}

impl ModelProfile {
    /// Looks up a profile by name.
    pub fn by_name(name: &str) -> Option<ModelProfile> {
        all_models().into_iter().find(|m| m.name == name)
    }

    /// Target pass count for a dataset variant (zero-shot). `None` means
    /// the model cannot answer the variant (PaLM × translated).
    pub fn target_passes(&self, variant: Variant, shots: usize) -> Option<usize> {
        let base = match variant {
            Variant::Original => Some(self.passes_original),
            Variant::Simplified => Some(self.passes_simplified),
            Variant::Translated => self.passes_translated,
        }?;
        if shots == 0 || variant != Variant::Original {
            return Some(base);
        }
        Some(
            self.fewshot_passes
                .get(shots - 1)
                .copied()
                .flatten()
                .unwrap_or(base),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_models_in_rank_order() {
        let models = all_models();
        assert_eq!(models.len(), 12);
        // Unit-test rank order is strictly decreasing by original passes
        // (except ties at the bottom, matching Table 5).
        for pair in models.windows(2) {
            assert!(pair[0].passes_original >= pair[1].passes_original);
        }
        assert_eq!(models[0].name, "gpt-4");
    }

    #[test]
    fn totals_match_table_4_unit_test_scores() {
        // Table 4's unit-test column equals (sum of Table 5 passes)/1011.
        let gpt4 = ModelProfile::by_name("gpt-4").unwrap();
        let total = gpt4.passes_original + gpt4.passes_simplified + gpt4.passes_translated.unwrap();
        assert!((total as f64 / 1011.0 - 0.515).abs() < 0.01);
        let gpt35 = ModelProfile::by_name("gpt-3.5").unwrap();
        let total =
            gpt35.passes_original + gpt35.passes_simplified + gpt35.passes_translated.unwrap();
        assert!((total as f64 / 1011.0 - 0.412).abs() < 0.01);
    }

    #[test]
    fn palm_has_no_translated_target() {
        let palm = ModelProfile::by_name("palm-2-bison").unwrap();
        assert_eq!(palm.target_passes(Variant::Translated, 0), None);
        assert_eq!(palm.target_passes(Variant::Original, 0), Some(120));
    }

    #[test]
    fn fewshot_targets_match_table_6() {
        let gpt35 = ModelProfile::by_name("gpt-3.5").unwrap();
        assert_eq!(gpt35.target_passes(Variant::Original, 1), Some(150));
        assert_eq!(gpt35.target_passes(Variant::Original, 3), Some(154));
        let l70 = ModelProfile::by_name("llama-2-70b-chat").unwrap();
        assert_eq!(l70.target_passes(Variant::Original, 1), Some(23));
        // Models without few-shot data fall back to zero-shot.
        let w34 = ModelProfile::by_name("wizardcoder-34b-v1.0").unwrap();
        assert_eq!(w34.target_passes(Variant::Original, 2), Some(24));
    }

    #[test]
    fn proprietary_beat_open_source_by_a_large_gap() {
        let models = all_models();
        let best_open = models
            .iter()
            .filter(|m| m.open_source)
            .map(|m| m.passes_original)
            .max()
            .unwrap();
        let worst_prop = models
            .iter()
            .filter(|m| !m.open_source)
            .map(|m| m.passes_original)
            .min()
            .unwrap();
        assert!(worst_prop as f64 >= best_open as f64 * 3.0);
    }
}
