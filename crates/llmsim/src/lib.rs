//! # llmsim
//!
//! Simulated LLMs for the CloudEval-YAML benchmark, plus the §3.1 YAML
//! generation pipeline around them: the universal query interface with
//! parallel dispatch, and response post-processing.
//!
//! ## The substitution
//!
//! The paper evaluates 12 real models (GPT-4 … CodeLlama). Offline, each
//! becomes a [`SimulatedModel`]: a pure `prompt -> text` function whose
//! behaviour is calibrated against the paper's published numbers —
//! per-variant unit-test pass counts (Table 5), few-shot deltas (Table 6),
//! failure-mode mixtures (Figure 7) — with pass probability following a
//! logistic skill/difficulty model (answer length, category, code context;
//! Figure 6). Responses are real text with real noise: prose wrappers,
//! markdown fences, truncated YAML, wrong kinds — so the extraction,
//! scoring and unit-test layers all do genuine work.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use cedataset::{Dataset, Variant};
//! use llmsim::{extract_yaml, GenParams, LanguageModel, ModelProfile, SimulatedModel};
//!
//! let dataset = Arc::new(Dataset::generate());
//! let gpt4 = SimulatedModel::new(ModelProfile::by_name("gpt-4").unwrap(), Arc::clone(&dataset));
//!
//! let problem = &dataset.problems()[0];
//! let prompt = cedataset::fewshot::build_prompt(&problem.prompt_body(Variant::Original), 0);
//! let raw = gpt4.generate(&prompt, &GenParams::default());
//! let yaml = extract_yaml(&raw);
//! let scores = cescore::score_pair(&problem.labeled_reference, &yaml);
//! assert!(scores.bleu >= 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corrupt;
pub mod difficulty;
mod model;
mod postprocess;
pub mod profiles;
pub mod query;
pub mod repair;

pub use corrupt::AnswerCategory;
pub use model::{standard_models, GenParams, LanguageModel, SimulatedModel};
pub use postprocess::extract_yaml;
pub use profiles::{all_models, ModelProfile, Tier};
pub use query::{
    auto_batch_size, query_batch, query_stream, BatchReport, QueryConfig, StreamReport,
};
pub use repair::{
    parse_repair_prompt, repair_prompt, repair_query, synthesize_feedback, FeedbackMode,
};

/// Classifies an extracted answer into Figure 7's six categories, given
/// the unit-test verdict. This is the analysis-side mirror of the
/// generation-side [`AnswerCategory`].
pub fn classify_answer(
    extracted_yaml: &str,
    reference: &str,
    passed_unit_test: bool,
) -> AnswerCategory {
    if passed_unit_test {
        return AnswerCategory::Correct;
    }
    let line_count = extracted_yaml.trim().lines().count();
    if extracted_yaml.trim().is_empty() || line_count < 3 {
        return AnswerCategory::EmptyOrTiny;
    }
    // Envoy configurations have no `kind`; the paper searches for
    // `static_resources` instead (§4.1 footnote 2).
    let key_field = if reference.contains("static_resources") {
        "static_resources"
    } else {
        "kind"
    };
    if !extracted_yaml.contains(key_field) {
        return AnswerCategory::NoKind;
    }
    let Ok(docs) = yamlkit::parse(extracted_yaml) else {
        return AnswerCategory::IncompleteYaml;
    };
    if docs.is_empty() {
        return AnswerCategory::IncompleteYaml;
    }
    let ref_kind = yamlkit::parse(reference)
        .ok()
        .and_then(|d| d.first().map(|n| n.to_value()))
        .and_then(|v| v.get("kind").map(yamlkit::Yaml::render_scalar));
    let got_kind = docs
        .first()
        .map(|n| n.to_value())
        .and_then(|v| v.get("kind").map(yamlkit::Yaml::render_scalar));
    match (ref_kind, got_kind) {
        (Some(want), Some(got)) if want != got => AnswerCategory::WrongKind,
        (Some(_), None) => AnswerCategory::NoKind,
        _ => AnswerCategory::FailsTest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const REF: &str = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n";

    #[test]
    fn classify_matches_figure_7_definitions() {
        assert_eq!(classify_answer("", REF, false), AnswerCategory::EmptyOrTiny);
        assert_eq!(
            classify_answer("one\ntwo", REF, false),
            AnswerCategory::EmptyOrTiny
        );
        assert_eq!(
            classify_answer("line\nline\nline\nprose without the field", REF, false),
            AnswerCategory::NoKind
        );
        assert_eq!(
            classify_answer("kind: Pod\nbroken: [\nmore\n", REF, false),
            AnswerCategory::IncompleteYaml
        );
        assert_eq!(
            classify_answer(
                "apiVersion: v1\nkind: Service\nmetadata:\n  name: y\n",
                REF,
                false
            ),
            AnswerCategory::WrongKind
        );
        assert_eq!(
            classify_answer(
                "apiVersion: v1\nkind: Pod\nmetadata:\n  name: other\n",
                REF,
                false
            ),
            AnswerCategory::FailsTest
        );
        assert_eq!(classify_answer(REF, REF, true), AnswerCategory::Correct);
    }

    #[test]
    fn envoy_uses_static_resources_field() {
        let envoy_ref = "static_resources:\n  listeners: []\n";
        assert_eq!(
            classify_answer("a\nb\nc\nd: 1\ne: 2\n", envoy_ref, false),
            AnswerCategory::NoKind
        );
        assert_eq!(
            classify_answer(
                "static_resources:\n  listeners: []\n  clusters: []\n",
                envoy_ref,
                false
            ),
            AnswerCategory::FailsTest
        );
    }
}
