//! §3.1 post-processing: extracting a clean YAML file from a chatty LLM
//! response.
//!
//! The three policies from the paper, in order:
//! 1. remove all content before a line containing the keyword `Here`;
//! 2. remove all content before the line starting the YAML document
//!    (`apiVersion:` for Kubernetes, `static_resources:` for Envoy);
//! 3. extract text enclosed by delimiters: ``` fences, `<code>`…`</code>`,
//!    `\begin{code}`…`\end{code}`, `START SOLUTION`…`END SOLUTION`.

/// Extracts the YAML payload from a raw model response.
///
/// # Examples
///
/// ```
/// let raw = "Sure! Here is the YAML:\n```yaml\nkind: Pod\nmetadata:\n  name: x\n```\nEnjoy!";
/// let clean = llmsim::extract_yaml(raw);
/// assert!(clean.starts_with("kind: Pod"));
/// assert!(!clean.contains("```"));
/// ```
pub fn extract_yaml(response: &str) -> String {
    // Policy 3 first when delimiters exist: they bound the payload on both
    // sides, which the prefix-cut policies cannot do.
    for (open, close) in [
        ("```", "```"),
        ("<code>", "</code>"),
        ("\\begin{code}", "\\end{code}"),
        ("START SOLUTION", "END SOLUTION"),
    ] {
        if let Some(inner) = extract_delimited(response, open, close) {
            // Fences may still carry a language tag line or prose; recurse
            // once to apply the prefix policies inside.
            return strip_prefix_noise(&inner);
        }
    }
    strip_prefix_noise(response)
}

fn extract_delimited(text: &str, open: &str, close: &str) -> Option<String> {
    let start = text.find(open)?;
    let after_open = &text[start + open.len()..];
    let end = after_open.find(close)?;
    let mut inner = &after_open[..end];
    // ```yaml / ```yml language tags occupy the first line.
    if open == "```" {
        if let Some(nl) = inner.find('\n') {
            let first = inner[..nl].trim();
            if first.len() <= 8 && first.chars().all(|c| c.is_ascii_alphanumeric()) {
                inner = &inner[nl + 1..];
            }
        }
    }
    Some(inner.trim_matches('\n').to_owned())
}

fn strip_prefix_noise(text: &str) -> String {
    let lines: Vec<&str> = text.lines().collect();
    // Policy 1: drop everything up to and including a "Here" prose line.
    let mut start = 0;
    for (i, line) in lines.iter().enumerate() {
        if line.contains("Here") && !line.trim_start().starts_with('#') && line.contains(' ') {
            start = i + 1;
            break;
        }
    }
    // Policy 2: a document-start keyword overrides.
    for (i, line) in lines.iter().enumerate() {
        let t = line.trim_start();
        if t.starts_with("apiVersion:") || t.starts_with("static_resources:") {
            // Only move forward; document start cannot precede policy 1's cut.
            if i >= start {
                start = i;
            }
            break;
        }
    }
    let mut kept: Vec<&str> = lines[start.min(lines.len())..].to_vec();
    // Trim trailing prose: lines that look like sentences, not YAML.
    while let Some(last) = kept.last() {
        let t = last.trim();
        let looks_prose = !t.is_empty()
            && !t.contains(':')
            && !t.starts_with('-')
            && !t.starts_with('#')
            && t.contains(' ');
        if looks_prose || t.is_empty() {
            kept.pop();
        } else {
            break;
        }
    }
    let mut out = kept.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const YAML: &str = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n";

    #[test]
    fn passthrough_for_clean_yaml() {
        assert_eq!(extract_yaml(YAML), YAML);
    }

    #[test]
    fn strips_here_prefix() {
        let raw = format!("Sure thing. Here is what you need:\n{YAML}");
        assert_eq!(extract_yaml(&raw), YAML);
    }

    #[test]
    fn strips_before_api_version() {
        let raw = format!("I suggest the following configuration.\n{YAML}");
        assert_eq!(extract_yaml(&raw), YAML);
    }

    #[test]
    fn strips_before_static_resources() {
        let raw = "The Envoy config:\nstatic_resources:\n  listeners: []\n";
        assert_eq!(extract_yaml(raw), "static_resources:\n  listeners: []\n");
    }

    #[test]
    fn extracts_fenced_block_with_language_tag() {
        let raw = format!("Answer below.\n```yaml\n{YAML}```\nHope this helps!");
        assert_eq!(extract_yaml(&raw), YAML);
    }

    #[test]
    fn extracts_code_tags() {
        let raw = format!("<code>\n{YAML}</code>");
        assert_eq!(extract_yaml(&raw), YAML);
    }

    #[test]
    fn extracts_latex_code_env() {
        let raw = format!("\\begin{{code}}\n{YAML}\\end{{code}}");
        assert_eq!(extract_yaml(&raw), YAML);
    }

    #[test]
    fn extracts_start_end_solution() {
        let raw = format!("START SOLUTION\n{YAML}END SOLUTION");
        assert_eq!(extract_yaml(&raw), YAML);
    }

    #[test]
    fn trailing_prose_removed() {
        let raw = format!("{YAML}This completes the configuration you asked about.");
        assert_eq!(extract_yaml(&raw), YAML);
    }

    #[test]
    fn prose_only_yields_little_or_nothing() {
        let out = extract_yaml("I cannot produce configuration for that request right now.");
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn comments_with_here_are_not_cut_points() {
        let raw = "# Here we define the pod\napiVersion: v1\nkind: Pod\nmetadata:\n  name: x\n";
        let out = extract_yaml(raw);
        assert!(out.contains("kind: Pod"));
    }
}
