//! The fail–learn–refine repair side of the simulation: prompts that
//! carry a prior attempt plus synthesized deployment feedback, and the
//! calibrated per-bucket probability that a model repairs its own answer.
//!
//! The repair loop reuses the normal generation path end to end — a
//! repair request is just a prompt (built by [`repair_prompt`]) fed to
//! [`LanguageModel::generate`], so querying, extraction, scoring and
//! substrate execution all run unchanged. [`SimulatedModel`] recognizes
//! the repair markers and draws from its repair distribution instead of
//! its first-attempt distribution: when the feedback names the taxonomy
//! bucket that actually explains the prior attempt, the fix lands with a
//! profile-dependent probability ([`ModelProfile::repair_prob`]); with
//! vague or absent feedback it falls to [`ModelProfile::repair_floor`] —
//! the paper's observation that actionable error messages, not mere
//! retry, are what close the loop.
//!
//! [`SimulatedModel`]: crate::SimulatedModel
//! [`LanguageModel::generate`]: crate::LanguageModel::generate

use substrate::taxonomy::{Bucket, Diagnosis};

use crate::model::{GenParams, LanguageModel};
use crate::profiles::ModelProfile;

/// How much of the taxonomy diagnosis the repair prompt reveals — the
/// feedback-ablation axis of the repair experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FeedbackMode {
    /// Bucket, offending subject and raw error detail.
    Full,
    /// The taxonomy bucket label alone.
    BucketOnly,
    /// Only "it failed" — the retry-without-learning baseline.
    None,
}

impl FeedbackMode {
    /// All modes, ablation order.
    pub const ALL: [FeedbackMode; 3] = [
        FeedbackMode::Full,
        FeedbackMode::BucketOnly,
        FeedbackMode::None,
    ];

    /// Stable CLI/wire label.
    pub fn label(self) -> &'static str {
        match self {
            FeedbackMode::Full => "full",
            FeedbackMode::BucketOnly => "bucket-only",
            FeedbackMode::None => "none",
        }
    }

    /// Inverse of [`FeedbackMode::label`].
    pub fn from_label(label: &str) -> Option<FeedbackMode> {
        FeedbackMode::ALL.into_iter().find(|m| m.label() == label)
    }
}

impl std::fmt::Display for FeedbackMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Renders deployment feedback from a taxonomy diagnosis under a
/// [`FeedbackMode`]. A failure with no diagnosis (legacy memo entries)
/// reads as bucket `unknown`.
pub fn synthesize_feedback(diagnosis: Option<&Diagnosis>, mode: FeedbackMode) -> String {
    let bucket_line = |d: Option<&Diagnosis>| {
        format!(
            "error bucket: {}",
            d.map_or(Bucket::Unknown, |d| d.bucket).label()
        )
    };
    match mode {
        FeedbackMode::None => "the deployment failed; no diagnostics were collected.".to_owned(),
        FeedbackMode::BucketOnly => bucket_line(diagnosis),
        FeedbackMode::Full => {
            let mut out = bucket_line(diagnosis);
            if let Some(d) = diagnosis {
                if let Some(subject) = &d.subject {
                    out.push_str("\noffending subject: ");
                    out.push_str(subject);
                }
                if let Some(detail) = d.raw.lines().next().filter(|l| !l.trim().is_empty()) {
                    out.push_str("\ndetail: ");
                    out.push_str(detail.trim());
                }
            }
            out
        }
    }
}

const PRIOR_MARKER_PREFIX: &str = "=== prior attempt (round ";
const PRIOR_MARKER_SUFFIX: &str = ") ===\n";
const FEEDBACK_MARKER: &str = "=== deployment feedback ===\n";

/// Builds a repair prompt: the original problem body, the prior
/// candidate, and the synthesized feedback, joined by the markers
/// [`parse_repair_prompt`] recognizes. `round` is the 1-based repair
/// round the prior attempt failed in.
pub fn repair_prompt(problem_body: &str, prior: &str, feedback: &str, round: usize) -> String {
    format!(
        "{problem_body}\n\nA prior attempt failed in deployment; return only the corrected YAML configuration.\n\n{PRIOR_MARKER_PREFIX}{round}{PRIOR_MARKER_SUFFIX}{prior}\n{FEEDBACK_MARKER}{feedback}\n"
    )
}

/// A repair prompt decomposed back into its parts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsedRepair {
    /// 1-based repair round of the prior attempt.
    pub round: usize,
    /// The candidate text the feedback is about.
    pub prior: String,
    /// The feedback section, verbatim.
    pub feedback: String,
}

impl ParsedRepair {
    /// The taxonomy bucket the feedback names, if any.
    pub fn named_bucket(&self) -> Option<Bucket> {
        let label = self
            .feedback
            .lines()
            .find_map(|l| l.trim().strip_prefix("error bucket: "))?;
        Bucket::from_label(label.trim())
    }

    /// Whether the feedback carries structured diagnostics beyond the
    /// bucket (the [`FeedbackMode::Full`] extras).
    pub fn has_subject(&self) -> bool {
        self.feedback
            .lines()
            .any(|l| l.trim().starts_with("offending subject: "))
    }
}

/// Recognizes and decomposes a [`repair_prompt`]; `None` for ordinary
/// generation prompts.
pub fn parse_repair_prompt(prompt: &str) -> Option<ParsedRepair> {
    let start = prompt.find(PRIOR_MARKER_PREFIX)?;
    let after = &prompt[start + PRIOR_MARKER_PREFIX.len()..];
    let close = after.find(PRIOR_MARKER_SUFFIX)?;
    let round: usize = after[..close].trim().parse().ok()?;
    let rest = &after[close + PRIOR_MARKER_SUFFIX.len()..];
    let fb = rest.find(FEEDBACK_MARKER)?;
    Some(ParsedRepair {
        round,
        prior: rest[..fb].trim_end_matches('\n').to_owned(),
        feedback: rest[fb + FEEDBACK_MARKER.len()..].trim().to_owned(),
    })
}

/// One repair round through any [`LanguageModel`]: builds the repair
/// prompt and runs it through the model's ordinary `generate` path.
pub fn repair_query(
    model: &dyn LanguageModel,
    problem_body: &str,
    prior: &str,
    feedback: &str,
    round: usize,
    params: &GenParams,
) -> String {
    model.generate(&repair_prompt(problem_body, prior, feedback, round), params)
}

impl ModelProfile {
    /// Base repair ability, derived from the calibrated zero-shot pass
    /// count: a model that solves more problems outright also converts
    /// more feedback into fixes. Ranges ≈0.26 (CodeLlama-7B) to ≈0.57
    /// (GPT-4).
    pub fn repair_strength(&self) -> f64 {
        0.25 + 0.6 * (self.passes_original as f64 / 337.0)
    }

    /// Probability one repair round fixes the candidate when the feedback
    /// names the bucket that actually explains the failure. Buckets that
    /// localize the fault (a parse error, an unknown field) are easier to
    /// act on than a bare failing assertion.
    pub fn repair_prob(&self, bucket: Bucket) -> f64 {
        let multiplier = match bucket {
            Bucket::YamlSyntax => 1.0,
            Bucket::SchemaViolation => 0.92,
            Bucket::SelectorMismatch => 0.88,
            Bucket::BadReference => 0.84,
            Bucket::MissingResource => 0.78,
            Bucket::QuotaExceeded => 0.7,
            Bucket::ProbeTimeout => 0.6,
            Bucket::ProbeFailed => 0.55,
            Bucket::Unknown => 0.35,
        };
        (self.repair_strength() * multiplier).clamp(0.0, 0.95)
    }

    /// Repair probability under vague, absent, or implausible feedback —
    /// retrying without learning. Much lower than any named-bucket rate.
    pub fn repair_floor(&self) -> f64 {
        0.12 * self.repair_strength() + 0.02
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diagnosis(msg: &str) -> Diagnosis {
        substrate::taxonomy::classify_message(msg)
    }

    #[test]
    fn prompt_round_trips_through_the_parser() {
        let body = "Generate a pod named web.";
        let prior = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web";
        let feedback = "error bucket: schema-violation\noffending subject: containerz";
        let prompt = repair_prompt(body, prior, feedback, 2);
        let parsed = parse_repair_prompt(&prompt).expect("repair prompt recognized");
        assert_eq!(parsed.round, 2);
        assert_eq!(parsed.prior, prior);
        assert_eq!(parsed.feedback, feedback);
        assert_eq!(parsed.named_bucket(), Some(Bucket::SchemaViolation));
        assert!(parsed.has_subject());
        assert!(prompt.contains(body));
        // Ordinary prompts are not repair prompts.
        assert!(parse_repair_prompt(body).is_none());
    }

    #[test]
    fn feedback_modes_reveal_progressively_more() {
        let d = diagnosis(
            "Pod in version \"v1\" cannot be handled as a Pod: strict decoding error: unknown field \"containerz\"",
        );
        let none = synthesize_feedback(Some(&d), FeedbackMode::None);
        let bucket = synthesize_feedback(Some(&d), FeedbackMode::BucketOnly);
        let full = synthesize_feedback(Some(&d), FeedbackMode::Full);
        assert!(!none.contains("error bucket:"));
        assert_eq!(bucket, "error bucket: schema-violation");
        assert!(full.starts_with("error bucket: schema-violation"));
        assert!(full.contains("offending subject: containerz"));
        assert!(full.contains("detail: "));
        // Legacy verdicts with no diagnosis still name a bucket.
        assert_eq!(
            synthesize_feedback(None, FeedbackMode::BucketOnly),
            "error bucket: unknown"
        );
    }

    #[test]
    fn feedback_mode_labels_round_trip() {
        for mode in FeedbackMode::ALL {
            assert_eq!(FeedbackMode::from_label(mode.label()), Some(mode));
            assert_eq!(mode.to_string(), mode.label());
        }
        assert_eq!(FeedbackMode::from_label("verbose"), None);
    }

    #[test]
    fn repair_probabilities_are_ordered_and_bounded() {
        for profile in crate::profiles::all_models() {
            let strength = profile.repair_strength();
            assert!((0.25..=0.85).contains(&strength), "{}", profile.name);
            for bucket in Bucket::ALL {
                let p = profile.repair_prob(bucket);
                assert!((0.0..=0.95).contains(&p));
                // Localizing buckets are easier to act on than the
                // generic ones, and naming any bucket beats the floor.
                assert!(p <= profile.repair_prob(Bucket::YamlSyntax));
                assert!(p >= profile.repair_prob(Bucket::Unknown));
                assert!(
                    profile.repair_floor() < p,
                    "{}: floor must undercut {bucket}",
                    profile.name
                );
            }
        }
        // Stronger models repair better.
        let gpt4 = ModelProfile::by_name("gpt-4").unwrap();
        let cl7 = ModelProfile::by_name("codellama-7b-instruct").unwrap();
        assert!(gpt4.repair_prob(Bucket::YamlSyntax) > cl7.repair_prob(Bucket::YamlSyntax));
    }
}
