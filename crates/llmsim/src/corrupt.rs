//! Answer realization: turning a (problem, outcome category) pair into
//! response text with the failure anatomy of Figure 7 and the prose/
//! markdown wrappers that motivate §3.1's post-processing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use yamlkit::labels::{MatchRule, MatchTree};
use yamlkit::Yaml;

use cedataset::Problem;

/// The six answer categories of Figure 7, ordered by distance from
/// correct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum AnswerCategory {
    /// Empty or fewer than 3 lines.
    EmptyOrTiny = 1,
    /// Longer than 3 lines but no `kind` (or `static_resources`) field.
    NoKind = 2,
    /// Contains `kind` but is not complete/valid YAML.
    IncompleteYaml = 3,
    /// Valid YAML, wrong `kind`.
    WrongKind = 4,
    /// Valid YAML, right kind, fails the unit test.
    FailsTest = 5,
    /// Passes the unit test.
    Correct = 6,
}

impl AnswerCategory {
    /// All categories in Figure 7 order.
    pub const ALL: [AnswerCategory; 6] = [
        AnswerCategory::EmptyOrTiny,
        AnswerCategory::NoKind,
        AnswerCategory::IncompleteYaml,
        AnswerCategory::WrongKind,
        AnswerCategory::FailsTest,
        AnswerCategory::Correct,
    ];
}

/// Deterministic seed from generation coordinates.
pub fn answer_seed(
    model: &str,
    problem_id: &str,
    variant_tag: u8,
    shots: usize,
    sample: u64,
) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    eat(model.as_bytes());
    eat(b"|");
    eat(problem_id.as_bytes());
    eat(&[variant_tag]);
    eat(&shots.to_le_bytes());
    eat(&sample.to_le_bytes());
    h
}

/// Realizes the raw (pre-post-processing) answer text for a category.
pub fn realize(problem: &Problem, category: AnswerCategory, seed: u64, wrap_prob: f64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let body = match category {
        AnswerCategory::EmptyOrTiny => return tiny_answer(&mut rng),
        AnswerCategory::NoKind => return prose_answer(problem, &mut rng),
        AnswerCategory::IncompleteYaml => incomplete_yaml(problem, &mut rng),
        AnswerCategory::WrongKind => wrong_kind(problem, &mut rng),
        AnswerCategory::FailsTest => corrupted_reference(problem, &mut rng),
        AnswerCategory::Correct => correct_answer(problem, &mut rng),
    };
    if rng.gen_bool(wrap_prob) {
        wrap(&body, &mut rng)
    } else {
        body
    }
}

fn tiny_answer(rng: &mut StdRng) -> String {
    match rng.gen_range(0..4) {
        0 => String::new(),
        1 => "Sorry, I can't help with that.".to_owned(),
        2 => "yaml".to_owned(),
        _ => "apiVersion: v1".to_owned(),
    }
}

fn prose_answer(problem: &Problem, rng: &mut StdRng) -> String {
    let topic = problem.category.label();
    match rng.gen_range(0..3) {
        0 => format!(
            "To accomplish this you need to create a {topic} resource.\nFirst, open your editor and define the metadata.\nThen configure the spec section according to your needs.\nFinally apply it with the CLI tool.\nLet me know if you need more details about any step."
        ),
        1 => format!(
            "There are several ways to configure a {topic}.\nThe most common approach is to use the declarative API.\nYou should consult the official documentation for the full schema.\nA minimal example would include the resource metadata and desired state.\nRemember to validate the file before applying it."
        ),
        _ => format!(
            "I understand you want to set up a {topic} for your cluster.\nUnfortunately the exact fields depend on your environment version.\nGenerally you define the resource name and the desired configuration.\nAfter that the controller reconciles the state automatically.\nPlease share your cluster version for a precise answer."
        ),
    }
}

fn incomplete_yaml(problem: &Problem, rng: &mut StdRng) -> String {
    let reference = problem.clean_reference();
    let lines: Vec<&str> = reference.lines().collect();
    // Keep the head (always including the kind line), then break the
    // document with an unterminated flow collection.
    let kind_idx = lines
        .iter()
        .position(|l| l.starts_with("kind:") || l.starts_with("static_resources"))
        .unwrap_or(0);
    let keep = (lines.len() * rng.gen_range(40..70) / 100).max(kind_idx + 1);
    let mut out: Vec<String> = lines.iter().take(keep).map(|s| (*s).to_owned()).collect();
    out.push("spec: [unterminated".to_owned());
    out.join("\n")
}

fn wrong_kind(problem: &Problem, rng: &mut StdRng) -> String {
    let reference = problem.clean_reference();
    let actual_kind = yamlkit::parse(&reference)
        .ok()
        .and_then(|docs| docs.first().map(|d| d.to_value()))
        .and_then(|v| v.get("kind").map(Yaml::render_scalar))
        .unwrap_or_else(|| "Pod".to_owned());
    let replacements = [
        "Pod",
        "Deployment",
        "Service",
        "ConfigMap",
        "DaemonSet",
        "Job",
    ];
    let wrong = replacements
        .iter()
        .filter(|k| **k != actual_kind)
        .nth(rng.gen_range(0..replacements.len() - 1) % (replacements.len() - 1))
        .copied()
        .unwrap_or("ConfigMap");
    if reference.contains("static_resources") {
        // Envoy answers of this class answer with a Kubernetes object.
        return format!(
            "apiVersion: v1\nkind: {wrong}\nmetadata:\n  name: envoy-config\nspec: {{}}\n"
        );
    }
    reference.replacen(
        &format!("kind: {actual_kind}"),
        &format!("kind: {wrong}"),
        1,
    )
}

/// Valid YAML, right kind, but critical fields corrupted so the unit test
/// fails.
///
/// Corruption targets the fields functional tests actually assert — label
/// selectors, images, ports, values — so a category-5 answer reliably
/// fails its unit test (the calibration in `difficulty` depends on this).
fn corrupted_reference(problem: &Problem, rng: &mut StdRng) -> String {
    let reference = problem.clean_reference();
    let Ok(docs) = yamlkit::parse(&reference) else {
        return reference;
    };
    let mut values: Vec<Yaml> = docs.iter().map(yamlkit::Node::to_value).collect();
    let mut any_changed = false;
    for doc in &mut values {
        let mut paths = Vec::new();
        collect_scalar_paths(doc, &mut Vec::new(), &mut paths);
        paths.retain(|p| {
            let last = p.last().map(String::as_str).unwrap_or("");
            if matches!(last, "kind" | "apiVersion" | "@type") {
                return false;
            }
            // `metadata.name` stays intact (identity: "right kind" class);
            // every other `name` field is fair game.
            !(last == "name" && p.len() >= 2 && p[p.len() - 2] == "metadata")
        });
        if paths.is_empty() {
            continue;
        }
        // Assertion-bearing fields first: label maps (their change breaks
        // selectors and lookups), data payloads, and commonly-checked
        // leaves.
        let checked_leaves = [
            "image",
            "containerPort",
            "hostPort",
            "port",
            "value",
            "replicas",
            "host",
            "schedule",
            "storage",
            "cpu",
            "memory",
            "prefix",
            "cluster",
            "subset",
            "weight",
            "mountPath",
            "path",
            "simple",
            "port_value",
            "mode",
            "number",
            "name",
            "cluster_name",
            "serviceName",
        ];
        let checked_segments = [
            "labels",
            "matchLabels",
            "selector",
            "data",
            "stringData",
            "hard",
            "rules",
            "subjects",
            "roleRef",
            "accessModes",
            "env",
            "scaleTargetRef",
            "policyTypes",
        ];
        let critical: Vec<Vec<String>> = paths
            .iter()
            .filter(|p| {
                // List items end in "[i]"; the semantic leaf name is the
                // last non-index segment.
                let last = p
                    .iter()
                    .rev()
                    .find(|seg| !seg.starts_with('['))
                    .map(String::as_str)
                    .unwrap_or("");
                p.iter().any(|seg| checked_segments.contains(&seg.as_str()))
                    || checked_leaves.contains(&last)
            })
            .cloned()
            .collect();
        let targets: Vec<Vec<String>> = if critical.is_empty() {
            // No obviously-checked fields: corrupt half of everything.
            let mut t = paths.clone();
            let keep = t.len().div_ceil(2);
            while t.len() > keep {
                let drop = rng.gen_range(0..t.len());
                t.remove(drop);
            }
            t
        } else {
            // Corrupt every critical field; the answer is recognizably an
            // attempt but functionally wrong everywhere it matters.
            critical
        };
        for path in &targets {
            if let Some(slot) = get_mut_path(doc, path) {
                *slot = mutate_scalar(slot, rng);
                any_changed = true;
            }
        }
    }
    if !any_changed {
        // Fallback: append a bogus field that flips dictionary equality.
        if let Some(first) = values.first_mut() {
            first.insert("bogusField", Yaml::Str("misconfigured".into()));
        }
    }
    yamlkit::emit_all(&values)
}

/// A correct answer: textually exact, reordered, decorated with benign
/// extra fields, or semantically equivalent with wildcard-labeled fields
/// renamed. All variants pass the unit test; only the first is textually
/// identical to the reference, mirroring Table 4's gap between the exact-
/// match and unit-test columns.
fn correct_answer(problem: &Problem, rng: &mut StdRng) -> String {
    let reference = problem.clean_reference();
    let style = rng.gen_range(0..10);
    if style < 2 {
        return reference; // verbatim
    }
    let Ok(docs) = yamlkit::parse(&problem.labeled_reference) else {
        return reference;
    };
    let mut values: Vec<Yaml> = docs.iter().map(yamlkit::Node::to_value).collect();
    if style < 5 {
        // Reorder mapping keys (kv-exact still passes; exact match fails).
        for v in &mut values {
            rotate_map_keys(v);
        }
    } else if style < 7 {
        // Benign extra content: an annotation or default no test asserts
        // and no selector reads. Functionally correct, dictionary-unequal,
        // wildcard IoU < 1 — the "passing but noisy" answers that keep the
        // paper's unit-test predictor honest (Figure 9's 5-30% errors).
        for v in &mut values {
            if let Some(meta) = v.get_mut("metadata") {
                let note =
                    ["managed-by: llm", "generated: true", "reviewed: no"][rng.gen_range(0..3)];
                let (k, val) = note.split_once(": ").expect("static note");
                let mut annotations = meta
                    .get("annotations")
                    .cloned()
                    .unwrap_or(Yaml::Map(vec![]));
                annotations.insert(k, Yaml::Str(val.to_owned()));
                meta.insert("annotations", annotations);
            }
        }
    } else {
        // Rename wildcard-labeled scalars — semantically free fields.
        for (value, node) in values.iter_mut().zip(&docs) {
            let tree = MatchTree::from_node(node);
            rename_wildcards(value, &tree, rng);
        }
    }
    yamlkit::emit_all(&values)
}

fn rotate_map_keys(value: &mut Yaml) {
    if let Yaml::Map(entries) = value {
        // Keep apiVersion/kind in front (models usually do), rotate the rest.
        let pivot = entries
            .iter()
            .take_while(|(k, _)| k == "apiVersion" || k == "kind")
            .count();
        if entries.len() > pivot + 1 {
            entries[pivot..].rotate_left(1);
        }
        for (_, v) in entries.iter_mut() {
            rotate_map_keys(v);
        }
    } else if let Yaml::Seq(items) = value {
        for v in items {
            rotate_map_keys(v);
        }
    }
}

fn rename_wildcards(value: &mut Yaml, tree: &MatchTree, rng: &mut StdRng) {
    match (value, tree) {
        (Yaml::Str(s), MatchTree::Leaf(MatchRule::Wildcard)) => {
            *s = format!("{s}-{}", ["alt", "new", "my", "gen"][rng.gen_range(0..4)]);
        }
        (v, MatchTree::Leaf(MatchRule::OneOf { options, .. })) if !options.is_empty() => {
            *v = options[rng.gen_range(0..options.len())].clone();
        }
        (Yaml::Map(entries), MatchTree::Map(tree_entries)) => {
            for (k, v) in entries.iter_mut() {
                if let Some((_, sub)) = tree_entries.iter().find(|(tk, _)| tk == k) {
                    rename_wildcards(v, sub, rng);
                }
            }
        }
        (Yaml::Seq(items), MatchTree::Seq(subs)) => {
            for (v, sub) in items.iter_mut().zip(subs) {
                rename_wildcards(v, sub, rng);
            }
        }
        _ => {}
    }
}

fn collect_scalar_paths(value: &Yaml, prefix: &mut Vec<String>, out: &mut Vec<Vec<String>>) {
    match value {
        Yaml::Map(entries) => {
            for (k, v) in entries {
                prefix.push(k.clone());
                collect_scalar_paths(v, prefix, out);
                prefix.pop();
            }
        }
        Yaml::Seq(items) => {
            for (i, v) in items.iter().enumerate() {
                prefix.push(format!("[{i}]"));
                collect_scalar_paths(v, prefix, out);
                prefix.pop();
            }
        }
        _ => out.push(prefix.clone()),
    }
}

fn get_mut_path<'a>(value: &'a mut Yaml, path: &[String]) -> Option<&'a mut Yaml> {
    let mut cur = value;
    for seg in path {
        cur = if let Some(idx) = seg.strip_prefix('[').and_then(|s| s.strip_suffix(']')) {
            let i: usize = idx.parse().ok()?;
            match cur {
                Yaml::Seq(items) => items.get_mut(i)?,
                _ => return None,
            }
        } else {
            cur.get_mut(seg)?
        };
    }
    Some(cur)
}

fn mutate_scalar(value: &Yaml, rng: &mut StdRng) -> Yaml {
    match value {
        Yaml::Int(i) => Yaml::Int(i + [1, -1, 10, 1000][rng.gen_range(0..4)]),
        Yaml::Bool(b) => Yaml::Bool(!b),
        Yaml::Float(f) => Yaml::Float(f * 2.0 + 1.0),
        Yaml::Str(s) => {
            let mut mutated = match rng.gen_range(0..3) {
                0 => format!("wrong-{s}"),
                1 => s.to_uppercase(),
                _ => format!("{s}x"),
            };
            if &mutated == s {
                // Uppercasing numerals/empty strings is a no-op; a
                // corruption must corrupt.
                mutated = format!("wrong-{s}");
            }
            Yaml::Str(mutated)
        }
        other => other.clone(),
    }
}

/// Wraps YAML in one of the prose/markup styles §3.1 post-processing must
/// strip.
fn wrap(body: &str, rng: &mut StdRng) -> String {
    match rng.gen_range(0..5) {
        0 => format!(
            "Here is the YAML configuration you requested:\n\n{body}\n\nThis configuration follows best practices. Let me know if you need adjustments."
        ),
        1 => format!("Sure! The following manifest does what you described.\n```yaml\n{body}\n```\nApply it with kubectl."),
        2 => format!("<code>\n{body}\n</code>"),
        3 => format!("\\begin{{code}}\n{body}\n\\end{{code}}"),
        _ => format!("START SOLUTION\n{body}\nEND SOLUTION"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedataset::Dataset;

    fn first_problem() -> Problem {
        Dataset::generate().problems()[0].clone()
    }

    #[test]
    fn correct_answers_score_high_and_pass_their_unit_test() {
        let p = first_problem();
        let mut saw_imperfect_wildcard = false;
        for seed in 0..30 {
            let ans = realize(&p, AnswerCategory::Correct, seed, 0.0);
            let score = cescore::kv_wildcard_match(&p.labeled_reference, &ans);
            assert!(score > 0.85, "seed {seed}: wildcard {score}\n{ans}");
            saw_imperfect_wildcard |= score < 1.0 - 1e-9;
        }
        // The benign-extras style must appear: passing answers are not all
        // wildcard-perfect (keeps the Figure 9 predictor study honest).
        assert!(saw_imperfect_wildcard);
    }

    #[test]
    fn fails_test_answers_are_valid_yaml_with_right_kind() {
        let p = first_problem();
        let expected_kind = yamlkit::parse_one(&p.clean_reference())
            .unwrap()
            .to_value()
            .get("kind")
            .map(Yaml::render_scalar);
        for seed in 0..20 {
            let ans = realize(&p, AnswerCategory::FailsTest, seed, 0.0);
            let parsed = yamlkit::parse(&ans).expect("must stay valid yaml");
            let kind = parsed[0].to_value().get("kind").map(Yaml::render_scalar);
            assert_eq!(kind, expected_kind);
            // And it must differ from the reference as a dictionary.
            assert_eq!(
                cescore::kv_exact_match(&p.labeled_reference, &ans),
                0.0,
                "seed {seed}"
            );
        }
    }

    #[test]
    fn wrong_kind_is_valid_but_different_kind() {
        let p = first_problem();
        let ans = realize(&p, AnswerCategory::WrongKind, 3, 0.0);
        let v = yamlkit::parse(&ans).unwrap()[0].to_value();
        assert_ne!(
            v.get("kind").map(Yaml::render_scalar).as_deref(),
            Some("Pod")
        );
    }

    #[test]
    fn incomplete_yaml_contains_kind_but_fails_parse() {
        let p = first_problem();
        for seed in 0..10 {
            let ans = realize(&p, AnswerCategory::IncompleteYaml, seed, 0.0);
            assert!(ans.contains("kind:"));
            assert!(yamlkit::parse(&ans).is_err(), "seed {seed} parsed:\n{ans}");
        }
    }

    #[test]
    fn tiny_answers_are_tiny_and_prose_lacks_kind() {
        let p = first_problem();
        let tiny = realize(&p, AnswerCategory::EmptyOrTiny, 1, 0.0);
        assert!(tiny.lines().count() < 3);
        let prose = realize(&p, AnswerCategory::NoKind, 1, 0.0);
        assert!(prose.lines().count() > 3);
        assert!(!prose.contains("kind"));
    }

    #[test]
    fn realization_is_deterministic_per_seed() {
        let p = first_problem();
        for cat in AnswerCategory::ALL {
            assert_eq!(realize(&p, cat, 42, 0.5), realize(&p, cat, 42, 0.5));
        }
    }

    #[test]
    fn wrappers_cover_all_extraction_cases() {
        let p = first_problem();
        let mut styles = std::collections::HashSet::new();
        for seed in 0..60 {
            let ans = realize(&p, AnswerCategory::Correct, seed, 1.0);
            for marker in [
                "Here is",
                "```",
                "<code>",
                "\\begin{code}",
                "START SOLUTION",
            ] {
                if ans.contains(marker) {
                    styles.insert(marker);
                }
            }
        }
        assert!(styles.len() >= 4, "only saw {styles:?}");
    }
}
