//! Per-problem difficulty and per-(model, variant, shots) skill
//! calibration.
//!
//! Each problem gets a difficulty in `(0, 1)` from the factors the paper's
//! Figure 6 analysis identifies: answer length dominates, Envoy problems
//! are hardest, long questions help slightly, and code context helps the
//! weaker models a little. A model's pass probability is
//! `σ(α − β·difficulty)`; α is solved by bisection so the expected pass
//! count over the 337 problems equals the paper's Table 5 target exactly.

use cedataset::{Category, Dataset, Problem};

use crate::profiles::{ModelProfile, Tier};

/// Spread of the logistic difficulty model. Larger values polarize pass
/// probabilities (less multi-sample gain); this value is tuned so that
/// 20-sample pass@k gains land in the paper's 30–40% band (Figure 8).
pub const BETA: f64 = 7.0;

/// Difficulty of a problem in `(0, 1)`.
pub fn difficulty(problem: &Problem, tier: Tier) -> f64 {
    let lines = problem.reference_lines() as f64;
    // Length is the dominant factor (Figure 6 panel 3), with the paper's
    // observed cliff between short and medium answers.
    let length_term = ((lines - 4.0) / 45.0).clamp(0.0, 1.0);
    let category_term = match problem.category {
        Category::Envoy => 0.38,
        Category::Istio => 0.12,
        Category::DaemonSet => 0.06,
        Category::KubernetesOther => 0.02,
        _ => 0.0,
    };
    // Longer questions carry more constraints but also more guidance; net
    // effect is mildly negative correlation (Figure 6 panel 4).
    let words = problem.description.split_whitespace().count() as f64;
    let question_term = ((words - 40.0) / 400.0).clamp(0.0, 0.2);
    // Code context gives weaker models a template to copy (the paper's
    // observation that models ranked 7–10 do better with context).
    let context_term = if problem.has_context() {
        match tier {
            Tier::OpenSmall | Tier::Code => -0.06,
            _ => -0.01,
        }
    } else {
        0.0
    };
    (0.15 + 0.62 * length_term + category_term + question_term + context_term).clamp(0.02, 0.98)
}

/// Logistic function.
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Solves for α such that `Σ σ(α − β·dᵢ) = target` over the dataset's
/// difficulties. Returns `f64::NEG_INFINITY` for a target of 0.
pub fn calibrate_alpha(difficulties: &[f64], target: usize) -> f64 {
    if target == 0 {
        return f64::NEG_INFINITY;
    }
    let expected =
        |alpha: f64| -> f64 { difficulties.iter().map(|d| sigmoid(alpha - BETA * d)).sum() };
    let (mut lo, mut hi) = (-30.0, 30.0);
    for _ in 0..80 {
        let mid = 0.5 * (lo + hi);
        if expected(mid) < target as f64 {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Precomputed difficulties for a dataset under one model tier.
pub fn dataset_difficulties(dataset: &Dataset, tier: Tier) -> Vec<f64> {
    dataset
        .problems()
        .iter()
        .map(|p| difficulty(p, tier))
        .collect()
}

/// Pass probability of a model on one problem given a calibrated α.
pub fn pass_probability(alpha: f64, problem_difficulty: f64) -> f64 {
    if alpha == f64::NEG_INFINITY {
        0.0
    } else {
        sigmoid(alpha - BETA * problem_difficulty)
    }
}

/// Convenience: calibrated per-problem pass probabilities for one
/// (model, target) pair.
pub fn calibrated_probabilities(
    dataset: &Dataset,
    profile: &ModelProfile,
    target: Option<usize>,
) -> Vec<f64> {
    let diffs = dataset_difficulties(dataset, profile.tier);
    match target {
        None | Some(0) => vec![0.0; diffs.len()],
        Some(t) => {
            let alpha = calibrate_alpha(&diffs, t);
            diffs.iter().map(|d| pass_probability(alpha, *d)).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedataset::Variant;

    #[test]
    fn calibration_hits_targets() {
        let ds = Dataset::generate();
        for profile in crate::profiles::all_models() {
            for variant in Variant::ALL {
                let target = profile.target_passes(variant, 0);
                let probs = calibrated_probabilities(&ds, &profile, target);
                let expected: f64 = probs.iter().sum();
                match target {
                    Some(t) if t > 0 => assert!(
                        (expected - t as f64).abs() < 0.5,
                        "{} {variant:?}: expected {expected:.2} vs target {t}",
                        profile.name
                    ),
                    _ => assert_eq!(expected, 0.0),
                }
            }
        }
    }

    #[test]
    fn envoy_is_hardest() {
        let ds = Dataset::generate();
        let avg = |cat: Category| -> f64 {
            let v: Vec<f64> = ds
                .by_category(cat)
                .map(|p| difficulty(p, Tier::Proprietary))
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg(Category::Envoy) > avg(Category::Pod));
        assert!(avg(Category::Envoy) > avg(Category::Istio));
        assert!(avg(Category::Envoy) > avg(Category::KubernetesOther));
    }

    #[test]
    fn longer_answers_are_harder() {
        let ds = Dataset::generate();
        let probs = calibrated_probabilities(
            &ds,
            &crate::profiles::ModelProfile::by_name("gpt-4").unwrap(),
            Some(179),
        );
        // Bucket by reference length like Figure 6.
        let mut short = Vec::new();
        let mut long = Vec::new();
        for (p, prob) in ds.problems().iter().zip(&probs) {
            if p.reference_lines() < 15 {
                short.push(*prob);
            } else if p.reference_lines() >= 30 {
                long.push(*prob);
            }
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
        assert!(mean(&short) > mean(&long) + 0.1);
    }

    #[test]
    fn sigmoid_sane() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(10.0) > 0.999);
        assert!(sigmoid(-10.0) < 0.001);
    }

    #[test]
    fn zero_target_means_zero_probability() {
        assert_eq!(calibrate_alpha(&[0.5, 0.6], 0), f64::NEG_INFINITY);
        assert_eq!(pass_probability(f64::NEG_INFINITY, 0.3), 0.0);
    }
}
