//! The query module (§3.1): one interface over local and remote models,
//! with parallel dispatch and throughput accounting.
//!
//! The paper's query module exists to (a) unify local/remote APIs behind
//! one interface — [`LanguageModel`] here — and (b) maximize throughput by
//! exploiting provider auto-scaling with many parallel requests ("128
//! raylets ... can significantly increase the speed by two orders of
//! magnitude") and by sizing local batches to GPU memory. This module
//! reproduces both mechanisms: a scoped worker pool with a shared work
//! queue, and the batch-size heuristic for local models.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::model::{GenParams, LanguageModel};

/// Parallel dispatch configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryConfig {
    /// Number of worker threads (the paper's raylet count).
    pub parallelism: usize,
    /// Provider rate limit in requests/minute (`None` = unlimited);
    /// recorded in the report, enforced as a ceiling on effective
    /// throughput accounting.
    pub rate_limit_per_min: Option<u32>,
    /// Simulated per-request service latency in milliseconds, used for the
    /// speedup accounting (remote APIs are dominated by service time).
    pub request_latency_ms: u64,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            parallelism: 16,
            rate_limit_per_min: None,
            request_latency_ms: 800,
        }
    }
}

/// Result of a batch query.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Responses, in prompt order.
    pub responses: Vec<String>,
    /// Modeled wall-clock milliseconds for the batch (latency-bound).
    pub modeled_wall_ms: u64,
    /// Modeled wall-clock for a single worker, for the speedup claim.
    pub modeled_serial_ms: u64,
}

impl BatchReport {
    /// Parallel speedup implied by the latency model.
    pub fn speedup(&self) -> f64 {
        self.modeled_serial_ms as f64 / self.modeled_wall_ms.max(1) as f64
    }
}

/// Queries every prompt against one model with a worker pool.
///
/// Responses are returned in prompt order regardless of completion order.
pub fn query_batch(
    model: &dyn LanguageModel,
    prompts: &[String],
    params: &GenParams,
    config: &QueryConfig,
) -> BatchReport {
    let n = prompts.len();
    let results: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; n]);
    let next: AtomicUsize = AtomicUsize::new(0);
    let workers = config.parallelism.max(1).min(n.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let response = model.generate(&prompts[i], params);
                results.lock().expect("results lock poisoned")[i] = Some(response);
            });
        }
    });
    let responses: Vec<String> = results
        .into_inner()
        .expect("results lock poisoned")
        .into_iter()
        .map(|r| r.expect("all prompts answered"))
        .collect();
    // Latency model: each request occupies a worker for latency_ms, so a
    // batch drains in ceil(n/workers) waves; a rate limit caps
    // concurrency-adjusted throughput.
    let serial = config.request_latency_ms * n as u64;
    let waves = (n as u64).div_ceil(workers as u64);
    let mut wall = waves * config.request_latency_ms;
    if let Some(rpm) = config.rate_limit_per_min {
        let min_by_rate = (n as u64 * 60_000) / u64::from(rpm.max(1));
        wall = wall.max(min_by_rate);
    }
    BatchReport {
        responses,
        modeled_wall_ms: wall,
        modeled_serial_ms: serial,
    }
}

/// Batch-size heuristic for local models (§3.1: "the module automatically
/// checks the available GPU memory and adjusts the batch size").
///
/// Assumes fp16 weights (~2 bytes/param) plus ~1.2 GiB of activations per
/// sequence in the batch.
pub fn auto_batch_size(gpu_memory_gb: f64, model_size_b_params: f64) -> usize {
    let weights_gb = model_size_b_params * 2.0;
    let free = gpu_memory_gb - weights_gb - 1.0; // runtime overhead
    if free <= 0.0 {
        return 0;
    }
    (free / 1.2).floor().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl LanguageModel for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn generate(&self, prompt: &str, params: &GenParams) -> String {
            format!("{}#{}", prompt, params.sample_index)
        }
    }

    #[test]
    fn responses_preserve_prompt_order() {
        let prompts: Vec<String> = (0..200).map(|i| format!("p{i}")).collect();
        let report = query_batch(
            &Echo,
            &prompts,
            &GenParams::default(),
            &QueryConfig::default(),
        );
        for (i, r) in report.responses.iter().enumerate() {
            assert_eq!(r, &format!("p{i}#0"));
        }
    }

    #[test]
    fn parallelism_speeds_up_the_latency_model() {
        let prompts: Vec<String> = (0..128).map(|i| format!("p{i}")).collect();
        let serial_cfg = QueryConfig {
            parallelism: 1,
            ..QueryConfig::default()
        };
        let wide_cfg = QueryConfig {
            parallelism: 128,
            ..QueryConfig::default()
        };
        let serial = query_batch(&Echo, &prompts, &GenParams::default(), &serial_cfg);
        let wide = query_batch(&Echo, &prompts, &GenParams::default(), &wide_cfg);
        assert!(
            wide.modeled_wall_ms < serial.modeled_wall_ms / 50,
            "wide {} vs serial {}",
            wide.modeled_wall_ms,
            serial.modeled_wall_ms
        );
        assert!(wide.speedup() > 50.0);
    }

    #[test]
    fn rate_limit_caps_throughput() {
        let prompts: Vec<String> = (0..120).map(|i| format!("p{i}")).collect();
        let cfg = QueryConfig {
            parallelism: 64,
            rate_limit_per_min: Some(60),
            request_latency_ms: 10,
        };
        let report = query_batch(&Echo, &prompts, &GenParams::default(), &cfg);
        // 120 requests at 60 rpm >= 2 minutes.
        assert!(report.modeled_wall_ms >= 120_000);
    }

    #[test]
    fn batch_size_tracks_gpu_memory() {
        assert_eq!(auto_batch_size(16.0, 7.0), 1); // 7B fp16 ≈ 14 GB: tight
        assert!(auto_batch_size(80.0, 7.0) > 20);
        assert_eq!(auto_batch_size(24.0, 70.0), 0); // does not fit
    }

    #[test]
    fn empty_prompt_list_is_fine() {
        let report = query_batch(&Echo, &[], &GenParams::default(), &QueryConfig::default());
        assert!(report.responses.is_empty());
    }
}
