//! The query module (§3.1): one interface over local and remote models,
//! with parallel dispatch and throughput accounting.
//!
//! The paper's query module exists to (a) unify local/remote APIs behind
//! one interface — [`LanguageModel`] here — and (b) maximize throughput by
//! exploiting provider auto-scaling with many parallel requests ("128
//! raylets ... can significantly increase the speed by two orders of
//! magnitude") and by sizing local batches to GPU memory. This module
//! reproduces both mechanisms: a scoped worker pool with a shared work
//! queue, and the batch-size heuristic for local models.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::model::{GenParams, LanguageModel};

/// Parallel dispatch configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryConfig {
    /// Number of worker threads (the paper's raylet count).
    pub parallelism: usize,
    /// Provider rate limit in requests/minute (`None` = unlimited);
    /// recorded in the report, enforced as a ceiling on effective
    /// throughput accounting.
    pub rate_limit_per_min: Option<u32>,
    /// Simulated per-request service latency in milliseconds, used for the
    /// speedup accounting (remote APIs are dominated by service time).
    pub request_latency_ms: u64,
    /// When `true`, each request *really* occupies its worker for
    /// [`request_latency_ms`](QueryConfig::request_latency_ms) of
    /// wall-clock (the worker sleeps through the service time instead of
    /// only modeling it). This reproduces the remote-API regime the paper
    /// runs in — generation threads idle on the network while local CPU
    /// is free — which is exactly the idle time the streaming stage-graph
    /// fills with downstream scoring and substrate execution. Default
    /// `false`: responses return at pure simulation speed.
    pub live_latency: bool,
}

impl Default for QueryConfig {
    fn default() -> Self {
        QueryConfig {
            parallelism: 16,
            rate_limit_per_min: None,
            request_latency_ms: 800,
            live_latency: false,
        }
    }
}

/// Result of a batch query.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReport {
    /// Responses, in prompt order.
    pub responses: Vec<String>,
    /// Modeled wall-clock milliseconds for the batch (latency-bound).
    pub modeled_wall_ms: u64,
    /// Modeled wall-clock for a single worker, for the speedup claim.
    pub modeled_serial_ms: u64,
}

impl BatchReport {
    /// Parallel speedup implied by the latency model.
    pub fn speedup(&self) -> f64 {
        self.modeled_serial_ms as f64 / self.modeled_wall_ms.max(1) as f64
    }
}

/// Result of a streaming query run: the [`BatchReport`] accounting without
/// the materialized response vector (responses were already emitted
/// incrementally).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamReport {
    /// Number of prompts dispatched.
    pub prompts: usize,
    /// Modeled wall-clock milliseconds for the batch (latency-bound).
    pub modeled_wall_ms: u64,
    /// Modeled wall-clock for a single worker, for the speedup claim.
    pub modeled_serial_ms: u64,
}

impl StreamReport {
    /// Parallel speedup implied by the latency model.
    pub fn speedup(&self) -> f64 {
        self.modeled_serial_ms as f64 / self.modeled_wall_ms.max(1) as f64
    }
}

/// Queries every prompt against one model with a worker pool, emitting
/// each `(prompt_index, response)` the moment it completes instead of
/// materializing the whole batch.
///
/// This is the streaming entry point the stage-graph pipeline consumes:
/// downstream stages (YAML extraction, static scoring, unit-test
/// execution) start on record 0 while record 1 is still generating.
/// `emit` is called from the worker threads, concurrently and in
/// completion order — pair each response with its index if ordering
/// matters downstream. The latency model (waves of `parallelism`
/// requests, optional rate-limit ceiling) is identical to
/// [`query_batch`]'s.
pub fn query_stream<F>(
    model: &dyn LanguageModel,
    prompts: &[String],
    params: &GenParams,
    config: &QueryConfig,
    emit: F,
) -> StreamReport
where
    F: Fn(usize, String) + Send + Sync,
{
    let n = prompts.len();
    let next: AtomicUsize = AtomicUsize::new(0);
    let workers = config.parallelism.max(1).min(n.max(1));
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let response = model.generate(&prompts[i], params);
                if config.live_latency {
                    // The worker is "on the wire" for the service time.
                    std::thread::sleep(std::time::Duration::from_millis(config.request_latency_ms));
                }
                emit(i, response);
            });
        }
    });
    // Latency model: each request occupies a worker for latency_ms, so a
    // batch drains in ceil(n/workers) waves; a rate limit caps
    // concurrency-adjusted throughput.
    let serial = config.request_latency_ms * n as u64;
    let waves = (n as u64).div_ceil(workers as u64);
    let mut wall = waves * config.request_latency_ms;
    if let Some(rpm) = config.rate_limit_per_min {
        let min_by_rate = (n as u64 * 60_000) / u64::from(rpm.max(1));
        wall = wall.max(min_by_rate);
    }
    StreamReport {
        prompts: n,
        modeled_wall_ms: wall,
        modeled_serial_ms: serial,
    }
}

/// Queries every prompt against one model with a worker pool.
///
/// Responses are returned in prompt order regardless of completion order.
/// Implemented over [`query_stream`] — the all-at-once `Vec` is just the
/// streamed emission collected back into index order.
pub fn query_batch(
    model: &dyn LanguageModel,
    prompts: &[String],
    params: &GenParams,
    config: &QueryConfig,
) -> BatchReport {
    let n = prompts.len();
    let results: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; n]);
    let stream = query_stream(model, prompts, params, config, |i, response| {
        results.lock().expect("results lock poisoned")[i] = Some(response);
    });
    let responses: Vec<String> = results
        .into_inner()
        .expect("results lock poisoned")
        .into_iter()
        .map(|r| r.expect("all prompts answered"))
        .collect();
    BatchReport {
        responses,
        modeled_wall_ms: stream.modeled_wall_ms,
        modeled_serial_ms: stream.modeled_serial_ms,
    }
}

/// Batch-size heuristic for local models (§3.1: "the module automatically
/// checks the available GPU memory and adjusts the batch size").
///
/// Assumes fp16 weights (~2 bytes/param) plus ~1.2 GiB of activations per
/// sequence in the batch.
pub fn auto_batch_size(gpu_memory_gb: f64, model_size_b_params: f64) -> usize {
    let weights_gb = model_size_b_params * 2.0;
    let free = gpu_memory_gb - weights_gb - 1.0; // runtime overhead
    if free <= 0.0 {
        return 0;
    }
    (free / 1.2).floor().max(1.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Echo;
    impl LanguageModel for Echo {
        fn name(&self) -> &str {
            "echo"
        }
        fn generate(&self, prompt: &str, params: &GenParams) -> String {
            format!("{}#{}", prompt, params.sample_index)
        }
    }

    #[test]
    fn responses_preserve_prompt_order() {
        let prompts: Vec<String> = (0..200).map(|i| format!("p{i}")).collect();
        let report = query_batch(
            &Echo,
            &prompts,
            &GenParams::default(),
            &QueryConfig::default(),
        );
        for (i, r) in report.responses.iter().enumerate() {
            assert_eq!(r, &format!("p{i}#0"));
        }
    }

    #[test]
    fn parallelism_speeds_up_the_latency_model() {
        let prompts: Vec<String> = (0..128).map(|i| format!("p{i}")).collect();
        let serial_cfg = QueryConfig {
            parallelism: 1,
            ..QueryConfig::default()
        };
        let wide_cfg = QueryConfig {
            parallelism: 128,
            ..QueryConfig::default()
        };
        let serial = query_batch(&Echo, &prompts, &GenParams::default(), &serial_cfg);
        let wide = query_batch(&Echo, &prompts, &GenParams::default(), &wide_cfg);
        assert!(
            wide.modeled_wall_ms < serial.modeled_wall_ms / 50,
            "wide {} vs serial {}",
            wide.modeled_wall_ms,
            serial.modeled_wall_ms
        );
        assert!(wide.speedup() > 50.0);
    }

    #[test]
    fn rate_limit_caps_throughput() {
        let prompts: Vec<String> = (0..120).map(|i| format!("p{i}")).collect();
        let cfg = QueryConfig {
            parallelism: 64,
            rate_limit_per_min: Some(60),
            request_latency_ms: 10,
            ..QueryConfig::default()
        };
        let report = query_batch(&Echo, &prompts, &GenParams::default(), &cfg);
        // 120 requests at 60 rpm >= 2 minutes.
        assert!(report.modeled_wall_ms >= 120_000);
    }

    #[test]
    fn batch_size_tracks_gpu_memory() {
        assert_eq!(auto_batch_size(16.0, 7.0), 1); // 7B fp16 ≈ 14 GB: tight
        assert!(auto_batch_size(80.0, 7.0) > 20);
        assert_eq!(auto_batch_size(24.0, 70.0), 0); // does not fit
    }

    #[test]
    fn empty_prompt_list_is_fine() {
        let report = query_batch(&Echo, &[], &GenParams::default(), &QueryConfig::default());
        assert!(report.responses.is_empty());
    }

    #[test]
    fn stream_emits_every_prompt_exactly_once() {
        let prompts: Vec<String> = (0..150).map(|i| format!("p{i}")).collect();
        let seen: Mutex<Vec<Option<String>>> = Mutex::new(vec![None; prompts.len()]);
        let report = query_stream(
            &Echo,
            &prompts,
            &GenParams::default(),
            &QueryConfig::default(),
            |i, r| {
                let mut seen = seen.lock().unwrap();
                assert!(seen[i].is_none(), "prompt {i} emitted twice");
                seen[i] = Some(r);
            },
        );
        assert_eq!(report.prompts, 150);
        for (i, r) in seen.into_inner().unwrap().into_iter().enumerate() {
            assert_eq!(r.as_deref(), Some(format!("p{i}#0").as_str()));
        }
    }

    #[test]
    fn live_latency_occupies_workers_for_real() {
        let prompts: Vec<String> = (0..6).map(|i| format!("p{i}")).collect();
        let cfg = QueryConfig {
            parallelism: 2,
            request_latency_ms: 10,
            live_latency: true,
            ..QueryConfig::default()
        };
        let started = std::time::Instant::now();
        let report = query_stream(&Echo, &prompts, &GenParams::default(), &cfg, |_, _| {});
        // 6 requests over 2 workers at 10 ms each = at least 3 waves.
        assert!(started.elapsed() >= std::time::Duration::from_millis(30));
        assert_eq!(report.prompts, 6);
    }

    #[test]
    fn stream_and_batch_share_the_latency_model() {
        let prompts: Vec<String> = (0..64).map(|i| format!("p{i}")).collect();
        for cfg in [
            QueryConfig::default(),
            QueryConfig {
                parallelism: 3,
                rate_limit_per_min: Some(90),
                request_latency_ms: 25,
                ..QueryConfig::default()
            },
        ] {
            let batch = query_batch(&Echo, &prompts, &GenParams::default(), &cfg);
            let stream = query_stream(&Echo, &prompts, &GenParams::default(), &cfg, |_, _| {});
            assert_eq!(stream.modeled_wall_ms, batch.modeled_wall_ms);
            assert_eq!(stream.modeled_serial_ms, batch.modeled_serial_ms);
            assert!((stream.speedup() - batch.speedup()).abs() < 1e-12);
        }
    }
}
