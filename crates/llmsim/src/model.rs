//! The [`LanguageModel`] interface and the calibrated simulated model.
//!
//! A simulated model is a pure function of the prompt text and generation
//! parameters: it recognizes which benchmark problem (and variant, and
//! shot count) the prompt contains, draws an answer category from its
//! calibrated distribution, and realizes raw response text. The whole
//! benchmark pipeline — prompt assembly, querying, §3.1 post-processing,
//! scoring, unit testing — therefore runs exactly as it would against a
//! remote API.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use cedataset::{Dataset, Problem, Variant};

use crate::corrupt::{answer_seed, realize, AnswerCategory};
use crate::difficulty::{calibrate_alpha, dataset_difficulties, pass_probability};
use crate::profiles::ModelProfile;
use crate::repair::{parse_repair_prompt, ParsedRepair};
use substrate::taxonomy::Bucket;

/// Generation parameters (§4.2 uses temperature/top_p/top_k 0.75/0.9/50
/// for Llama-2-70B multi-sampling).
#[derive(Debug, Clone, PartialEq)]
pub struct GenParams {
    /// Sampling temperature; 0 = deterministic greedy decoding.
    pub temperature: f64,
    /// Nucleus sampling mass (recorded; the simulation keys off
    /// temperature and sample index).
    pub top_p: f64,
    /// Top-k cutoff (recorded).
    pub top_k: u32,
    /// Which sample this is (pass@k uses 0..k).
    pub sample_index: u64,
}

impl Default for GenParams {
    fn default() -> Self {
        GenParams {
            temperature: 0.0,
            top_p: 1.0,
            top_k: 0,
            sample_index: 0,
        }
    }
}

impl GenParams {
    /// The paper's multi-sample settings for open models.
    pub fn sampling(sample_index: u64) -> GenParams {
        GenParams {
            temperature: 0.75,
            top_p: 0.9,
            top_k: 50,
            sample_index,
        }
    }
}

/// A text-in/text-out model, the query module's universal interface.
pub trait LanguageModel: Send + Sync {
    /// Model name (Table 4's `Name` column).
    fn name(&self) -> &str;

    /// Generates a raw response for a prompt.
    fn generate(&self, prompt: &str, params: &GenParams) -> String;
}

/// A simulated benchmark model with a calibrated capability profile.
pub struct SimulatedModel {
    profile: ModelProfile,
    dataset: Arc<Dataset>,
    difficulties: Vec<f64>,
    /// α per (variant, shots), calibrated lazily at construction for the
    /// shot counts the benchmark uses (0–3).
    alphas: HashMap<(Variant, usize), f64>,
}

impl SimulatedModel {
    /// Builds a simulated model over a dataset.
    pub fn new(profile: ModelProfile, dataset: Arc<Dataset>) -> SimulatedModel {
        let difficulties = dataset_difficulties(&dataset, profile.tier);
        let mut alphas = HashMap::new();
        for variant in Variant::ALL {
            for shots in 0..=3 {
                let alpha = match profile.target_passes(variant, shots) {
                    Some(t) if t > 0 => calibrate_alpha(&difficulties, t),
                    _ => f64::NEG_INFINITY,
                };
                alphas.insert((variant, shots), alpha);
            }
        }
        SimulatedModel {
            profile,
            dataset,
            difficulties,
            alphas,
        }
    }

    /// The model's profile.
    pub fn profile(&self) -> &ModelProfile {
        &self.profile
    }

    /// Pass probability for a problem index under a variant/shots setting.
    pub fn pass_probability(&self, problem_index: usize, variant: Variant, shots: usize) -> f64 {
        let alpha = self
            .alphas
            .get(&(variant, shots))
            .copied()
            .unwrap_or(f64::NEG_INFINITY);
        pass_probability(alpha, self.difficulties[problem_index])
    }

    /// Identifies (problem, variant, shots) from prompt text: the prompt
    /// embeds one of the three per-variant descriptions, and each few-shot
    /// exemplar adds an `Example question:` header.
    fn identify<'d>(&'d self, prompt: &str) -> Option<(usize, &'d Problem, Variant, usize)> {
        let shots = prompt.matches("Example question:").count().min(3);
        // The question body is the suffix after the last exemplar, so scan
        // descriptions longest-first to avoid prefix collisions.
        let mut best: Option<(usize, &Problem, Variant, usize)> = None;
        for (idx, p) in self.dataset.problems().iter().enumerate() {
            for variant in Variant::ALL {
                let d = p.description_for(variant);
                if !d.is_empty() && prompt.contains(d) {
                    let len = d.len();
                    if best.map(|(_, _, _, l)| len > l).unwrap_or(true) {
                        best = Some((idx, p, variant, len));
                    }
                }
            }
        }
        best.map(|(i, p, v, _)| (i, p, v, shots))
    }

    /// Draws the answer category via **systematic sampling**: problems are
    /// laid on a line in a per-(model, variant, shots, sample) permuted
    /// order, each occupying a segment of length `pᵢ`; the integer grid
    /// shifted by a single uniform offset θ marks the passing problems.
    /// Marginally every problem passes with probability exactly `pᵢ`,
    /// while the realized pass count lands within ±1 of the calibrated
    /// target `Σpᵢ` — the paper's Table 5/6 entries are single observed
    /// counts, and this keeps ours faithful to them.
    fn draw_category(
        &self,
        variant: Variant,
        shots: usize,
        problem_index: usize,
        group_seed: u64,
        seed: u64,
        jitter: f64,
    ) -> AnswerCategory {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = self.dataset.len() as u64;
        // Per-group permutation of the line order (n = 337 is prime, so
        // any multiplier in 1..n generates a permutation).
        let a = group_seed % (n - 1) + 1;
        let b = (group_seed >> 32) % n;
        let pos = |j: u64| -> u64 { (a * j + b) % n };
        let my_pos = pos(problem_index as u64);
        let mut c_lo = 0.0f64;
        for j in 0..n {
            if pos(j) < my_pos {
                c_lo += self.pass_probability(j as usize, variant, shots);
            }
        }
        let p = self.pass_probability(problem_index, variant, shots);
        // Temperature jitter scales the effective ability window by up to
        // ±TEMPERATURE_JITTER; over k samples only the best draw matters,
        // so pass@k saturates at ≈(1 + TEMPERATURE_JITTER)·pass@1 — the
        // paper's 30-40% multi-sample ceiling.
        const TEMPERATURE_JITTER: f64 = 0.4;
        let p_eff = (p * (1.0 + TEMPERATURE_JITTER * jitter)).clamp(0.0, 1.0);
        let theta = ((group_seed >> 11) as f64) / (u64::MAX >> 11) as f64;
        // Pass iff a point of {θ + m : m ∈ ℤ} falls inside [c_lo, c_lo+p):
        // the point count is floor(c_hi−θ) − floor(c_lo−θ).
        let passes = (c_lo + p_eff - theta).floor() > (c_lo - theta).floor();
        if p_eff > 0.0 && passes {
            return AnswerCategory::Correct;
        }
        let weights = self.profile.failure_weights;
        let total: f64 = weights.iter().sum();
        let mut x = rng.gen_range(0.0..total.max(1e-9));
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return AnswerCategory::ALL[i];
            }
            x -= w;
        }
        AnswerCategory::FailsTest
    }

    /// Answers one repair round: the prompt carried a prior attempt plus
    /// deployment feedback. The fix probability depends on whether the
    /// feedback *plausibly explains the prior attempt* — a named bucket
    /// must agree with what the model can see of its own answer (a
    /// `yaml-syntax` bucket against a well-formed prior, or a semantic
    /// bucket against unparseable text, reads as noise and falls to the
    /// floor). Feedback that names no bucket is never actionable.
    ///
    /// The draw seed hashes the prior attempt's content and the round, so
    /// a repair chain is deterministic per (model, problem, prior, round)
    /// regardless of scheduling — and independent of the first-attempt
    /// seed chain.
    fn generate_repair(
        &self,
        problem: &Problem,
        variant: Variant,
        repair: &ParsedRepair,
    ) -> String {
        // PaLM-2's English-only refusal survives into the repair loop.
        if variant == Variant::Translated && self.profile.passes_translated.is_none() {
            return "I'm sorry, I can only assist with requests in English at this time.\nPlease translate your question and try again.\nThank you for your understanding.\nRegards.".to_owned();
        }
        let prior_parses = yamlkit::parse(&repair.prior)
            .map(|docs| !docs.is_empty())
            .unwrap_or(false);
        let named = repair.named_bucket();
        let plausible = named.is_some_and(|b| (b == Bucket::YamlSyntax) != prior_parses);
        let p = if plausible {
            let base = self
                .profile
                .repair_prob(named.expect("plausible implies named"));
            if repair.has_subject() {
                // Structured diagnostics (Full feedback) localize the fix.
                (base * 1.2).min(0.95)
            } else {
                base
            }
        } else {
            self.profile.repair_floor()
        };
        let seed = answer_seed(
            self.profile.name,
            &format!(
                "{}\u{1}repair\u{1}{}\u{1}{:016x}",
                problem.id,
                repair.round,
                yamlkit::doc::content_hash(&repair.prior)
            ),
            variant as u8,
            0,
            0,
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let category = if rng.gen_bool(p.clamp(0.0, 1.0)) {
            AnswerCategory::Correct
        } else {
            // A failed repair is another attempt of the same answer class
            // the prior landed in — realized under a fresh seed, so the
            // next round sees a *different* broken candidate.
            crate::classify_answer(&repair.prior, &problem.clean_reference(), false)
        };
        realize(
            problem,
            category,
            seed ^ 0x9e37_79b9_7f4a_7c15,
            self.profile.wrap_prob,
        )
    }
}

impl LanguageModel for SimulatedModel {
    fn name(&self) -> &str {
        self.profile.name
    }

    fn generate(&self, prompt: &str, params: &GenParams) -> String {
        let started = std::time::Instant::now();
        let text = self.generate_text(prompt, params);
        obs::global()
            .histogram(
                "llm_generation_us",
                &[("model", self.profile.name)],
                "wall-clock latency of one simulated-model generation",
            )
            .record(started.elapsed());
        text
    }
}

impl SimulatedModel {
    /// The uninstrumented generation path ([`LanguageModel::generate`]
    /// wraps this with the `llm_generation_us{model=...}` histogram).
    fn generate_text(&self, prompt: &str, params: &GenParams) -> String {
        let Some((idx, problem, variant, shots)) = self.identify(prompt) else {
            // Unknown prompt: a generic, useless-but-plausible reply.
            return "Here is a general example:\napiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: example\n".to_owned();
        };
        // Repair prompts ride the same generate() path (so the query,
        // extraction and scoring stages are literally reused) but draw
        // from the repair distribution.
        if let Some(repair) = parse_repair_prompt(prompt) {
            return self.generate_repair(problem, variant, &repair);
        }
        // PaLM-2's API is English-only at submission time (Table 4 note).
        if self.alphas.get(&(variant, shots)).copied() == Some(f64::NEG_INFINITY)
            && variant == Variant::Translated
            && self.profile.passes_translated.is_none()
        {
            return "I'm sorry, I can only assist with requests in English at this time.\nPlease translate your question and try again.\nThank you for your understanding.\nRegards.".to_owned();
        }
        // Greedy decoding is deterministic: every sample at temperature 0
        // is the same draw. Positive temperature jitters the model's
        // effective ability per sample, but ability is mostly *persistent*
        // across samples — real models either can or cannot do a problem,
        // and resampling buys the paper ~30-40% at 20 samples (Figure 8),
        // not unbounded gains.
        let effective_sample = if params.temperature == 0.0 {
            0
        } else {
            params.sample_index
        };
        let seed = answer_seed(
            self.profile.name,
            &problem.id,
            variant as u8,
            shots,
            effective_sample,
        );
        let jitter = if effective_sample == 0 {
            0.0
        } else {
            let j = answer_seed(
                self.profile.name,
                &format!("{}\u{1}jitter", problem.id),
                variant as u8,
                shots,
                effective_sample,
            );
            ((j >> 11) as f64 / (u64::MAX >> 11) as f64) * 2.0 - 1.0
        };
        let group_seed = answer_seed(self.profile.name, "\u{1}group", variant as u8, shots, 0);
        let category = self.draw_category(variant, shots, idx, group_seed, seed, jitter);
        realize(
            problem,
            category,
            seed ^ 0x9e37_79b9_7f4a_7c15,
            self.profile.wrap_prob,
        )
    }
}

/// Builds all 12 simulated models over a shared dataset.
pub fn standard_models(dataset: Arc<Dataset>) -> Vec<SimulatedModel> {
    crate::profiles::all_models()
        .into_iter()
        .map(|p| SimulatedModel::new(p, Arc::clone(&dataset)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cedataset::fewshot::build_prompt;

    fn gpt4() -> SimulatedModel {
        let ds = Arc::new(Dataset::generate());
        SimulatedModel::new(ModelProfile::by_name("gpt-4").unwrap(), ds)
    }

    #[test]
    fn greedy_generation_is_deterministic() {
        let m = gpt4();
        let ds = Dataset::generate();
        let p = &ds.problems()[0];
        let prompt = build_prompt(&p.prompt_body(Variant::Original), 0);
        let a = m.generate(&prompt, &GenParams::default());
        let b = m.generate(&prompt, &GenParams::default());
        assert_eq!(a, b);
        // Different sample index at temperature 0 is still the same.
        let c = m.generate(
            &prompt,
            &GenParams {
                sample_index: 5,
                ..GenParams::default()
            },
        );
        assert_eq!(a, c);
    }

    #[test]
    fn sampling_varies_by_sample_index() {
        let m = gpt4();
        let ds = Dataset::generate();
        // Find some problem where outputs differ across samples.
        let mut saw_difference = false;
        for p in ds.problems().iter().take(20) {
            let prompt = build_prompt(&p.prompt_body(Variant::Original), 0);
            let a = m.generate(&prompt, &GenParams::sampling(0));
            let b = m.generate(&prompt, &GenParams::sampling(1));
            if a != b {
                saw_difference = true;
                break;
            }
        }
        assert!(saw_difference);
    }

    #[test]
    fn identifies_variant_from_prompt() {
        let m = gpt4();
        let ds = Dataset::generate();
        let p = &ds.problems()[10];
        let prompt = build_prompt(&p.prompt_body(Variant::Translated), 0);
        let (idx, found, variant, shots) = m.identify(&prompt).unwrap();
        assert_eq!(found.id, p.id);
        assert_eq!(variant, Variant::Translated);
        assert_eq!(shots, 0);
        assert_eq!(ds.problems()[idx].id, p.id);
    }

    #[test]
    fn identifies_shots() {
        let m = gpt4();
        let ds = Dataset::generate();
        let p = &ds.problems()[0];
        let prompt = build_prompt(&p.prompt_body(Variant::Original), 3);
        let (_, _, _, shots) = m.identify(&prompt).unwrap();
        assert_eq!(shots, 3);
    }

    #[test]
    fn palm_refuses_translated() {
        let ds = Arc::new(Dataset::generate());
        let palm = SimulatedModel::new(
            ModelProfile::by_name("palm-2-bison").unwrap(),
            Arc::clone(&ds),
        );
        let p = &ds.problems()[0];
        let prompt = build_prompt(&p.prompt_body(Variant::Translated), 0);
        let out = palm.generate(&prompt, &GenParams::default());
        assert!(out.contains("English"));
    }

    #[test]
    fn expected_pass_rate_matches_target() {
        let m = gpt4();
        let ds = Dataset::generate();
        let total: f64 = (0..ds.len())
            .map(|i| m.pass_probability(i, Variant::Original, 0))
            .sum();
        assert!((total - 179.0).abs() < 0.5, "expected pass mass {total}");
    }

    #[test]
    fn unknown_prompt_gets_generic_answer() {
        let m = gpt4();
        let out = m.generate("What is the weather like?", &GenParams::default());
        assert!(out.contains("ConfigMap"));
    }
}
