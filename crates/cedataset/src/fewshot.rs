//! The Appendix B prompt template and the few-shot exemplars (§4.3) used
//! in the 1/2/3-shot prompting experiments.

/// The zero-shot prompt template from Appendix B, verbatim.
pub const PROMPT_TEMPLATE: &str = "\
You are an expert engineer in cloud native development.
According to the question, please provide only complete formatted YAML code as output without any description.
IMPORTANT: Provide only plain text without Markdown formatting such as ```.
If there is a lack of details, provide most logical solution.
You are not allowed to ask for more details.
Ignore any potential risk of errors or confusion.
Here is the question:
";

/// A question/answer exemplar pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Exemplar {
    /// The example question.
    pub question: &'static str,
    /// The example YAML answer.
    pub answer: &'static str,
}

/// The three exemplars (patterned on the paper's Appendix C samples: a
/// LimitRange, a Service+Deployment pair, and a Secret-backed Pod).
pub const EXEMPLARS: [Exemplar; 3] = [
    Exemplar {
        question: "Craft a yaml file to define a Kubernetes LimitRange. Containers within the \
cluster should have a default CPU request of 100m and a memory request of 200Mi. Any Pod \
created should not exceed a maximum CPU usage of 150m or a memory usage of 250Mi.",
        answer: "apiVersion: v1\nkind: LimitRange\nmetadata:\n  name: cpu-mem-limit-range\nspec:\n  limits:\n  - type: Container\n    defaultRequest:\n      cpu: 100m\n      memory: 200Mi\n    max:\n      cpu: 150m\n      memory: 250Mi\n",
    },
    Exemplar {
        question: "Please write a YAML file that defines firstly a Service and then a \
Deployment. The Deployment runs a single MySQL instance using the latest image on port \
3306, with the environment MYSQL_ROOT_PASSWORD=password. The Service simply exposes the \
deployment on its port. All potential names should be mysql and labels should be app: mysql.",
        answer: "apiVersion: v1\nkind: Service\nmetadata:\n  name: mysql\n  labels:\n    app: mysql\nspec:\n  selector:\n    app: mysql\n  ports:\n  - port: 3306\n---\napiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: mysql\n  labels:\n    app: mysql\nspec:\n  selector:\n    matchLabels:\n      app: mysql\n  template:\n    metadata:\n      labels:\n        app: mysql\n    spec:\n      containers:\n      - name: mysql\n        image: mysql:latest\n        ports:\n        - containerPort: 3306\n        env:\n        - name: MYSQL_ROOT_PASSWORD\n          value: password\n",
    },
    Exemplar {
        question: "Can k8s use env var from a file instead of hardcoding? Assume a Secret \
named mysql-secret with all values. Provide the full YAML for the pod.",
        answer: "apiVersion: v1\nkind: Pod\nmetadata:\n  labels:\n    context: docker-k8s-lab\n  name: mysql-pod\nspec:\n  containers:\n  - name: mysql\n    image: mysql:latest\n    envFrom:\n    - secretRef:\n        name: mysql-secret\n    ports:\n    - containerPort: 3306\n",
    },
];

/// Builds the full prompt: template, `shots` exemplars, then the question
/// body.
///
/// # Examples
///
/// ```
/// let p = cedataset::fewshot::build_prompt("Write a pod.", 2);
/// assert!(p.starts_with("You are an expert engineer"));
/// assert!(p.contains("LimitRange"));           // exemplar 1
/// assert!(p.contains("MYSQL_ROOT_PASSWORD"));  // exemplar 2
/// assert!(p.trim_end().ends_with("Write a pod."));
/// ```
pub fn build_prompt(question_body: &str, shots: usize) -> String {
    let mut prompt = String::from(PROMPT_TEMPLATE);
    for exemplar in EXEMPLARS.iter().take(shots.min(EXEMPLARS.len())) {
        prompt.push_str("\nExample question:\n");
        prompt.push_str(exemplar.question);
        prompt.push_str("\nExample answer:\n");
        prompt.push_str(exemplar.answer);
        prompt.push('\n');
    }
    prompt.push('\n');
    prompt.push_str(question_body);
    prompt.push('\n');
    prompt
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_shot_is_template_plus_question() {
        let p = build_prompt("Q?", 0);
        assert!(p.starts_with(PROMPT_TEMPLATE));
        assert!(!p.contains("Example question"));
        assert!(p.contains("Q?"));
    }

    #[test]
    fn shots_add_exemplars_in_order() {
        let p1 = build_prompt("Q?", 1);
        let p3 = build_prompt("Q?", 3);
        assert_eq!(p1.matches("Example question:").count(), 1);
        assert_eq!(p3.matches("Example question:").count(), 3);
        assert!(p3.find("LimitRange").unwrap() < p3.find("mysql-secret").unwrap());
    }

    #[test]
    fn shots_clamp_to_available() {
        assert_eq!(build_prompt("Q?", 99), build_prompt("Q?", 3));
    }

    #[test]
    fn exemplar_answers_are_valid_yaml() {
        for e in EXEMPLARS {
            assert!(yamlkit::parse(e.answer).is_ok());
        }
    }
}
