//! # cedataset
//!
//! The CloudEval-YAML dataset (§2), generated deterministically.
//!
//! The paper's dataset is 337 hand-written problems (1200+ human hours)
//! covering Kubernetes pods/daemonsets/services/jobs/deployments, other
//! Kubernetes kinds, Envoy and Istio — each with an NL description, an
//! optional YAML context, a labeled reference solution and a bash unit
//! test — tripled by practical augmentation (simplified + translated
//! questions) into 1011 benchmark entries.
//!
//! Offline, this crate substitutes a **problem generator**: template
//! families per category produce 337 problems with the exact Table 2
//! category counts, the same artifact schema, and unit tests that provably
//! pass against their own references (verified by this crate's tests
//! running every script through `minishell` + `kubesim`). Augmentation is
//! rule-based ([`augment::simplify`], [`augment::translate`]) instead of
//! GPT-4 + manual review, preserving the three-variant structure and the
//! word-count deltas of Table 1.
//!
//! Beyond the paper-faithful set, [`Dataset::generate_extended`] appends
//! extra scenario families — CronJob concurrency policies, autoscaling/v2
//! HPAs, multi-path Ingresses, NetworkPolicy allow rules, and
//! ConfigMap-backed volumes — for workloads that grow the benchmark past
//! Table 2 without disturbing its reproduction.
//!
//! # Examples
//!
//! ```
//! use cedataset::{Dataset, Variant};
//!
//! let ds = Dataset::generate();
//! assert_eq!(ds.len(), 337);
//! assert_eq!(ds.expanded().len(), 1011);
//!
//! let p = &ds.problems()[0];
//! let prompt = cedataset::fewshot::build_prompt(&p.prompt_body(Variant::Original), 0);
//! assert!(prompt.contains("expert engineer"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod augment;
pub mod fewshot;
mod generator;
mod problem;
pub mod stats;
mod templates_k8s;
mod templates_mesh;

pub use generator::Dataset;
pub use problem::{Application, Category, Problem, Variant};
