//! Practical data augmentation (§2.2): simplification and translation.
//!
//! The paper drafts these rewrites with GPT-4 and reviews them manually;
//! offline we substitute deterministic rule-based rewriters that produce
//! the same *kind* of text: the simplifier abbreviates domain terms and
//! strips politeness (targeting the paper's −25.7% word count), and the
//! translator renders the question in the Chinese a cloud operations team
//! would write, keeping YAML fragments and identifiers untouched.

/// Domain abbreviations applied by the simplifier, longest-first.
const ABBREVIATIONS: &[(&str, &str)] = &[
    ("Kubernetes", "k8s"),
    ("kubernetes", "k8s"),
    ("configuration file", "config"),
    ("configuration", "config"),
    ("environment variables", "env vars"),
    ("environment variable", "env var"),
    ("deployment", "deploy"),
    ("Deployment", "Deploy"),
    ("namespace", "ns"),
    ("service", "svc"),
    ("Service", "Svc"),
    ("container port", "port"),
    ("load balancer", "LB"),
    ("load balancing", "LB"),
    ("load balanced", "LB'd"),
    ("resource requests", "req"),
    ("resource limits", "limits"),
    ("manifest", "yaml"),
    ("application", "app"),
    ("additionally", "also"),
    ("Additionally", "Also"),
    ("specific", ""),
    ("respectively", "resp."),
];

/// Filler phrases removed entirely.
const FILLERS: &[&str] = &[
    "Please write ",
    "Please provide ",
    "please provide ",
    "Please add ",
    "please help me ",
    "I need ",
    "I want ",
    "Craft ",
    "so that services can select it later",
    "so the scheduler and the kubelet can enforce them",
    "The configuration must pass",
    "Remember that",
    "double-check field names before answering",
    "which together with no rules means",
    "Ensure that ",
    "Ensure ",
    "must become ready",
    "exactly as described when probed with curl",
    "Provide only the full YAML with static_resources at the top level",
    "Please provide me the entire YAML configuration for this",
    "and return the entire modified YAML",
];

/// Rewrites a question concisely with abbreviations — the paper's
/// simplified variant.
///
/// Fenced code blocks are preserved verbatim.
///
/// # Examples
///
/// ```
/// let s = cedataset::augment::simplify(
///     "Please write a Kubernetes Deployment manifest with environment variables.",
/// );
/// assert!(s.contains("k8s"));
/// assert!(!s.contains("Please"));
/// ```
pub fn simplify(description: &str) -> String {
    transform_outside_code(description, |text| {
        let mut s = text.to_owned();
        for f in FILLERS {
            s = s.replace(f, "");
        }
        for (long, short) in ABBREVIATIONS {
            s = s.replace(long, short);
        }
        // Politeness and hedging tokens.
        for w in ["Please ", "please ", "kindly ", "simply ", " very", " just"] {
            s = s.replace(w, " ");
        }
        // Drop low-information stopwords, the dominant source of the
        // paper's −25.7% word-count reduction. Quoted identifiers are
        // single tokens with quote characters, so they never match.
        let kept: Vec<&str> = s
            .split_whitespace()
            .filter(|w| {
                let bare = w.trim_matches(|c: char| c == ',' || c == '.');
                !STOPWORDS.contains(&bare.to_lowercase().as_str()) || w.ends_with(':')
            })
            .collect();
        collapse_spaces(&kept.join(" "))
    })
}

/// Words the simplifier drops outright.
const STOPWORDS: &[&str] = &[
    "the", "a", "an", "that", "which", "it", "its", "be", "been", "is", "are", "was", "were",
    "should", "must", "please", "kindly", "very", "just", "also", "so", "such", "will", "would",
    "can", "could", "to", "in", "into", "of", "for", "on", "under", "inside", "within", "there",
    "their", "this", "these", "those", "your", "our", "my", "me", "i", "we", "you", "and", "then",
    "when", "while",
];

/// Domain glossary for the pseudo-translation. Identifiers (quoted names,
/// YAML keys, numbers) survive untouched, as in the paper's examples.
const GLOSSARY: &[(&str, &str)] = &[
    ("Please write a YAML file", "请写一个 YAML 文件"),
    ("Write a YAML file", "写一个 YAML 文件"),
    ("Write a yaml file", "写一个 yaml 文件"),
    ("Write a Kubernetes", "写一个 Kubernetes"),
    ("Write YAML", "写 YAML"),
    ("Write an", "写一个"),
    ("Write a", "写一个"),
    ("Create a", "创建一个"),
    ("Create an", "创建一个"),
    ("Create", "创建"),
    ("Generate YAML", "生成 YAML"),
    ("Craft a yaml file", "写一个 yaml 文件"),
    ("I need a", "我需要一个"),
    ("I need an", "我需要一个"),
    ("Please write", "请写"),
    ("Please provide", "请提供"),
    ("that defines", "，其中定义"),
    ("that runs", "，运行"),
    ("It must", "它必须"),
    ("It runs", "它运行"),
    ("using the", "使用"),
    ("exposes", "暴露"),
    ("expose", "暴露"),
    ("Given the following", "给定以下"),
    ("Given this", "给定这个"),
    ("named", "名为"),
    ("the cluster", "集群"),
    ("cluster", "集群"),
    ("container", "容器"),
    ("image", "镜像"),
    ("port", "端口"),
    ("replicas", "副本"),
    ("namespace", "命名空间"),
    ("environment variable", "环境变量"),
    ("label", "标签"),
    ("selector", "选择器"),
    ("load balancer", "负载均衡器"),
    ("load balanced", "负载均衡"),
    ("traffic", "流量"),
    ("request", "请求"),
    ("memory", "内存"),
    ("storage", "存储"),
    ("schedule", "调度"),
    ("service", "服务"),
    ("route", "路由"),
    ("configuration", "配置"),
    ("should be", "应为"),
    ("must", "必须"),
    ("and", "和"),
    ("with", "带有"),
    ("the", ""),
];

/// Renders the question in developer-tone Chinese — the paper's translated
/// variant. The output deliberately mixes Chinese prose with untranslated
/// identifiers/YAML, matching the examples in Appendix D.
///
/// # Examples
///
/// ```
/// let t = cedataset::augment::translate("Create a Kubernetes Pod named \"web\".");
/// assert!(t.contains("创建"));
/// assert!(t.contains("\"web\""));
/// ```
pub fn translate(description: &str) -> String {
    transform_outside_code(description, |text| {
        let mut s = text.to_owned();
        for (en, zh) in GLOSSARY {
            s = s.replace(en, zh);
        }
        let s = collapse_spaces(&s);
        format!("{s}。请为此提供完整的 YAML。")
    })
}

/// Applies `f` to prose, leaving ``` fenced blocks untouched.
fn transform_outside_code(text: &str, f: impl Fn(&str) -> String) -> String {
    let mut out = String::new();
    let mut in_code = false;
    for (i, part) in text.split("```").enumerate() {
        if i > 0 {
            out.push_str("```");
            in_code = !in_code;
        }
        if in_code {
            out.push_str(part);
        } else {
            out.push_str(&f(part));
        }
    }
    out
}

fn collapse_spaces(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut prev_space = false;
    for c in s.chars() {
        if c == ' ' {
            if !prev_space {
                out.push(c);
            }
            prev_space = true;
        } else {
            prev_space = false;
            out.push(c);
        }
    }
    out.trim().to_owned()
}

/// Counts whitespace-separated words (Table 1's "Avg. words").
pub fn word_count(text: &str) -> usize {
    text.split_whitespace().count()
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "Please write a YAML file that defines a Kubernetes Deployment named \
\"web\" with 3 replicas and environment variables for the container. Ensure that the \
deployment exposes container port 80 so that services can select it later.";

    #[test]
    fn simplify_reduces_word_count_substantially() {
        let simplified = simplify(SAMPLE);
        let before = word_count(SAMPLE) as f64;
        let after = word_count(&simplified) as f64;
        let reduction = 1.0 - after / before;
        assert!(
            reduction > 0.10,
            "only {:.1}% reduction: {simplified}",
            reduction * 100.0
        );
    }

    #[test]
    fn simplify_uses_abbreviations() {
        let s = simplify(SAMPLE);
        assert!(s.contains("k8s"), "{s}");
        assert!(!s.contains("Please"), "{s}");
    }

    #[test]
    fn simplify_preserves_code_blocks() {
        let text = "Modify this deployment.\n```\nkind: Deployment\nmetadata:\n  namespace: x\n```";
        let s = simplify(text);
        assert!(s.contains("kind: Deployment"));
        assert!(
            s.contains("namespace: x"),
            "code must not be abbreviated: {s}"
        );
    }

    #[test]
    fn translate_produces_chinese_and_keeps_identifiers() {
        let t = translate(SAMPLE);
        assert!(t.contains("创建") || t.contains("写一个"), "{t}");
        assert!(t.contains("\"web\""));
        assert!(t.contains("80"));
    }

    #[test]
    fn translate_preserves_code_blocks() {
        let text = "Given the following YAML\n```\napiVersion: v1\nkind: Service\n```";
        let t = translate(text);
        assert!(t.contains("给定以下"));
        assert!(t.contains("kind: Service"));
    }

    #[test]
    fn augmentation_is_deterministic() {
        assert_eq!(simplify(SAMPLE), simplify(SAMPLE));
        assert_eq!(translate(SAMPLE), translate(SAMPLE));
    }
}
