//! Deterministic dataset generation: 337 problems with the exact category
//! counts of Table 2, expandable to the 1011-problem three-variant set.

use crate::problem::{Category, Problem, Variant};
use crate::{templates_k8s, templates_mesh};

/// The generated CloudEval-YAML dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    problems: Vec<Problem>,
}

impl Dataset {
    /// Generates the full 337-problem dataset. Generation is pure —
    /// calling twice yields identical problems.
    pub fn generate() -> Dataset {
        let mut problems = Vec::with_capacity(337);
        for (category, count) in Category::target_counts() {
            for i in 0..count {
                problems.push(match category {
                    Category::Pod => templates_k8s::pod(i),
                    Category::DaemonSet => templates_k8s::daemonset(i),
                    Category::Service => templates_k8s::service(i),
                    Category::Job => templates_k8s::job(i),
                    Category::Deployment => templates_k8s::deployment(i),
                    Category::KubernetesOther => templates_k8s::others(i),
                    Category::Envoy => templates_mesh::envoy(i),
                    Category::Istio => templates_mesh::istio(i),
                });
            }
        }
        Dataset { problems }
    }

    /// The base dataset plus the extended scenario families (CronJob
    /// policies, autoscaling/v2 HPAs, multi-path Ingresses, NetworkPolicy
    /// allow rules, ConfigMap-backed volumes): `extra` problems appended
    /// after the 337, cycling over the five families deterministically.
    ///
    /// The paper-faithful counts of [`Dataset::generate`] are untouched —
    /// the extension is how the benchmark grows toward "as many scenarios
    /// as you can imagine" without disturbing Table 1/2 reproduction.
    pub fn generate_extended(extra: usize) -> Dataset {
        let mut ds = Dataset::generate();
        ds.problems
            .extend((0..extra).map(crate::templates_k8s::scenario));
        ds
    }

    /// The problems in stable order.
    pub fn problems(&self) -> &[Problem] {
        &self.problems
    }

    /// Number of base problems (337).
    pub fn len(&self) -> usize {
        self.problems.len()
    }

    /// Whether the dataset is empty (never, after generation).
    pub fn is_empty(&self) -> bool {
        self.problems.is_empty()
    }

    /// Problems of one category.
    pub fn by_category(&self, category: Category) -> impl Iterator<Item = &Problem> {
        self.problems.iter().filter(move |p| p.category == category)
    }

    /// Looks up a problem by id.
    pub fn get(&self, id: &str) -> Option<&Problem> {
        self.problems.iter().find(|p| p.id == id)
    }

    /// Expands to the full 1011-entry benchmark: every problem in all
    /// three variants (the paper's 337 × {original, simplified,
    /// translated}).
    pub fn expanded(&self) -> Vec<(&Problem, Variant)> {
        let mut out = Vec::with_capacity(self.problems.len() * 3);
        for variant in Variant::ALL {
            for p in &self.problems {
                out.push((p, variant));
            }
        }
        out
    }
}

impl Default for Dataset {
    fn default() -> Self {
        Dataset::generate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn category_counts_match_table_2() {
        let ds = Dataset::generate();
        assert_eq!(ds.len(), 337);
        for (cat, expected) in Category::target_counts() {
            assert_eq!(ds.by_category(cat).count(), expected, "{cat:?}");
        }
    }

    #[test]
    fn expanded_is_1011() {
        let ds = Dataset::generate();
        assert_eq!(ds.expanded().len(), 1011);
    }

    #[test]
    fn ids_are_unique() {
        let ds = Dataset::generate_extended(30);
        let mut ids: Vec<&str> = ds.problems().iter().map(|p| p.id.as_str()).collect();
        ids.sort_unstable();
        let before = ids.len();
        ids.dedup();
        assert_eq!(ids.len(), before);
    }

    #[test]
    fn extended_dataset_appends_scenarios() {
        let ds = Dataset::generate_extended(30);
        assert_eq!(ds.len(), 367);
        let scenarios: Vec<&Problem> = ds
            .problems()
            .iter()
            .filter(|p| p.id.starts_with("scn-"))
            .collect();
        assert_eq!(scenarios.len(), 30);
        // All five families represented.
        for family in ["cmvol", "cronjob", "hpa", "ingress", "netpol"] {
            assert!(
                scenarios
                    .iter()
                    .any(|p| p.id.starts_with(&format!("scn-{family}-"))),
                "missing {family}"
            );
        }
        // Extended generation is deterministic too.
        assert_eq!(ds, Dataset::generate_extended(30));
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(Dataset::generate(), Dataset::generate());
    }

    #[test]
    fn every_reference_is_valid_labeled_yaml() {
        let ds = Dataset::generate();
        for p in ds.problems() {
            let parsed = yamlkit::parse(&p.labeled_reference);
            assert!(parsed.is_ok(), "{}: {:?}", p.id, parsed.err());
            // And it round-trips through the wildcard-match tree at 1.0.
            let clean = p.clean_reference();
            let score = cescore::kv_wildcard_match(&p.labeled_reference, &clean);
            assert!(
                (score - 1.0).abs() < 1e-9,
                "{}: reference does not match itself: {score}",
                p.id
            );
        }
    }

    #[test]
    fn descriptions_are_nonempty_and_variants_differ() {
        let ds = Dataset::generate();
        for p in ds.problems() {
            assert!(!p.description.is_empty(), "{}", p.id);
            assert!(!p.simplified.is_empty(), "{}", p.id);
            assert!(
                p.translated.contains('。') || p.translated.contains('写'),
                "{}",
                p.id
            );
        }
    }

    #[test]
    fn some_problems_have_context() {
        let ds = Dataset::generate();
        let with = ds.problems().iter().filter(|p| p.has_context()).count();
        let without = ds.len() - with;
        assert!(with >= 50, "{with} problems with context");
        assert!(without >= 150, "{without} problems without context");
    }

    #[test]
    fn envoy_solutions_are_longest() {
        let ds = Dataset::generate();
        let avg = |cat: Category| -> f64 {
            let lines: Vec<usize> = ds.by_category(cat).map(Problem::reference_lines).collect();
            lines.iter().sum::<usize>() as f64 / lines.len() as f64
        };
        assert!(avg(Category::Envoy) > avg(Category::Pod) * 1.8);
        assert!(avg(Category::Envoy) > avg(Category::Istio));
    }
}
