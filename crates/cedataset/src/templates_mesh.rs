//! Envoy and Istio problem templates. Envoy problems have the longest
//! solutions in the dataset (Table 2: 85.85 average lines vs 28.35
//! overall), which this generator preserves by emitting full
//! `static_resources` configurations.

use crate::problem::{Category, Problem};
use crate::templates_k8s::finish_problem;

fn pick<T>(options: &[T], i: usize) -> &T {
    &options[i % options.len()]
}

// ---------------------------------------------------------------------
// Envoy (41)
// ---------------------------------------------------------------------

/// Builds the i-th Envoy problem.
pub fn envoy(i: usize) -> Problem {
    let id = format!("envoy-{i:03}");
    let n = i / 4;
    match i % 4 {
        0 => envoy_basic_route(id, n),
        1 => envoy_two_routes(id, n),
        2 => envoy_direct_response(id, n),
        _ => envoy_weighted(id, n),
    }
}

fn listener_header(port: u16) -> String {
    format!(
        "static_resources:
  listeners:
  - name: listener_0
    address:
      socket_address:
        address: 0.0.0.0
        port_value: {port}
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          \"@type\": type.googleapis.com/envoy.extensions.filters.network.http_connection_manager.v3.HttpConnectionManager
          stat_prefix: ingress_http
          route_config:
            name: local_route
            virtual_hosts:
"
    )
}

fn cluster_block(name: &str, port: u16) -> String {
    format!(
        "  - name: {name}
    connect_timeout: 0.25s
    type: STATIC
    lb_policy: ROUND_ROBIN
    load_assignment:
      cluster_name: {name}
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: {port}
"
    )
}

fn envoy_basic_route(id: String, n: usize) -> Problem {
    let port = 10000 + (n as u16 % 4) * 1000;
    let cluster = *pick(
        &[
            "service_backend",
            "app_cluster",
            "web_upstream",
            "api_cluster",
        ],
        n,
    );
    let upstream_port = 8080 + (n as u16 % 3) * 100;
    let description = format!(
        "Write a complete Envoy static configuration in YAML. It must define one listener named \
\"listener_0\" bound to address 0.0.0.0 on port {port}, with an HTTP connection manager \
whose route configuration has a single virtual host matching all domains (\"*\"). Every \
request with path prefix \"/\" must be routed to a cluster named \"{cluster}\". Then \
define that cluster: type STATIC, ROUND_ROBIN load balancing, connect timeout 0.25s, and a \
single endpoint at 127.0.0.1 port {upstream_port} under load_assignment. The configuration \
must pass `envoy --mode validate` and serve requests on port {port}. Remember that the \
route cluster name must exactly match the declared cluster, and that the listener uses \
socket_address with port_value — Envoy rejects configurations where these are missing or \
mismatched, so double-check field names before answering."
    );
    let labeled_reference = format!(
        "{header}            - name: backend # *\n              domains: [\"*\"]\n              routes:\n              - match:\n                  prefix: /\n                route:\n                  cluster: {cluster}\n  clusters:\n{cluster_block}",
        header = listener_header(port),
        cluster_block = cluster_block(cluster, upstream_port),
    );
    let unit_test = format!(
        r#"envoy --mode validate -c labeled_code.yaml || exit 1
envoy-start -c labeled_code.yaml
code=$(curl -s -o /dev/null -w "%{{http_code}}" localhost:{port}/)
body=$(curl -s localhost:{port}/anything)
if [ "$code" == "200" ] && [[ $body == *"{cluster}"* ]]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Envoy,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn envoy_two_routes(id: String, n: usize) -> Problem {
    let port = 9000 + (n as u16 % 4) * 500;
    let api_cluster = *pick(&["api_service", "grpc_backend", "v2_service"], n);
    let default_cluster = *pick(&["static_files", "web_default", "fallback"], n);
    let prefix = *pick(&["/api", "/v2", "/rpc"], n);
    let description = format!(
        "I need an Envoy YAML configuration implementing path-based routing. Create one listener \
on 0.0.0.0:{port} with an http_connection_manager. Its virtual host (domains [\"*\"]) \
routes requests whose path starts with \"{prefix}\" to the cluster \"{api_cluster}\" and \
everything else (prefix \"/\") to the cluster \"{default_cluster}\"; order matters, the \
more specific prefix must come first. Define both clusters as STATIC with ROUND_ROBIN \
load balancing: {api_cluster} has an endpoint at 127.0.0.1:8081 and {default_cluster} at \
127.0.0.1:8082 via load_assignment. The file must validate with envoy --mode validate, and \
a request to {prefix}/users must land on {api_cluster} while /index.html lands on \
{default_cluster}. Provide only the full YAML with static_resources at the top level."
    );
    let labeled_reference = format!(
        "{header}            - name: backend # *\n              domains: [\"*\"]\n              routes:\n              - match:\n                  prefix: {prefix}\n                route:\n                  cluster: {api_cluster}\n              - match:\n                  prefix: /\n                route:\n                  cluster: {default_cluster}\n  clusters:\n{c1}{c2}",
        header = listener_header(port),
        c1 = cluster_block(api_cluster, 8081),
        c2 = cluster_block(default_cluster, 8082),
    );
    let unit_test = format!(
        r#"envoy --mode validate -c labeled_code.yaml || exit 1
envoy-start -c labeled_code.yaml
api=$(curl -s localhost:{port}{prefix}/users)
other=$(curl -s localhost:{port}/index.html)
if [[ $api == *"{api_cluster}"* ]] && [[ $other == *"{default_cluster}"* ]]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Envoy,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn envoy_direct_response(id: String, n: usize) -> Problem {
    let port = 10000 + (n as u16 % 5) * 123;
    let status = *pick(&[403u16, 404, 429, 503], n);
    let body = *pick(
        &["access denied", "not here", "slow down", "maintenance"],
        n,
    );
    let health_cluster = "health_backend";
    let description = format!(
        "Write an Envoy static configuration YAML with a listener on 0.0.0.0:{port}. The HTTP \
connection manager's virtual host must match all domains and contain two routes, evaluated \
in order: first, requests with path prefix \"/health\" are routed to a STATIC cluster named \
\"{health_cluster}\" (ROUND_ROBIN, one endpoint 127.0.0.1:9901 declared through \
load_assignment with lb_endpoints). Second, every other request (prefix \"/\") must be \
answered directly by Envoy without any upstream, using a direct_response with HTTP status \
{status} and the inline_string body \"{body}\". Direct responses are configured on the \
route itself with a body.inline_string field. The configuration must pass validation and \
behave exactly as described when probed with curl."
    );
    let body_yaml = format!("\"{body}\"");
    let labeled_reference = format!(
        "{header}            - name: backend # *\n              domains: [\"*\"]\n              routes:\n              - match:\n                  prefix: /health\n                route:\n                  cluster: {health_cluster}\n              - match:\n                  prefix: /\n                direct_response:\n                  status: {status}\n                  body:\n                    inline_string: {body_yaml}\n  clusters:\n{c1}",
        header = listener_header(port),
        c1 = cluster_block(health_cluster, 9901),
    );
    let unit_test = format!(
        r#"envoy --mode validate -c labeled_code.yaml || exit 1
envoy-start -c labeled_code.yaml
code=$(curl -s -o /dev/null -w "%{{http_code}}" localhost:{port}/blocked)
health=$(curl -s localhost:{port}/health)
resp=$(curl -s localhost:{port}/other)
if [ "$code" == "{status}" ] && [[ $health == *"{health_cluster}"* ]] && [[ $resp == *"{body}"* ]]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Envoy,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn envoy_weighted(id: String, n: usize) -> Problem {
    let port = 8800 + (n as u16 % 4) * 250;
    let primary = *pick(&["service_v1", "stable", "blue"], n);
    let canary = *pick(&["service_v2", "canary", "green"], n);
    let weight = *pick(&[80u32, 90, 75], n);
    let description = format!(
        "Create an Envoy configuration YAML implementing a canary traffic split. One listener on \
0.0.0.0:{port} with an http_connection_manager; the single virtual host (all domains) has \
one route matching prefix \"/\" whose action is weighted_clusters: send {weight}% of \
traffic to cluster \"{primary}\" and the remaining {rest}% to cluster \"{canary}\" (weights \
{weight} and {rest} under route.weighted_clusters.clusters, each entry carrying name and \
weight). Define both clusters as STATIC/ROUND_ROBIN with endpoints 127.0.0.1:8181 for \
{primary} and 127.0.0.1:8282 for {canary}, declared with load_assignment, connect_timeout \
0.25s. The file must pass envoy --mode validate; the majority of probes must reach \
{primary}.",
        rest = 100 - weight,
    );
    let labeled_reference = format!(
        "{header}            - name: backend # *\n              domains: [\"*\"]\n              routes:\n              - match:\n                  prefix: /\n                route:\n                  weighted_clusters:\n                    clusters:\n                    - name: {primary}\n                      weight: {weight}\n                    - name: {canary}\n                      weight: {rest}\n  clusters:\n{c1}{c2}",
        header = listener_header(port),
        rest = 100 - weight,
        c1 = cluster_block(primary, 8181),
        c2 = cluster_block(canary, 8282),
    );
    let unit_test = format!(
        r#"envoy --mode validate -c labeled_code.yaml || exit 1
envoy-start -c labeled_code.yaml
body=$(curl -s localhost:{port}/)
if [[ $body == *"{primary}"* ]]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Envoy,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

// ---------------------------------------------------------------------
// Istio (13)
// ---------------------------------------------------------------------

/// Builds the i-th Istio problem.
pub fn istio(i: usize) -> Problem {
    let id = format!("istio-{i:03}");
    let n = i / 3;
    match i % 3 {
        0 => istio_destination_rule(id, n),
        1 => istio_virtual_service(id, n),
        _ => istio_gateway(id, n),
    }
}

fn istio_destination_rule(id: String, n: usize) -> Problem {
    let svc = *pick(&["ratings", "reviews", "productpage", "details"], n);
    let ns = *pick(&["prod", "staging"], n / 4);
    let subset_version = *pick(&["v3", "v2"], n / 2);
    let description = format!(
        "I need a Istio destination rule YAML set up for the bookinfo application's {svc} \
service in the {ns} namespace. This rule had the main traffic load balanced using the \
LEAST_REQUEST strategy. Additionally, there was a specific subset named testversion using \
version {subset_version} labels, and for this subset, the traffic was load balanced with a \
ROUND_ROBIN approach. Please provide me the entire YAML configuration for this."
    );
    let labeled_reference = format!(
        "apiVersion: networking.istio.io/v1alpha3\nkind: DestinationRule\nmetadata:\n  name: {svc} # *\n  namespace: {ns}\nspec:\n  host: {svc}\n  trafficPolicy:\n    loadBalancer:\n      simple: LEAST_REQUEST\n  subsets:\n  - name: testversion\n    labels:\n      version: {subset_version}\n    trafficPolicy:\n      loadBalancer:\n        simple: ROUND_ROBIN\n"
    );
    let unit_test = format!(
        r#"kubectl create ns {ns} || true
kubectl apply -f labeled_code.yaml
dr=$(kubectl get destinationrule -n {ns} -o jsonpath='{{.items[0].metadata.name}}')
host=$(kubectl get destinationrule $dr -n {ns} -o jsonpath={{.spec.host}})
lb=$(kubectl get destinationrule $dr -n {ns} -o jsonpath='{{.spec.trafficPolicy.loadBalancer.simple}}')
subset=$(kubectl get destinationrule $dr -n {ns} -o jsonpath='{{.spec.subsets[0].name}}')
sublb=$(kubectl get destinationrule $dr -n {ns} -o jsonpath='{{.spec.subsets[0].trafficPolicy.loadBalancer.simple}}')
istioctl analyze | grep "No validation issues" || exit 1
if [ "$host" == "{svc}" ] && [ "$lb" == "LEAST_REQUEST" ] && [ "$subset" == "testversion" ] && [ "$sublb" == "ROUND_ROBIN" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Istio,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn istio_virtual_service(id: String, n: usize) -> Problem {
    let svc = *pick(&["reviews", "ratings"], n);
    let weight = *pick(&[90i64, 75], n / 2);
    let description = format!(
        "Write an Istio VirtualService YAML named \"{svc}-route\" for host \"{svc}\". It defines \
one http route with two weighted destinations: {weight}% of traffic goes to host {svc} \
subset v1 and the rest to subset v2 (weights {weight} and {rest}). Each route entry uses \
destination.host, destination.subset and weight.",
        rest = 100 - weight,
    );
    let labeled_reference = format!(
        "apiVersion: networking.istio.io/v1alpha3\nkind: VirtualService\nmetadata:\n  name: {svc}-route # *\nspec:\n  hosts:\n  - {svc}\n  http:\n  - route:\n    - destination:\n        host: {svc}\n        subset: v1\n      weight: {weight}\n    - destination:\n        host: {svc}\n        subset: v2\n      weight: {rest}\n",
        rest = 100 - weight,
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
vs=$(kubectl get virtualservice -o jsonpath='{{.items[0].metadata.name}}')
host=$(kubectl get virtualservice $vs -o jsonpath='{{.spec.hosts[0]}}')
w1=$(kubectl get virtualservice $vs -o jsonpath='{{.spec.http[0].route[0].weight}}')
s2=$(kubectl get virtualservice $vs -o jsonpath='{{.spec.http[0].route[1].destination.subset}}')
if [ "$host" == "{svc}" ] && [ "$w1" == "{weight}" ] && [ "$s2" == "v2" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Istio,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn istio_gateway(id: String, n: usize) -> Problem {
    let host = *pick(&["bookinfo.example.com", "shop.example.com"], n);
    let port = *pick(&[80i64, 8080], n / 2);
    let description = format!(
        "Create an Istio Gateway YAML named \"web-gateway\" using the standard istio ingress \
gateway selector (istio: ingressgateway). It must declare one server on port number {port}, \
port name \"http\", protocol HTTP, accepting traffic for the host \"{host}\"."
    );
    let labeled_reference = format!(
        "apiVersion: networking.istio.io/v1alpha3\nkind: Gateway\nmetadata:\n  name: web-gateway # *\nspec:\n  selector:\n    istio: ingressgateway\n  servers:\n  - port:\n      number: {port}\n      name: http\n      protocol: HTTP\n    hosts:\n    - {host}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
gw=$(kubectl get gateway -o jsonpath='{{.items[0].metadata.name}}')
portnum=$(kubectl get gateway $gw -o jsonpath='{{.spec.servers[0].port.number}}')
proto=$(kubectl get gateway $gw -o jsonpath='{{.spec.servers[0].port.protocol}}')
host=$(kubectl get gateway $gw -o jsonpath='{{.spec.servers[0].hosts[0]}}')
if [ "$portnum" == "{port}" ] && [ "$proto" == "HTTP" ] && [ "$host" == "{host}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Istio,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}
