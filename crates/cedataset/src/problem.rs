//! The problem schema (§2.1): prompt template + NL description + optional
//! YAML context + labeled reference YAML + bash unit test.

use serde::{Deserialize, Serialize};

/// Application category, matching Table 2's columns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Category {
    /// Kubernetes `Pod` problems.
    Pod,
    /// Kubernetes `DaemonSet` problems.
    DaemonSet,
    /// Kubernetes `Service` problems.
    Service,
    /// Kubernetes `Job` problems.
    Job,
    /// Kubernetes `Deployment` problems.
    Deployment,
    /// Other Kubernetes kinds (ConfigMap, RBAC, Ingress, ...).
    KubernetesOther,
    /// Envoy static configurations.
    Envoy,
    /// Istio CRDs.
    Istio,
}

impl Category {
    /// Table 2 column header.
    pub fn label(&self) -> &'static str {
        match self {
            Category::Pod => "pod",
            Category::DaemonSet => "daemonset",
            Category::Service => "service",
            Category::Job => "job",
            Category::Deployment => "deployment",
            Category::KubernetesOther => "others",
            Category::Envoy => "Envoy",
            Category::Istio => "Istio",
        }
    }

    /// Top-level application (Figure 6's first panel).
    pub fn application(&self) -> Application {
        match self {
            Category::Envoy => Application::Envoy,
            Category::Istio => Application::Istio,
            _ => Application::Kubernetes,
        }
    }

    /// Target problem counts from Table 2.
    pub fn target_counts() -> [(Category, usize); 8] {
        [
            (Category::Pod, 48),
            (Category::DaemonSet, 55),
            (Category::Service, 20),
            (Category::Job, 19),
            (Category::Deployment, 19),
            (Category::KubernetesOther, 122),
            (Category::Envoy, 41),
            (Category::Istio, 13),
        ]
    }
}

/// Application grouping used in the per-application analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Application {
    /// Kubernetes (includes the `others` kinds).
    Kubernetes,
    /// Envoy proxy configuration.
    Envoy,
    /// Istio service mesh CRDs.
    Istio,
}

/// Dataset variant after practical augmentation (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Variant {
    /// The hand-written original question.
    Original,
    /// Concise/abbreviated rewriting.
    Simplified,
    /// Native-language (Chinese) rewriting.
    Translated,
}

impl Variant {
    /// All three variants, in Table 1/5 order.
    pub const ALL: [Variant; 3] = [Variant::Original, Variant::Simplified, Variant::Translated];

    /// Display name.
    pub fn label(&self) -> &'static str {
        match self {
            Variant::Original => "Original",
            Variant::Simplified => "Simplified",
            Variant::Translated => "Translated",
        }
    }
}

/// One benchmark problem.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Problem {
    /// Stable identifier, e.g. `pod-007`.
    pub id: String,
    /// Application category.
    pub category: Category,
    /// Original English problem description.
    pub description: String,
    /// Optional YAML context shown with the question (§2.1: infilling /
    /// modification / extension problems).
    pub context_yaml: Option<String>,
    /// Reference solution with `# *` / `# v in [...]` match labels.
    pub labeled_reference: String,
    /// Bash unit-test script; echoes `unit_test_passed` on success.
    pub unit_test: String,
    /// Pre-computed simplified description (manually-reviewed-equivalent).
    pub simplified: String,
    /// Pre-computed translated description.
    pub translated: String,
}

impl Problem {
    /// The description text for a dataset variant.
    pub fn description_for(&self, variant: Variant) -> &str {
        match variant {
            Variant::Original => &self.description,
            Variant::Simplified => &self.simplified,
            Variant::Translated => &self.translated,
        }
    }

    /// The full prompt body (description plus fenced YAML context), before
    /// the Appendix B template is prepended.
    pub fn prompt_body(&self, variant: Variant) -> String {
        let mut s = self.description_for(variant).to_owned();
        if let Some(ctx) = &self.context_yaml {
            s.push_str("\n```\n");
            s.push_str(ctx);
            s.push_str("```\n");
        }
        s
    }

    /// Reference solution with the grading labels stripped — what a
    /// perfect answer looks like.
    pub fn clean_reference(&self) -> String {
        cescore::strip_label_comments(&self.labeled_reference)
    }

    /// Whether the question ships a YAML context (Figure 6's "Code
    /// Context" panel).
    pub fn has_context(&self) -> bool {
        self.context_yaml.is_some()
    }

    /// Lines in the reference solution (Figure 6's length buckets).
    pub fn reference_lines(&self) -> usize {
        self.clean_reference().lines().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Problem {
        Problem {
            id: "pod-000".into(),
            category: Category::Pod,
            description: "Write a pod.".into(),
            context_yaml: Some("kind: Pod\n".into()),
            labeled_reference: "kind: Pod\nmetadata:\n  name: x # *\n".into(),
            unit_test: "echo unit_test_passed".into(),
            simplified: "pod pls".into(),
            translated: "写一个 pod".into(),
        }
    }

    #[test]
    fn variant_descriptions() {
        let p = sample();
        assert_eq!(p.description_for(Variant::Original), "Write a pod.");
        assert_eq!(p.description_for(Variant::Simplified), "pod pls");
        assert_eq!(p.description_for(Variant::Translated), "写一个 pod");
    }

    #[test]
    fn prompt_body_includes_context() {
        let p = sample();
        let body = p.prompt_body(Variant::Original);
        assert!(body.contains("```\nkind: Pod"));
    }

    #[test]
    fn clean_reference_strips_labels() {
        let p = sample();
        assert_eq!(p.clean_reference(), "kind: Pod\nmetadata:\n  name: x\n");
    }

    #[test]
    fn table2_counts_sum_to_337() {
        let total: usize = Category::target_counts().iter().map(|(_, n)| n).sum();
        assert_eq!(total, 337);
    }
}
