//! Dataset statistics: Table 1 (augmentation) and Table 2 (per-category).

use crate::augment::word_count;
use crate::generator::Dataset;
use crate::problem::{Category, Problem, Variant};

/// Approximate LLM token count. Matches the shape of BPE tokenizers: one
/// token per ~4 characters of prose, with whitespace/punctuation splits as
/// a lower bound.
pub fn token_count(text: &str) -> usize {
    let by_chars = text.chars().count().div_ceil(4);
    let by_words = cescore::tokenize(text).len();
    by_chars.max(by_words)
}

/// One row of Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct CategoryStats {
    /// Category (column).
    pub category: Category,
    /// Total problems.
    pub count: usize,
    /// Mean words in the question.
    pub avg_question_words: f64,
    /// Mean lines in the reference solution.
    pub avg_solution_lines: f64,
    /// Mean tokens in the reference solution.
    pub avg_solution_tokens: f64,
    /// Max tokens in the reference solution.
    pub max_solution_tokens: usize,
    /// Mean lines in the unit test.
    pub avg_unit_test_lines: f64,
}

/// Computes Table 2 rows for every category plus a synthetic `Total/Avg`
/// row (returned last with `category` = the first category; use
/// [`table2`] for display).
pub fn category_stats(dataset: &Dataset) -> Vec<CategoryStats> {
    Category::target_counts()
        .iter()
        .map(|(cat, _)| {
            let problems: Vec<&Problem> = dataset.by_category(*cat).collect();
            stats_for(*cat, &problems)
        })
        .collect()
}

fn stats_for(category: Category, problems: &[&Problem]) -> CategoryStats {
    let n = problems.len().max(1) as f64;
    let words: usize = problems.iter().map(|p| word_count(&p.description)).sum();
    let sol_lines: usize = problems.iter().map(|p| p.reference_lines()).sum();
    let sol_tokens: Vec<usize> = problems
        .iter()
        .map(|p| token_count(&p.clean_reference()))
        .collect();
    let test_lines: usize = problems
        .iter()
        .map(|p| p.unit_test.trim().lines().count())
        .sum();
    CategoryStats {
        category,
        count: problems.len(),
        avg_question_words: words as f64 / n,
        avg_solution_lines: sol_lines as f64 / n,
        avg_solution_tokens: sol_tokens.iter().sum::<usize>() as f64 / n,
        max_solution_tokens: sol_tokens.iter().copied().max().unwrap_or(0),
        avg_unit_test_lines: test_lines as f64 / n,
    }
}

/// One row of Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct VariantStats {
    /// Variant (column).
    pub variant: Variant,
    /// Problem count (337 each).
    pub count: usize,
    /// Mean words per question.
    pub avg_words: f64,
    /// Mean tokens per question (including the YAML context, as the paper
    /// counts whole prompts).
    pub avg_tokens: f64,
}

/// Computes Table 1: original vs simplified vs translated statistics.
pub fn variant_stats(dataset: &Dataset) -> Vec<VariantStats> {
    Variant::ALL
        .iter()
        .map(|variant| {
            let mut words = 0usize;
            let mut tokens = 0usize;
            for p in dataset.problems() {
                words += word_count(p.description_for(*variant));
                tokens += token_count(&p.prompt_body(*variant));
            }
            let n = dataset.len() as f64;
            VariantStats {
                variant: *variant,
                count: dataset.len(),
                avg_words: words as f64 / n,
                avg_tokens: tokens as f64 / n,
            }
        })
        .collect()
}

/// Renders Table 2 as aligned text.
pub fn table2(dataset: &Dataset) -> String {
    let rows = category_stats(dataset);
    let mut out = String::from(
        "Statistics                 pod   daemonset service   job  deployment others  Envoy  Istio  Total/Avg\n",
    );
    let fmt_row = |label: &str, f: &dyn Fn(&CategoryStats) -> String, total: String| {
        let mut line = format!("{label:<26}");
        for r in &rows {
            line.push_str(&format!("{:>7}", f(r)));
        }
        line.push_str(&format!("{total:>11}\n"));
        line
    };
    let total_count: usize = rows.iter().map(|r| r.count).sum();
    out.push_str(&fmt_row(
        "Total Problem Count",
        &|r| r.count.to_string(),
        total_count.to_string(),
    ));
    let avg = |extract: &dyn Fn(&CategoryStats) -> f64| -> f64 {
        rows.iter()
            .map(|r| extract(r) * r.count as f64)
            .sum::<f64>()
            / total_count as f64
    };
    out.push_str(&fmt_row(
        "Avg. Question Words",
        &|r| format!("{:.1}", r.avg_question_words),
        format!("{:.1}", avg(&|r| r.avg_question_words)),
    ));
    out.push_str(&fmt_row(
        "Avg. Lines of Solution",
        &|r| format!("{:.1}", r.avg_solution_lines),
        format!("{:.1}", avg(&|r| r.avg_solution_lines)),
    ));
    out.push_str(&fmt_row(
        "Avg. Tokens of Solution",
        &|r| format!("{:.1}", r.avg_solution_tokens),
        format!("{:.1}", avg(&|r| r.avg_solution_tokens)),
    ));
    out.push_str(&fmt_row(
        "Max Tokens of Solution",
        &|r| r.max_solution_tokens.to_string(),
        rows.iter()
            .map(|r| r.max_solution_tokens)
            .max()
            .unwrap_or(0)
            .to_string(),
    ));
    out.push_str(&fmt_row(
        "Avg. Lines of Unit Test",
        &|r| format!("{:.1}", r.avg_unit_test_lines),
        format!("{:.1}", avg(&|r| r.avg_unit_test_lines)),
    ));
    out
}

/// Renders Table 1 as aligned text.
pub fn table1(dataset: &Dataset) -> String {
    let rows = variant_stats(dataset);
    let original_words = rows[0].avg_words;
    let original_tokens = rows[0].avg_tokens;
    let mut out = String::from("            Original   Simplified      Translated\n");
    out.push_str(&format!(
        "Count       {:>8}   {:>10}      {:>10}\n",
        rows[0].count, rows[1].count, rows[2].count
    ));
    out.push_str(&format!(
        "Avg. words  {:>8.2}   {:>6.2} ({:+.1}%) {:>8.2}\n",
        rows[0].avg_words,
        rows[1].avg_words,
        (rows[1].avg_words / original_words - 1.0) * 100.0,
        rows[2].avg_words,
    ));
    out.push_str(&format!(
        "Avg. tokens {:>8.1}   {:>6.1} ({:+.1}%) {:>8.1}\n",
        rows[0].avg_tokens,
        rows[1].avg_tokens,
        (rows[1].avg_tokens / original_tokens - 1.0) * 100.0,
        rows[2].avg_tokens,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_shape_matches_paper() {
        let ds = Dataset::generate();
        let rows = category_stats(&ds);
        assert_eq!(rows.len(), 8);
        // Counts are exact.
        let counts: Vec<usize> = rows.iter().map(|r| r.count).collect();
        assert_eq!(counts, vec![48, 55, 20, 19, 19, 122, 41, 13]);
        // Envoy questions and solutions are the longest, as in the paper.
        let envoy = rows.iter().find(|r| r.category == Category::Envoy).unwrap();
        for r in rows.iter().filter(|r| r.category != Category::Envoy) {
            assert!(
                envoy.avg_solution_lines > r.avg_solution_lines,
                "{:?}",
                r.category
            );
            assert!(
                envoy.avg_question_words > r.avg_question_words,
                "{:?}",
                r.category
            );
        }
    }

    #[test]
    fn simplified_reduces_words_like_table_1() {
        let ds = Dataset::generate();
        let rows = variant_stats(&ds);
        let reduction = 1.0 - rows[1].avg_words / rows[0].avg_words;
        // Paper: 25.7% fewer words. Accept a broad band around it.
        assert!(
            (0.10..=0.45).contains(&reduction),
            "word reduction {:.1}% out of band",
            reduction * 100.0
        );
        // Translated questions use fewer (space-separated) words too.
        assert!(rows[2].avg_words < rows[0].avg_words);
    }

    #[test]
    fn tables_render() {
        let ds = Dataset::generate();
        let t1 = table1(&ds);
        let t2 = table2(&ds);
        assert!(t1.contains("Avg. words"));
        assert!(t2.contains("Total Problem Count"));
        assert!(t2.contains("337"));
    }

    #[test]
    fn token_count_reasonable() {
        assert!(token_count("kind: Pod") >= 2);
        assert!(token_count("") == 0);
        let long = "word ".repeat(100);
        assert!(token_count(&long) >= 100);
    }
}
