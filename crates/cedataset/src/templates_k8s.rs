//! Kubernetes problem templates: pods, daemonsets, services, jobs,
//! deployments and the `others` families of Table 2.
//!
//! Every template returns a [`Problem`] whose unit test provably passes
//! against its own reference solution (checked by the crate's integration
//! tests), and whose description states every asserted field — the
//! paper's "clearly defined, purpose easily understandable" guideline.

use crate::augment;
use crate::problem::{Category, Problem};

/// Deterministic parameter picker: cycles through options by index.
fn pick<T>(options: &[T], i: usize) -> &T {
    &options[i % options.len()]
}

const HTTP_IMAGES: [(&str, u16); 3] = [("nginx", 80), ("httpd", 80), ("registry", 5000)];
const APP_WORDS: [&str; 8] = [
    "web",
    "frontend",
    "api",
    "cache-proxy",
    "gateway",
    "store",
    "metrics",
    "portal",
];
const NAMESPACES: [&str; 4] = ["default", "development", "prod", "staging"];

pub(crate) fn finish_problem(
    id: String,
    category: Category,
    description: String,
    context_yaml: Option<String>,
    labeled_reference: String,
    unit_test: String,
) -> Problem {
    let simplified = augment::simplify(&description);
    let translated = augment::translate(&description);
    Problem {
        id,
        category,
        description,
        context_yaml,
        labeled_reference,
        unit_test,
        simplified,
        translated,
    }
}

// ---------------------------------------------------------------------
// Pod templates (48)
// ---------------------------------------------------------------------

/// Builds the i-th pod problem (6 families × parameter sweep).
pub fn pod(i: usize) -> Problem {
    let id = format!("pod-{i:03}");
    let n = i / 6;
    match i % 6 {
        0 => pod_basic(id, n),
        1 => pod_env(id, n),
        2 => pod_resources(id, n),
        3 => pod_command(id, n),
        4 => pod_hostport(id, n),
        _ => pod_volume(id, n),
    }
}

fn pod_basic(id: String, n: usize) -> Problem {
    let (image, port) = *pick(&HTTP_IMAGES, n);
    let app = pick(&APP_WORDS, n);
    let name = format!("{app}-pod");
    let description = format!(
        "Write a YAML file to create a Kubernetes Pod named \"{name}\" that runs a single \
container using the {image} image with the latest tag. The container should be named \
\"{app}\" and must expose container port {port}. Please add the label app: {app} to the \
Pod metadata so that services can select it later."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name} # *\n  labels:\n    app: {app}\nspec:\n  containers:\n  - name: {app} # *\n    image: {image}:latest # v in ['{image}', '{image}:latest']\n    ports:\n    - containerPort: {port}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app={app} --timeout=60s
pod=$(kubectl get pods -l app={app} -o jsonpath={{.items[0].metadata.name}})
image=$(kubectl get pod $pod -o jsonpath={{.spec.containers[0].image}})
port=$(kubectl get pod $pod -o jsonpath={{.spec.containers[0].ports[0].containerPort}})
phase=$(kubectl get pod $pod -o jsonpath={{.status.phase}})
if [[ $image == *"{image}"* && $port == "{port}" && $phase == "Running" ]]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Pod,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn pod_env(id: String, n: usize) -> Problem {
    let app = pick(&APP_WORDS, n);
    let db = pick(&["mysql", "postgres", "redis", "mongo"], n);
    let name = format!("{app}-env-pod");
    let (var1, val1) = ("DB_HOST", format!("{db}.default.svc.cluster.local"));
    let (var2, val2) = ("DB_PORT", "5432");
    let description = format!(
        "Create a Kubernetes Pod configuration in YAML. The Pod must be called \"{name}\" with \
label app: {app}, running the {db} image. Inside the container definition, set two \
environment variables: {var1} should be \"{val1}\" and {var2} should be the string \"{val2}\". \
The container name should be \"main\"."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name} # *\n  labels:\n    app: {app}\nspec:\n  containers:\n  - name: main # *\n    image: {db}\n    env:\n    - name: {var1}\n      value: {val1}\n    - name: {var2}\n      value: \"{val2}\"\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
sleep 8
pod=$(kubectl get pods -l app={app} -o jsonpath={{.items[0].metadata.name}})
envs=$(kubectl get pod $pod -o jsonpath='{{.spec.containers[0].env[*].name}}')
v1=$(kubectl get pod $pod -o jsonpath='{{.spec.containers[0].env[0].value}}')
if [[ $envs == *"{var1}"* && $envs == *"{var2}"* && $v1 == "{val1}" ]]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Pod,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn pod_resources(id: String, n: usize) -> Problem {
    let app = pick(&APP_WORDS, n);
    let cpu_req = pick(&["100m", "250m", "500m"], n);
    let mem_req = pick(&["64Mi", "128Mi", "256Mi"], n);
    let cpu_lim = pick(&["200m", "500m", "1"], n);
    let mem_lim = pick(&["128Mi", "256Mi", "512Mi"], n);
    let name = format!("{app}-limited");
    let description = format!(
        "I need a YAML manifest for a Pod named \"{name}\" (label app: {app}) running nginx. \
The container must declare resource requests of {cpu_req} CPU and {mem_req} memory, and \
resource limits of {cpu_lim} CPU and {mem_lim} memory, so the scheduler and the kubelet \
can enforce them."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name} # *\n  labels:\n    app: {app}\nspec:\n  containers:\n  - name: nginx # *\n    image: nginx\n    resources:\n      requests:\n        cpu: {cpu_req}\n        memory: {mem_req}\n      limits:\n        cpu: {cpu_lim}\n        memory: {mem_lim}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app={app} --timeout=60s
pod=$(kubectl get pods -l app={app} -o jsonpath={{.items[0].metadata.name}})
cpu=$(kubectl get pod $pod -o jsonpath='{{.spec.containers[0].resources.requests.cpu}}')
mem=$(kubectl get pod $pod -o jsonpath='{{.spec.containers[0].resources.limits.memory}}')
if [ "$cpu" == "{cpu_req}" ] && [ "$mem" == "{mem_lim}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Pod,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn pod_command(id: String, n: usize) -> Problem {
    let app = pick(&APP_WORDS, n);
    let msg = pick(
        &[
            "hello-cloud",
            "bootstrap-done",
            "job-finished",
            "ready-to-serve",
        ],
        n,
    );
    let name = format!("{app}-task");
    let description = format!(
        "Write a Kubernetes Pod YAML for a one-shot task. Name the Pod \"{name}\" with label \
app: {app}. It runs the busybox image and executes the command `echo {msg}`. Because the \
container exits after printing, set restartPolicy to Never."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name} # *\n  labels:\n    app: {app}\nspec:\n  restartPolicy: Never\n  containers:\n  - name: task # *\n    image: busybox\n    command: [\"echo\", \"{msg}\"]\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
sleep 10
pod=$(kubectl get pods -l app={app} -o jsonpath={{.items[0].metadata.name}})
policy=$(kubectl get pod $pod -o jsonpath={{.spec.restartPolicy}})
kubectl logs $pod | grep "{msg}" || exit 1
if [ "$policy" == "Never" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Pod,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn pod_hostport(id: String, n: usize) -> Problem {
    let app = pick(&APP_WORDS, n);
    let host_port = 5000 + (n as u16 % 4) * 100;
    let name = format!("{app}-edge");
    let description = format!(
        "Please provide a YAML manifest for a Pod called \"{name}\" labeled app: {app}. It \
runs nginx listening on container port 80, and the port must additionally be published on \
the node via hostPort {host_port} so that the node IP serves traffic directly. It should \
respond to HTTP requests on that host port."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name} # *\n  labels:\n    app: {app}\nspec:\n  containers:\n  - name: edge # *\n    image: nginx\n    ports:\n    - containerPort: 80\n      hostPort: {host_port}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app={app} --timeout=60s
pod=$(kubectl get pods -l app={app} -o jsonpath={{.items[0].metadata.name}})
host_ip=$(kubectl get pod $pod -o jsonpath='{{.status.hostIP}}')
code=$(curl -s -o /dev/null -w "%{{http_code}}" $host_ip:{host_port})
if [ "$code" == "200" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Pod,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn pod_volume(id: String, n: usize) -> Problem {
    let app = pick(&APP_WORDS, n);
    let mount = pick(&["/data", "/cache", "/var/tmp/work", "/scratch"], n);
    let vol = pick(&["data-vol", "cache-vol", "work-vol", "scratch-vol"], n);
    let name = format!("{app}-with-volume");
    let description = format!(
        "Generate YAML for a Pod named \"{name}\" (label app: {app}) running redis. Define an \
emptyDir volume called \"{vol}\" and mount it into the container at \"{mount}\". The \
container should be named \"store\"."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name} # *\n  labels:\n    app: {app}\nspec:\n  containers:\n  - name: store # *\n    image: redis\n    volumeMounts:\n    - name: {vol}\n      mountPath: {mount}\n  volumes:\n  - name: {vol}\n    emptyDir: {{}}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app={app} --timeout=60s
pod=$(kubectl get pods -l app={app} -o jsonpath={{.items[0].metadata.name}})
vol=$(kubectl get pod $pod -o jsonpath='{{.spec.volumes[0].name}}')
path=$(kubectl get pod $pod -o jsonpath='{{.spec.containers[0].volumeMounts[0].mountPath}}')
if [ "$vol" == "{vol}" ] && [ "$path" == "{mount}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Pod,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

// ---------------------------------------------------------------------
// DaemonSet templates (55)
// ---------------------------------------------------------------------

/// Builds the i-th daemonset problem.
pub fn daemonset(i: usize) -> Problem {
    let id = format!("daemonset-{i:03}");
    let n = i / 3;
    match i % 3 {
        0 => daemonset_registry_proxy(id, n),
        1 => daemonset_log_agent(id, n),
        _ => daemonset_modify_context(id, n),
    }
}

fn daemonset_registry_proxy(id: String, n: usize) -> Problem {
    let app = format!(
        "kube-registry-{}",
        pick(&["modified", "edge", "node", "mirror"], n)
    );
    let host_port = 5000 + (n as u16 % 5) * 10;
    let cpu = pick(&["100m", "150m", "200m"], n);
    let mem = pick(&["50Mi", "100Mi", "200Mi"], n);
    let name = format!("{app}-proxy");
    let description = format!(
        "Create a DaemonSet configuration. This DaemonSet should run the latest nginx image \
labeled as \"app: {app}\" and expose a registry service on port 80 (with hostPort \
{host_port}). The environment variables REGISTRY_HOST and REGISTRY_PORT should be set to \
\"{app}.svc.cluster.local\" and \"{host_port}\" respectively. Ensure the CPU request is \
set to {cpu} and memory request is set to {mem}."
    );
    let labeled_reference = format!(
        "apiVersion: apps/v1\nkind: DaemonSet\nmetadata:\n  name: {name} # *\nspec:\n  selector:\n    matchLabels:\n      app: {app}\n  template:\n    metadata:\n      labels:\n        app: {app}\n    spec:\n      containers:\n      - name: {name} # *\n        image: nginx:latest\n        resources:\n          limits:\n            cpu: {cpu}\n            memory: {mem}\n        env:\n        - name: REGISTRY_HOST\n          value: {app}.svc.cluster.local\n        - name: REGISTRY_PORT\n          value: \"{host_port}\"\n        ports:\n        - name: registry # *\n          containerPort: 80\n          hostPort: {host_port}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app={app} --timeout=60s
passed_tests=0
total_tests=3
pods=$(kubectl get pods -l app={app} --output=jsonpath={{.items..metadata.name}})
host_ip=$(kubectl get pod $pods -o=jsonpath='{{.status.hostIP}}')
curl_output=$(curl -s -o /dev/null -w "%{{http_code}}" $host_ip:{host_port})
if [ "$curl_output" == "200" ]; then
  ((passed_tests++))
else
  exit 1
fi
env_vars=$(kubectl get pods --selector=app={app} -o=jsonpath='{{.items[0].spec.containers[0].env[*].name}}')
if [[ $env_vars == *"REGISTRY_HOST"* && $env_vars == *"REGISTRY_PORT"* ]]; then
  ((passed_tests++))
fi
cpu_limit=$(kubectl get pod $pods -o=jsonpath='{{.spec.containers[0].resources.limits.cpu}}')
memory_limit=$(kubectl get pod $pods -o=jsonpath='{{.spec.containers[0].resources.limits.memory}}')
if [ "$cpu_limit" == "{cpu}" ] && [ "$memory_limit" == "{mem}" ]; then
  ((passed_tests++))
fi
if [ $passed_tests -eq $total_tests ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::DaemonSet,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn daemonset_log_agent(id: String, n: usize) -> Problem {
    let agent = format!(
        "{}-{n}",
        pick(
            &[
                "log-agent",
                "node-exporter",
                "metrics-shipper",
                "trace-agent"
            ],
            n
        )
    );
    let host_path = pick(
        &["/var/log", "/var/lib/docker/containers", "/proc", "/sys"],
        n,
    );
    let description = format!(
        "Write a YAML file for a Kubernetes DaemonSet named \"{agent}\" so that every node in \
the cluster runs one agent pod. Use the busybox image with the command `echo agent-started`, \
label the pods app: {agent}, and mount the host directory {host_path} into the container at \
/host-logs using a hostPath volume named \"logs\". Set restartPolicy default (Always)."
    );
    let labeled_reference = format!(
        "apiVersion: apps/v1\nkind: DaemonSet\nmetadata:\n  name: {agent}\nspec:\n  selector:\n    matchLabels:\n      app: {agent}\n  template:\n    metadata:\n      labels:\n        app: {agent}\n    spec:\n      containers:\n      - name: agent # *\n        image: busybox\n        command: [\"echo\", \"agent-started\"]\n        volumeMounts:\n        - name: logs\n          mountPath: /host-logs\n      volumes:\n      - name: logs\n        hostPath:\n          path: {host_path}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
sleep 8
count=$(kubectl get pods -l app={agent} -o name | wc -l)
path=$(kubectl get ds {agent} -o jsonpath='{{.spec.template.spec.volumes[0].hostPath.path}}')
kubectl logs -l app={agent} | grep agent-started || exit 1
if [ "$count" -ge "1" ] && [ "$path" == "{host_path}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::DaemonSet,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn daemonset_modify_context(id: String, n: usize) -> Problem {
    let app = format!(
        "{}-{n}",
        pick(&["proxy", "sidecar-injector", "cni-agent", "dns-cache"], n)
    );
    let new_image = pick(&["httpd", "nginx", "registry"], n);
    let context = format!(
        "apiVersion: apps/v1\nkind: DaemonSet\nmetadata:\n  name: {app}-ds\nspec:\n  selector:\n    matchLabels:\n      app: {app}\n  template:\n    metadata:\n      labels:\n        app: {app}\n    spec:\n      containers:\n      - name: main\n        image: busybox\n"
    );
    let description = format!(
        "Given the following DaemonSet YAML for \"{app}-ds\", please change the container \
image from busybox to {new_image} (keep the latest tag implicit) and add an environment \
variable MODE with the value \"edge\" to the container. Keep everything else exactly the \
same and provide the complete updated YAML."
    );
    let labeled_reference = format!(
        "apiVersion: apps/v1\nkind: DaemonSet\nmetadata:\n  name: {app}-ds\nspec:\n  selector:\n    matchLabels:\n      app: {app}\n  template:\n    metadata:\n      labels:\n        app: {app}\n    spec:\n      containers:\n      - name: main # *\n        image: {new_image}\n        env:\n        - name: MODE\n          value: edge\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app={app} --timeout=60s
image=$(kubectl get ds {app}-ds -o jsonpath='{{.spec.template.spec.containers[0].image}}')
mode=$(kubectl get ds {app}-ds -o jsonpath='{{.spec.template.spec.containers[0].env[0].value}}')
if [[ $image == *"{new_image}"* && $mode == "edge" ]]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::DaemonSet,
        description,
        Some(context),
        labeled_reference,
        unit_test,
    )
}

// ---------------------------------------------------------------------
// Service templates (20)
// ---------------------------------------------------------------------

/// Builds the i-th service problem.
pub fn service(i: usize) -> Problem {
    let id = format!("service-{i:03}");
    let n = i / 2;
    match i % 2 {
        0 => service_loadbalancer_context(id, n),
        _ => service_clusterip(id, n),
    }
}

fn deployment_context(app: &str, replicas: usize) -> String {
    format!(
        "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: {app}-deployment\nspec:\n  replicas: {replicas}\n  selector:\n    matchLabels:\n      app: {app}\n  template:\n    metadata:\n      labels:\n        app: {app}\n    spec:\n      containers:\n      - name: {app}-container\n        image: nginx:latest\n        ports:\n        - containerPort: 80\n"
    )
}

fn service_loadbalancer_context(id: String, n: usize) -> Problem {
    let app = pick(&["nginx", "frontend", "shop", "blog", "wiki"], n);
    let replicas = 2 + n % 3;
    let context = deployment_context(app, replicas);
    let description = format!(
        "Given the following YAML with {replicas} replicas, please help me create a service \
with load balancer that uses the {app} selector, exposed on port 80. It should be \
accessible via browser."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: Service\nmetadata:\n  name: {app}-service # *\nspec:\n  selector:\n    app: {app}\n  ports:\n  - name: http # *\n    port: 80\n    targetPort: 80\n  type: LoadBalancer\n"
    );
    let unit_test = format!(
        r#"echo "{context}" | kubectl apply -f -
kubectl wait --for=condition=ready deployment --all --timeout=15s
kubectl apply -f labeled_code.yaml
sleep 15
kubectl get svc
svc=$(kubectl get svc -o jsonpath='{{.items[0].metadata.name}}')
svc_type=$(kubectl get svc $svc -o jsonpath='{{.spec.type}}')
port=$(kubectl get svc $svc -o jsonpath='{{.spec.ports[0].port}}')
sel=$(kubectl get svc $svc -o jsonpath='{{.spec.selector.app}}')
if [ "$svc_type" != "LoadBalancer" ] || [ "$port" != "80" ] || [ "$sel" != "{app}" ]; then
  exit 1
fi
timeout -s INT 8s minikube service $svc > bash_output.txt 2>&1
cat bash_output.txt
grep "Opening service default/$svc in default browser" bash_output.txt && echo unit_test_passed
"#,
        context = context.trim_end()
    );
    finish_problem(
        id,
        Category::Service,
        description,
        Some(context),
        labeled_reference,
        unit_test,
    )
}

fn service_clusterip(id: String, n: usize) -> Problem {
    let app = format!(
        "{}{n}",
        pick(&["api", "backend", "search", "auth", "billing"], n)
    );
    let port = 8000 + (n as u16 % 5) * 100;
    let context = deployment_context(&app, 1);
    let description = format!(
        "Given the deployment below, write a YAML file for a ClusterIP Service named \
\"{app}-svc\" that selects pods with label app: {app} and exposes service port {port}, \
forwarding to container port 80 via targetPort. Requests to the service name on port \
{port} inside the cluster must reach the pods."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: Service\nmetadata:\n  name: {app}-svc\nspec:\n  selector:\n    app: {app}\n  ports:\n  - port: {port}\n    targetPort: 80\n"
    );
    let unit_test = format!(
        r#"echo "{context}" | kubectl apply -f -
kubectl wait --for=condition=Ready pod -l app={app} --timeout=60s
kubectl apply -f labeled_code.yaml
sleep 5
code=$(curl -s -o /dev/null -w "%{{http_code}}" {app}-svc:{port})
target=$(kubectl get svc {app}-svc -o jsonpath='{{.spec.ports[0].targetPort}}')
if [ "$code" == "200" ] && [ "$target" == "80" ]; then
  echo unit_test_passed
fi
"#,
        context = context.trim_end()
    );
    finish_problem(
        id,
        Category::Service,
        description,
        Some(context),
        labeled_reference,
        unit_test,
    )
}

// ---------------------------------------------------------------------
// Job templates (19)
// ---------------------------------------------------------------------

/// Builds the i-th job problem.
pub fn job(i: usize) -> Problem {
    let id = format!("job-{i:03}");
    let n = i / 2;
    match i % 2 {
        0 => job_echo(id, n),
        _ => job_completions(id, n),
    }
}

fn job_echo(id: String, n: usize) -> Problem {
    let task = pick(&["migration", "backup", "report", "cleanup", "indexing"], n);
    let msg = format!("{task}-complete");
    let backoff = 2 + n % 4;
    let description = format!(
        "Write a Kubernetes Job YAML named \"{task}-job\". The Job runs a busybox container \
called \"worker\" that executes `echo {msg}` and then exits. Set restartPolicy to Never \
and backoffLimit to {backoff}. The Job must run to completion."
    );
    let labeled_reference = format!(
        "apiVersion: batch/v1\nkind: Job\nmetadata:\n  name: {task}-job # *\nspec:\n  backoffLimit: {backoff}\n  template:\n    spec:\n      containers:\n      - name: worker # *\n        image: busybox\n        command: [\"echo\", \"{msg}\"]\n      restartPolicy: Never\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Complete job --all --timeout=120s
job=$(kubectl get jobs -o jsonpath='{{.items[0].metadata.name}}')
succeeded=$(kubectl get job $job -o jsonpath={{.status.succeeded}})
backoff=$(kubectl get job $job -o jsonpath={{.spec.backoffLimit}})
kubectl logs -l job-name=$job 2> /dev/null
if [ "$succeeded" == "1" ] && [ "$backoff" == "{backoff}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Job,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn job_completions(id: String, n: usize) -> Problem {
    let task = pick(&["batch", "fanout", "shard", "chunk"], n);
    let completions = 2 + n % 3;
    let description = format!(
        "Create a YAML manifest for a Kubernetes Job named \"{task}-runner\" that needs \
{completions} successful completions (spec.completions: {completions}). Each pod runs the \
perl image with the command `perl -e 'print 42'`, the container is named \"calc\", and \
restartPolicy must be OnFailure."
    );
    let labeled_reference = format!(
        "apiVersion: batch/v1\nkind: Job\nmetadata:\n  name: {task}-runner # *\nspec:\n  completions: {completions}\n  template:\n    spec:\n      containers:\n      - name: calc # *\n        image: perl\n        command: [\"perl\", \"-e\", \"print 42\"]\n      restartPolicy: OnFailure\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Complete job --all --timeout=180s
job=$(kubectl get jobs -o jsonpath='{{.items[0].metadata.name}}')
succeeded=$(kubectl get job $job -o jsonpath={{.status.succeeded}})
if [ "$succeeded" == "{completions}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Job,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

// ---------------------------------------------------------------------
// Deployment templates (19)
// ---------------------------------------------------------------------

/// Builds the i-th deployment problem.
pub fn deployment(i: usize) -> Problem {
    let id = format!("deployment-{i:03}");
    let n = i / 2;
    match i % 2 {
        0 => deployment_basic(id, n),
        _ => deployment_scale_context(id, n),
    }
}

fn deployment_basic(id: String, n: usize) -> Problem {
    let app = pick(&["webapp", "landing", "docs", "admin", "status"], n);
    let replicas = 2 + n % 4;
    let description = format!(
        "Please write a YAML file that defines a Kubernetes Deployment named \
\"{app}-deployment\" with {replicas} replicas. Pods carry the label app: {app}; the \
selector must match it. Each pod runs one container named \"{app}-container\" using the \
nginx:latest image and exposing container port 80. All replicas must become ready."
    );
    let labeled_reference = format!(
        "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: {app}-deployment\nspec:\n  replicas: {replicas}\n  selector:\n    matchLabels:\n      app: {app}\n  template:\n    metadata:\n      labels:\n        app: {app}\n    spec:\n      containers:\n      - name: {app}-container # *\n        image: nginx:latest # v in ['nginx', 'nginx:latest']\n        ports:\n        - containerPort: 80\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl rollout status deployment/{app}-deployment --timeout=120s
ready=$(kubectl get deployment {app}-deployment -o jsonpath={{.status.readyReplicas}})
count=$(kubectl get pods -l app={app} -o name | wc -l)
if [ "$ready" == "{replicas}" ] && [ "$count" == "{replicas}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Deployment,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn deployment_scale_context(id: String, n: usize) -> Problem {
    let app = pick(&["checkout", "cart", "payments", "inventory", "emails"], n);
    let new_replicas = 3 + n % 3;
    let new_image = pick(&["httpd", "nginx"], n);
    let context = deployment_context(app, 1);
    let description = format!(
        "Given the following Deployment YAML for \"{app}-deployment\", update it so that it \
runs {new_replicas} replicas and uses the {new_image} image instead of the current one. Keep the same names, labels and \
container port, and return the entire modified YAML."
    );
    let labeled_reference = format!(
        "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: {app}-deployment\nspec:\n  replicas: {new_replicas}\n  selector:\n    matchLabels:\n      app: {app}\n  template:\n    metadata:\n      labels:\n        app: {app}\n    spec:\n      containers:\n      - name: {app}-container # *\n        image: {new_image}\n        ports:\n        - containerPort: 80\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl rollout status deployment/{app}-deployment --timeout=120s
replicas=$(kubectl get deployment {app}-deployment -o jsonpath={{.spec.replicas}})
image=$(kubectl get deployment {app}-deployment -o jsonpath='{{.spec.template.spec.containers[0].image}}')
if [ "$replicas" == "{new_replicas}" ] && [[ $image == *"{new_image}"* ]]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::Deployment,
        description,
        Some(context),
        labeled_reference,
        unit_test,
    )
}

// ---------------------------------------------------------------------
// "Others" templates (122) — see `others` for the family layout.
// ---------------------------------------------------------------------

/// Builds the i-th `others` problem, spread over 13 sub-families.
pub fn others(i: usize) -> Problem {
    let id = format!("others-{i:03}");
    let n = i / 13;
    match i % 13 {
        0 => cm_problem(id, n),
        1 => secret_problem(id, n),
        2 => namespace_quota(id, n),
        3 => rolebinding_problem(id, n),
        4 => clusterrole_problem(id, n),
        5 => ingress_problem(id, n),
        6 => limitrange_problem(id, n),
        7 => pvc_problem(id, n),
        8 => hpa_problem(id, n),
        9 => cronjob_problem(id, n),
        10 => netpol_problem(id, n),
        11 => statefulset_problem(id, n),
        _ => multi_doc_problem(id, n),
    }
}

fn cm_problem(id: String, n: usize) -> Problem {
    let app = pick(&APP_WORDS, n);
    let mode = pick(&["production", "staging", "debug", "canary"], n);
    let retries = 1 + n % 5;
    let description = format!(
        "Write a YAML file for a Kubernetes ConfigMap named \"{app}-config\". It must contain \
two keys under data: \"mode\" with the value \"{mode}\" and \"retries\" with the string \
value \"{retries}\"."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: {app}-config # *\ndata:\n  mode: {mode}\n  retries: \"{retries}\"\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
cm=$(kubectl get configmap -o jsonpath='{{.items[0].metadata.name}}')
mode=$(kubectl get configmap $cm -o jsonpath={{.data.mode}})
retries=$(kubectl get configmap $cm -o jsonpath={{.data.retries}})
if [ "$mode" == "{mode}" ] && [ "$retries" == "{retries}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn secret_problem(id: String, n: usize) -> Problem {
    let app = pick(&APP_WORDS, n);
    let user = pick(&["admin", "service", "deploy", "ops"], n);
    let description = format!(
        "Create a Kubernetes Secret manifest in YAML. Name it \"{app}-secret\", set its type to \
Opaque, and provide two entries under stringData: \"username\" = \"{user}\" and \"password\" \
= \"s3cr3t-{n}\". stringData lets us write the values in plain text."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: Secret\nmetadata:\n  name: {app}-secret # *\ntype: Opaque\nstringData:\n  username: {user}\n  password: s3cr3t-{n}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
s=$(kubectl get secret -o jsonpath='{{.items[0].metadata.name}}')
t=$(kubectl get secret $s -o jsonpath={{.type}})
u=$(kubectl get secret $s -o jsonpath={{.stringData.username}})
if [ "$t" == "Opaque" ] && [ "$u" == "{user}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn namespace_quota(id: String, n: usize) -> Problem {
    let team = pick(&["payments", "ml", "data", "platform", "growth"], n);
    let pods = 4 + n % 8;
    let description = format!(
        "Write a YAML file with two documents. The first creates a Namespace named \
\"team-{team}\". The second creates a ResourceQuota named \"{team}-quota\" inside that \
namespace limiting the number of pods to {pods} (hard limit, key \"pods\")."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: Namespace\nmetadata:\n  name: team-{team}\n---\napiVersion: v1\nkind: ResourceQuota\nmetadata:\n  name: {team}-quota # *\n  namespace: team-{team}\nspec:\n  hard:\n    pods: \"{pods}\"\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
ns=$(kubectl get namespace team-{team} -o jsonpath={{.metadata.name}})
quota=$(kubectl get resourcequota -n team-{team} -o jsonpath='{{.items[0].spec.hard.pods}}')
if [ "$ns" == "team-{team}" ] && [ "$quota" == "{pods}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn rolebinding_problem(id: String, n: usize) -> Problem {
    let user = pick(&["dave", "alice", "bob", "carol", "erin"], n);
    let ns = pick(&NAMESPACES[1..], n);
    let role = pick(
        &["secret-reader", "pod-viewer", "config-editor", "log-reader"],
        n,
    );
    let description = format!(
        "Write a yaml file to create a Kubernetes RoleBinding in the {ns} namespace with the \
name \"read-secrets\". This RoleBinding should bind the user \"{user}\" to the ClusterRole \
named \"{role}\". Ensure that both the user and the ClusterRole are under the \
rbac.authorization.k8s.io API group."
    );
    let labeled_reference = format!(
        "apiVersion: rbac.authorization.k8s.io/v1\nkind: RoleBinding\nmetadata:\n  name: read-secrets\n  namespace: {ns}\nsubjects:\n- kind: User\n  name: {user}\n  apiGroup: rbac.authorization.k8s.io\nroleRef:\n  kind: ClusterRole\n  name: {role}\n  apiGroup: rbac.authorization.k8s.io\n"
    );
    let unit_test = format!(
        r#"kubectl create ns {ns} || true
kubectl apply -f labeled_code.yaml
namespace=$(kubectl get rolebinding read-secrets -n {ns} -o jsonpath={{.metadata.namespace}})
subject_name=$(kubectl get rolebinding read-secrets -n {ns} -o jsonpath='{{.subjects[0].name}}')
role_ref_name=$(kubectl get rolebinding read-secrets -n {ns} -o jsonpath={{.roleRef.name}})
if [[ $namespace == "{ns}" && $subject_name == "{user}" && $role_ref_name == "{role}" ]]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn clusterrole_problem(id: String, n: usize) -> Problem {
    let what = pick(&["pods", "services", "deployments", "configmaps"], n);
    let name = format!("{}-reader-{n}", what.trim_end_matches('s'));
    let description = format!(
        "Create YAML for a Kubernetes ClusterRole named \"{name}\" that grants read-only access \
to {what}: the rule must cover the core API group (empty string), resource \"{what}\", and \
the verbs get, watch and list."
    );
    let labeled_reference = format!(
        "apiVersion: rbac.authorization.k8s.io/v1\nkind: ClusterRole\nmetadata:\n  name: {name}\nrules:\n- apiGroups: [\"\"]\n  resources: [\"{what}\"]\n  verbs: [\"get\", \"watch\", \"list\"]\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
cr=$(kubectl get clusterrole -o jsonpath='{{.items[?(@.metadata.name=="{name}")].metadata.name}}')
res=$(kubectl get clusterrole {name} -o jsonpath='{{.rules[0].resources[0]}}')
verbs=$(kubectl get clusterrole {name} -o jsonpath='{{.rules[0].verbs[*]}}')
if [ "$res" == "{what}" ] && [[ $verbs == *"watch"* ]]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn ingress_problem(id: String, n: usize) -> Problem {
    let svc = format!(
        "{}-{n}",
        pick(&["test-app", "web-app", "api-server", "frontend-svc"], n)
    );
    let svc = svc.as_str();
    let port = 5000 + (n as u16 % 4) * 1000;
    if n.is_multiple_of(2) {
        // Debugging variant — the paper's Appendix C.3.
        let buggy = format!(
            "apiVersion: networking.k8s.io/v1\nkind: Ingress\nmetadata:\n  name: test-ingress\n  annotations:\n    nginx.ingress.kubernetes.io/rewrite-target: /\nspec:\n  rules:\n  - http:\n      paths:\n      - path: /\n        backend:\n          serviceName: {svc}\n          servicePort: {port}\n"
        );
        let description = format!(
            "Given the following YAML which is not functionally correct: when executing it, it \
would report the error: Error from server (BadRequest): error when creating \"wrong.yaml\": \
Ingress in version \"v1\" cannot be handled as a Ingress: strict decoding error: unknown \
field \"spec.rules[0].http.paths[0].backend.serviceName\", unknown field \
\"spec.rules[0].http.paths[0].backend.servicePort\". Please debug it to make it valid, keeping the backend service \"{svc}\" on port {port}. \
Please provide the entire YAML."
        );
        let labeled_reference = format!(
            "apiVersion: networking.k8s.io/v1\nkind: Ingress\nmetadata:\n  name: minimal-ingress # *\n  annotations:\n    nginx.ingress.kubernetes.io/rewrite-target: /\nspec:\n  rules:\n  - http:\n      paths:\n      - path: /\n        pathType: Prefix\n        backend:\n          service:\n            name: {svc}\n            port:\n              number: {port}\n"
        );
        let unit_test = format!(
            r#"kubectl apply -f labeled_code.yaml
kubectl wait --namespace default --for=condition=SYNCED ingress --all --timeout=15s
ing=$(kubectl get ingress -o jsonpath='{{.items[0].metadata.name}}')
kubectl describe ingress $ing | grep "{svc}:{port}" && echo unit_test_passed
"#
        );
        finish_problem(
            id,
            Category::KubernetesOther,
            description,
            Some(buggy),
            labeled_reference,
            unit_test,
        )
    } else {
        let host = pick(
            &["shop.example.com", "docs.example.com", "api.example.com"],
            n,
        );
        let description = format!(
            "Write YAML for a Kubernetes Ingress (networking.k8s.io/v1) named \"{svc}-ingress\". \
Route HTTP traffic for host \"{host}\" with path \"/\" (pathType Prefix) to the backend \
service \"{svc}\" on port number {port}."
        );
        let labeled_reference = format!(
            "apiVersion: networking.k8s.io/v1\nkind: Ingress\nmetadata:\n  name: {svc}-ingress # *\nspec:\n  rules:\n  - host: {host}\n    http:\n      paths:\n      - path: /\n        pathType: Prefix\n        backend:\n          service:\n            name: {svc}\n            port:\n              number: {port}\n"
        );
        let unit_test = format!(
            r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=SYNCED ingress --all --timeout=15s
ing=$(kubectl get ingress -o jsonpath='{{.items[0].metadata.name}}')
host=$(kubectl get ingress $ing -o jsonpath='{{.spec.rules[0].host}}')
kubectl describe ingress $ing | grep "{svc}:{port}" || exit 1
if [ "$host" == "{host}" ]; then
  echo unit_test_passed
fi
"#
        );
        finish_problem(
            id,
            Category::KubernetesOther,
            description,
            None,
            labeled_reference,
            unit_test,
        )
    }
}

fn limitrange_problem(id: String, n: usize) -> Problem {
    let cpu_default = pick(&["100m", "200m", "300m"], n);
    let mem_default = pick(&["200Mi", "256Mi", "512Mi"], n);
    let cpu_max = pick(&["150m", "500m", "1"], n);
    let mem_max = pick(&["250Mi", "512Mi", "1Gi"], n);
    let description = format!(
        "Craft a yaml file to define a Kubernetes LimitRange named \"resource-limits-{n}\". \
Containers within the cluster should have a default CPU request of {cpu_default} and a \
memory request of {mem_default}. Any Container created should not exceed a maximum CPU \
usage of {cpu_max} or a memory usage of {mem_max}. Use a single limit entry of type \
Container with defaultRequest and max sections."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: LimitRange\nmetadata:\n  name: resource-limits-{n}\nspec:\n  limits:\n  - type: Container\n    defaultRequest:\n      cpu: {cpu_default}\n      memory: {mem_default}\n    max:\n      cpu: {cpu_max}\n      memory: {mem_max}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
lr=$(kubectl get limitrange -o jsonpath='{{.items[0].metadata.name}}')
cpu=$(kubectl get limitrange $lr -o jsonpath='{{.spec.limits[0].defaultRequest.cpu}}')
maxmem=$(kubectl get limitrange $lr -o jsonpath='{{.spec.limits[0].max.memory}}')
if [ "$cpu" == "{cpu_default}" ] && [ "$maxmem" == "{mem_max}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn pvc_problem(id: String, n: usize) -> Problem {
    let app = pick(&APP_WORDS, n);
    let size = pick(&["1Gi", "5Gi", "10Gi", "20Gi"], n);
    let mode = pick(&["ReadWriteOnce", "ReadOnlyMany", "ReadWriteMany"], n);
    let description = format!(
        "Write a YAML manifest for a PersistentVolumeClaim named \"{app}-data\". It must \
request {size} of storage (resources.requests.storage) with the access mode {mode}, and \
use the storage class \"standard\"."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: PersistentVolumeClaim\nmetadata:\n  name: {app}-data # *\nspec:\n  accessModes:\n  - {mode}\n  storageClassName: standard\n  resources:\n    requests:\n      storage: {size}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
pvc=$(kubectl get pvc -o jsonpath='{{.items[0].metadata.name}}')
size=$(kubectl get pvc $pvc -o jsonpath='{{.spec.resources.requests.storage}}')
mode=$(kubectl get pvc $pvc -o jsonpath='{{.spec.accessModes[0]}}')
if [ "$size" == "{size}" ] && [ "$mode" == "{mode}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn hpa_problem(id: String, n: usize) -> Problem {
    let app = pick(&["checkout", "search", "feed", "upload"], n);
    let min = 1 + n % 3;
    let max = 5 + n % 6;
    let cpu = 50 + (n % 5) * 10;
    let context = deployment_context(app, min);
    let description = format!(
        "Given this Deployment, write a HorizontalPodAutoscaler (autoscaling/v1) named \
\"{app}-hpa\" that targets it by name. Scale between {min} and {max} replicas \
(minReplicas/maxReplicas) with a targetCPUUtilizationPercentage of {cpu}."
    );
    let labeled_reference = format!(
        "apiVersion: autoscaling/v1\nkind: HorizontalPodAutoscaler\nmetadata:\n  name: {app}-hpa # *\nspec:\n  scaleTargetRef:\n    apiVersion: apps/v1\n    kind: Deployment\n    name: {app}-deployment\n  minReplicas: {min}\n  maxReplicas: {max}\n  targetCPUUtilizationPercentage: {cpu}\n"
    );
    let unit_test = format!(
        r#"echo "{context}" | kubectl apply -f -
kubectl apply -f labeled_code.yaml
hpa=$(kubectl get hpa -o jsonpath='{{.items[0].metadata.name}}')
max=$(kubectl get hpa $hpa -o jsonpath={{.spec.maxReplicas}})
target=$(kubectl get hpa $hpa -o jsonpath='{{.spec.scaleTargetRef.name}}')
cpu=$(kubectl get hpa $hpa -o jsonpath={{.spec.targetCPUUtilizationPercentage}})
if [ "$max" == "{max}" ] && [ "$target" == "{app}-deployment" ] && [ "$cpu" == "{cpu}" ]; then
  echo unit_test_passed
fi
"#,
        context = context.trim_end()
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        Some(context),
        labeled_reference,
        unit_test,
    )
}

fn cronjob_problem(id: String, n: usize) -> Problem {
    let task = pick(&["heartbeat", "sync", "rotate", "prune"], n);
    let schedule = pick(&["* * * * *", "*/5 * * * *", "0 * * * *"], n);
    let description = format!(
        "Write a Kubernetes CronJob YAML named \"{task}-cron\" with the schedule \"{schedule}\". \
The job template runs a busybox container named \"tick\" executing `echo {task}-tick`, \
with restartPolicy OnFailure."
    );
    let labeled_reference = format!(
        "apiVersion: batch/v1\nkind: CronJob\nmetadata:\n  name: {task}-cron # *\nspec:\n  schedule: \"{schedule}\"\n  jobTemplate:\n    spec:\n      template:\n        spec:\n          containers:\n          - name: tick # *\n            image: busybox\n            command: [\"echo\", \"{task}-tick\"]\n          restartPolicy: OnFailure\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
cj=$(kubectl get cronjob -o jsonpath='{{.items[0].metadata.name}}')
sched=$(kubectl get cronjob $cj -o jsonpath='{{.spec.schedule}}')
sleep 70
jobs=$(kubectl get jobs -o name | wc -l)
if [ "$sched" == "{schedule}" ] && [ "$jobs" -ge "1" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn netpol_problem(id: String, n: usize) -> Problem {
    let app = format!(
        "{}-{n}",
        pick(&["db", "vault", "internal-api", "billing"], n)
    );
    let description = format!(
        "Create a NetworkPolicy YAML named \"deny-{app}\" that selects pods labeled app: {app} \
(spec.podSelector.matchLabels) and declares both policy types Ingress and Egress, which \
together with no rules means all traffic to and from those pods is denied."
    );
    let labeled_reference = format!(
        "apiVersion: networking.k8s.io/v1\nkind: NetworkPolicy\nmetadata:\n  name: deny-{app} # *\nspec:\n  podSelector:\n    matchLabels:\n      app: {app}\n  policyTypes:\n  - Ingress\n  - Egress\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
np=$(kubectl get networkpolicy -o jsonpath='{{.items[0].metadata.name}}')
sel=$(kubectl get networkpolicy $np -o jsonpath='{{.spec.podSelector.matchLabels.app}}')
types=$(kubectl get networkpolicy $np -o jsonpath='{{.spec.policyTypes[*]}}')
if [ "$sel" == "{app}" ] && [[ $types == *"Ingress"* && $types == *"Egress"* ]]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn statefulset_problem(id: String, n: usize) -> Problem {
    let db = pick(&["mysql", "postgres", "mongo", "redis"], n);
    let replicas = 2 + n % 2;
    let description = format!(
        "Write YAML for a Kubernetes StatefulSet named \"{db}-set{n}\" with {replicas} replicas. \
It must set serviceName to \"{db}-headless\", select pods labeled app: {db}, and the pod \
template runs the {db} image in a container named \"{db}\". StatefulSet pods get stable \
ordinal names."
    );
    let labeled_reference = format!(
        "apiVersion: apps/v1\nkind: StatefulSet\nmetadata:\n  name: {db}-set{n}\nspec:\n  serviceName: {db}-headless\n  replicas: {replicas}\n  selector:\n    matchLabels:\n      app: {db}\n  template:\n    metadata:\n      labels:\n        app: {db}\n    spec:\n      containers:\n      - name: {db}\n        image: {db}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
sleep 15
first=$(kubectl get pod {db}-set{n}-0 -o jsonpath={{.metadata.name}})
svc=$(kubectl get statefulset {db}-set{n} -o jsonpath={{.spec.serviceName}})
count=$(kubectl get pods -l app={db} -o name | wc -l)
if [ "$first" == "{db}-set{n}-0" ] && [ "$svc" == "{db}-headless" ] && [ "$count" == "{replicas}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

// ---------------------------------------------------------------------
// Scenario templates (extended dataset): workload families added to
// exercise the `Substrate` engine across richer Kubernetes surface —
// CronJob policies, autoscaling/v2 HPAs, multi-path Ingresses,
// NetworkPolicy allow rules, and ConfigMap-backed volumes.
// ---------------------------------------------------------------------

/// Number of scenario families in [`scenario`].
pub const SCENARIO_FAMILIES: usize = 5;

/// Builds the i-th extended-scenario problem (5 families × parameter
/// sweep). These ride on [`crate::Dataset::generate_extended`]; the base
/// 337-problem set is unchanged.
pub fn scenario(i: usize) -> Problem {
    let n = i / SCENARIO_FAMILIES;
    match i % SCENARIO_FAMILIES {
        0 => scenario_configmap_volume(format!("scn-cmvol-{n:02}"), n),
        1 => scenario_cronjob(format!("scn-cronjob-{n:02}"), n),
        2 => scenario_hpa_v2(format!("scn-hpa-{n:02}"), n),
        3 => scenario_ingress_multipath(format!("scn-ingress-{n:02}"), n),
        _ => scenario_netpol_allow(format!("scn-netpol-{n:02}"), n),
    }
}

fn scenario_configmap_volume(id: String, n: usize) -> Problem {
    let app = pick(&APP_WORDS, n);
    let mode = pick(&["production", "staging", "canary"], n);
    let mount = pick(&["/etc/app", "/config", "/opt/settings"], n);
    let description = format!(
        "Write a YAML file with two documents. First, a ConfigMap named \"{app}-settings\" \
with one key under data: \"mode\" set to \"{mode}\". Second, a Pod named \"{app}-reader\" \
(label app: {app}) running nginx, which mounts that ConfigMap as a volume named \"settings\" \
at \"{mount}\", projecting the \"mode\" key to the file name \"mode.conf\" using items."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: {app}-settings\ndata:\n  mode: {mode}\n---\napiVersion: v1\nkind: Pod\nmetadata:\n  name: {app}-reader\n  labels:\n    app: {app}\nspec:\n  containers:\n  - name: reader # *\n    image: nginx\n    volumeMounts:\n    - name: settings\n      mountPath: {mount}\n  volumes:\n  - name: settings\n    configMap:\n      name: {app}-settings\n      items:\n      - key: mode\n        path: mode.conf\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app={app} --timeout=60s
cm_mode=$(kubectl get configmap {app}-settings -o jsonpath={{.data.mode}})
vol_cm=$(kubectl get pod {app}-reader -o jsonpath='{{.spec.volumes[0].configMap.name}}')
item_path=$(kubectl get pod {app}-reader -o jsonpath='{{.spec.volumes[0].configMap.items[0].path}}')
mount=$(kubectl get pod {app}-reader -o jsonpath='{{.spec.containers[0].volumeMounts[0].mountPath}}')
if [ "$cm_mode" == "{mode}" ] && [ "$vol_cm" == "{app}-settings" ] && [ "$item_path" == "mode.conf" ] && [ "$mount" == "{mount}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn scenario_cronjob(id: String, n: usize) -> Problem {
    let task = format!(
        "{}-{n}",
        pick(&["compact", "snapshot", "billing-sync", "reindex"], n)
    );
    let history = 1 + n % 4;
    let description = format!(
        "Create a Kubernetes CronJob YAML named \"{task}-schedule\" that runs every minute \
(schedule \"* * * * *\"). Set concurrencyPolicy to Forbid so overlapping runs are skipped, \
and keep only {history} successful jobs (successfulJobsHistoryLimit). The job template runs \
a busybox container named \"tick\" executing `echo {task}-done` with restartPolicy OnFailure."
    );
    let labeled_reference = format!(
        "apiVersion: batch/v1\nkind: CronJob\nmetadata:\n  name: {task}-schedule # *\nspec:\n  schedule: \"* * * * *\"\n  concurrencyPolicy: Forbid\n  successfulJobsHistoryLimit: {history}\n  jobTemplate:\n    spec:\n      template:\n        spec:\n          containers:\n          - name: tick # *\n            image: busybox\n            command: [\"echo\", \"{task}-done\"]\n          restartPolicy: OnFailure\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
cj=$(kubectl get cronjob -o jsonpath='{{.items[0].metadata.name}}')
policy=$(kubectl get cronjob $cj -o jsonpath='{{.spec.concurrencyPolicy}}')
history=$(kubectl get cronjob $cj -o jsonpath='{{.spec.successfulJobsHistoryLimit}}')
sleep 70
jobs=$(kubectl get jobs -o name | wc -l)
if [ "$policy" == "Forbid" ] && [ "$history" == "{history}" ] && [ "$jobs" -ge "1" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn scenario_hpa_v2(id: String, n: usize) -> Problem {
    let app = pick(&["render", "ingest", "score", "transcode"], n);
    let max = 6 + n % 6;
    let util = 50 + (n % 4) * 10;
    let context = deployment_context(app, 2);
    let description = format!(
        "Given this Deployment, write an autoscaling/v2 HorizontalPodAutoscaler named \
\"{app}-hpa-v2\" targeting it by name. Scale from 2 to {max} replicas using the v2 metrics \
form: one Resource metric on cpu with target type Utilization and averageUtilization {util}."
    );
    let labeled_reference = format!(
        "apiVersion: autoscaling/v2\nkind: HorizontalPodAutoscaler\nmetadata:\n  name: {app}-hpa-v2 # *\nspec:\n  scaleTargetRef:\n    apiVersion: apps/v1\n    kind: Deployment\n    name: {app}-deployment\n  minReplicas: 2\n  maxReplicas: {max}\n  metrics:\n  - type: Resource\n    resource:\n      name: cpu\n      target:\n        type: Utilization\n        averageUtilization: {util}\n"
    );
    let unit_test = format!(
        r#"echo "{context}" | kubectl apply -f -
kubectl apply -f labeled_code.yaml
hpa=$(kubectl get hpa -o jsonpath='{{.items[0].metadata.name}}')
max=$(kubectl get hpa $hpa -o jsonpath={{.spec.maxReplicas}})
metric=$(kubectl get hpa $hpa -o jsonpath='{{.spec.metrics[0].resource.name}}')
util=$(kubectl get hpa $hpa -o jsonpath='{{.spec.metrics[0].resource.target.averageUtilization}}')
if [ "$max" == "{max}" ] && [ "$metric" == "cpu" ] && [ "$util" == "{util}" ]; then
  echo unit_test_passed
fi
"#,
        context = context.trim_end()
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        Some(context),
        labeled_reference,
        unit_test,
    )
}

fn scenario_ingress_multipath(id: String, n: usize) -> Problem {
    let host = pick(
        &["app.example.com", "portal.example.com", "edge.example.com"],
        n,
    );
    let api_svc = format!("api-v{n}");
    let web_svc = format!("web-v{n}");
    let api_port = 8000 + (n as u16 % 3) * 100;
    let description = format!(
        "Write YAML for a networking.k8s.io/v1 Ingress named \"split-ingress-{n}\" with \
ingressClassName \"nginx\". For host \"{host}\" route path \"/api\" (pathType Prefix) to \
service \"{api_svc}\" on port number {api_port}, and path \"/\" (pathType Prefix) to \
service \"{web_svc}\" on port number 80."
    );
    let labeled_reference = format!(
        "apiVersion: networking.k8s.io/v1\nkind: Ingress\nmetadata:\n  name: split-ingress-{n} # *\nspec:\n  ingressClassName: nginx\n  rules:\n  - host: {host}\n    http:\n      paths:\n      - path: /api\n        pathType: Prefix\n        backend:\n          service:\n            name: {api_svc}\n            port:\n              number: {api_port}\n      - path: /\n        pathType: Prefix\n        backend:\n          service:\n            name: {web_svc}\n            port:\n              number: 80\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=SYNCED ingress --all --timeout=15s
ing=$(kubectl get ingress -o jsonpath='{{.items[0].metadata.name}}')
host=$(kubectl get ingress $ing -o jsonpath='{{.spec.rules[0].host}}')
class=$(kubectl get ingress $ing -o jsonpath='{{.spec.ingressClassName}}')
kubectl describe ingress $ing | grep "{api_svc}:{api_port}" || exit 1
kubectl describe ingress $ing | grep "{web_svc}:80" || exit 1
if [ "$host" == "{host}" ] && [ "$class" == "nginx" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn scenario_netpol_allow(id: String, n: usize) -> Problem {
    let app = format!(
        "{}-{n}",
        pick(&["redis", "postgres", "vault", "rabbitmq"], n)
    );
    let app = app.as_str();
    let client = pick(&["frontend", "worker", "api", "scheduler"], n);
    let port = [6379u16, 5432, 8200, 5672][n % 4];
    let description = format!(
        "Create a NetworkPolicy YAML named \"allow-{client}-to-{app}\" that selects pods \
labeled app: {app} and declares policy type Ingress with one allow rule: traffic from pods \
labeled role: {client} (a from.podSelector) on TCP port {port} only."
    );
    let labeled_reference = format!(
        "apiVersion: networking.k8s.io/v1\nkind: NetworkPolicy\nmetadata:\n  name: allow-{client}-to-{app} # *\nspec:\n  podSelector:\n    matchLabels:\n      app: {app}\n  policyTypes:\n  - Ingress\n  ingress:\n  - from:\n    - podSelector:\n        matchLabels:\n          role: {client}\n    ports:\n    - protocol: TCP\n      port: {port}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
np=$(kubectl get networkpolicy -o jsonpath='{{.items[0].metadata.name}}')
sel=$(kubectl get networkpolicy $np -o jsonpath='{{.spec.podSelector.matchLabels.app}}')
peer=$(kubectl get networkpolicy $np -o jsonpath='{{.spec.ingress[0].from[0].podSelector.matchLabels.role}}')
port=$(kubectl get networkpolicy $np -o jsonpath='{{.spec.ingress[0].ports[0].port}}')
if [ "$sel" == "{app}" ] && [ "$peer" == "{client}" ] && [ "$port" == "{port}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}

fn multi_doc_problem(id: String, n: usize) -> Problem {
    let db = pick(&["mysql", "postgres"], n);
    let port = if *pick(&["mysql", "postgres"], n) == "mysql" {
        3306
    } else {
        5432
    };
    let description = format!(
        "Please write a YAML file that defines firstly a Service and then a Deployment. The \
Deployment runs a single {db} instance using the latest image on port {port}, with the \
environment MYSQL_ROOT_PASSWORD=password{n}. The deployment should also define a volume mount \
for /var/lib/{db} backed by an emptyDir volume. The Service simply exposes the deployment \
on its port. All potential names should be {db} and labels should be app: {db}."
    );
    let labeled_reference = format!(
        "apiVersion: v1\nkind: Service\nmetadata:\n  name: {db}\n  labels:\n    app: {db}\nspec:\n  selector:\n    app: {db}\n  ports:\n  - port: {port}\n---\napiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: {db}\n  labels:\n    app: {db}\nspec:\n  selector:\n    matchLabels:\n      app: {db}\n  template:\n    metadata:\n      labels:\n        app: {db}\n    spec:\n      containers:\n      - name: {db}\n        image: {db}:latest # v in ['{db}', '{db}:latest']\n        ports:\n        - containerPort: {port}\n        env:\n        - name: MYSQL_ROOT_PASSWORD\n          value: password{n}\n        volumeMounts:\n        - name: data\n          mountPath: /var/lib/{db}\n      volumes:\n      - name: data\n        emptyDir: {{}}\n"
    );
    let unit_test = format!(
        r#"kubectl apply -f labeled_code.yaml
kubectl wait --for=condition=Ready pod -l app={db} --timeout=90s
svc_port=$(kubectl get svc {db} -o jsonpath='{{.spec.ports[0].port}}')
image=$(kubectl get deployment {db} -o jsonpath='{{.spec.template.spec.containers[0].image}}')
env_name=$(kubectl get deployment {db} -o jsonpath='{{.spec.template.spec.containers[0].env[0].name}}')
env_val=$(kubectl get deployment {db} -o jsonpath='{{.spec.template.spec.containers[0].env[0].value}}')
if [ "$svc_port" == "{port}" ] && [[ $image == *"{db}"* ]] && [ "$env_name" == "MYSQL_ROOT_PASSWORD" ] && [ "$env_val" == "password{n}" ]; then
  echo unit_test_passed
fi
"#
    );
    finish_problem(
        id,
        Category::KubernetesOther,
        description,
        None,
        labeled_reference,
        unit_test,
    )
}
