//! The dataset's ground-truth guarantee: every generated unit test passes
//! against its own (label-stripped) reference solution, and fails against
//! an obviously wrong answer. This mirrors the paper's manual verification
//! of hand-written tests (§2.1: the reference YAML is used "to facilitate
//! the development and verification of the unit test script").

use cedataset::Dataset;

#[test]
fn every_unit_test_passes_on_its_reference() {
    let ds = Dataset::generate();
    let mut failures = Vec::new();
    for p in ds.problems() {
        let reference = p.clean_reference();
        match minishell::run_unit_test(&p.unit_test, &reference) {
            Ok(outcome) if outcome.combined.contains("unit_test_passed") => {}
            Ok(outcome) => failures.push(format!(
                "{}: test did not pass\n--- transcript ---\n{}",
                p.id, outcome.combined
            )),
            Err(e) => failures.push(format!("{}: interpreter error: {e}", p.id)),
        }
    }
    assert!(
        failures.is_empty(),
        "{} / {} references fail their own unit test:\n{}",
        failures.len(),
        ds.len(),
        failures.join("\n\n")
    );
}

#[test]
fn extended_scenario_references_pass_their_unit_tests() {
    let ds = Dataset::generate_extended(30);
    let mut failures = Vec::new();
    for p in ds.problems().iter().filter(|p| p.id.starts_with("scn-")) {
        let reference = p.clean_reference();
        match minishell::run_unit_test(&p.unit_test, &reference) {
            Ok(outcome) if outcome.combined.contains("unit_test_passed") => {}
            Ok(outcome) => failures.push(format!(
                "{}: test did not pass\n--- transcript ---\n{}",
                p.id, outcome.combined
            )),
            Err(e) => failures.push(format!("{}: interpreter error: {e}", p.id)),
        }
        // Scenario tests must also reject an empty answer.
        if let Ok(o) = minishell::run_unit_test(&p.unit_test, "") {
            assert!(
                !o.combined.contains("unit_test_passed"),
                "{} passed with an empty answer",
                p.id
            );
        }
    }
    assert!(
        failures.is_empty(),
        "{} scenario references fail their own unit test:\n{}",
        failures.len(),
        failures.join("\n\n")
    );
}

#[test]
fn unit_tests_reject_empty_answers() {
    let ds = Dataset::generate();
    for p in ds.problems().iter().step_by(13) {
        // An interpreter error also counts as failure; only an `Ok` outcome
        // that prints the marker would be a bug.
        if let Ok(o) = minishell::run_unit_test(&p.unit_test, "") {
            assert!(
                !o.combined.contains("unit_test_passed"),
                "{} passed with an empty answer",
                p.id
            );
        }
    }
}

#[test]
fn unit_tests_reject_wrong_kind_answers() {
    let ds = Dataset::generate();
    let wrong = "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: wrong-answer\ndata:\n  k: v\n";
    for p in ds.problems().iter().step_by(17) {
        if p.clean_reference().contains("kind: ConfigMap") {
            continue; // the decoy would accidentally be near-correct
        }
        let outcome = minishell::run_unit_test(&p.unit_test, wrong);
        if let Ok(o) = outcome {
            assert!(
                !o.combined.contains("unit_test_passed"),
                "{} passed with a wrong-kind answer:\n{}",
                p.id,
                o.combined
            );
        }
    }
}
