//! Direct-to-cluster substrate: manifests applied straight to a `kubesim`
//! cluster, asserted with a kubectl-shaped probe language (no shell).

use kubesim::{Cluster, ClusterError};

use crate::{ExecError, ExecOutcome, Substrate};

/// Kubernetes substrate over an in-memory `kubesim` cluster.
///
/// Where [`ShellSubstrate`](crate::ShellSubstrate) interprets full bash
/// scripts, this backend skips the shell: [`Substrate::apply`] feeds the
/// manifest directly into the cluster's strict-decoding apply path, and
/// [`Substrate::assert_check`] runs a tiny line-oriented probe language:
///
/// ```text
/// advance 5000                         # advance the simulated clock (ms)
/// apply <<kind: Namespace ...>>        # apply an inline context manifest
/// expect pod web {.status.phase} == Running
/// exists deployment web-deployment
/// absent pod retired-pod
/// ```
///
/// * `expect KIND NAME JSONPATH == VALUE` — the rendered JSONPath output
///   must equal `VALUE` (assert-fail otherwise);
/// * `exists KIND NAME` / `absent KIND NAME` — presence checks;
/// * `advance MS` — drive controller reconciliation forward;
/// * `apply <<MANIFEST>>` — load an auxiliary manifest (contexts), with
///   `\n` escapes for newlines.
///
/// Unknown verbs and malformed probe lines are [`ExecError::Probe`] — the
/// check is broken, not the candidate.
///
/// # Examples
///
/// ```
/// use substrate::{KubeSubstrate, Substrate};
///
/// let manifest = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: c\n    image: nginx\n";
/// let outcome = KubeSubstrate::new()
///     .execute(manifest, "advance 10000\nexpect pod web {.status.phase} == Running")
///     .unwrap();
/// assert!(outcome.passed);
/// ```
#[derive(Debug, Default)]
pub struct KubeSubstrate {
    cluster: Cluster,
}

impl KubeSubstrate {
    /// A fresh substrate over a new single-node cluster.
    pub fn new() -> KubeSubstrate {
        KubeSubstrate::default()
    }

    /// Read access to the underlying cluster (post-mortem inspection).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn apply_inner(&mut self, manifest: &str) -> Result<(), ExecError> {
        match self.cluster.apply_manifest(manifest, "default") {
            Ok(_) => Ok(()),
            Err(ClusterError::Invalid(msg)) if msg.contains("error parsing YAML") => {
                Err(ExecError::InvalidInput(msg))
            }
            Err(e) => Err(ExecError::Rejected(e.to_string())),
        }
    }

    fn run_probe_line(&mut self, line: &str, transcript: &mut String) -> Result<bool, ExecError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(true);
        }
        let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
        match verb {
            "advance" => {
                let ms: u64 = rest
                    .trim()
                    .parse()
                    .map_err(|_| ExecError::Probe(format!("advance needs ms: {line}")))?;
                self.cluster.advance(ms);
                Ok(true)
            }
            "apply" => {
                let inline = rest
                    .trim()
                    .strip_prefix("<<")
                    .and_then(|s| s.strip_suffix(">>"))
                    .ok_or_else(|| ExecError::Probe(format!("apply needs <<manifest>>: {line}")))?
                    .replace("\\n", "\n");
                match self.apply_inner(&inline) {
                    Ok(()) => Ok(true),
                    // A context manifest the probe itself ships must be
                    // valid; failure is a probe bug.
                    Err(e) => Err(ExecError::Probe(format!("context apply failed: {e}"))),
                }
            }
            "exists" | "absent" => {
                let mut parts = rest.split_whitespace();
                let (kind, name) = match (parts.next(), parts.next()) {
                    (Some(k), Some(n)) => (k, n),
                    _ => return Err(ExecError::Probe(format!("{verb} needs KIND NAME: {line}"))),
                };
                let found = !self
                    .cluster
                    .get(&canonical_kind(kind), Some("default"), Some(name))
                    .is_empty();
                let ok = if verb == "exists" { found } else { !found };
                if !ok {
                    transcript.push_str(&format!("{verb} {kind}/{name}: FAILED\n"));
                }
                Ok(ok)
            }
            "expect" => {
                let mut parts = rest.split_whitespace();
                let (kind, name, path) = match (parts.next(), parts.next(), parts.next()) {
                    (Some(k), Some(n), Some(p)) => (k, n, p),
                    _ => {
                        return Err(ExecError::Probe(format!(
                            "expect needs KIND NAME JSONPATH == VALUE: {line}"
                        )))
                    }
                };
                if parts.next() != Some("==") {
                    return Err(ExecError::Probe(format!("expect needs '==': {line}")));
                }
                let expected = parts.collect::<Vec<_>>().join(" ");
                let resources =
                    self.cluster
                        .get(&canonical_kind(kind), Some("default"), Some(name));
                let Some(resource) = resources.first() else {
                    transcript.push_str(&format!("expect {kind}/{name}: not found\n"));
                    return Ok(false);
                };
                let compiled = yamlkit::path::JsonPath::compile(path)
                    .map_err(|e| ExecError::Probe(format!("bad jsonpath {path}: {e}")))?;
                let actual = compiled.render(&resource.to_yaml());
                let ok = actual == expected;
                if !ok {
                    transcript.push_str(&format!(
                        "expect {kind}/{name} {path}: {actual:?} != {expected:?}\n"
                    ));
                }
                Ok(ok)
            }
            other => Err(ExecError::Probe(format!("unknown probe verb {other:?}"))),
        }
    }
}

/// Accepts the kubectl short/lowercase spellings the probe language uses,
/// falling back to the literal text for kinds kubesim has no alias for.
fn canonical_kind(kind: &str) -> String {
    kubesim::resources::canonical_kind(kind)
        .map(str::to_owned)
        .unwrap_or_else(|| kind.to_owned())
}

impl Substrate for KubeSubstrate {
    fn name(&self) -> &'static str {
        "kubesim"
    }

    fn prepare(&mut self) {
        self.cluster = Cluster::new();
    }

    fn apply(&mut self, manifest: &str) -> Result<(), ExecError> {
        self.apply_inner(manifest)
    }

    fn apply_prepared(&mut self, doc: &yamlkit::PreparedDoc) -> Result<(), ExecError> {
        // The parse already happened (once, when the PreparedDoc was
        // built); feed the parsed documents straight into the cluster.
        if let Some(err) = doc.parse_error() {
            return Err(ExecError::InvalidInput(format!(
                "error parsing YAML: {err}"
            )));
        }
        match self.cluster.apply_docs(doc.values(), "default") {
            Ok(_) => Ok(()),
            Err(e) => Err(ExecError::Rejected(e.to_string())),
        }
    }

    fn assert_check(&mut self, check: &str) -> Result<ExecOutcome, ExecError> {
        if check
            .lines()
            .all(|l| l.trim().is_empty() || l.trim_start().starts_with('#'))
        {
            // An assertion program with no probes asserts nothing; passing
            // it would score every candidate as correct.
            return Err(ExecError::Probe("empty assertion program".into()));
        }
        let mut transcript = String::new();
        let mut passed = true;
        for line in check.lines() {
            passed &= self.run_probe_line(line, &mut transcript)?;
        }
        if passed {
            transcript.push_str("unit_test_passed\n");
        }
        Ok(ExecOutcome {
            passed,
            transcript,
            simulated_ms: self.cluster.now_ms(),
        })
    }

    fn teardown(&mut self) {
        self.cluster = Cluster::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POD: &str = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: c\n    image: nginx\n";

    #[test]
    fn expect_and_exists_pass() {
        let mut s = KubeSubstrate::new();
        let out = s
            .execute(
                POD,
                "advance 10000\nexists pod web\nexpect pod web {.status.phase} == Running",
            )
            .unwrap();
        assert!(out.passed, "{}", out.transcript);
        assert_eq!(out.simulated_ms, 10_000);
    }

    #[test]
    fn failing_expectation_is_ok_not_error() {
        let mut s = KubeSubstrate::new();
        let out = s
            .execute(POD, "expect pod web {.metadata.name} == other")
            .unwrap();
        assert!(!out.passed);
        assert!(out.transcript.contains("!="));
    }

    #[test]
    fn rejected_manifest_is_typed() {
        let mut s = KubeSubstrate::new();
        s.prepare();
        let err = s
            .apply("apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\nspec:\n  containerz: []\n")
            .unwrap_err();
        assert!(matches!(err, ExecError::Rejected(_)), "{err}");
    }

    #[test]
    fn unknown_verb_is_probe_error() {
        let mut s = KubeSubstrate::new();
        s.prepare();
        s.apply(POD).unwrap();
        assert!(matches!(
            s.assert_check("frobnicate pod web"),
            Err(ExecError::Probe(_))
        ));
    }
}
