//! The production substrate: CloudEval bash unit-test scripts interpreted
//! by `minishell` against a fresh simulated cluster sandbox.

use std::collections::HashMap;

use minishell::{ClusterSandbox, Interp};

use crate::{ExecError, ExecOutcome, Substrate};

/// The candidate file name every CloudEval unit-test script references.
pub const CANDIDATE_FILE: &str = "labeled_code.yaml";

/// Bash-script substrate over a simulated cluster sandbox.
///
/// This is the paper's real evaluation path: the hand-written unit-test
/// scripts (Appendix C) `kubectl apply` the candidate mounted at
/// `labeled_code.yaml`, poll cluster state, curl endpoints and finally
/// `echo unit_test_passed`. One `ShellSubstrate` = one isolated test
/// environment; [`Substrate::prepare`] swaps in a brand-new cluster, which
/// is the clean-environment guarantee the paper gets from tearing
/// minikube clusters down between problems.
///
/// Probe language: the `minishell` bash subset (pipelines, `[[ ]]`,
/// command substitution, `kubectl`/`curl`/`minikube`/`envoy`/`istioctl`).
/// A check passes when its transcript contains `unit_test_passed`.
///
/// # Examples
///
/// ```
/// use substrate::{ShellSubstrate, Substrate};
///
/// let manifest = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: t\nspec:\n  containers:\n  - name: c\n    image: nginx\n";
/// let check = "kubectl apply -f labeled_code.yaml\nkubectl wait --for=condition=Ready pod -l app=t --timeout=60s && echo unit_test_passed";
/// let outcome = ShellSubstrate::new().execute(manifest, check).unwrap();
/// assert!(outcome.passed);
/// ```
#[derive(Debug, Default)]
pub struct ShellSubstrate {
    sandbox: ClusterSandbox,
    files: HashMap<String, String>,
    mounts: HashMap<String, String>,
}

impl ShellSubstrate {
    /// A fresh shell substrate (equivalent to `prepare` on default state).
    pub fn new() -> ShellSubstrate {
        ShellSubstrate::default()
    }

    /// Mounts an extra fixture file into the script's virtual filesystem
    /// (unit tests occasionally ship files besides the candidate).
    /// Mounts are substrate configuration: they survive `prepare` and
    /// `teardown` and are re-seeded into every lifecycle.
    pub fn mount(&mut self, name: &str, contents: &str) {
        self.mounts.insert(name.to_owned(), contents.to_owned());
        self.files.insert(name.to_owned(), contents.to_owned());
    }
}

impl Substrate for ShellSubstrate {
    fn name(&self) -> &'static str {
        "minishell"
    }

    fn prepare(&mut self) {
        self.sandbox = ClusterSandbox::new();
        self.files = self.mounts.clone();
    }

    fn apply(&mut self, manifest: &str) -> Result<(), ExecError> {
        // The script layer is the most permissive backend: it accepts any
        // text (the script itself will fail on garbage), but flat-out
        // unparseable YAML is reported as typed invalid input so callers
        // can skip the script run entirely.
        if yamlkit::parse(manifest).is_err() {
            return Err(ExecError::InvalidInput(format!(
                "candidate is not parseable YAML ({} bytes)",
                manifest.len()
            )));
        }
        self.files
            .insert(CANDIDATE_FILE.to_owned(), manifest.to_owned());
        Ok(())
    }

    fn apply_prepared(&mut self, doc: &yamlkit::PreparedDoc) -> Result<(), ExecError> {
        // The validity gate reads the cached parse instead of re-parsing,
        // and the sandbox cluster is primed with the shared parsed
        // documents so the script's `kubectl apply -f labeled_code.yaml`
        // skips its parse too — the candidate is parsed exactly once, at
        // PreparedDoc construction.
        if !doc.parses() {
            return Err(ExecError::InvalidInput(format!(
                "candidate is not parseable YAML ({} bytes)",
                doc.text().len()
            )));
        }
        self.files
            .insert(CANDIDATE_FILE.to_owned(), doc.text().to_owned());
        self.sandbox
            .cluster
            .prime_parsed(doc.content_hash(), doc.values_shared());
        Ok(())
    }

    fn assert_check(&mut self, check: &str) -> Result<ExecOutcome, ExecError> {
        let mut shell = Interp::new(&mut self.sandbox);
        // Move the filesystem in and back out instead of cloning it per
        // check (this is the hot scoring path); script-written files stay
        // visible to later checks in the same lifecycle.
        shell.files = std::mem::take(&mut self.files);
        let result = shell.run_script(check);
        self.files = std::mem::take(&mut shell.files);
        match result {
            Ok(outcome) => Ok(ExecOutcome {
                passed: outcome.combined.contains("unit_test_passed"),
                transcript: outcome.combined,
                simulated_ms: self.sandbox.cluster.now_ms(),
            }),
            Err(e) => Err(ExecError::Probe(e.to_string())),
        }
    }

    fn teardown(&mut self) {
        self.sandbox = ClusterSandbox::new();
        self.files = self.mounts.clone();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const POD: &str = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: t\nspec:\n  containers:\n  - name: c\n    image: nginx\n";

    #[test]
    fn passing_and_failing_checks() {
        let mut s = ShellSubstrate::new();
        s.prepare();
        s.apply(POD).unwrap();
        let pass = s
            .assert_check("kubectl apply -f labeled_code.yaml\nkubectl wait --for=condition=Ready pod -l app=t --timeout=60s && echo unit_test_passed")
            .unwrap();
        assert!(pass.passed);
        assert!(pass.simulated_ms > 0);
        s.teardown();
        s.prepare();
        s.apply(POD).unwrap();
        let fail = s
            .assert_check("kubectl apply -f labeled_code.yaml\nkubectl get pod missing || exit 1\necho unit_test_passed")
            .unwrap();
        assert!(!fail.passed);
    }

    #[test]
    fn mounted_fixtures_survive_the_lifecycle() {
        let mut s = ShellSubstrate::new();
        s.mount("expected.txt", "fixture-data");
        // execute() re-prepares; the mount must still be visible.
        let out = s
            .execute(
                POD,
                "grep fixture-data expected.txt && echo unit_test_passed",
            )
            .unwrap();
        assert!(out.passed, "{}", out.transcript);
        // And again after an explicit teardown.
        s.teardown();
        let out = s
            .execute(
                POD,
                "grep fixture-data expected.txt && echo unit_test_passed",
            )
            .unwrap();
        assert!(out.passed, "{}", out.transcript);
    }

    #[test]
    fn unparseable_candidate_is_invalid_input() {
        let mut s = ShellSubstrate::new();
        s.prepare();
        let err = s.apply("kind: [unclosed").unwrap_err();
        assert!(matches!(err, ExecError::InvalidInput(_)));
    }

    #[test]
    fn probe_error_on_unparseable_script() {
        let mut s = ShellSubstrate::new();
        s.prepare();
        s.apply(POD).unwrap();
        // An unbounded loop exhausts the interpreter's fuel budget.
        let err = s.assert_check("while true; do x=1; done").unwrap_err();
        assert!(matches!(err, ExecError::Probe(_)));
    }
}
