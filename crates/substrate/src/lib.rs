//! # substrate
//!
//! The unified execution substrate for CloudEval-YAML's function-level
//! evaluation (§3.2–§3.3 of the paper): one `prepare → apply → assert →
//! teardown` lifecycle over every backend that can judge a generated
//! configuration by *running* it.
//!
//! The paper's defining feature is practical evaluation — candidate YAML
//! is applied to a live substrate (a Kubernetes cluster, an Envoy proxy, a
//! bash test harness) and probed, not just diffed against a reference.
//! Before this crate, each simulator exposed a bespoke API and the
//! evaluation pipeline special-cased every backend. The [`Substrate`]
//! trait is the seam they all plug into:
//!
//! * [`ShellSubstrate`] — the production path: CloudEval bash unit-test
//!   scripts interpreted by `minishell` against a fresh simulated cluster
//!   sandbox (kubectl + curl + minikube + envoy + istioctl);
//! * [`KubeSubstrate`] — direct-to-cluster: manifests applied to a
//!   `kubesim` cluster and asserted with a small kubectl-shaped probe
//!   language (no shell in the loop);
//! * [`EnvoySubstrate`] — proxy-level: configurations validated by
//!   `envoysim` and asserted with request-routing probes.
//!
//! All three speak the same result vocabulary — [`ExecOutcome`] for "the
//! candidate ran, here is the verdict" and [`ExecError`] for "the
//! candidate never got that far" — so schedulers, caches and analyses are
//! backend-agnostic. Future backends (terraform-plan, docker-compose)
//! implement the same four methods and inherit the whole pipeline.
//!
//! # Lifecycle contract
//!
//! 1. [`Substrate::prepare`] resets the backend to a pristine, hermetic
//!    environment. It must be callable any number of times.
//! 2. [`Substrate::apply`] loads one candidate configuration. Malformed or
//!    rejected input returns a typed [`ExecError`]; the backend stays
//!    usable afterwards.
//! 3. [`Substrate::assert_check`] runs one assertion program in the
//!    backend's probe language and reports pass/fail plus a transcript.
//!    Asserting is read-mostly but may advance simulated time.
//! 4. [`Substrate::teardown`] drops all applied state. It is idempotent:
//!    tearing down twice equals tearing down once (verified by the
//!    conformance suite for every backend).
//!
//! [`Substrate::execute`] packages the full lifecycle for one candidate.
//!
//! # Examples
//!
//! ```
//! use substrate::{EnvoySubstrate, Substrate};
//!
//! let mut envoy = EnvoySubstrate::new();
//! let outcome = envoy
//!     .execute(
//!         envoysim::SAMPLE_CONFIG,
//!         "route 10000 example.com / => cluster service_backend",
//!     )
//!     .unwrap();
//! assert!(outcome.passed);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod conformance;
mod envoy;
mod kube;
mod shell;
pub mod taxonomy;

pub use envoy::EnvoySubstrate;
pub use kube::KubeSubstrate;
pub use shell::ShellSubstrate;

use std::fmt;

/// The verdict after a candidate was applied and asserted on a substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Did the assertion program pass?
    pub passed: bool,
    /// Human-readable transcript of the assertion run (what the CloudEval
    /// scripts grep for `unit_test_passed`).
    pub transcript: String,
    /// Simulated in-substrate milliseconds the run consumed (sleeps,
    /// waits, reconcile time). Wall-clock time is orders of magnitude
    /// smaller.
    pub simulated_ms: u64,
}

impl ExecOutcome {
    /// A passing outcome with an empty transcript (test helper).
    pub fn pass() -> ExecOutcome {
        ExecOutcome {
            passed: true,
            transcript: String::new(),
            simulated_ms: 0,
        }
    }
}

/// Why a candidate never produced an [`ExecOutcome`].
///
/// The distinction mirrors the paper's Figure 7 failure taxonomy: a
/// candidate can be broken *as text* (not parseable), broken *as
/// configuration* (the substrate refuses it), or the probe machinery
/// itself can fail (which is a harness bug or a malformed check, never the
/// candidate's fault).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// The candidate is not syntactically valid for this substrate
    /// (e.g. YAML that does not parse).
    InvalidInput(String),
    /// The candidate parsed but the substrate rejected it at apply time
    /// (strict-decoding violations, unknown kinds, invalid routes...).
    Rejected(String),
    /// The assertion program itself could not run (unknown probe verb,
    /// interpreter error, fuel exhaustion). Distinct from a failing
    /// assertion, which is a successful [`ExecOutcome`] with
    /// `passed == false`.
    Probe(String),
}

impl ExecError {
    /// The error message without the variant prefix.
    pub fn message(&self) -> &str {
        match self {
            ExecError::InvalidInput(m) | ExecError::Rejected(m) | ExecError::Probe(m) => m,
        }
    }

    /// Whether the error is attributable to the candidate (input or
    /// rejection) rather than to the harness (probe).
    pub fn is_candidate_fault(&self) -> bool {
        !matches!(self, ExecError::Probe(_))
    }

    /// Whether resubmitting the same candidate could plausibly change the
    /// result. Delegates to the taxonomy so the two layers can never
    /// disagree: a [`taxonomy::Bucket::QuotaExceeded`] rejection is
    /// retryable, a [`taxonomy::Bucket::SchemaViolation`] never is.
    pub fn retryable(&self) -> bool {
        taxonomy::classify_error(self).bucket.retryable()
    }
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InvalidInput(m) => write!(f, "invalid input: {m}"),
            ExecError::Rejected(m) => write!(f, "rejected by substrate: {m}"),
            ExecError::Probe(m) => write!(f, "probe error: {m}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// A backend that can judge candidate configurations by executing them.
///
/// See the crate docs for the lifecycle contract. Implementations must be
/// deterministic: the same `(manifest, check)` pair on a freshly prepared
/// substrate always yields the same result — that determinism is what
/// makes the evaluation engine's content-addressed score cache sound.
pub trait Substrate {
    /// Stable backend name for diagnostics and reports.
    fn name(&self) -> &'static str;

    /// Resets to a pristine, hermetic environment.
    fn prepare(&mut self);

    /// Loads one candidate configuration.
    ///
    /// # Errors
    ///
    /// [`ExecError::InvalidInput`] when the candidate does not parse,
    /// [`ExecError::Rejected`] when the substrate refuses it.
    fn apply(&mut self, manifest: &str) -> Result<(), ExecError>;

    /// Runs one assertion program in the backend's probe language.
    ///
    /// # Errors
    ///
    /// [`ExecError::Probe`] when the program itself cannot run. A failing
    /// assertion is **not** an error: it is `Ok` with `passed == false`.
    fn assert_check(&mut self, check: &str) -> Result<ExecOutcome, ExecError>;

    /// Drops all applied state. Idempotent.
    fn teardown(&mut self);

    /// Loads one candidate configuration from its parse-once prepared
    /// form. The default forwards to [`Substrate::apply`] on the raw
    /// text; backends that can consume parsed documents directly (the
    /// kubesim backends) override this to skip the re-parse.
    ///
    /// # Errors
    ///
    /// Same classes as [`Substrate::apply`].
    fn apply_prepared(&mut self, doc: &yamlkit::PreparedDoc) -> Result<(), ExecError> {
        self.apply(doc.text())
    }

    /// Full lifecycle for one candidate: prepare, apply, assert, teardown.
    ///
    /// Wall-clock time for the whole lifecycle is recorded to the
    /// `substrate_exec_us{backend=...}` histogram in [`obs::global`].
    ///
    /// # Errors
    ///
    /// Propagates the first [`ExecError`] from apply or assert; teardown
    /// runs regardless.
    fn execute(&mut self, manifest: &str, check: &str) -> Result<ExecOutcome, ExecError> {
        let started = std::time::Instant::now();
        self.prepare();
        let result = self.apply(manifest).and_then(|()| self.assert_check(check));
        self.teardown();
        record_exec(self.name(), started);
        result
    }

    /// [`Substrate::execute`] from a prepared document: the candidate's
    /// one-and-only parse happened when the [`yamlkit::PreparedDoc`] was
    /// built; no layer underneath re-parses it.
    ///
    /// # Errors
    ///
    /// Same contract as [`Substrate::execute`].
    fn execute_prepared(
        &mut self,
        doc: &yamlkit::PreparedDoc,
        check: &str,
    ) -> Result<ExecOutcome, ExecError> {
        let started = std::time::Instant::now();
        self.prepare();
        let result = self
            .apply_prepared(doc)
            .and_then(|()| self.assert_check(check));
        self.teardown();
        record_exec(self.name(), started);
        result
    }
}

/// Records one full substrate lifecycle to `substrate_exec_us`, labelled
/// by backend. Handle resolution is idempotent and cheap next to running
/// a unit-test script, so no per-backend caching is needed here.
fn record_exec(backend: &'static str, started: std::time::Instant) {
    obs::global()
        .histogram(
            "substrate_exec_us",
            &[("backend", backend)],
            "wall-clock latency of one prepare/apply/assert/teardown lifecycle",
        )
        .record(started.elapsed());
}

/// 64-bit FNV-1a hash of a byte string.
///
/// The evaluation engine's score memo cache addresses results by content:
/// `(content_hash(candidate), content_hash(check))`. The implementation
/// lives in [`yamlkit::doc::content_hash`] (so `PreparedDoc` can cache
/// the candidate's hash at parse time); this re-export keeps the
/// substrate-level vocabulary. The two are bit-identical — persisted
/// memo stores written before the parse-once refactor still load.
///
/// # Examples
///
/// ```
/// assert_eq!(substrate::content_hash(""), 0xcbf29ce484222325);
/// assert_ne!(substrate::content_hash("a"), substrate::content_hash("b"));
/// assert_eq!(substrate::content_hash("x"), yamlkit::doc::content_hash("x"));
/// ```
pub fn content_hash(text: &str) -> u64 {
    yamlkit::doc::content_hash(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn content_hash_is_stable_and_discriminating() {
        assert_eq!(content_hash("kind: Pod"), content_hash("kind: Pod"));
        assert_ne!(content_hash("kind: Pod"), content_hash("kind: Pod\n"));
        assert_eq!(content_hash(""), 0xcbf2_9ce4_8422_2325);
    }

    #[test]
    fn exec_error_accessors() {
        let e = ExecError::Rejected("unknown field".into());
        assert_eq!(e.message(), "unknown field");
        assert!(e.is_candidate_fault());
        assert!(!ExecError::Probe("bad verb".into()).is_candidate_fault());
        assert_eq!(
            ExecError::InvalidInput("x".into()).to_string(),
            "invalid input: x"
        );
    }
}
