//! Proxy-level substrate: configurations validated by `envoysim` and
//! asserted with request-routing probes.

use envoysim::{EnvoyConfig, RouteOutcome};

use crate::{ExecError, ExecOutcome, Substrate};

/// Envoy substrate over the `envoysim` static-configuration model.
///
/// [`Substrate::apply`] performs the strict validation `envoy --mode
/// validate` would (YAML shape, listener ports, route → cluster
/// references); [`Substrate::assert_check`] probes the loaded
/// configuration with a line-oriented routing language:
///
/// ```text
/// route 10000 example.com /api => cluster service_backend
/// route 10000 example.com /old => redirect new.example.com
/// route 10000 other.com  /     => status 403
/// route 9999  any        /     => nolistener
/// route 10000 example.com /x   => notfound
/// listeners 1
/// clusters 2
/// ```
///
/// Each probe advances nothing — routing is pure — so `simulated_ms` is
/// always 0 for this backend.
///
/// # Examples
///
/// ```
/// use substrate::{EnvoySubstrate, Substrate};
///
/// let out = EnvoySubstrate::new()
///     .execute(envoysim::SAMPLE_CONFIG, "listeners 1\nroute 10000 x / => cluster service_backend")
///     .unwrap();
/// assert!(out.passed);
/// ```
#[derive(Debug, Default)]
pub struct EnvoySubstrate {
    config: Option<EnvoyConfig>,
}

impl EnvoySubstrate {
    /// A fresh substrate with no configuration loaded.
    pub fn new() -> EnvoySubstrate {
        EnvoySubstrate::default()
    }

    /// The loaded configuration, if any (post-mortem inspection).
    pub fn config(&self) -> Option<&EnvoyConfig> {
        self.config.as_ref()
    }

    fn probe_line(&self, line: &str, transcript: &mut String) -> Result<bool, ExecError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            return Ok(true);
        }
        let config = self
            .config
            .as_ref()
            .ok_or_else(|| ExecError::Probe("no configuration applied".into()))?;
        let (verb, rest) = line.split_once(' ').unwrap_or((line, ""));
        match verb {
            "listeners" | "clusters" => {
                let want: usize = rest
                    .trim()
                    .parse()
                    .map_err(|_| ExecError::Probe(format!("{verb} needs a count: {line}")))?;
                let have = if verb == "listeners" {
                    config.listeners.len()
                } else {
                    config.clusters.len()
                };
                if have != want {
                    transcript.push_str(&format!("{verb}: {have} != {want}\n"));
                }
                Ok(have == want)
            }
            "route" => {
                let (request, expectation) = rest
                    .split_once("=>")
                    .ok_or_else(|| ExecError::Probe(format!("route needs '=>': {line}")))?;
                let mut req = request.split_whitespace();
                let (port, host, path) = match (req.next(), req.next(), req.next()) {
                    (Some(p), Some(h), Some(pa)) => (p, h, pa),
                    _ => {
                        return Err(ExecError::Probe(format!(
                            "route needs PORT HOST PATH: {line}"
                        )))
                    }
                };
                let port: u16 = port
                    .parse()
                    .map_err(|_| ExecError::Probe(format!("bad port in: {line}")))?;
                let actual = config.route(port, host, path);
                let mut exp = expectation.split_whitespace();
                let ok = match (exp.next(), exp.next()) {
                    (Some("cluster"), Some(name)) => {
                        actual == RouteOutcome::Cluster(name.to_owned())
                    }
                    (Some("redirect"), Some(to)) => actual == RouteOutcome::Redirect(to.to_owned()),
                    (Some("status"), Some(code)) => {
                        let code: u16 = code
                            .parse()
                            .map_err(|_| ExecError::Probe(format!("bad status in: {line}")))?;
                        matches!(&actual, RouteOutcome::DirectResponse(s, _) if *s == code)
                    }
                    (Some("notfound"), None) => actual == RouteOutcome::NotFound,
                    (Some("nolistener"), None) => actual == RouteOutcome::NoListener,
                    _ => {
                        return Err(ExecError::Probe(format!(
                            "route expects 'cluster NAME' | 'redirect TO' | 'status CODE' | 'notfound' | 'nolistener': {line}"
                        )))
                    }
                };
                if !ok {
                    transcript.push_str(&format!(
                        "route {port} {host} {path}: got {actual:?}, wanted {}\n",
                        expectation.trim()
                    ));
                }
                Ok(ok)
            }
            other => Err(ExecError::Probe(format!("unknown probe verb {other:?}"))),
        }
    }
}

impl Substrate for EnvoySubstrate {
    fn name(&self) -> &'static str {
        "envoysim"
    }

    fn prepare(&mut self) {
        self.config = None;
    }

    fn apply(&mut self, manifest: &str) -> Result<(), ExecError> {
        if yamlkit::parse(manifest).is_err() {
            return Err(ExecError::InvalidInput("malformed yaml".into()));
        }
        match EnvoyConfig::parse(manifest) {
            Ok(cfg) => {
                self.config = Some(cfg);
                Ok(())
            }
            Err(e) => Err(ExecError::Rejected(e.to_string())),
        }
    }

    fn assert_check(&mut self, check: &str) -> Result<ExecOutcome, ExecError> {
        if check
            .lines()
            .all(|l| l.trim().is_empty() || l.trim_start().starts_with('#'))
        {
            // An assertion program with no probes asserts nothing; passing
            // it would score every candidate as correct.
            return Err(ExecError::Probe("empty assertion program".into()));
        }
        let mut transcript = String::new();
        let mut passed = true;
        for line in check.lines() {
            passed &= self.probe_line(line, &mut transcript)?;
        }
        if passed {
            transcript.push_str("unit_test_passed\n");
        }
        Ok(ExecOutcome {
            passed,
            transcript,
            simulated_ms: 0,
        })
    }

    fn teardown(&mut self) {
        self.config = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routing_probes() {
        let mut s = EnvoySubstrate::new();
        let out = s
            .execute(
                envoysim::SAMPLE_CONFIG,
                "listeners 1\nclusters 1\nroute 10000 example.com / => cluster service_backend\nroute 9999 x / => nolistener",
            )
            .unwrap();
        assert!(out.passed, "{}", out.transcript);
    }

    #[test]
    fn wrong_cluster_fails_but_is_not_error() {
        let mut s = EnvoySubstrate::new();
        let out = s
            .execute(
                envoysim::SAMPLE_CONFIG,
                "route 10000 example.com / => cluster other",
            )
            .unwrap();
        assert!(!out.passed);
        assert!(out.transcript.contains("wanted cluster other"));
    }

    #[test]
    fn invalid_reference_is_rejected() {
        let mut s = EnvoySubstrate::new();
        s.prepare();
        let bad = envoysim::SAMPLE_CONFIG.replace("cluster: service_backend", "cluster: missing");
        let err = s.apply(&bad).unwrap_err();
        assert!(matches!(err, ExecError::Rejected(_)));
    }

    #[test]
    fn probe_without_config_is_probe_error() {
        let mut s = EnvoySubstrate::new();
        s.prepare();
        assert!(matches!(
            s.assert_check("listeners 1"),
            Err(ExecError::Probe(_))
        ));
    }
}
