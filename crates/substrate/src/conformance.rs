//! The backend-independent conformance suite.
//!
//! Every [`Substrate`] implementation must satisfy the same lifecycle
//! contract; [`run`] checks it with one shared set of assertions driven by
//! a per-backend [`Fixture`] (each backend speaks its own manifest and
//! probe dialect, so the *inputs* differ while the *contract* does not):
//!
//! 1. applying unparseable/rejected input yields a typed candidate-fault
//!    [`ExecError`], never a panic or a silent pass;
//! 2. a correct candidate passes its passing check;
//! 3. a correct candidate fails a failing check *as an outcome*, not an
//!    error;
//! 4. teardown is idempotent and prepare restores a working environment;
//! 5. every curated broken input classifies to its expected
//!    [taxonomy] bucket (never `Unknown`), identically
//!    via `execute` and `execute_prepared`.
//!
//! The crate's integration tests run this against all three backends; new
//! backends get their contract checked by adding one fixture.

use crate::taxonomy::{self, Bucket};
use crate::{ExecError, Substrate};

/// One curated broken input with its expected taxonomy bucket.
#[derive(Debug, Clone)]
pub struct TaxonomyCase {
    /// What is broken (diagnostic label for assertion messages).
    pub label: &'static str,
    /// The broken candidate.
    pub manifest: String,
    /// The check to run it under.
    pub check: String,
    /// The bucket the failure must classify to (never [`Bucket::Unknown`]).
    pub expected: Bucket,
}

/// Per-backend inputs for the shared conformance assertions.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// A candidate the backend accepts.
    pub good_manifest: String,
    /// A candidate the backend must reject at apply time with a typed
    /// candidate-fault error.
    pub bad_manifest: String,
    /// A check that passes against `good_manifest`.
    pub passing_check: String,
    /// A check that runs cleanly against `good_manifest` but fails.
    pub failing_check: String,
    /// Curated broken inputs with pinned taxonomy buckets.
    pub taxonomy_cases: Vec<TaxonomyCase>,
}

/// Conformance fixture for [`ShellSubstrate`](crate::ShellSubstrate).
pub fn shell_fixture() -> Fixture {
    Fixture {
        good_manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: conf\nspec:\n  containers:\n  - name: c\n    image: nginx\n".into(),
        bad_manifest: "kind: [unclosed\n  flow: {\n".into(),
        passing_check: "kubectl apply -f labeled_code.yaml\nkubectl wait --for=condition=Ready pod -l app=conf --timeout=60s && echo unit_test_passed".into(),
        failing_check: "kubectl apply -f labeled_code.yaml\nphase=$(kubectl get pod web -o jsonpath={.status.phase})\nif [ \"$phase\" == \"Succeeded\" ]; then echo unit_test_passed; fi".into(),
        taxonomy_cases: shell_taxonomy_cases(),
    }
}

fn shell_taxonomy_cases() -> Vec<TaxonomyCase> {
    let apply_check = "kubectl apply -f labeled_code.yaml && echo unit_test_passed";
    vec![
        TaxonomyCase {
            label: "bad yaml",
            manifest: "kind: [unclosed\n  flow: {\n".into(),
            check: apply_check.into(),
            expected: Bucket::YamlSyntax,
        },
        TaxonomyCase {
            label: "unknown field",
            manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containerz: []\n".into(),
            check: apply_check.into(),
            expected: Bucket::SchemaViolation,
        },
        TaxonomyCase {
            label: "dangling selector",
            manifest: "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: web\nspec:\n  replicas: 1\n  selector:\n    matchLabels:\n      app: web\n  template:\n    metadata:\n      labels:\n        app: other\n    spec:\n      containers:\n      - name: c\n        image: nginx\n".into(),
            check: apply_check.into(),
            expected: Bucket::SelectorMismatch,
        },
        TaxonomyCase {
            label: "missing image",
            manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: c\n    image: no-such-image:v1\n".into(),
            // The wait times out (symptom); the final `get` surfaces the
            // ImagePullBackOff cause, which must win classification.
            check: "kubectl apply -f labeled_code.yaml\nkubectl wait --for=condition=Ready pod web --timeout=30s && echo unit_test_passed\nkubectl get pod web".into(),
            expected: Bucket::MissingResource,
        },
        TaxonomyCase {
            label: "failing probe",
            manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: c\n    image: nginx\n".into(),
            check: "kubectl apply -f labeled_code.yaml\nphase=$(kubectl get pod web -o jsonpath={.status.phase})\nif [ \"$phase\" == \"Succeeded\" ]; then echo unit_test_passed; fi".into(),
            expected: Bucket::ProbeFailed,
        },
        TaxonomyCase {
            label: "wait deadline",
            manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: web\nspec:\n  containers:\n  - name: c\n    image: nginx\n".into(),
            check: "kubectl apply -f labeled_code.yaml\nkubectl wait --for=condition=Ready pod -l app=ghost --timeout=30s && echo unit_test_passed".into(),
            expected: Bucket::ProbeTimeout,
        },
    ]
}

/// Conformance fixture for [`KubeSubstrate`](crate::KubeSubstrate).
pub fn kube_fixture() -> Fixture {
    Fixture {
        good_manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: c\n    image: nginx\n".into(),
        // Parses as YAML but trips strict decoding (unknown field).
        bad_manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containerz: []\n".into(),
        passing_check: "advance 10000\nexpect pod web {.status.phase} == Running".into(),
        failing_check: "expect pod web {.metadata.name} == not-web".into(),
        taxonomy_cases: kube_taxonomy_cases(),
    }
}

fn kube_taxonomy_cases() -> Vec<TaxonomyCase> {
    let pod = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: c\n    image: nginx\n";
    vec![
        TaxonomyCase {
            label: "bad yaml",
            manifest: "kind: [unclosed\n  flow: {\n".into(),
            check: "exists pod web".into(),
            expected: Bucket::YamlSyntax,
        },
        TaxonomyCase {
            label: "unknown field",
            manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containerz: []\n".into(),
            check: "exists pod web".into(),
            expected: Bucket::SchemaViolation,
        },
        TaxonomyCase {
            label: "dangling selector",
            manifest: "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: web\nspec:\n  replicas: 1\n  selector:\n    matchLabels:\n      app: web\n  template:\n    metadata:\n      labels:\n        app: other\n    spec:\n      containers:\n      - name: c\n        image: nginx\n".into(),
            check: "exists deployment web".into(),
            expected: Bucket::SelectorMismatch,
        },
        TaxonomyCase {
            label: "missing image",
            manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: c\n    image: no-such-image:v1\n".into(),
            check: "advance 30000\nexpect pod web {.status.containerStatuses[0].state.waiting.reason} == none".into(),
            expected: Bucket::MissingResource,
        },
        TaxonomyCase {
            label: "dangling volume mount",
            manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: c\n    image: nginx\n    volumeMounts:\n    - name: cfg\n      mountPath: /etc/cfg\n".into(),
            check: "exists pod web".into(),
            expected: Bucket::BadReference,
        },
        TaxonomyCase {
            label: "quota exhausted",
            manifest: format!(
                "apiVersion: v1\nkind: ResourceQuota\nmetadata:\n  name: team-quota\nspec:\n  hard:\n    pods: \"0\"\n---\n{pod}"
            ),
            check: "exists pod web".into(),
            expected: Bucket::QuotaExceeded,
        },
        TaxonomyCase {
            label: "missing resource",
            manifest: pod.into(),
            check: "expect pod ghost {.status.phase} == Running".into(),
            expected: Bucket::MissingResource,
        },
        TaxonomyCase {
            label: "failing probe",
            manifest: pod.into(),
            check: "expect pod web {.metadata.name} == not-web".into(),
            expected: Bucket::ProbeFailed,
        },
    ]
}

/// Conformance fixture for [`EnvoySubstrate`](crate::EnvoySubstrate).
pub fn envoy_fixture() -> Fixture {
    Fixture {
        good_manifest: envoysim::SAMPLE_CONFIG.to_owned(),
        bad_manifest: envoysim::SAMPLE_CONFIG
            .replace("cluster: service_backend", "cluster: missing_cluster"),
        passing_check: "listeners 1\nroute 10000 example.com / => cluster service_backend".into(),
        failing_check: "route 10000 example.com / => cluster wrong_cluster".into(),
        taxonomy_cases: envoy_taxonomy_cases(),
    }
}

fn envoy_taxonomy_cases() -> Vec<TaxonomyCase> {
    vec![
        TaxonomyCase {
            label: "bad yaml",
            manifest: "::: not yaml {{{\n  - [".into(),
            check: "listeners 1".into(),
            expected: Bucket::YamlSyntax,
        },
        TaxonomyCase {
            label: "missing static_resources",
            manifest: "admin:\n  access_log_path: /dev/null\n".into(),
            check: "listeners 1".into(),
            expected: Bucket::SchemaViolation,
        },
        TaxonomyCase {
            label: "dangling cluster reference",
            manifest: envoysim::SAMPLE_CONFIG
                .replace("cluster: service_backend", "cluster: missing_cluster"),
            check: "listeners 1".into(),
            expected: Bucket::BadReference,
        },
        TaxonomyCase {
            label: "failing probe",
            manifest: envoysim::SAMPLE_CONFIG.to_owned(),
            check: "route 10000 example.com / => cluster wrong_cluster".into(),
            expected: Bucket::ProbeFailed,
        },
    ]
}

/// Runs the conformance assertions; panics with a diagnostic on the first
/// contract violation (intended for `#[test]` bodies).
pub fn run<S: Substrate>(substrate: &mut S, fixture: &Fixture) {
    let name = substrate.name();

    // 1. Bad input: typed candidate-fault error, backend stays usable.
    substrate.prepare();
    match substrate.apply(&fixture.bad_manifest) {
        Err(e) if e.is_candidate_fault() => {}
        Err(e) => panic!("[{name}] bad manifest produced a probe error: {e}"),
        Ok(()) => panic!("[{name}] bad manifest was accepted"),
    }
    substrate.teardown();

    // 2. Good candidate + passing check.
    let outcome = substrate
        .execute(&fixture.good_manifest, &fixture.passing_check)
        .unwrap_or_else(|e| panic!("[{name}] passing check errored: {e}"));
    assert!(
        outcome.passed,
        "[{name}] passing check failed:\n{}",
        outcome.transcript
    );

    // 3. Good candidate + failing check: an outcome, not an error.
    let outcome = substrate
        .execute(&fixture.good_manifest, &fixture.failing_check)
        .unwrap_or_else(|e| panic!("[{name}] failing check errored: {e}"));
    assert!(
        !outcome.passed,
        "[{name}] failing check passed:\n{}",
        outcome.transcript
    );

    // 4. Teardown idempotence: double teardown, then a full fresh cycle.
    substrate.teardown();
    substrate.teardown();
    let outcome = substrate
        .execute(&fixture.good_manifest, &fixture.passing_check)
        .unwrap_or_else(|e| panic!("[{name}] post-teardown cycle errored: {e}"));
    assert!(
        outcome.passed,
        "[{name}] environment not restored after teardown:\n{}",
        outcome.transcript
    );

    // 5. Degenerate assertion programs never vacuously pass: an empty or
    //    comment-only check is either a probe error or a failed outcome.
    substrate.prepare();
    substrate
        .apply(&fixture.good_manifest)
        .unwrap_or_else(|e| panic!("[{name}] good manifest rejected: {e}"));
    for check in ["", "   \n\n", "# just a comment\n"] {
        match substrate.assert_check(check) {
            Ok(outcome) => assert!(
                !outcome.passed,
                "[{name}] empty assertion program {check:?} passed"
            ),
            Err(ExecError::Probe(_)) => {}
            Err(e) => panic!("[{name}] unexpected error on empty check: {e}"),
        }
    }
    substrate.teardown();

    // 6. Parse-once equivalence: execute_prepared on a PreparedDoc is
    //    indistinguishable from execute on the raw text — same outcomes,
    //    same error classes — for good candidates under both checks and
    //    for rejected candidates.
    for check in [&fixture.passing_check, &fixture.failing_check] {
        let from_text = substrate.execute(&fixture.good_manifest, check);
        let from_doc = substrate.execute_prepared(
            &yamlkit::PreparedDoc::new(fixture.good_manifest.as_str()),
            check,
        );
        assert_eq!(
            from_text, from_doc,
            "[{name}] execute_prepared diverged from execute on check {check:?}"
        );
    }
    let bad_doc = yamlkit::PreparedDoc::new(fixture.bad_manifest.as_str());
    match (
        substrate.execute(&fixture.bad_manifest, &fixture.passing_check),
        substrate.execute_prepared(&bad_doc, &fixture.passing_check),
    ) {
        (Err(a), Err(b)) => assert_eq!(
            std::mem::discriminant(&a),
            std::mem::discriminant(&b),
            "[{name}] bad-manifest error class differs between text ({a}) and prepared ({b})"
        ),
        (a, b) => panic!("[{name}] bad manifest accepted somewhere: text {a:?}, prepared {b:?}"),
    }

    // 7. Taxonomy: every curated broken input fails and classifies to its
    //    pinned non-Unknown bucket, with identical classification whether
    //    the candidate travelled through execute or execute_prepared.
    for case in &fixture.taxonomy_cases {
        let label = case.label;
        let from_text = substrate.execute(&case.manifest, &case.check);
        let diagnosis = taxonomy::classify_result(&from_text)
            .unwrap_or_else(|| panic!("[{name}] taxonomy case {label:?} unexpectedly passed"));
        assert_eq!(
            diagnosis.bucket, case.expected,
            "[{name}] taxonomy case {label:?} classified as {} (raw: {}), expected {}",
            diagnosis.bucket, diagnosis.raw, case.expected
        );
        assert_ne!(
            diagnosis.bucket,
            Bucket::Unknown,
            "[{name}] taxonomy case {label:?} must not pin the Unknown bucket"
        );
        let from_doc = substrate.execute_prepared(
            &yamlkit::PreparedDoc::new(case.manifest.as_str()),
            &case.check,
        );
        let prepared_diagnosis = taxonomy::classify_result(&from_doc).unwrap_or_else(|| {
            panic!("[{name}] taxonomy case {label:?} passed via execute_prepared")
        });
        assert_eq!(
            (diagnosis.bucket, &diagnosis.subject),
            (prepared_diagnosis.bucket, &prepared_diagnosis.subject),
            "[{name}] taxonomy case {label:?} classification differs between execute and execute_prepared"
        );
    }

    // 8. Hermeticity: state from one prepare does not leak into the next.
    substrate.prepare();
    match substrate.assert_check(&fixture.passing_check) {
        Ok(outcome) => assert!(
            !outcome.passed,
            "[{name}] passing check passed without any candidate applied — state leaked"
        ),
        // Backends that refuse to probe an empty environment are also
        // correctly hermetic.
        Err(ExecError::Probe(_)) => {}
        Err(e) => panic!("[{name}] unexpected error on empty probe: {e}"),
    }
    substrate.teardown();
}
