//! The backend-independent conformance suite.
//!
//! Every [`Substrate`] implementation must satisfy the same lifecycle
//! contract; [`run`] checks it with one shared set of assertions driven by
//! a per-backend [`Fixture`] (each backend speaks its own manifest and
//! probe dialect, so the *inputs* differ while the *contract* does not):
//!
//! 1. applying unparseable/rejected input yields a typed candidate-fault
//!    [`ExecError`], never a panic or a silent pass;
//! 2. a correct candidate passes its passing check;
//! 3. a correct candidate fails a failing check *as an outcome*, not an
//!    error;
//! 4. teardown is idempotent and prepare restores a working environment.
//!
//! The crate's integration tests run this against all three backends; new
//! backends get their contract checked by adding one fixture.

use crate::{ExecError, Substrate};

/// Per-backend inputs for the shared conformance assertions.
#[derive(Debug, Clone)]
pub struct Fixture {
    /// A candidate the backend accepts.
    pub good_manifest: String,
    /// A candidate the backend must reject at apply time with a typed
    /// candidate-fault error.
    pub bad_manifest: String,
    /// A check that passes against `good_manifest`.
    pub passing_check: String,
    /// A check that runs cleanly against `good_manifest` but fails.
    pub failing_check: String,
}

/// Conformance fixture for [`ShellSubstrate`](crate::ShellSubstrate).
pub fn shell_fixture() -> Fixture {
    Fixture {
        good_manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: conf\nspec:\n  containers:\n  - name: c\n    image: nginx\n".into(),
        bad_manifest: "kind: [unclosed\n  flow: {\n".into(),
        passing_check: "kubectl apply -f labeled_code.yaml\nkubectl wait --for=condition=Ready pod -l app=conf --timeout=60s && echo unit_test_passed".into(),
        failing_check: "kubectl apply -f labeled_code.yaml\nphase=$(kubectl get pod web -o jsonpath={.status.phase})\nif [ \"$phase\" == \"Succeeded\" ]; then echo unit_test_passed; fi".into(),
    }
}

/// Conformance fixture for [`KubeSubstrate`](crate::KubeSubstrate).
pub fn kube_fixture() -> Fixture {
    Fixture {
        good_manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: c\n    image: nginx\n".into(),
        // Parses as YAML but trips strict decoding (unknown field).
        bad_manifest: "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containerz: []\n".into(),
        passing_check: "advance 10000\nexpect pod web {.status.phase} == Running".into(),
        failing_check: "expect pod web {.metadata.name} == not-web".into(),
    }
}

/// Conformance fixture for [`EnvoySubstrate`](crate::EnvoySubstrate).
pub fn envoy_fixture() -> Fixture {
    Fixture {
        good_manifest: envoysim::SAMPLE_CONFIG.to_owned(),
        bad_manifest: envoysim::SAMPLE_CONFIG
            .replace("cluster: service_backend", "cluster: missing_cluster"),
        passing_check: "listeners 1\nroute 10000 example.com / => cluster service_backend".into(),
        failing_check: "route 10000 example.com / => cluster wrong_cluster".into(),
    }
}

/// Runs the conformance assertions; panics with a diagnostic on the first
/// contract violation (intended for `#[test]` bodies).
pub fn run<S: Substrate>(substrate: &mut S, fixture: &Fixture) {
    let name = substrate.name();

    // 1. Bad input: typed candidate-fault error, backend stays usable.
    substrate.prepare();
    match substrate.apply(&fixture.bad_manifest) {
        Err(e) if e.is_candidate_fault() => {}
        Err(e) => panic!("[{name}] bad manifest produced a probe error: {e}"),
        Ok(()) => panic!("[{name}] bad manifest was accepted"),
    }
    substrate.teardown();

    // 2. Good candidate + passing check.
    let outcome = substrate
        .execute(&fixture.good_manifest, &fixture.passing_check)
        .unwrap_or_else(|e| panic!("[{name}] passing check errored: {e}"));
    assert!(
        outcome.passed,
        "[{name}] passing check failed:\n{}",
        outcome.transcript
    );

    // 3. Good candidate + failing check: an outcome, not an error.
    let outcome = substrate
        .execute(&fixture.good_manifest, &fixture.failing_check)
        .unwrap_or_else(|e| panic!("[{name}] failing check errored: {e}"));
    assert!(
        !outcome.passed,
        "[{name}] failing check passed:\n{}",
        outcome.transcript
    );

    // 4. Teardown idempotence: double teardown, then a full fresh cycle.
    substrate.teardown();
    substrate.teardown();
    let outcome = substrate
        .execute(&fixture.good_manifest, &fixture.passing_check)
        .unwrap_or_else(|e| panic!("[{name}] post-teardown cycle errored: {e}"));
    assert!(
        outcome.passed,
        "[{name}] environment not restored after teardown:\n{}",
        outcome.transcript
    );

    // 5. Degenerate assertion programs never vacuously pass: an empty or
    //    comment-only check is either a probe error or a failed outcome.
    substrate.prepare();
    substrate
        .apply(&fixture.good_manifest)
        .unwrap_or_else(|e| panic!("[{name}] good manifest rejected: {e}"));
    for check in ["", "   \n\n", "# just a comment\n"] {
        match substrate.assert_check(check) {
            Ok(outcome) => assert!(
                !outcome.passed,
                "[{name}] empty assertion program {check:?} passed"
            ),
            Err(ExecError::Probe(_)) => {}
            Err(e) => panic!("[{name}] unexpected error on empty check: {e}"),
        }
    }
    substrate.teardown();

    // 6. Parse-once equivalence: execute_prepared on a PreparedDoc is
    //    indistinguishable from execute on the raw text — same outcomes,
    //    same error classes — for good candidates under both checks and
    //    for rejected candidates.
    for check in [&fixture.passing_check, &fixture.failing_check] {
        let from_text = substrate.execute(&fixture.good_manifest, check);
        let from_doc = substrate.execute_prepared(
            &yamlkit::PreparedDoc::new(fixture.good_manifest.as_str()),
            check,
        );
        assert_eq!(
            from_text, from_doc,
            "[{name}] execute_prepared diverged from execute on check {check:?}"
        );
    }
    let bad_doc = yamlkit::PreparedDoc::new(fixture.bad_manifest.as_str());
    match (
        substrate.execute(&fixture.bad_manifest, &fixture.passing_check),
        substrate.execute_prepared(&bad_doc, &fixture.passing_check),
    ) {
        (Err(a), Err(b)) => assert_eq!(
            std::mem::discriminant(&a),
            std::mem::discriminant(&b),
            "[{name}] bad-manifest error class differs between text ({a}) and prepared ({b})"
        ),
        (a, b) => panic!("[{name}] bad manifest accepted somewhere: text {a:?}, prepared {b:?}"),
    }

    // 7. Hermeticity: state from one prepare does not leak into the next.
    substrate.prepare();
    match substrate.assert_check(&fixture.passing_check) {
        Ok(outcome) => assert!(
            !outcome.passed,
            "[{name}] passing check passed without any candidate applied — state leaked"
        ),
        // Backends that refuse to probe an empty environment are also
        // correctly hermetic.
        Err(ExecError::Probe(_)) => {}
        Err(e) => panic!("[{name}] unexpected error on empty probe: {e}"),
    }
    substrate.teardown();
}
