//! Typed deployment-error taxonomy over substrate results.
//!
//! Raw stderr is not actionable feedback — the IaC error-taxonomy line of
//! work shows that *classified* failures are what a repair loop can learn
//! from. This module folds every [`ExecError`] and every failing
//! [`ExecOutcome`] produced by the Shell/Kube/Envoy backends into a
//! **closed** set of buckets ([`Bucket`]), each carrying structured
//! diagnostics ([`Diagnosis`]): the offending path, field or name pulled
//! out of the backend's own error phrasing.
//!
//! The classifier is **total** and **deterministic**: any string maps to
//! exactly one bucket (worst case [`Bucket::Unknown`], which keeps the
//! raw text in [`Diagnosis::raw`]), the same input always maps to the
//! same bucket, and nothing panics — properties pinned by the property
//! tests in `tests/proptest_taxonomy.rs` and by the cross-backend
//! conformance suite's taxonomy step.
//!
//! # Examples
//!
//! ```
//! use substrate::taxonomy::{classify_message, Bucket};
//!
//! let d = classify_message(
//!     "Pod in version \"v1\" cannot be handled as a Pod: strict decoding error: unknown field \"containerz\"",
//! );
//! assert_eq!(d.bucket, Bucket::SchemaViolation);
//! assert_eq!(d.subject.as_deref(), Some("containerz"));
//! assert!(!d.bucket.retryable());
//! ```

use crate::{ExecError, ExecOutcome};

/// The closed deployment-error taxonomy.
///
/// Buckets are ordered roughly by lifecycle stage: text-level
/// (`YamlSyntax`), admission-level (`SchemaViolation` through
/// `QuotaExceeded`), then probe-level (`ProbeTimeout`, `ProbeFailed`).
/// `Unknown` is the explicit escape hatch — its rate over the generated
/// scenario grid is pinned below a threshold by the property tests, so
/// classifier coverage cannot silently regress.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Bucket {
    /// The candidate is not parseable YAML at all.
    YamlSyntax,
    /// Parsed but violates the resource schema: unknown/missing/mistyped
    /// fields, missing `kind`/`apiVersion`, malformed structure.
    SchemaViolation,
    /// A workload selector does not match its pod template labels.
    SelectorMismatch,
    /// A referenced resource, namespace, kind or image does not exist.
    MissingResource,
    /// A field references a sibling object that was never declared
    /// (volume mount without a volume, route to an unknown cluster).
    BadReference,
    /// Admission refused the object because a quota is exhausted.
    QuotaExceeded,
    /// A readiness/condition wait ran out its deadline.
    ProbeTimeout,
    /// The functional probe ran and its assertion failed.
    ProbeFailed,
    /// Outside the closed taxonomy; the raw text rides along in
    /// [`Diagnosis::raw`].
    Unknown,
}

impl Bucket {
    /// Every bucket, in taxonomy order (stable across releases — counters
    /// and wire formats index into this).
    pub const ALL: [Bucket; 9] = [
        Bucket::YamlSyntax,
        Bucket::SchemaViolation,
        Bucket::SelectorMismatch,
        Bucket::MissingResource,
        Bucket::BadReference,
        Bucket::QuotaExceeded,
        Bucket::ProbeTimeout,
        Bucket::ProbeFailed,
        Bucket::Unknown,
    ];

    /// Stable kebab-case label (wire format, stats keys, repair feedback).
    pub fn label(self) -> &'static str {
        match self {
            Bucket::YamlSyntax => "yaml-syntax",
            Bucket::SchemaViolation => "schema-violation",
            Bucket::SelectorMismatch => "selector-mismatch",
            Bucket::MissingResource => "missing-resource",
            Bucket::BadReference => "bad-reference",
            Bucket::QuotaExceeded => "quota-exceeded",
            Bucket::ProbeTimeout => "probe-timeout",
            Bucket::ProbeFailed => "probe-failed",
            Bucket::Unknown => "unknown",
        }
    }

    /// Inverse of [`Bucket::label`].
    pub fn from_label(label: &str) -> Option<Bucket> {
        Bucket::ALL.into_iter().find(|b| b.label() == label)
    }

    /// Position in [`Bucket::ALL`] (for counter arrays).
    pub fn index(self) -> usize {
        Bucket::ALL
            .iter()
            .position(|b| *b == self)
            .expect("bucket in ALL")
    }

    /// Whether resubmitting the *same* candidate could plausibly change
    /// the verdict in a real deployment. Timeouts and quota pressure are
    /// transient; syntax, schema and reference faults are deterministic
    /// properties of the candidate. `Unknown` is conservatively
    /// retryable — we cannot prove the failure was the candidate's.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            Bucket::ProbeTimeout | Bucket::QuotaExceeded | Bucket::Unknown
        )
    }
}

impl std::fmt::Display for Bucket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// A classified failure: the bucket plus whatever structured context the
/// error text yielded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnosis {
    /// The taxonomy bucket.
    pub bucket: Bucket,
    /// Offending path, field or name when the error phrasing names one
    /// (e.g. the unknown field, the missing pod, the dangling cluster).
    pub subject: Option<String>,
    /// The raw line the classification was made from.
    pub raw: String,
}

impl Diagnosis {
    fn new(bucket: Bucket, subject: Option<&str>, raw: &str) -> Diagnosis {
        Diagnosis {
            bucket,
            subject: subject.map(str::to_owned),
            raw: raw.to_owned(),
        }
    }
}

/// First double-quoted substring of `text`.
fn quoted(text: &str) -> Option<&str> {
    let start = text.find('"')? + 1;
    let len = text[start..].find('"')?;
    Some(&text[start..start + len])
}

/// First single-quoted substring of `text` (envoy phrasing).
fn single_quoted(text: &str) -> Option<&str> {
    let start = text.find('\'')? + 1;
    let len = text[start..].find('\'')?;
    Some(&text[start..start + len])
}

/// The text after `marker`, trimmed to the first line.
fn after<'a>(text: &'a str, marker: &str) -> Option<&'a str> {
    let start = text.find(marker)? + marker.len();
    let rest = text[start..].trim();
    Some(rest.lines().next().unwrap_or(rest).trim())
}

/// The field path before `marker` (last whitespace-separated token of the
/// text preceding it), for `spec.foo: Required value` shapes.
fn path_before<'a>(text: &'a str, marker: &str) -> Option<&'a str> {
    let end = text.find(marker)?;
    let head = &text[..end];
    let token = head.rsplit([' ', '\n', '\t']).next()?;
    let token = token.trim_end_matches(':');
    (!token.is_empty()).then_some(token)
}

/// Classifies one error/transcript line into the taxonomy. Total: every
/// string maps to exactly one bucket; unmatched text lands in
/// [`Bucket::Unknown`] with the raw line preserved.
///
/// Pattern order is significant — earlier rules are more specific (the
/// selector-mismatch phrasing also contains `Invalid value`; the
/// volume-mount phrasing also contains `is invalid`), so the specific
/// bucket must win before the generic schema rule fires.
pub fn classify_message(msg: &str) -> Diagnosis {
    // 1. Text level: the candidate never parsed.
    if msg.contains("error parsing YAML")
        || msg.contains("not parseable YAML")
        || msg.contains("malformed yaml")
        || msg.contains("error parsing manifest")
    {
        return Diagnosis::new(Bucket::YamlSyntax, None, msg);
    }
    // 2. Selector vs template labels (contains "Invalid value" — must
    //    precede the schema rule).
    if msg.contains("`selector` does not match template `labels`") {
        return Diagnosis::new(Bucket::SelectorMismatch, quoted(msg), msg);
    }
    // 3. Quota admission.
    if msg.contains("exceeded quota") {
        let subject = after(msg, "exceeded quota:").map(|s| s.trim_end_matches(','));
        let subject = subject.map(|s| s.split(',').next().unwrap_or(s).trim());
        return Diagnosis::new(Bucket::QuotaExceeded, subject, msg);
    }
    // 4. Dangling intra-manifest references (contains "Not found"/"is
    //    invalid" — must precede the missing-resource and schema rules).
    if msg.contains("Not found: \"") {
        return Diagnosis::new(
            Bucket::BadReference,
            quoted(&msg[msg.find("Not found:").unwrap_or(0)..]),
            msg,
        );
    }
    if msg.contains("unknown cluster") {
        return Diagnosis::new(Bucket::BadReference, single_quoted(msg), msg);
    }
    // 5. Schema violations: strict decoding, validation, envoy structure.
    if msg.contains("strict decoding error") || msg.contains("cannot be handled as a") {
        let detail = msg
            .find("strict decoding error:")
            .map_or(msg, |i| &msg[i..]);
        return Diagnosis::new(Bucket::SchemaViolation, quoted(detail), msg);
    }
    if msg.contains("error validating data") {
        let subject = after(msg, "error validating data:")
            .map(|s| s.rsplit(' ').next().unwrap_or(s).trim_end_matches('.'));
        return Diagnosis::new(Bucket::SchemaViolation, subject, msg);
    }
    if msg.contains("Required value") || msg.contains("Invalid value") {
        let marker = if msg.contains("Required value") {
            ": Required value"
        } else {
            ": Invalid value"
        };
        return Diagnosis::new(Bucket::SchemaViolation, path_before(msg, marker), msg);
    }
    if msg.contains("missing static_resources")
        || msg.contains("missing socket_address")
        || msg.contains("missing address")
        || msg.contains("missing port_value")
        || msg.contains("route missing match")
        || msg.contains("missing name")
        || msg.contains("missing kind")
        || msg.contains("missing apiVersion")
        || msg.contains("no objects passed to apply")
    {
        return Diagnosis::new(Bucket::SchemaViolation, None, msg);
    }
    // 6. Deadline expiry.
    if msg.contains("timed out waiting for the condition")
        || msg.contains("Operation timed out")
        || msg.contains("deadline exceeded")
    {
        let subject = after(msg, "condition on ");
        return Diagnosis::new(Bucket::ProbeTimeout, subject, msg);
    }
    // 7. Missing resources, kinds, namespaces, images.
    if msg.contains("no matches for kind") {
        return Diagnosis::new(Bucket::MissingResource, quoted(msg), msg);
    }
    if msg.contains("NotFound")
        || msg.contains("not found")
        || msg.contains("ImagePullBackOff")
        || msg.contains("ErrImagePull")
    {
        return Diagnosis::new(Bucket::MissingResource, quoted(msg), msg);
    }
    Diagnosis::new(Bucket::Unknown, None, msg)
}

/// Classifies a typed [`ExecError`]. `InvalidInput` is by construction a
/// parse failure on every backend; `Rejected` and `Probe` messages go
/// through the shared line classifier.
pub fn classify_error(error: &ExecError) -> Diagnosis {
    match error {
        ExecError::InvalidInput(m) => Diagnosis::new(Bucket::YamlSyntax, None, m),
        ExecError::Rejected(m) => classify_message(m),
        ExecError::Probe(m) => {
            let d = classify_message(m);
            if d.bucket == Bucket::Unknown {
                // A probe program that could not run is an assertion-layer
                // fault, not an unclassifiable candidate fault.
                Diagnosis::new(Bucket::ProbeFailed, None, m)
            } else {
                d
            }
        }
    }
}

/// Classifies a failing [`ExecOutcome`] from its transcript; `None` for a
/// passing outcome. Every line is classified and the **most causal**
/// diagnosis wins — lowest [`Bucket::index`], i.e. deployment-stage
/// errors outrank probe-stage symptoms (an `ImagePullBackOff` line beats
/// the wait timeout it caused; ties go to the earliest line). Falls back
/// to [`Bucket::ProbeFailed`]: a transcript with no deployment-stage
/// error means the candidate deployed and the functional assertion
/// itself failed.
pub fn classify_outcome(outcome: &ExecOutcome) -> Option<Diagnosis> {
    if outcome.passed {
        return None;
    }
    let mut best: Option<Diagnosis> = None;
    for line in outcome.transcript.lines() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let d = classify_message(line);
        if d.bucket != Bucket::Unknown
            && best
                .as_ref()
                .is_none_or(|b| d.bucket.index() < b.bucket.index())
        {
            best = Some(d);
        }
    }
    if let Some(d) = best {
        return Some(d);
    }
    let subject = outcome
        .transcript
        .lines()
        .map(str::trim)
        .find(|l| l.contains("!=") || l.contains("FAILED") || l.starts_with("expect "));
    Some(Diagnosis::new(
        Bucket::ProbeFailed,
        subject,
        subject.unwrap_or(""),
    ))
}

/// Classifies a full execution result: `None` iff the candidate passed.
pub fn classify_result(result: &Result<ExecOutcome, ExecError>) -> Option<Diagnosis> {
    match result {
        Ok(outcome) => classify_outcome(outcome),
        Err(e) => Some(classify_error(e)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kube_error_shapes_classify() {
        let cases: &[(&str, Bucket, Option<&str>)] = &[
            (
                "error parsing YAML: unclosed flow sequence",
                Bucket::YamlSyntax,
                None,
            ),
            (
                "Pod in version \"v1\" cannot be handled as a Pod: strict decoding error: unknown field \"containerz\"",
                Bucket::SchemaViolation,
                Some("containerz"),
            ),
            (
                "The Deployment \"web\" is invalid: spec.template.metadata.labels: Invalid value: `selector` does not match template `labels`",
                Bucket::SelectorMismatch,
                Some("web"),
            ),
            (
                "pods \"two\" is forbidden: exceeded quota: team-quota, requested: pods=1, used: pods=1, limited: pods=1",
                Bucket::QuotaExceeded,
                Some("team-quota"),
            ),
            (
                "Pod \"p\" is invalid: spec.containers[0].volumeMounts[0].name: Not found: \"cfg\"",
                Bucket::BadReference,
                Some("cfg"),
            ),
            (
                "no matches for kind \"Podd\" in version \"v1\"",
                Bucket::MissingResource,
                Some("Podd"),
            ),
            ("namespaces \"dev\" not found", Bucket::MissingResource, Some("dev")),
            (
                "error: timed out waiting for the condition on pods/web",
                Bucket::ProbeTimeout,
                Some("pods/web"),
            ),
            (
                "Error from server (NotFound): pods \"web\" not found",
                Bucket::MissingResource,
                Some("web"),
            ),
            (
                "Service \"s\" is invalid: spec.ports: Required value",
                Bucket::SchemaViolation,
                Some("spec.ports"),
            ),
            ("error validating data: missing kind", Bucket::SchemaViolation, Some("kind")),
        ];
        for (msg, bucket, subject) in cases {
            let d = classify_message(msg);
            assert_eq!(d.bucket, *bucket, "{msg}");
            assert_eq!(d.subject.as_deref(), *subject, "{msg}");
            assert_eq!(d.raw, *msg);
        }
    }

    #[test]
    fn envoy_error_shapes_classify() {
        assert_eq!(
            classify_message("malformed yaml").bucket,
            Bucket::YamlSyntax
        );
        assert_eq!(
            classify_message("missing static_resources").bucket,
            Bucket::SchemaViolation
        );
        let d = classify_message("route: unknown cluster 'missing_cluster'");
        assert_eq!(d.bucket, Bucket::BadReference);
        assert_eq!(d.subject.as_deref(), Some("missing_cluster"));
        assert_eq!(
            classify_message("virtual host vh: route missing match").bucket,
            Bucket::SchemaViolation
        );
    }

    #[test]
    fn failing_transcript_falls_back_to_probe_failed() {
        let outcome = ExecOutcome {
            passed: false,
            transcript: "pod/web created\nexpect Pod/web .status.phase: Some(\"Pending\") != Some(\"Running\")\n".into(),
            simulated_ms: 10,
        };
        let d = classify_outcome(&outcome).unwrap();
        assert_eq!(d.bucket, Bucket::ProbeFailed);
        assert!(d.subject.unwrap().contains("!="));
        assert!(classify_outcome(&ExecOutcome::pass()).is_none());
    }

    #[test]
    fn exec_error_classification_and_retryability() {
        let d = classify_error(&ExecError::InvalidInput("anything at all".into()));
        assert_eq!(d.bucket, Bucket::YamlSyntax);
        let d = classify_error(&ExecError::Probe("empty assertion program".into()));
        assert_eq!(d.bucket, Bucket::ProbeFailed);
        assert!(Bucket::ProbeTimeout.retryable());
        assert!(Bucket::QuotaExceeded.retryable());
        assert!(Bucket::Unknown.retryable());
        assert!(!Bucket::SchemaViolation.retryable());
        assert!(!Bucket::ProbeFailed.retryable());
    }

    #[test]
    fn labels_roundtrip_and_index_is_stable() {
        for (i, b) in Bucket::ALL.into_iter().enumerate() {
            assert_eq!(b.index(), i);
            assert_eq!(Bucket::from_label(b.label()), Some(b));
            assert_eq!(b.to_string(), b.label());
        }
        assert_eq!(Bucket::from_label("nope"), None);
    }
}
