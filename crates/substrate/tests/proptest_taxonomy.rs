//! Property tests for the deployment-error taxonomy classifier: total,
//! deterministic, and structurally sound on arbitrary error strings.

use proptest::prelude::*;
use substrate::taxonomy::{classify_error, classify_message, classify_outcome, Bucket};
use substrate::{ExecError, ExecOutcome};

/// Arbitrary error-shaped text: real backend phrasings with randomized
/// names, plus fully random strings (including quotes, braces, unicode)
/// the classifier must still be total over.
fn arb_error_text() -> impl Strategy<Value = String> {
    prop_oneof![
        // Fully random — anything a future backend might emit.
        "[ -~]{0,100}",
        ".{0,40}",
        // Backend phrasings with randomized subjects.
        "[a-z]{1,10}".prop_map(|f| format!(
            "Pod in version \"v1\" cannot be handled as a Pod: strict decoding error: unknown field \"{f}\""
        )),
        "[a-z]{1,10}".prop_map(|n| format!("namespaces \"{n}\" not found")),
        "[a-z]{1,10}".prop_map(|n| format!(
            "The Deployment \"{n}\" is invalid: spec.template.metadata.labels: Invalid value: `selector` does not match template `labels`"
        )),
        "[a-z]{1,10}".prop_map(|n| format!(
            "pods \"{n}\" is forbidden: exceeded quota: {n}-quota, requested: pods=1, used: pods=1, limited: pods=1"
        )),
        "[a-z]{1,10}".prop_map(|n| format!("error: timed out waiting for the condition on pods/{n}")),
        "[a-z]{1,10}".prop_map(|n| format!("route: unknown cluster '{n}'")),
        "[a-z]{1,10}".prop_map(|n| format!("error parsing YAML: {n}")),
        Just(String::new()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totality + determinism: classification never panics, always lands
    /// in the closed bucket set, and the same input maps to the same
    /// diagnosis every time.
    #[test]
    fn classifier_is_total_and_deterministic(msg in arb_error_text()) {
        let first = classify_message(&msg);
        let second = classify_message(&msg);
        prop_assert_eq!(&first, &second);
        prop_assert!(Bucket::ALL.contains(&first.bucket));
        prop_assert_eq!(first.raw.as_str(), msg.as_str());
    }

    /// Every `ExecError` variant classifies without panicking, and the
    /// retryability shortcut agrees with the bucket's own answer.
    #[test]
    fn exec_errors_classify_and_retryable_agrees(msg in arb_error_text()) {
        for e in [
            ExecError::InvalidInput(msg.clone()),
            ExecError::Rejected(msg.clone()),
            ExecError::Probe(msg.clone()),
        ] {
            let d = classify_error(&e);
            prop_assert_eq!(e.retryable(), d.bucket.retryable());
            // InvalidInput is a parse failure by construction on every
            // backend — never retryable.
            if matches!(e, ExecError::InvalidInput(_)) {
                prop_assert_eq!(d.bucket, Bucket::YamlSyntax);
            }
            // Probe errors never land in Unknown: an unmatched probe
            // message is an assertion-layer fault.
            if matches!(e, ExecError::Probe(_)) {
                prop_assert_ne!(d.bucket, Bucket::Unknown);
            }
        }
    }

    /// Failing transcripts always classify (never `None`), passing ones
    /// never do, and multi-line transcripts are deterministic too.
    #[test]
    fn outcome_classification_tracks_passed(
        lines in prop::collection::vec(arb_error_text(), 0..6),
        passed in any::<bool>(),
    ) {
        let outcome = ExecOutcome {
            passed,
            transcript: lines.join("\n"),
            simulated_ms: 0,
        };
        let d = classify_outcome(&outcome);
        prop_assert_eq!(d.is_some(), !passed);
        if let Some(d) = d {
            // Transcript classification falls back to ProbeFailed, so a
            // failing outcome is never Unknown.
            prop_assert_ne!(d.bucket, Bucket::Unknown);
            prop_assert_eq!(Some(d), classify_outcome(&outcome));
        }
    }

    /// Label round-trip survives arbitrary junk: `from_label` only ever
    /// resolves the nine canonical labels.
    #[test]
    fn from_label_rejects_junk(s in "[ -~]{0,24}") {
        if let Some(b) = Bucket::from_label(&s) {
            prop_assert_eq!(b.label(), s.as_str());
        }
    }
}
