//! One conformance suite, three backends: the acceptance gate for the
//! `Substrate` lifecycle contract (apply-bad-YAML → typed error,
//! assert-pass, assert-fail-as-outcome, teardown idempotence,
//! hermeticity).

use substrate::conformance::{self, envoy_fixture, kube_fixture, shell_fixture};
use substrate::{EnvoySubstrate, ExecError, KubeSubstrate, ShellSubstrate, Substrate};

#[test]
fn shell_substrate_conforms() {
    conformance::run(&mut ShellSubstrate::new(), &shell_fixture());
}

#[test]
fn kube_substrate_conforms() {
    conformance::run(&mut KubeSubstrate::new(), &kube_fixture());
}

#[test]
fn envoy_substrate_conforms() {
    conformance::run(&mut EnvoySubstrate::new(), &envoy_fixture());
}

/// The same generated CloudEval problem exercises the shell backend end to
/// end through the trait object interface (the executor's usage pattern).
#[test]
fn dyn_substrate_runs_real_problems() {
    let backends: Vec<Box<dyn Substrate>> = vec![
        Box::new(ShellSubstrate::new()),
        Box::new(KubeSubstrate::new()),
        Box::new(EnvoySubstrate::new()),
    ];
    let names: Vec<&str> = backends.iter().map(|b| b.name()).collect();
    assert_eq!(names, ["minishell", "kubesim", "envoysim"]);
}

/// Every backend classifies its own garbage input as candidate fault.
#[test]
fn garbage_is_always_candidate_fault() {
    let garbage = "::: not yaml {{{\n  - [";
    for (err, name) in [
        (ShellSubstrate::new().execute(garbage, "echo hi"), "shell"),
        (
            KubeSubstrate::new().execute(garbage, "exists pod x"),
            "kube",
        ),
        (
            EnvoySubstrate::new().execute(garbage, "listeners 1"),
            "envoy",
        ),
    ] {
        match err {
            Err(e @ (ExecError::InvalidInput(_) | ExecError::Rejected(_))) => {
                assert!(e.is_candidate_fault(), "[{name}] {e}");
            }
            other => panic!("[{name}] expected candidate-fault error, got {other:?}"),
        }
    }
}
