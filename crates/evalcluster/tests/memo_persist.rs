//! Persist/load round-trip suite for the JSONL verdict store: verdicts
//! survive a save/load cycle byte-for-byte, counters restart cleanly, and
//! a crash-truncated trailing line never poisons the rest of the file.

use evalcluster::memo::{self, CachedVerdict, ScoreMemo};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A unique scratch path per test (the suite runs tests in parallel).
fn scratch(name: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "cloudeval-memo-{}-{name}-{seq}.jsonl",
        std::process::id()
    ))
}

fn sample_memo(n: u64) -> ScoreMemo {
    let memo = ScoreMemo::new();
    for i in 0..n {
        let key = ScoreMemo::key(&format!("kind: Pod # {i}\n"), "echo unit_test_passed");
        let passed = i % 3 != 0;
        memo.insert(
            key,
            CachedVerdict {
                passed,
                simulated_ms: 10 + i,
                // Failures carry a classified diagnosis, like the live
                // executor produces; passes carry none.
                diagnosis: (!passed).then(|| {
                    substrate::taxonomy::classify_message(&format!(
                        "Error from server (NotFound): pods \"web-{i}\" not found"
                    ))
                }),
            },
        );
    }
    memo
}

#[test]
fn save_load_round_trip_preserves_every_verdict() {
    let path = scratch("roundtrip");
    let memo = sample_memo(25);
    let written = memo::save(&memo, &path).expect("save");
    assert_eq!(written, 25);
    let loaded = memo::load(&path).expect("load");
    assert_eq!(loaded.snapshot(), memo.snapshot());
    std::fs::remove_file(&path).ok();
}

#[test]
fn reloaded_memo_starts_with_zero_counters_then_counts() {
    let path = scratch("counters");
    let memo = sample_memo(4);
    let known = ScoreMemo::key("kind: Pod # 1\n", "echo unit_test_passed");
    // Generate traffic on the original so the save happens on a memo with
    // non-zero counters — persistence must not carry them.
    assert!(memo.get(known).is_some());
    assert!(memo.get(ScoreMemo::key("nope", "nope")).is_none());
    memo::save(&memo, &path).expect("save");

    let loaded = memo::load(&path).expect("load");
    assert_eq!((loaded.hits(), loaded.misses()), (0, 0));
    assert_eq!(loaded.len(), 4);
    // A preloaded key counts as a hit, an unknown one as a miss.
    let verdict = loaded.get(known).expect("persisted verdict");
    assert_eq!(verdict, CachedVerdict::bare(true, 11));
    assert!(loaded.get(ScoreMemo::key("other", "other")).is_none());
    assert_eq!((loaded.hits(), loaded.misses()), (1, 1));
    std::fs::remove_file(&path).ok();
}

#[test]
fn truncated_trailing_line_is_skipped_not_fatal() {
    let path = scratch("truncated");
    let memo = sample_memo(8);
    memo::save(&memo, &path).expect("save");
    // Simulate a crash mid-append: chop the file in the middle of its
    // last line.
    let text = std::fs::read_to_string(&path).expect("read back");
    let cut = text.trim_end().rfind('\n').expect("multi-line file") + 10;
    std::fs::write(&path, &text[..cut]).expect("truncate");

    let loaded = memo::load(&path).expect("load survives truncation");
    assert_eq!(loaded.len(), 7);
    // Every surviving verdict matches the original.
    for (key, verdict) in loaded.snapshot() {
        assert_eq!(memo.get(key), Some(verdict), "verdict diverged for {key:?}");
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn garbage_lines_are_skipped() {
    let path = scratch("garbage");
    let memo = sample_memo(3);
    memo::save(&memo, &path).expect("save");
    let mut text = std::fs::read_to_string(&path).expect("read back");
    text.insert_str(0, "not json at all {{{\n\n");
    text.push_str("{\"candidate\":\"zz\",\"script\":\"00\",\"passed\":true,\"ms\":1}\n");
    std::fs::write(&path, text).expect("rewrite");
    let loaded = memo::load(&path).expect("load");
    assert_eq!(loaded.len(), 3);
    std::fs::remove_file(&path).ok();
}

#[test]
fn load_into_merges_and_save_is_deterministic() {
    let path_a = scratch("merge-a");
    let path_b = scratch("merge-b");
    let a = sample_memo(5);
    let b = ScoreMemo::new();
    let extra = ScoreMemo::key("kind: Service\n", "echo unit_test_passed");
    b.insert(extra, CachedVerdict::bare(true, 99));
    memo::save(&a, &path_a).expect("save a");
    let merged = memo::load_into(&b, &path_a).expect("merge");
    assert_eq!(merged, 5);
    assert_eq!(b.len(), 6);
    assert!(b.get(extra).is_some(), "pre-existing verdict survived");

    // Saving the same contents twice produces identical bytes (snapshot
    // order is sorted, not hash-map iteration order).
    memo::save(&b, &path_b).expect("save b once");
    let first = std::fs::read_to_string(&path_b).expect("read");
    memo::save(&b, &path_b).expect("save b twice");
    let second = std::fs::read_to_string(&path_b).expect("read");
    assert_eq!(first, second);
    std::fs::remove_file(&path_a).ok();
    std::fs::remove_file(&path_b).ok();
}

#[test]
fn clear_resets_store_and_counters() {
    let memo = sample_memo(3);
    let key = ScoreMemo::key("kind: Pod # 0\n", "echo unit_test_passed");
    assert!(memo.get(key).is_some());
    memo.clear();
    assert!(memo.is_empty());
    assert!(memo.get(key).is_none());
    assert_eq!((memo.hits(), memo.misses()), (0, 1));
}
