//! The extended scenario families end to end through the substrate
//! engine: every new workload (CronJob, HPA v2, multi-path Ingress,
//! NetworkPolicy rules, ConfigMap volumes) scores correctly under the
//! sharded scheduler, and duplicated candidates hit the memo cache.

use cedataset::Dataset;
use evalcluster::executor::{run_jobs, UnitTestJob};

fn scenario_jobs() -> Vec<UnitTestJob> {
    let ds = Dataset::generate_extended(30);
    ds.problems()
        .iter()
        .filter(|p| p.id.starts_with("scn-"))
        .map(|p| {
            UnitTestJob::prepared(
                p.id.clone(),
                p.unit_test.clone(),
                yamlkit::PreparedDoc::shared(p.clean_reference()),
            )
        })
        .collect()
}

#[test]
fn scenario_references_pass_through_the_engine() {
    let jobs = scenario_jobs();
    assert_eq!(jobs.len(), 30);
    let report = run_jobs(&jobs, 4);
    let failed: Vec<&str> = report
        .results
        .iter()
        .filter(|r| !r.passed)
        .map(|r| r.problem_id.as_str())
        .collect();
    assert!(failed.is_empty(), "scenarios failed: {failed:?}");
    assert_eq!(report.executed, 30);
}

#[test]
fn duplicated_scenario_candidates_score_once() {
    // Simulate a pass@k sweep where every sample happens to be identical:
    // 3 samples per scenario, one execution each.
    let mut jobs = Vec::new();
    for job in scenario_jobs() {
        for sample in 0..3 {
            let mut dup = job.clone();
            dup.problem_id = format!("{}#{sample}", job.problem_id);
            jobs.push(dup);
        }
    }
    let report = run_jobs(&jobs, 4);
    assert_eq!(report.results.len(), 90);
    assert_eq!(report.executed, 30);
    assert_eq!(report.cache_hits, 60);
    assert_eq!(report.passed(), 90);
}
