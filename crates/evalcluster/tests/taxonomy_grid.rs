//! The taxonomy's coverage contract over the benchmark's own failure
//! surface: every corrupted candidate in the generated grid — each
//! problem × each Figure 7 corruption class — that fails
//! its unit test must classify into a *named* bucket. The `unknown`
//! bucket is the classifier's escape hatch, and this suite pins its rate
//! near zero so new substrate error phrasings cannot silently regress
//! feedback quality (an `unknown` diagnosis repairs at the floor rate).

use cedataset::Dataset;
use evalcluster::executor::{run_jobs_cached, UnitTestJob};
use evalcluster::memo::ScoreMemo;
use llmsim::corrupt::{answer_seed, realize};
use llmsim::AnswerCategory;
use substrate::taxonomy::Bucket;

/// Most `unknown` diagnoses tolerated among failing grid candidates.
const MAX_UNKNOWN_RATE: f64 = 0.02;

#[test]
fn generated_failure_grid_classifies_with_bounded_unknown_rate() {
    let dataset = Dataset::generate();
    let corrupt = [
        AnswerCategory::EmptyOrTiny,
        AnswerCategory::NoKind,
        AnswerCategory::IncompleteYaml,
        AnswerCategory::WrongKind,
        AnswerCategory::FailsTest,
    ];
    let mut jobs = Vec::new();
    for problem in dataset.problems() {
        for category in corrupt {
            let seed = answer_seed("grid", &problem.id, 0, 0, 0);
            let candidate = realize(problem, category, seed, 0.0);
            jobs.push(UnitTestJob::new(
                format!("{}#{category:?}", problem.id),
                problem.unit_test.clone(),
                candidate,
            ));
        }
        // Reference answers ride along: a passing outcome must carry no
        // diagnosis at all.
        jobs.push(UnitTestJob::new(
            format!("{}#Correct", problem.id),
            problem.unit_test.clone(),
            realize(problem, AnswerCategory::Correct, 1, 0.0),
        ));
    }
    let report = run_jobs_cached(&jobs, 8, &ScoreMemo::new());

    let mut failures = 0usize;
    let mut unknown = 0usize;
    let mut by_bucket = [0usize; Bucket::ALL.len()];
    for (job, result) in jobs.iter().zip(&report.results) {
        if result.passed {
            assert!(
                result.diagnosis.is_none(),
                "{}: passing outcome carries a diagnosis",
                job.problem_id
            );
            continue;
        }
        let diagnosis = result
            .diagnosis
            .as_ref()
            .unwrap_or_else(|| panic!("{}: failing outcome lacks a diagnosis", job.problem_id));
        failures += 1;
        by_bucket[diagnosis.bucket.index()] += 1;
        if diagnosis.bucket == Bucket::Unknown {
            unknown += 1;
        }
    }
    assert!(
        failures > jobs.len() / 2,
        "grid too easy: only {failures} failures in {} jobs",
        jobs.len()
    );
    let rate = unknown as f64 / failures as f64;
    let histogram: Vec<(&str, usize)> = Bucket::ALL
        .into_iter()
        .zip(by_bucket)
        .filter(|&(_, n)| n > 0)
        .map(|(b, n)| (b.label(), n))
        .collect();
    eprintln!("failures={failures} unknown={unknown} rate={rate:.4} histogram={histogram:?}");
    assert!(
        rate <= MAX_UNKNOWN_RATE,
        "unknown rate {rate:.4} ({unknown}/{failures}) exceeds {MAX_UNKNOWN_RATE}; \
         histogram: {histogram:?}"
    );
    // The grid exercises a healthy spread of the taxonomy, not one bucket.
    assert!(
        histogram.len() >= 5,
        "grid failures collapsed into too few buckets: {histogram:?}"
    );
}
