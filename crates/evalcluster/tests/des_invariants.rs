//! Grid-sweep invariants for the discrete-event cluster simulation.
//!
//! True invariants: the shared cache never hurts (time or bytes), the
//! cached curve is monotone in workers (its uplink bytes are fixed at one
//! pull per image), and cached internet traffic never grows with workers.
//! The *uncached* curve is deliberately NOT asserted monotone at high
//! worker counts: duplicating pulls across more workers costs real uplink
//! bytes, and on pull-heavy workloads the 100 Mbps link saturates — which
//! is exactly the phenomenon the paper's shared cache exists to fix.

#[test]
fn des_invariants_hold_over_random_workloads() {
    let jobs: Vec<evalcluster::SimJob> = (0..200)
        .map(|i| evalcluster::SimJob {
            images: vec![(format!("img{}", i % 7), 50.0 + (i % 5) as f64 * 30.0)],
            test_runtime_s: 20.0 + (i % 9) as f64,
        })
        .collect();
    let mut prev_yes = f64::INFINITY;
    let mut prev_yes_gib = f64::INFINITY;
    for workers in [1usize, 2, 4, 8, 16, 32, 64] {
        let no = evalcluster::simulate(
            &jobs,
            &evalcluster::SimConfig {
                workers,
                shared_cache: false,
                ..Default::default()
            },
        );
        let yes = evalcluster::simulate(
            &jobs,
            &evalcluster::SimConfig {
                workers,
                shared_cache: true,
                ..Default::default()
            },
        );
        assert!(
            yes.total_hours <= prev_yes + 1e-9,
            "w={workers}: cached curve not monotone"
        );
        assert!(
            yes.total_hours <= no.total_hours + 1e-9,
            "w={workers}: cache hurt wall time"
        );
        assert!(
            yes.internet_gib <= no.internet_gib + 1e-9,
            "w={workers}: cache hurt bytes"
        );
        assert!(
            yes.internet_gib <= prev_yes_gib + 1e-9,
            "w={workers}: cached bytes grew"
        );
        // With the cache, exactly one internet pull per distinct image.
        assert_eq!(yes.internet_pulls, 7, "w={workers}");
        prev_yes = yes.total_hours;
        prev_yes_gib = yes.internet_gib;
    }
}
