//! The streaming execution engine against the batch engines: verdict
//! agreement under mixed pass/fail workloads, in-flight deduplication,
//! skewed arrival pacing, and skewed per-job durations on the sharded
//! scheduler it shares result-ordering semantics with.

use std::sync::mpsc::sync_channel;
use std::sync::Mutex;
use std::time::Duration;

use evalcluster::executor::{run_jobs, run_jobs_stream, JobResult, UnitTestJob};
use evalcluster::memo::ScoreMemo;
use evalcluster::shard::run_sharded;

fn sample_jobs(n: usize) -> Vec<UnitTestJob> {
    let script = "kubectl apply -f labeled_code.yaml\nkubectl wait --for=condition=Ready pod -l app=t --timeout=60s && echo unit_test_passed";
    (0..n)
        .map(|i| {
            // Alternate text and parse-once candidates so the stream
            // engine is exercised on both representations.
            let yaml = format!(
                "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web-{i}\n  labels:\n    app: t\nspec:\n  containers:\n  - name: c\n    image: nginx\n"
            );
            if i % 2 == 0 {
                UnitTestJob::new(format!("p{i}"), script, yaml)
            } else {
                UnitTestJob::prepared(format!("p{i}"), script, yamlkit::PreparedDoc::shared(yaml))
            }
        })
        .collect()
}

/// Drives `jobs` through the streaming engine, optionally sleeping
/// `feed_gap` between sends to model a skewed/slow producer, and returns
/// the results in record-index order plus the stream stats.
fn stream_all(
    jobs: &[UnitTestJob],
    workers: usize,
    memo: &ScoreMemo,
    feed_gap: Option<Duration>,
) -> (Vec<JobResult>, evalcluster::StreamStats) {
    let slots: Mutex<Vec<Option<JobResult>>> = Mutex::new(vec![None; jobs.len()]);
    let (tx, rx) = sync_channel::<(usize, UnitTestJob)>(4);
    let stats = std::thread::scope(|scope| {
        scope.spawn(move || {
            for (i, job) in jobs.iter().cloned().enumerate() {
                if let Some(gap) = feed_gap {
                    std::thread::sleep(gap);
                }
                tx.send((i, job)).expect("stream consumer hung up early");
            }
        });
        run_jobs_stream(rx, workers, memo, |i, result| {
            let mut slots = slots.lock().unwrap();
            assert!(slots[i].is_none(), "record {i} answered twice");
            slots[i] = Some(result);
        })
    });
    let results = slots
        .into_inner()
        .unwrap()
        .into_iter()
        .map(|r| r.expect("stream dropped a record"))
        .collect();
    (results, stats)
}

#[test]
fn stream_agrees_with_batch_engine_on_mixed_verdicts() {
    let mut jobs = sample_jobs(18);
    jobs[3] = UnitTestJob::new(
        "p3",
        jobs[3].script.clone(),
        "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: x\n",
    );
    jobs[11] = UnitTestJob::prepared(
        "p11",
        jobs[11].script.clone(),
        yamlkit::PreparedDoc::shared("not yaml {{{"),
    );
    let batch = run_jobs(&jobs, 4);
    let (streamed, stats) = stream_all(&jobs, 4, &ScoreMemo::new(), None);
    assert_eq!(streamed.len(), batch.results.len());
    for (s, b) in streamed.iter().zip(&batch.results) {
        assert_eq!(s.problem_id, b.problem_id);
        assert_eq!(s.passed, b.passed, "{}", s.problem_id);
        assert_eq!(s.simulated_ms, b.simulated_ms, "{}", s.problem_id);
    }
    assert_eq!(stats.executed, 18);
    assert_eq!(stats.cache_hits, 0);
}

#[test]
fn stream_deduplicates_identical_candidates() {
    // 30 records, only 3 distinct (candidate, script) keys: each key must
    // execute exactly once whether its duplicates arrive while it is in
    // flight or after it landed in the memo.
    let distinct = sample_jobs(3);
    let jobs: Vec<UnitTestJob> = (0..30)
        .map(|i| {
            let mut dup = distinct[i % 3].clone();
            dup.problem_id = format!("dup{i}");
            dup
        })
        .collect();
    let memo = ScoreMemo::new();
    let (results, stats) = stream_all(&jobs, 4, &memo, None);
    assert_eq!(stats.executed, 3);
    assert_eq!(stats.cache_hits, 27);
    assert!(results.iter().all(|r| r.passed));
    assert_eq!(memo.len(), 3);
    // A second streamed run over the same memo executes nothing.
    let (_, warm) = stream_all(&jobs, 4, &memo, None);
    assert_eq!(warm.executed, 0);
    assert_eq!(warm.cache_hits, 30);
}

#[test]
fn stream_survives_skewed_arrival_pacing() {
    // A slow producer (1 ms between sends) must not wedge or starve the
    // consumer pool: every record is still answered exactly once, with
    // verdicts identical to an instantaneous feed.
    let jobs = sample_jobs(24);
    let (paced, _) = stream_all(&jobs, 4, &ScoreMemo::new(), Some(Duration::from_millis(1)));
    let (instant, _) = stream_all(&jobs, 4, &ScoreMemo::new(), None);
    for (a, b) in paced.iter().zip(&instant) {
        assert_eq!(a.problem_id, b.problem_id);
        assert_eq!(a.passed, b.passed);
        assert_eq!(a.simulated_ms, b.simulated_ms);
    }
}

#[test]
fn sharded_scheduler_keeps_order_under_heavily_skewed_durations() {
    // Deliberately adversarial duration skew: the first shard's jobs are
    // ~20x slower than the rest. Work stealing must rebalance, and the
    // result vector must still come back in exact job-index order.
    let (results, stats) = run_sharded(96, 8, |worker, idx| {
        let millis = if idx < 12 { 4 } else { 0 };
        std::thread::sleep(Duration::from_millis(millis));
        (worker, idx)
    });
    assert_eq!(results.len(), 96);
    for (i, (_, idx)) in results.iter().enumerate() {
        assert_eq!(*idx, i, "result {i} out of order");
    }
    assert!(
        stats.stolen > 0,
        "no steals despite a 20x skewed shard: {stats:?}"
    );
    // The slow jobs must not all have been served by their home worker.
    let slow_workers: std::collections::HashSet<usize> =
        results[..12].iter().map(|(w, _)| *w).collect();
    assert!(
        slow_workers.len() >= 2,
        "skewed shard was not rebalanced: {slow_workers:?}"
    );
}
