//! # evalcluster
//!
//! The CloudEval-YAML scalable evaluation platform (§3.3–§3.4):
//!
//! * [`miniredis`] — the master's Redis-like coordination store (job
//!   contexts, inputs, outputs; blocking work queues);
//! * [`executor`] — the parallel unit-test engine: jobs run hermetically
//!   through the [`substrate::Substrate`] trait on a sharded
//!   work-stealing scheduler with content-addressed score memoization
//!   (the seed master/worker queue engine survives as
//!   [`executor::run_jobs_queue`]; the streaming stage-graph pipeline
//!   consumes jobs as they arrive via [`executor::run_jobs_stream`]);
//! * [`shard`] — the per-shard queues + work stealing scheduler;
//! * [`memo`] — the `(candidate, script)` content-addressed verdict cache;
//! * [`des`] — a discrete-event simulation of the cloud deployment
//!   (N× 4-core VMs, a shared 100 Mbps uplink, the Figure 4 pull-through
//!   Docker registry cache) that regenerates Figure 5;
//! * [`cost`] — the Table 3 running-cost model.
//!
//! # Examples
//!
//! ```
//! use evalcluster::executor::{run_jobs, UnitTestJob};
//!
//! let job = UnitTestJob::prepared(
//!     "demo",
//!     "kubectl apply -f labeled_code.yaml && echo unit_test_passed",
//!     yamlkit::PreparedDoc::shared(
//!         "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\nspec:\n  containers:\n  - name: c\n    image: nginx\n",
//!     ),
//! );
//! let report = run_jobs(&[job], 2);
//! assert_eq!(report.passed(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod des;
pub mod executor;
pub mod memo;
pub mod miniredis;
pub mod shard;

pub use cost::{evaluation_cost, inference_cost, table3, CloudOption, InferenceOption};
pub use des::{dataset_workload, figure5, simulate, SimConfig, SimJob, SimResult};
pub use executor::{
    execute_uncached, execute_uncached_text, run_jobs, run_jobs_cached, run_jobs_queue,
    run_jobs_stream, JobResult, RunReport, StreamStats, UnitTestJob,
};
pub use memo::{CachedVerdict, ScoreMemo};
pub use miniredis::MiniRedis;
