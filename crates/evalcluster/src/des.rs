//! Discrete-event simulation of the cloud evaluation platform: the
//! experiment behind Figure 5 ("Evaluation time over all 1011 problems")
//! and the shared-Docker-image-cache architecture of Figure 4.
//!
//! Model:
//! * `W` workers (4-core/8 GB VMs) process unit-test jobs FIFO;
//! * each job needs a set of container images; a worker pulls an image
//!   only if it is not in its local Docker cache;
//! * all internet pulls share one uplink (the paper provisions 100 Mbps)
//!   modeled as a serialized link with busy-until semantics;
//! * with the shared pull-through cache (Figure 4), the first pull of an
//!   image goes to the internet and later pulls by *other* workers hit the
//!   master's registry over the fast LAN instead.

use std::collections::HashSet;

/// A unit-test job for the simulator.
#[derive(Debug, Clone, PartialEq)]
pub struct SimJob {
    /// Images the test needs: (reference, size in MiB).
    pub images: Vec<(String, f64)>,
    /// Pure test runtime in seconds (apply, waits, probes, cleanup),
    /// excluding pulls.
    pub test_runtime_s: f64,
}

/// Simulation parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Worker count.
    pub workers: usize,
    /// Shared pull-through registry cache enabled?
    pub shared_cache: bool,
    /// Internet uplink for the whole cluster, in Mbps (paper: 100).
    pub internet_mbps: f64,
    /// Master-to-worker LAN bandwidth, in Mbps.
    pub lan_mbps: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            workers: 64,
            shared_cache: true,
            internet_mbps: 100.0,
            lan_mbps: 2_000.0,
        }
    }
}

/// Simulation outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Makespan in hours.
    pub total_hours: f64,
    /// Bytes fetched over the internet, in GiB.
    pub internet_gib: f64,
    /// Pulls served by the shared cache.
    pub cache_hits: usize,
    /// Pulls that had to go to the internet.
    pub internet_pulls: usize,
}

/// Runs the discrete-event simulation.
pub fn simulate(jobs: &[SimJob], config: &SimConfig) -> SimResult {
    let workers = config.workers.max(1);
    // Per-worker availability time and local image cache.
    let mut worker_free = vec![0.0f64; workers];
    let mut local_cache: Vec<HashSet<String>> = vec![HashSet::new(); workers];
    // Master's shared registry cache contents.
    let mut shared: HashSet<String> = HashSet::new();
    // Uplink contention: concurrent pulls share the 100 Mbps link. Without
    // the shared cache every worker re-pulls every image, pull phases
    // overlap heavily, and each transfer sees only a fair share of the
    // link. With the pull-through cache each image crosses the uplink once
    // — a handful of early transfers that essentially never contend.
    let est_concurrent_pullers = if config.shared_cache {
        1.0
    } else {
        (workers as f64 / 4.0).clamp(1.0, 16.0)
    };
    let internet_share_mbps = config.internet_mbps / est_concurrent_pullers;
    let mut internet_bytes_mib = 0.0;
    let mut cache_hits = 0usize;
    let mut internet_pulls = 0usize;

    for job in jobs {
        // FIFO dispatch to the earliest-free worker.
        let (w, _) = worker_free
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("no NaN times"))
            .expect("at least one worker");
        let mut t = worker_free[w];
        for (image, size_mib) in &job.images {
            if local_cache[w].contains(image) {
                continue;
            }
            let from_shared = config.shared_cache && shared.contains(image);
            if from_shared {
                // LAN transfer from the master's registry; no uplink use.
                t += size_mib * 8.0 / config.lan_mbps;
                cache_hits += 1;
            } else {
                t += size_mib * 8.0 / internet_share_mbps;
                internet_bytes_mib += size_mib;
                internet_pulls += 1;
                if config.shared_cache {
                    shared.insert(image.clone());
                }
            }
            local_cache[w].insert(image.clone());
        }
        t += job.test_runtime_s;
        worker_free[w] = t;
    }
    let makespan = worker_free.iter().cloned().fold(0.0, f64::max);
    SimResult {
        total_hours: makespan / 3600.0,
        internet_gib: internet_bytes_mib / 1024.0,
        cache_hits,
        internet_pulls,
    }
}

/// Builds the 1011-job workload from the generated dataset: image sets are
/// extracted from each problem's reference solution, and test runtime uses
/// a fixed per-test overhead (environment setup, polling, cleanup) plus a
/// per-line apply cost.
pub fn dataset_workload(per_test_overhead_s: f64) -> Vec<SimJob> {
    let dataset = cedataset::Dataset::generate();
    let mut jobs = Vec::with_capacity(1011);
    for (problem, _variant) in dataset.expanded() {
        let mut images = Vec::new();
        let reference = problem.clean_reference();
        for line in reference.lines() {
            let trimmed = line.trim();
            if let Some(image_ref) = trimmed.strip_prefix("image: ") {
                let image_ref = image_ref.trim().trim_matches('"');
                if let Some(info) = kubesim::images::lookup(image_ref) {
                    images.push((image_ref.to_owned(), info.size_mib));
                }
            }
        }
        // Envoy tests run the proxy container.
        if reference.contains("static_resources") {
            images.push(("envoyproxy/envoy".to_owned(), 120.0));
        }
        let runtime = per_test_overhead_s + reference.lines().count() as f64 * 0.25;
        jobs.push(SimJob {
            images,
            test_runtime_s: runtime,
        });
    }
    jobs
}

/// Reproduces Figure 5: evaluation time for worker counts {1, 4, 16, 64},
/// with and without the shared image cache. Returns rows of
/// `(workers, hours_without_cache, hours_with_cache)`.
pub fn figure5(per_test_overhead_s: f64) -> Vec<(usize, f64, f64)> {
    let jobs = dataset_workload(per_test_overhead_s);
    [1usize, 4, 16, 64]
        .into_iter()
        .map(|workers| {
            let without = simulate(
                &jobs,
                &SimConfig {
                    workers,
                    shared_cache: false,
                    ..SimConfig::default()
                },
            );
            let with = simulate(
                &jobs,
                &SimConfig {
                    workers,
                    shared_cache: true,
                    ..SimConfig::default()
                },
            );
            (workers, without.total_hours, with.total_hours)
        })
        .collect()
}

/// The paper's default per-test overhead: tens of seconds per problem
/// ("it usually takes several minutes to create the cluster, pull
/// corresponding images, initialize and apply configurations").
pub const DEFAULT_OVERHEAD_S: f64 = 28.0;

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_jobs() -> Vec<SimJob> {
        (0..100)
            .map(|i| SimJob {
                images: vec![(format!("img{}", i % 5), 100.0)],
                test_runtime_s: 10.0,
            })
            .collect()
    }

    #[test]
    fn more_workers_is_faster() {
        let jobs = tiny_jobs();
        let t1 = simulate(
            &jobs,
            &SimConfig {
                workers: 1,
                ..SimConfig::default()
            },
        )
        .total_hours;
        let t4 = simulate(
            &jobs,
            &SimConfig {
                workers: 4,
                ..SimConfig::default()
            },
        )
        .total_hours;
        let t16 = simulate(
            &jobs,
            &SimConfig {
                workers: 16,
                ..SimConfig::default()
            },
        )
        .total_hours;
        assert!(t1 > t4);
        assert!(t4 > t16);
    }

    #[test]
    fn cache_reduces_internet_traffic() {
        let jobs = tiny_jobs();
        let with = simulate(
            &jobs,
            &SimConfig {
                workers: 16,
                shared_cache: true,
                ..SimConfig::default()
            },
        );
        let without = simulate(
            &jobs,
            &SimConfig {
                workers: 16,
                shared_cache: false,
                ..SimConfig::default()
            },
        );
        assert!(with.internet_gib < without.internet_gib);
        assert!(with.cache_hits > 0);
        assert_eq!(without.cache_hits, 0);
        // 5 distinct images: exactly 5 internet pulls with the cache.
        assert_eq!(with.internet_pulls, 5);
    }

    #[test]
    fn single_worker_cache_is_nearly_irrelevant() {
        // A single worker's local Docker cache already deduplicates pulls;
        // the shared cache adds almost nothing (Figure 5's 10.4 vs 10.3).
        let jobs = tiny_jobs();
        let with = simulate(
            &jobs,
            &SimConfig {
                workers: 1,
                shared_cache: true,
                ..SimConfig::default()
            },
        );
        let without = simulate(
            &jobs,
            &SimConfig {
                workers: 1,
                shared_cache: false,
                ..SimConfig::default()
            },
        );
        assert!((with.total_hours - without.total_hours).abs() < 1e-9);
    }

    #[test]
    fn figure5_shape_matches_paper() {
        let rows = figure5(DEFAULT_OVERHEAD_S);
        assert_eq!(rows.len(), 4);
        let (_, t1_no, t1_yes) = rows[0];
        let (_, t64_no, t64_yes) = rows[3];
        // Single machine takes ~10 hours (paper: 10.4 / 10.3).
        assert!((7.0..14.0).contains(&t1_no), "t1 = {t1_no:.2}h");
        // 64 workers with cache finish in well under an hour (paper: 0.50).
        assert!(t64_yes < 1.0, "t64 cached = {t64_yes:.2}h");
        // Overall speedup is >= 13x (paper: >20x).
        assert!(t1_no / t64_yes > 13.0, "speedup {:.1}", t1_no / t64_yes);
        // Caching matters much more at high worker counts.
        let gain64 = t64_no / t64_yes;
        let gain1 = t1_no / t1_yes;
        assert!(gain64 > gain1, "gain64 {gain64:.2} <= gain1 {gain1:.2}");
        assert!(gain64 > 1.25, "cache gain at 64 workers only {gain64:.2}");
        // Monotone decrease in workers, both curves.
        for pair in rows.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
            assert!(pair[0].2 >= pair[1].2);
        }
    }

    #[test]
    fn workload_has_1011_jobs_with_images() {
        let jobs = dataset_workload(DEFAULT_OVERHEAD_S);
        assert_eq!(jobs.len(), 1011);
        // Many `others` problems (RBAC, ConfigMaps, quotas...) legitimately
        // pull nothing; the majority of the workload still does.
        let with_images = jobs.iter().filter(|j| !j.images.is_empty()).count();
        assert!(with_images > 550, "only {with_images} jobs pull images");
    }
}
