//! Sharded work-stealing scheduler for unit-test execution.
//!
//! The seed executor funnelled every job through one global blocking queue
//! (the §3.3-faithful Redis `BLPOP` master/worker pattern, kept as
//! [`run_jobs_queue`](crate::executor::run_jobs_queue)). That is the right
//! model for a distributed cluster but leaves in-process throughput on the
//! table: one hot mutex + condvar, and a 20 ms parking timeout every
//! worker pays on queue exhaustion.
//!
//! This scheduler instead splits the job list into `workers` contiguous
//! shards, one lock per shard. Each worker drains its own shard from the
//! front with an uncontended lock, and when it runs dry it *steals* from
//! the back of the fullest remaining shard — so stragglers (a shard of
//! slow Envoy problems, say) get helped instead of serializing the run.
//! Results are written back by job index, which makes output ordering
//! deterministic regardless of interleaving.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Per-shard job-index queues with work stealing.
pub struct ShardedQueue {
    shards: Vec<Mutex<VecDeque<usize>>>,
    stolen: AtomicUsize,
    // Per-victim-shard steal counters in the global obs registry,
    // resolved at construction so the pop path records lock-free.
    steal_series: Vec<obs::Counter>,
}

impl ShardedQueue {
    /// Distributes `jobs` indices over `shards` contiguous shards.
    pub fn new(jobs: usize, shards: usize) -> ShardedQueue {
        let shards = shards.max(1);
        let mut queues: Vec<VecDeque<usize>> = (0..shards).map(|_| VecDeque::new()).collect();
        // Contiguous blocks keep each worker's jobs cache-friendly and the
        // assignment deterministic.
        let base = jobs / shards;
        let extra = jobs % shards;
        let mut next = 0usize;
        for (s, queue) in queues.iter_mut().enumerate() {
            let take = base + usize::from(s < extra);
            queue.extend(next..next + take);
            next += take;
        }
        let steal_series = (0..shards)
            .map(|s| {
                obs::global().counter(
                    "shard_steals_total",
                    &[("shard", &s.to_string())],
                    "jobs stolen from this shard by other workers",
                )
            })
            .collect();
        ShardedQueue {
            shards: queues.into_iter().map(Mutex::new).collect(),
            stolen: AtomicUsize::new(0),
            steal_series,
        }
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Jobs stolen across shards so far.
    pub fn stolen(&self) -> usize {
        self.stolen.load(Ordering::Relaxed)
    }

    /// Pops the next job for worker `home`: front of the home shard, or a
    /// steal from the back of the fullest other shard. `None` means every
    /// shard is empty — with a static workload that is a terminal state,
    /// so workers exit instead of parking.
    pub fn pop(&self, home: usize) -> Option<usize> {
        let home = home % self.shards.len();
        if let Some(idx) = self.shards[home]
            .lock()
            .expect("shard poisoned")
            .pop_front()
        {
            return Some(idx);
        }
        // Steal: scan for the fullest victim, then take from its back to
        // minimize contention with the victim's own front pops.
        loop {
            let mut victim: Option<(usize, usize)> = None;
            for (s, shard) in self.shards.iter().enumerate() {
                if s == home {
                    continue;
                }
                let len = shard.lock().expect("shard poisoned").len();
                if len > 0 && victim.is_none_or(|(_, best)| len > best) {
                    victim = Some((s, len));
                }
            }
            let (s, _) = victim?;
            if let Some(idx) = self.shards[s].lock().expect("shard poisoned").pop_back() {
                self.stolen.fetch_add(1, Ordering::Relaxed);
                self.steal_series[s].inc();
                return Some(idx);
            }
            // The victim drained between the scan and the steal; rescan.
        }
    }
}

/// Statistics from a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Worker threads used.
    pub workers: usize,
    /// Jobs executed by a worker other than their home shard's.
    pub stolen: usize,
}

/// Runs `jobs` closures over `workers` threads with per-shard queues and
/// work stealing. `run(worker, job_index)` produces the result for one
/// job; the returned vector is in job-index order (deterministic).
pub fn run_sharded<R, F>(jobs: usize, workers: usize, run: F) -> (Vec<R>, ShardStats)
where
    R: Send,
    F: Fn(usize, usize) -> R + Sync,
{
    let workers = workers.clamp(1, jobs.max(1));
    let queue = ShardedQueue::new(jobs, workers);
    let job_latency = obs::global().histogram(
        "shard_job_us",
        &[],
        "wall-clock latency of one job on the sharded executor",
    );
    let mut collected: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let queue = &queue;
                let run = &run;
                let job_latency = job_latency.clone();
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some(idx) = queue.pop(w) {
                        let started = std::time::Instant::now();
                        local.push((idx, run(w, idx)));
                        job_latency.record(started.elapsed());
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            collected.push(handle.join().expect("worker panicked"));
        }
    });
    // Deterministic order: place each result at its job index.
    let mut slots: Vec<Option<R>> = (0..jobs).map(|_| None).collect();
    for (idx, result) in collected.into_iter().flatten() {
        slots[idx] = Some(result);
    }
    let results = slots
        .into_iter()
        .map(|r| r.expect("scheduler dropped a job"))
        .collect();
    (
        results,
        ShardStats {
            workers,
            stolen: queue.stolen(),
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_jobs_run_exactly_once_in_order() {
        let counter = AtomicUsize::new(0);
        let (results, stats) = run_sharded(100, 4, |_, idx| {
            counter.fetch_add(1, Ordering::Relaxed);
            idx * 2
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
        assert_eq!(results, (0..100).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(stats.workers, 4);
    }

    #[test]
    fn stealing_rebalances_skewed_shards() {
        // Shard 0's jobs are much slower; other workers must steal them.
        let (results, stats) = run_sharded(64, 8, |_, idx| {
            if idx < 8 {
                std::thread::sleep(std::time::Duration::from_millis(3));
            }
            idx
        });
        assert_eq!(results.len(), 64);
        assert!(
            stats.stolen > 0,
            "no steals despite an 8x skewed shard: {stats:?}"
        );
    }

    #[test]
    fn degenerate_shapes() {
        let (r, s) = run_sharded(0, 4, |_, idx| idx);
        assert!(r.is_empty());
        assert_eq!(s.stolen, 0);
        let (r, _) = run_sharded(3, 16, |_, idx| idx);
        assert_eq!(r, vec![0, 1, 2]);
        let (r, s) = run_sharded(5, 1, |w, idx| (w, idx));
        assert_eq!(r.iter().map(|(w, _)| *w).sum::<usize>(), 0);
        assert_eq!(s.workers, 1);
    }

    #[test]
    fn queue_distribution_is_contiguous_and_complete() {
        let q = ShardedQueue::new(10, 3);
        assert_eq!(q.shard_count(), 3);
        let mut seen = Vec::new();
        for home in 0..3 {
            while let Some(i) = {
                let popped = q.shards[home].lock().unwrap().pop_front();
                popped
            } {
                seen.push(i);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }
}
