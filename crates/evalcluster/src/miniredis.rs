//! An embedded Redis-like store: the master node's coordination substrate
//! (§3.3: "the master employs a Redis database to manage unit test
//! contexts, inputs, and outputs associated with each problem and
//! benchmark user").
//!
//! Implements the command subset the evaluation platform needs: string get/set,
//! hashes, counters, and lists with blocking pop for work queues. All
//! operations are thread-safe; `blpop` parks on a condvar like the real
//! `BLPOP`.

use std::collections::HashMap;
use std::time::Duration;

use std::sync::{Condvar, Mutex, MutexGuard};

#[derive(Debug, Clone, PartialEq)]
enum Value {
    Str(String),
    List(Vec<String>),
    Hash(HashMap<String, String>),
}

/// The store. Cheap to share via `Arc`.
#[derive(Default)]
pub struct MiniRedis {
    data: Mutex<HashMap<String, Value>>,
    list_signal: Condvar,
}

impl MiniRedis {
    /// Creates an empty store.
    pub fn new() -> MiniRedis {
        MiniRedis::default()
    }

    fn data(&self) -> MutexGuard<'_, HashMap<String, Value>> {
        self.data.lock().expect("miniredis lock poisoned")
    }

    /// `SET key value`.
    pub fn set(&self, key: &str, value: impl Into<String>) {
        self.data().insert(key.to_owned(), Value::Str(value.into()));
    }

    /// `GET key`.
    pub fn get(&self, key: &str) -> Option<String> {
        match self.data().get(key) {
            Some(Value::Str(s)) => Some(s.clone()),
            _ => None,
        }
    }

    /// `DEL key` — returns whether the key existed.
    pub fn del(&self, key: &str) -> bool {
        self.data().remove(key).is_some()
    }

    /// `INCR key` — missing or non-numeric keys count from 0.
    pub fn incr(&self, key: &str) -> i64 {
        let mut data = self.data();
        let current = match data.get(key) {
            Some(Value::Str(s)) => s.parse().unwrap_or(0),
            _ => 0,
        };
        let next = current + 1;
        data.insert(key.to_owned(), Value::Str(next.to_string()));
        next
    }

    /// `HSET key field value`.
    pub fn hset(&self, key: &str, field: &str, value: impl Into<String>) {
        let mut data = self.data();
        let entry = data
            .entry(key.to_owned())
            .or_insert_with(|| Value::Hash(HashMap::new()));
        if let Value::Hash(h) = entry {
            h.insert(field.to_owned(), value.into());
        } else {
            let mut h = HashMap::new();
            h.insert(field.to_owned(), value.into());
            *entry = Value::Hash(h);
        }
    }

    /// `HGET key field`.
    pub fn hget(&self, key: &str, field: &str) -> Option<String> {
        match self.data().get(key) {
            Some(Value::Hash(h)) => h.get(field).cloned(),
            _ => None,
        }
    }

    /// `HGETALL key`.
    pub fn hgetall(&self, key: &str) -> Vec<(String, String)> {
        match self.data().get(key) {
            Some(Value::Hash(h)) => {
                let mut v: Vec<(String, String)> =
                    h.iter().map(|(k, val)| (k.clone(), val.clone())).collect();
                v.sort();
                v
            }
            _ => Vec::new(),
        }
    }

    /// `RPUSH key value` — returns the new length.
    pub fn rpush(&self, key: &str, value: impl Into<String>) -> usize {
        let mut data = self.data();
        let entry = data
            .entry(key.to_owned())
            .or_insert_with(|| Value::List(Vec::new()));
        let len = if let Value::List(l) = entry {
            l.push(value.into());
            l.len()
        } else {
            *entry = Value::List(vec![value.into()]);
            1
        };
        drop(data);
        self.list_signal.notify_all();
        len
    }

    /// `LPOP key`.
    pub fn lpop(&self, key: &str) -> Option<String> {
        let mut data = self.data();
        match data.get_mut(key) {
            Some(Value::List(l)) if !l.is_empty() => Some(l.remove(0)),
            _ => None,
        }
    }

    /// `BLPOP key timeout` — blocks until an element arrives or the
    /// timeout elapses.
    pub fn blpop(&self, key: &str, timeout: Duration) -> Option<String> {
        let deadline = std::time::Instant::now() + timeout;
        let mut data = self.data();
        loop {
            if let Some(Value::List(l)) = data.get_mut(key) {
                if !l.is_empty() {
                    return Some(l.remove(0));
                }
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (guard, wait) = self
                .list_signal
                .wait_timeout(data, deadline - now)
                .expect("miniredis lock poisoned");
            data = guard;
            if wait.timed_out() {
                // Check once more after a timed-out wait.
                if let Some(Value::List(l)) = data.get_mut(key) {
                    if !l.is_empty() {
                        return Some(l.remove(0));
                    }
                }
                return None;
            }
        }
    }

    /// `LLEN key`.
    pub fn llen(&self, key: &str) -> usize {
        match self.data().get(key) {
            Some(Value::List(l)) => l.len(),
            _ => 0,
        }
    }

    /// `KEYS pattern` with `*` suffix/prefix globbing.
    pub fn keys(&self, pattern: &str) -> Vec<String> {
        let data = self.data();
        let mut out: Vec<String> = data
            .keys()
            .filter(|k| glob_matches(pattern, k))
            .cloned()
            .collect();
        out.sort();
        out
    }
}

fn glob_matches(pattern: &str, key: &str) -> bool {
    if pattern == "*" {
        return true;
    }
    match (pattern.strip_prefix('*'), pattern.strip_suffix('*')) {
        (Some(suffix), _) if !pattern.ends_with('*') => key.ends_with(suffix),
        (_, Some(prefix)) if !pattern.starts_with('*') => key.starts_with(prefix),
        _ => {
            if let Some(stripped) = pattern.strip_prefix('*').and_then(|p| p.strip_suffix('*')) {
                key.contains(stripped)
            } else {
                key == pattern
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn string_ops() {
        let r = MiniRedis::new();
        assert_eq!(r.get("k"), None);
        r.set("k", "v");
        assert_eq!(r.get("k"), Some("v".into()));
        assert!(r.del("k"));
        assert!(!r.del("k"));
    }

    #[test]
    fn counter_ops() {
        let r = MiniRedis::new();
        assert_eq!(r.incr("c"), 1);
        assert_eq!(r.incr("c"), 2);
        r.set("c", "41");
        assert_eq!(r.incr("c"), 42);
    }

    #[test]
    fn hash_ops() {
        let r = MiniRedis::new();
        r.hset("job:1", "status", "running");
        r.hset("job:1", "worker", "w3");
        assert_eq!(r.hget("job:1", "status"), Some("running".into()));
        assert_eq!(r.hgetall("job:1").len(), 2);
        assert_eq!(r.hget("job:1", "missing"), None);
    }

    #[test]
    fn list_fifo_order() {
        let r = MiniRedis::new();
        r.rpush("q", "a");
        r.rpush("q", "b");
        assert_eq!(r.llen("q"), 2);
        assert_eq!(r.lpop("q"), Some("a".into()));
        assert_eq!(r.lpop("q"), Some("b".into()));
        assert_eq!(r.lpop("q"), None);
    }

    #[test]
    fn blpop_times_out() {
        let r = MiniRedis::new();
        let start = Instant::now();
        assert_eq!(r.blpop("empty", Duration::from_millis(50)), None);
        assert!(start.elapsed() >= Duration::from_millis(45));
    }

    #[test]
    fn blpop_wakes_on_push() {
        let r = Arc::new(MiniRedis::new());
        let r2 = Arc::clone(&r);
        let handle = std::thread::spawn(move || r2.blpop("q", Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(30));
        r.rpush("q", "wake");
        assert_eq!(handle.join().unwrap(), Some("wake".into()));
    }

    #[test]
    fn concurrent_producers_consumers_preserve_all_items() {
        let r = Arc::new(MiniRedis::new());
        let n = 500;
        let mut handles = Vec::new();
        for t in 0..4 {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..n {
                    r.rpush("work", format!("{t}:{i}"));
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..4 {
            let r = Arc::clone(&r);
            consumers.push(std::thread::spawn(move || {
                let mut got = 0;
                while r.blpop("work", Duration::from_millis(200)).is_some() {
                    got += 1;
                }
                got
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let total: usize = consumers.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(total, 4 * n);
    }

    #[test]
    fn keys_globbing() {
        let r = MiniRedis::new();
        r.set("job:1", "x");
        r.set("job:2", "x");
        r.set("result:1", "x");
        assert_eq!(r.keys("job:*").len(), 2);
        assert_eq!(r.keys("*:1").len(), 2);
        assert_eq!(r.keys("*"), vec!["job:1", "job:2", "result:1"]);
        assert_eq!(r.keys("job:1"), vec!["job:1"]);
    }
}
