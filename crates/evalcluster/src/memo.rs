//! Content-addressed score memoization.
//!
//! Substrate execution is deterministic: the same candidate YAML run
//! against the same unit-test script on a fresh environment always yields
//! the same verdict. [`ScoreMemo`] exploits that to make repeated
//! generations free — pass@k sampling re-produces identical candidates
//! constantly (strong models converge on the same answer; weak models
//! repeat the same boilerplate), and the three dataset variants of one
//! problem share a unit test, so identical extracted YAML across variants
//! also collapses to one execution.
//!
//! Keys are [`substrate::content_hash`] pairs over `(candidate, script)`
//! — the script hash carries the problem identity (each problem's
//! generated unit test embeds its own names, labels and ports), and the
//! candidate hash the extracted YAML, so the key is exactly the
//! issue-level `(extracted_yaml_hash, problem, variant)` contract with
//! variant-level sharing as a bonus.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use substrate::content_hash;

/// A memoized execution verdict.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CachedVerdict {
    /// Did the unit test pass?
    pub passed: bool,
    /// Simulated in-substrate milliseconds of the original execution.
    pub simulated_ms: u64,
}

/// Thread-safe content-addressed cache of unit-test verdicts.
///
/// Shareable across [`run_jobs`](crate::executor::run_jobs) calls (e.g.
/// one memo for a whole pass@k sweep) via `&ScoreMemo`.
///
/// # Examples
///
/// ```
/// use evalcluster::memo::{CachedVerdict, ScoreMemo};
///
/// let memo = ScoreMemo::new();
/// let key = ScoreMemo::key("kind: Pod\n", "echo unit_test_passed");
/// assert!(memo.get(key).is_none());
/// memo.insert(key, CachedVerdict { passed: true, simulated_ms: 12 });
/// assert_eq!(memo.get(key).unwrap().passed, true);
/// assert_eq!(memo.hits(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ScoreMemo {
    map: Mutex<HashMap<(u64, u64), CachedVerdict>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl ScoreMemo {
    /// An empty cache.
    pub fn new() -> ScoreMemo {
        ScoreMemo::default()
    }

    /// The content-addressed key for a `(candidate, script)` pair.
    pub fn key(candidate_yaml: &str, script: &str) -> (u64, u64) {
        (content_hash(candidate_yaml), content_hash(script))
    }

    /// Looks up a verdict, counting a hit or miss.
    pub fn get(&self, key: (u64, u64)) -> Option<CachedVerdict> {
        let found = self.map.lock().expect("memo poisoned").get(&key).copied();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Records a verdict (last write wins; verdicts are deterministic so
    /// concurrent duplicates agree).
    pub fn insert(&self, key: (u64, u64), verdict: CachedVerdict) {
        self.map.lock().expect("memo poisoned").insert(key, verdict);
    }

    /// Distinct verdicts stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_content_distinct_keys() {
        let a = ScoreMemo::key("kind: Pod\n", "script");
        let b = ScoreMemo::key("kind: Pod \n", "script");
        let c = ScoreMemo::key("kind: Pod\n", "script2");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, ScoreMemo::key("kind: Pod\n", "script"));
    }

    #[test]
    fn hit_and_miss_counters() {
        let memo = ScoreMemo::new();
        let key = ScoreMemo::key("a", "b");
        assert!(memo.get(key).is_none());
        memo.insert(
            key,
            CachedVerdict {
                passed: false,
                simulated_ms: 3,
            },
        );
        assert_eq!(
            memo.get(key),
            Some(CachedVerdict {
                passed: false,
                simulated_ms: 3
            })
        );
        assert_eq!((memo.hits(), memo.misses(), memo.len()), (1, 1, 1));
        assert!(!memo.is_empty());
    }
}
