//! Content-addressed score memoization.
//!
//! Substrate execution is deterministic: the same candidate YAML run
//! against the same unit-test script on a fresh environment always yields
//! the same verdict. [`ScoreMemo`] exploits that to make repeated
//! generations free — pass@k sampling re-produces identical candidates
//! constantly (strong models converge on the same answer; weak models
//! repeat the same boilerplate), and the three dataset variants of one
//! problem share a unit test, so identical extracted YAML across variants
//! also collapses to one execution.
//!
//! Keys are [`substrate::content_hash`] pairs over `(candidate, script)`
//! — the script hash carries the problem identity (each problem's
//! generated unit test embeds its own names, labels and ports), and the
//! candidate hash the extracted YAML, so the key is exactly the
//! issue-level `(extracted_yaml_hash, problem, variant)` contract with
//! variant-level sharing as a bonus.
//!
//! [`save`]/[`load`] persist a memo as JSONL (one verdict per line,
//! encoded with [`yamlkit::json::to_json`] and decoded through the YAML
//! parser — the same wire format the `ceserve` HTTP layer speaks), so a
//! long-lived benchmark service keeps its verdicts across restarts.

use std::collections::HashMap;
use std::io::{self, BufRead, Write};
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

use substrate::content_hash;
use substrate::taxonomy::{Bucket, Diagnosis};
use yamlkit::ymap;

/// A memoized execution verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CachedVerdict {
    /// Did the unit test pass?
    pub passed: bool,
    /// Simulated in-substrate milliseconds of the original execution.
    pub simulated_ms: u64,
    /// Taxonomy classification of the failure; `None` for passing
    /// verdicts and for verdicts loaded from stores written before the
    /// taxonomy existed.
    pub diagnosis: Option<Diagnosis>,
}

impl CachedVerdict {
    /// A passing or failing verdict with no diagnosis (test helper and
    /// pre-taxonomy constructor shape).
    pub fn bare(passed: bool, simulated_ms: u64) -> CachedVerdict {
        CachedVerdict {
            passed,
            simulated_ms,
            diagnosis: None,
        }
    }

    /// Whether this is a failure whose taxonomy bucket says resubmission
    /// could plausibly change the verdict ([`Bucket::retryable`]). A
    /// failure with no diagnosis is conservatively retryable — it is
    /// indistinguishable from [`Bucket::Unknown`].
    pub fn retryable_failure(&self) -> bool {
        !self.passed && self.diagnosis.as_ref().is_none_or(|d| d.bucket.retryable())
    }
}

/// Thread-safe content-addressed cache of unit-test verdicts.
///
/// Shareable across [`run_jobs`](crate::executor::run_jobs) calls (e.g.
/// one memo for a whole pass@k sweep) via `&ScoreMemo`.
///
/// # Examples
///
/// ```
/// use evalcluster::memo::{CachedVerdict, ScoreMemo};
///
/// let memo = ScoreMemo::new();
/// let key = ScoreMemo::key("kind: Pod\n", "echo unit_test_passed");
/// assert!(memo.get(key).is_none());
/// memo.insert(key, CachedVerdict::bare(true, 12));
/// assert_eq!(memo.get(key).unwrap().passed, true);
/// assert_eq!(memo.hits(), 1);
/// ```
#[derive(Debug, Default)]
pub struct ScoreMemo {
    map: Mutex<HashMap<(u64, u64), CachedVerdict>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    stale_retries: AtomicUsize,
}

/// Process-wide memo traffic counters in the global obs registry,
/// resolved once so the lookup path pays only atomic increments.
fn obs_counters() -> &'static (obs::Counter, obs::Counter, obs::Counter) {
    static COUNTERS: OnceLock<(obs::Counter, obs::Counter, obs::Counter)> = OnceLock::new();
    COUNTERS.get_or_init(|| {
        let registry = obs::global();
        (
            registry.counter(
                "memo_hits_total",
                &[],
                "score-memo lookups answered from cache",
            ),
            registry.counter("memo_misses_total", &[], "score-memo lookups that missed"),
            registry.counter(
                "memo_stale_retries_total",
                &[],
                "memoized retryable failures bypassed because the lookup was a repair retry",
            ),
        )
    })
}

impl ScoreMemo {
    /// An empty cache.
    pub fn new() -> ScoreMemo {
        ScoreMemo::default()
    }

    /// The content-addressed key for a `(candidate, script)` pair.
    pub fn key(candidate_yaml: &str, script: &str) -> (u64, u64) {
        (content_hash(candidate_yaml), content_hash(script))
    }

    /// Looks up a verdict, counting a hit or miss.
    pub fn get(&self, key: (u64, u64)) -> Option<CachedVerdict> {
        let found = self.map.lock().expect("memo poisoned").get(&key).cloned();
        let (hits, misses, _) = obs_counters();
        match found {
            Some(v) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                hits.inc();
                Some(v)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                misses.inc();
                None
            }
        }
    }

    /// Looks up a verdict with the repair-loop staleness rule applied:
    /// on a retry (`is_retry`), a memoized *retryable* failure is treated
    /// as stale — the caller should re-execute rather than trust a verdict
    /// the resubmission could plausibly change. Counts a hit or miss like
    /// [`get`](ScoreMemo::get) (a stale hit is still a hit — the cache
    /// answered; policy rejected it), plus a stale-retry when the
    /// staleness rule fires.
    pub fn get_fresh(&self, key: (u64, u64), is_retry: bool) -> Option<CachedVerdict> {
        let verdict = self.get(key)?;
        if is_retry && verdict.retryable_failure() {
            self.stale_retries.fetch_add(1, Ordering::Relaxed);
            obs_counters().2.inc();
            return None;
        }
        Some(verdict)
    }

    /// Looks up a verdict **without** touching the hit/miss counters.
    /// For observability probes (e.g. marking a response as cache-served)
    /// that must not distort the traffic statistics.
    pub fn peek(&self, key: (u64, u64)) -> Option<CachedVerdict> {
        self.map.lock().expect("memo poisoned").get(&key).cloned()
    }

    /// Records a verdict (last write wins; verdicts are deterministic so
    /// concurrent duplicates agree).
    pub fn insert(&self, key: (u64, u64), verdict: CachedVerdict) {
        self.map.lock().expect("memo poisoned").insert(key, verdict);
    }

    /// Distinct verdicts stored.
    pub fn len(&self) -> usize {
        self.map.lock().expect("memo poisoned").len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lookups answered from cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that missed.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached retryable failures bypassed by retry lookups
    /// ([`get_fresh`](ScoreMemo::get_fresh) with `is_retry`).
    pub fn stale_retries(&self) -> usize {
        self.stale_retries.load(Ordering::Relaxed)
    }

    /// All stored `(key, verdict)` pairs, sorted by key so callers (and
    /// the persisted JSONL file) see a deterministic order.
    pub fn snapshot(&self) -> Vec<((u64, u64), CachedVerdict)> {
        let mut entries: Vec<((u64, u64), CachedVerdict)> = self
            .map
            .lock()
            .expect("memo poisoned")
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        entries.sort_unstable_by_key(|(k, _)| *k);
        entries
    }

    /// Drops every stored verdict and zeroes the hit/miss/stale-retry
    /// counters (used by benchmarks to measure cold-cache behavior in
    /// place).
    pub fn clear(&self) {
        self.map.lock().expect("memo poisoned").clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.stale_retries.store(0, Ordering::Relaxed);
    }
}

/// One persisted verdict line. Hashes travel as fixed-width hex strings:
/// they are `u64` and the wire integer type is `i64`. The taxonomy fields
/// (`bucket`, `subject`, `raw`) are present only when the verdict carries
/// a diagnosis, so pre-taxonomy stores and new stores share one format.
fn to_line(key: (u64, u64), v: &CachedVerdict) -> String {
    let mut doc = ymap! {
        "candidate" => format!("{:016x}", key.0),
        "script" => format!("{:016x}", key.1),
        "passed" => v.passed,
        "ms" => i64::try_from(v.simulated_ms).unwrap_or(i64::MAX),
    };
    if let Some(d) = &v.diagnosis {
        doc.insert("bucket", yamlkit::Yaml::from(d.bucket.label()));
        if let Some(subject) = &d.subject {
            doc.insert("subject", yamlkit::Yaml::from(subject.as_str()));
        }
        doc.insert("raw", yamlkit::Yaml::from(d.raw.as_str()));
    }
    yamlkit::json::to_json(&doc)
}

/// Decodes one JSONL line; `None` for anything malformed or truncated.
/// Lines written before the taxonomy existed load with `diagnosis: None`.
fn from_line(line: &str) -> Option<((u64, u64), CachedVerdict)> {
    let doc = yamlkit::parse_one(line).ok()?.to_value();
    let hash =
        |field: &str| -> Option<u64> { u64::from_str_radix(doc.get(field)?.as_str()?, 16).ok() };
    let key = (hash("candidate")?, hash("script")?);
    let passed = doc.get("passed")?.as_bool()?;
    let ms = doc.get("ms")?.as_i64()?;
    let text = |field: &str| Some(doc.get(field)?.as_str()?.to_owned());
    let diagnosis = doc
        .get("bucket")
        .and_then(|b| Bucket::from_label(b.as_str()?))
        .map(|bucket| Diagnosis {
            bucket,
            subject: text("subject"),
            raw: text("raw").unwrap_or_default(),
        });
    Some((
        key,
        CachedVerdict {
            passed,
            simulated_ms: u64::try_from(ms).ok()?,
            diagnosis,
        },
    ))
}

/// Persists a memo as JSONL, one verdict per line in sorted key order.
///
/// The file is written to `<path>.tmp` first and renamed into place, so a
/// reader (or a crash) never observes a half-written store. Returns the
/// number of verdicts written.
pub fn save(memo: &ScoreMemo, path: impl AsRef<Path>) -> io::Result<usize> {
    let path = path.as_ref();
    let entries = memo.snapshot();
    let tmp = path.with_extension("tmp");
    {
        let mut out = io::BufWriter::new(std::fs::File::create(&tmp)?);
        for (key, verdict) in &entries {
            out.write_all(to_line(*key, verdict).as_bytes())?;
            out.write_all(b"\n")?;
        }
        out.flush()?;
    }
    std::fs::rename(&tmp, path)?;
    Ok(entries.len())
}

/// Loads a JSONL verdict store into a fresh memo with zeroed hit/miss
/// counters (persistence carries verdicts, not traffic statistics).
///
/// Malformed or truncated lines — e.g. a trailing line cut short by a
/// crash mid-append — are skipped, not fatal: every parseable verdict
/// before and after them still loads.
pub fn load(path: impl AsRef<Path>) -> io::Result<ScoreMemo> {
    let memo = ScoreMemo::new();
    load_into(&memo, path)?;
    Ok(memo)
}

/// Merges a JSONL verdict store into an existing memo (last write wins on
/// key collisions, which agree anyway — verdicts are deterministic).
/// Returns the number of verdicts merged; counters are left untouched.
pub fn load_into(memo: &ScoreMemo, path: impl AsRef<Path>) -> io::Result<usize> {
    let file = std::fs::File::open(path)?;
    let mut merged = 0usize;
    for line in io::BufReader::new(file).lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        if let Some((key, verdict)) = from_line(&line) {
            memo.map.lock().expect("memo poisoned").insert(key, verdict);
            merged += 1;
        }
    }
    Ok(merged)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distinct_content_distinct_keys() {
        let a = ScoreMemo::key("kind: Pod\n", "script");
        let b = ScoreMemo::key("kind: Pod \n", "script");
        let c = ScoreMemo::key("kind: Pod\n", "script2");
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_eq!(a, ScoreMemo::key("kind: Pod\n", "script"));
    }

    #[test]
    fn hit_and_miss_counters() {
        let memo = ScoreMemo::new();
        let key = ScoreMemo::key("a", "b");
        assert!(memo.get(key).is_none());
        memo.insert(key, CachedVerdict::bare(false, 3));
        assert_eq!(memo.get(key), Some(CachedVerdict::bare(false, 3)));
        assert_eq!((memo.hits(), memo.misses(), memo.len()), (1, 1, 1));
        assert!(!memo.is_empty());
    }

    #[test]
    fn get_fresh_bypasses_retryable_failures_on_retry_only() {
        let memo = ScoreMemo::new();
        let key = ScoreMemo::key("kind: Pod", "script");
        memo.insert(key, CachedVerdict::bare(false, 3)); // no diagnosis: retryable
                                                         // First attempt trusts the cache; a retry treats it as stale.
        assert!(memo.get_fresh(key, false).is_some());
        assert!(memo.get_fresh(key, true).is_none());
        assert_eq!(memo.stale_retries(), 1);
        // Terminal failures and passes survive retries.
        let pass = ScoreMemo::key("kind: Pod", "pass");
        memo.insert(pass, CachedVerdict::bare(true, 1));
        assert!(memo.get_fresh(pass, true).is_some());
        assert_eq!(memo.stale_retries(), 1);
        // Both stale-retry lookups above were hits at the cache layer.
        assert_eq!(memo.hits(), 3);
        memo.clear();
        assert_eq!(memo.stale_retries(), 0);
    }

    #[test]
    fn diagnosis_survives_the_wire_and_old_lines_still_load() {
        let diagnosed = CachedVerdict {
            passed: false,
            simulated_ms: 7,
            diagnosis: Some(substrate::taxonomy::classify_message(
                "pods \"x\" is forbidden: exceeded quota: q, requested: pods=1, used: pods=1, limited: pods=1",
            )),
        };
        let key = (0x1234, 0x5678);
        let line = to_line(key, &diagnosed);
        let (rkey, rv) = from_line(&line).expect("line decodes");
        assert_eq!(rkey, key);
        assert_eq!(rv, diagnosed);
        assert!(rv.retryable_failure());
        // A pre-taxonomy line (no bucket/subject/raw) still loads.
        let old = r#"{"candidate": "0000000000001234", "script": "0000000000005678", "passed": false, "ms": 3}"#;
        let (_, rv) = from_line(old).expect("old line decodes");
        assert_eq!(rv, CachedVerdict::bare(false, 3));
        // No diagnosis on a failure is conservatively retryable; a
        // passing verdict never is.
        assert!(rv.retryable_failure());
        assert!(!CachedVerdict::bare(true, 3).retryable_failure());
        assert!(!CachedVerdict {
            passed: false,
            simulated_ms: 0,
            diagnosis: Some(substrate::taxonomy::classify_message("missing kind")),
        }
        .retryable_failure());
    }
}
