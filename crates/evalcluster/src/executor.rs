//! The parallel unit-test executor: the live counterpart of §3.3's
//! "Scalable Evaluation Cluster".
//!
//! Two execution engines share one job/result vocabulary:
//!
//! * [`run_jobs`] — the production engine: a sharded work-stealing
//!   scheduler ([`crate::shard`]) driving the [`substrate::Substrate`]
//!   trait, with a content-addressed score memo ([`crate::memo`]) so
//!   identical `(candidate, script)` pairs — ubiquitous under pass@k
//!   sampling — execute exactly once;
//! * [`run_jobs_queue`] — the §3.3-faithful master/worker pattern over the
//!   [`crate::MiniRedis`] blocking queue, kept as
//!   the distributed-deployment reference model and as the benchmark
//!   baseline the sharded engine is measured against.
//!
//! Every job gets a freshly prepared substrate environment, so tests are
//! hermetic — the clean-environment guarantee the paper gets from tearing
//! clusters down between problems.

use std::sync::Arc;
use std::time::{Duration, Instant};

use substrate::{content_hash, ShellSubstrate, Substrate};
use yamlkit::PreparedDoc;

use crate::memo::{CachedVerdict, ScoreMemo};
use crate::miniredis::MiniRedis;
use crate::shard::run_sharded;

/// The candidate side of a job: either raw text (the pre-refactor shape,
/// parsed by every layer that touches it) or a parse-once
/// [`PreparedDoc`] shared with the scoring stage by `Arc`.
#[derive(Debug, Clone)]
enum Candidate {
    /// Raw YAML text; hashed per memo lookup and re-parsed by the
    /// substrate layers, exactly like the seed pipeline. Kept as the
    /// reference cost model for the `--prepared off` A/B path.
    Text(String),
    /// Pre-parsed document: hash cached, parse shared with every layer.
    Prepared(Arc<PreparedDoc>),
}

/// One unit-test job.
#[derive(Debug, Clone)]
pub struct UnitTestJob {
    /// Problem identifier.
    pub problem_id: String,
    /// The bash unit-test script.
    pub script: String,
    candidate: Candidate,
    retry: bool,
}

impl PartialEq for UnitTestJob {
    /// Jobs are equal when their observable inputs are — the candidate
    /// representation (text vs prepared) and the retry flag change
    /// scheduling cost, never the verdict.
    fn eq(&self, other: &Self) -> bool {
        self.problem_id == other.problem_id
            && self.script == other.script
            && self.candidate_yaml() == other.candidate_yaml()
    }
}

impl Eq for UnitTestJob {}

impl UnitTestJob {
    /// A job over raw candidate text (the seed pipeline's shape: every
    /// downstream layer parses the text itself).
    pub fn new(
        problem_id: impl Into<String>,
        script: impl Into<String>,
        candidate_yaml: impl Into<String>,
    ) -> UnitTestJob {
        UnitTestJob {
            problem_id: problem_id.into(),
            script: script.into(),
            candidate: Candidate::Text(candidate_yaml.into()),
            retry: false,
        }
    }

    /// A job over a parse-once prepared candidate: the substrate consumes
    /// the shared parsed documents instead of re-parsing, and the memo
    /// key reads the cached content hash.
    pub fn prepared(
        problem_id: impl Into<String>,
        script: impl Into<String>,
        candidate: Arc<PreparedDoc>,
    ) -> UnitTestJob {
        UnitTestJob {
            problem_id: problem_id.into(),
            script: script.into(),
            candidate: Candidate::Prepared(candidate),
            retry: false,
        }
    }

    /// Marks this job as a deliberate resubmission of a previously-judged
    /// candidate (a repair-loop retry). Retry jobs treat a memoized
    /// **retryable** failure ([`CachedVerdict::retryable_failure`]) as
    /// stale and re-execute; every other memoized verdict — passes and
    /// deterministic failures alike — is still served from cache, so
    /// resubmitting a candidate the taxonomy proves broken stays free.
    #[must_use]
    pub fn retry(mut self) -> UnitTestJob {
        self.retry = true;
        self
    }

    /// Whether this job is a repair-loop resubmission (see
    /// [`UnitTestJob::retry`]).
    pub fn is_retry(&self) -> bool {
        self.retry
    }

    /// The candidate YAML text (whatever the representation).
    pub fn candidate_yaml(&self) -> &str {
        match &self.candidate {
            Candidate::Text(text) => text,
            Candidate::Prepared(doc) => doc.text(),
        }
    }

    /// Whether the candidate travels in parse-once prepared form.
    pub fn is_prepared(&self) -> bool {
        matches!(self.candidate, Candidate::Prepared(_))
    }

    /// The content-addressed memo key for this job. Prepared candidates
    /// read their cached hash; text candidates hash on every call (the
    /// pre-refactor behavior).
    pub fn memo_key(&self) -> (u64, u64) {
        let candidate_hash = match &self.candidate {
            Candidate::Text(text) => content_hash(text),
            Candidate::Prepared(doc) => doc.content_hash(),
        };
        (candidate_hash, content_hash(&self.script))
    }

    /// Executes this job hermetically (no memo involved).
    fn execute(&self) -> CachedVerdict {
        match &self.candidate {
            Candidate::Text(text) => execute_uncached_text(text, &self.script),
            Candidate::Prepared(doc) => execute_uncached(doc, &self.script),
        }
    }
}

/// Result of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// Problem identifier.
    pub problem_id: String,
    /// Did the transcript contain `unit_test_passed`?
    pub passed: bool,
    /// Simulated in-cluster seconds the test consumed (sleeps + waits).
    pub simulated_ms: u64,
    /// Which worker ran it. In-batch duplicates report the worker that
    /// executed their first occurrence; results served from a warm
    /// cross-run memo report 0 (no worker ran them this run).
    pub worker: usize,
    /// Taxonomy classification when the job failed (`None` on a pass, or
    /// when the result traveled a wire that does not carry diagnoses —
    /// the §3.3 queue engine's string protocol).
    pub diagnosis: Option<substrate::taxonomy::Diagnosis>,
}

/// Outcome of a full run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-job results, in input order.
    pub results: Vec<JobResult>,
    /// Real wall-clock time of the parallel run.
    pub wall: Duration,
    /// Worker count used.
    pub workers: usize,
    /// Jobs that actually executed on a substrate.
    pub executed: usize,
    /// Jobs answered from the score memo / in-run deduplication.
    pub cache_hits: usize,
    /// Jobs that migrated across shards via work stealing.
    pub stolen: usize,
}

impl RunReport {
    /// Number of passed jobs.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.passed).count()
    }
}

const QUEUE: &str = "cloudeval:jobs";
const RESULTS: &str = "cloudeval:results";

/// Executes one prepared candidate hermetically on a fresh shell
/// substrate and maps the outcome to a verdict: the substrate consumes
/// the candidate's one-and-only parse (the sandbox cluster is primed, so
/// the script's `kubectl apply` skips its parse too). Candidate faults
/// and probe failures both score 0 — the seed path's "interpreter error
/// counts as failure" policy. Every engine (batch, queue, stream) and
/// the service layer's single-submission path share this one mapping.
pub fn execute_uncached(candidate: &PreparedDoc, script: &str) -> CachedVerdict {
    outcome_to_verdict(ShellSubstrate::new().execute_prepared(candidate, script))
}

/// [`execute_uncached`] over raw candidate text: every substrate layer
/// parses the text itself, exactly like the seed pipeline. Kept as the
/// reference execution path the parse-once refactor is verified and
/// benchmarked against (`repro pipeline --prepared off`).
pub fn execute_uncached_text(candidate_yaml: &str, script: &str) -> CachedVerdict {
    outcome_to_verdict(ShellSubstrate::new().execute(candidate_yaml, script))
}

fn outcome_to_verdict(
    result: Result<substrate::ExecOutcome, substrate::ExecError>,
) -> CachedVerdict {
    let diagnosis = substrate::taxonomy::classify_result(&result);
    match result {
        Ok(outcome) => CachedVerdict {
            passed: outcome.passed,
            simulated_ms: outcome.simulated_ms,
            diagnosis,
        },
        Err(_) => CachedVerdict {
            passed: false,
            simulated_ms: 0,
            diagnosis,
        },
    }
}

/// Runs all jobs over `workers` threads; results come back in input
/// order. Uses the sharded work-stealing engine with a run-local score
/// memo — see [`run_jobs_cached`] to share a memo across runs.
pub fn run_jobs(jobs: &[UnitTestJob], workers: usize) -> RunReport {
    run_jobs_cached(jobs, workers, &ScoreMemo::new())
}

/// Like [`run_jobs`], with a caller-owned [`ScoreMemo`] so verdicts carry
/// over between batches (pass@k sweeps, resumed grids).
///
/// Identical `(candidate_yaml, script)` pairs are deduplicated *before*
/// dispatch: the first occurrence executes, every other occurrence —
/// in-batch duplicate or cross-batch memo hit — is answered from cache
/// without touching a substrate.
pub fn run_jobs_cached(jobs: &[UnitTestJob], workers: usize, memo: &ScoreMemo) -> RunReport {
    let start = Instant::now();
    // Plan: for each job, either execute (first sight of its key) or copy
    // the verdict of an earlier job / the memo.
    #[derive(Clone)]
    enum Plan {
        Execute(usize), // index into `unique`
        Memoized(CachedVerdict),
    }
    let mut key_to_unique: std::collections::HashMap<(u64, u64), usize> =
        std::collections::HashMap::new();
    let mut unique: Vec<usize> = Vec::new(); // job index of each unique execution
    let mut plans: Vec<Plan> = Vec::with_capacity(jobs.len());
    for (i, job) in jobs.iter().enumerate() {
        let key = job.memo_key();
        if let Some(&u) = key_to_unique.get(&key) {
            plans.push(Plan::Execute(u)); // alias of an in-batch execution
            continue;
        }
        // A retry job treats a memoized retryable failure as stale.
        if let Some(verdict) = memo.get_fresh(key, job.is_retry()) {
            plans.push(Plan::Memoized(verdict));
            continue;
        }
        key_to_unique.insert(key, unique.len());
        plans.push(Plan::Execute(unique.len()));
        unique.push(i);
    }

    // Execute the unique jobs on per-worker substrates.
    let (verdicts, stats) = run_sharded(unique.len(), workers, |worker, u| {
        let job = &jobs[unique[u]];
        let verdict = job.execute();
        memo.insert(job.memo_key(), verdict.clone());
        (verdict, worker)
    });

    let executed = unique.len();
    let results: Vec<JobResult> = jobs
        .iter()
        .zip(&plans)
        .map(|(job, plan)| {
            let (verdict, worker) = match plan {
                Plan::Execute(u) => {
                    let (v, w) = &verdicts[*u];
                    (v.clone(), *w)
                }
                Plan::Memoized(v) => (v.clone(), 0),
            };
            JobResult {
                problem_id: job.problem_id.clone(),
                passed: verdict.passed,
                simulated_ms: verdict.simulated_ms,
                worker,
                diagnosis: verdict.diagnosis,
            }
        })
        .collect();
    RunReport {
        results,
        wall: start.elapsed(),
        // The requested pool width (the scheduler may use fewer threads
        // when there are fewer unique jobs than workers).
        workers: workers.max(1),
        executed,
        cache_hits: jobs.len() - executed,
        stolen: stats.stolen,
    }
}

/// Aggregate statistics of a [`run_jobs_stream`] run (the streaming
/// engine has no materialized result vector to hang a [`RunReport`] on —
/// results left through the `emit` callback as they completed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StreamStats {
    /// Worker threads used.
    pub workers: usize,
    /// Jobs that actually executed on a substrate.
    pub executed: usize,
    /// Jobs answered from the memo or the in-flight dedup table.
    pub cache_hits: usize,
}

/// The streaming counterpart of [`run_jobs_cached`]: consumes
/// `(record_index, job)` pairs from a channel **as they arrive** — no
/// full `&[UnitTestJob]` slice required — and emits each
/// `(record_index, JobResult)` the moment its verdict is known.
///
/// This is the execution stage of the stage-graph pipeline: upstream
/// generation/scoring stages feed jobs while earlier jobs are already
/// running, so substrate execution overlaps every other phase instead of
/// waiting behind a barrier.
///
/// Deduplication is memo-aware and race-free on work (not just on
/// results): the first arrival of a `(candidate, script)` key executes;
/// arrivals *while that execution is in flight* park on a wait list and
/// are answered when it completes; later arrivals hit the memo. Identical
/// candidates therefore execute exactly once per memo lifetime, same as
/// the batch engine. `emit` is called from worker threads, concurrently
/// and in completion order.
///
/// Returns once the channel disconnects (all senders dropped) and every
/// received job has been answered.
pub fn run_jobs_stream<F>(
    jobs: std::sync::mpsc::Receiver<(usize, UnitTestJob)>,
    workers: usize,
    memo: &ScoreMemo,
    emit: F,
) -> StreamStats
where
    F: Fn(usize, JobResult) + Send + Sync,
{
    use std::collections::HashMap;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    // Parked duplicates of an executing key: (record_index, problem_id)
    // pairs answered when the execution completes.
    type WaitList = Vec<(usize, String)>;
    let workers = workers.max(1);
    let input = Mutex::new(jobs);
    let in_flight: Mutex<HashMap<(u64, u64), WaitList>> = Mutex::new(HashMap::new());
    let executed = AtomicUsize::new(0);
    let cache_hits = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let input = &input;
            let in_flight = &in_flight;
            let executed = &executed;
            let cache_hits = &cache_hits;
            let emit = &emit;
            scope.spawn(move || loop {
                let received = input.lock().expect("stream input poisoned").recv();
                let Ok((idx, job)) = received else { break };
                let key = job.memo_key();
                // A retry job treats a memoized retryable failure as
                // stale and falls through to re-execute; any other
                // memoized verdict answers it like a normal job.
                // Fast path: a finished verdict in the memo.
                if let Some(v) = memo.get_fresh(key, job.is_retry()) {
                    cache_hits.fetch_add(1, Ordering::Relaxed);
                    emit(idx, cached_result(job.problem_id, v));
                    continue;
                }
                {
                    let mut table = in_flight.lock().expect("in-flight table poisoned");
                    if let Some(waiters) = table.get_mut(&key) {
                        // Same key already executing: park until it lands.
                        // (A retry that parks here gets the in-flight
                        // execution's verdict — that execution is as
                        // fresh as the one it would have started.)
                        waiters.push((idx, job.problem_id));
                        cache_hits.fetch_add(1, Ordering::Relaxed);
                        continue;
                    }
                    // The key may have completed between the memo probe and
                    // taking the table lock; re-check before claiming it.
                    if let Some(v) = memo.get_fresh(key, job.is_retry()) {
                        cache_hits.fetch_add(1, Ordering::Relaxed);
                        emit(idx, cached_result(job.problem_id, v));
                        continue;
                    }
                    table.insert(key, Vec::new());
                }
                let verdict = job.execute();
                memo.insert(key, verdict.clone());
                executed.fetch_add(1, Ordering::Relaxed);
                emit(
                    idx,
                    JobResult {
                        problem_id: job.problem_id,
                        passed: verdict.passed,
                        simulated_ms: verdict.simulated_ms,
                        worker: w,
                        diagnosis: verdict.diagnosis.clone(),
                    },
                );
                let waiters = in_flight
                    .lock()
                    .expect("in-flight table poisoned")
                    .remove(&key)
                    .unwrap_or_default();
                for (widx, problem_id) in waiters {
                    emit(
                        widx,
                        JobResult {
                            problem_id,
                            passed: verdict.passed,
                            simulated_ms: verdict.simulated_ms,
                            worker: w,
                            diagnosis: verdict.diagnosis.clone(),
                        },
                    );
                }
            });
        }
    });
    StreamStats {
        workers,
        executed: executed.load(Ordering::Relaxed),
        cache_hits: cache_hits.load(Ordering::Relaxed),
    }
}

/// A [`JobResult`] served from cache (no worker ran it this run).
fn cached_result(problem_id: String, v: CachedVerdict) -> JobResult {
    JobResult {
        problem_id,
        passed: v.passed,
        simulated_ms: v.simulated_ms,
        worker: 0,
        diagnosis: v.diagnosis,
    }
}

/// The seed §3.3 master/worker engine: jobs flow through a Redis-like
/// blocking queue, workers claim them with `BLPOP`, results return keyed
/// by index. No deduplication, no stealing — the faithful distributed
/// model, and the baseline `cargo bench` compares the sharded engine to.
pub fn run_jobs_queue(jobs: &[UnitTestJob], workers: usize) -> RunReport {
    let redis = Arc::new(MiniRedis::new());
    let start = Instant::now();
    // Master: enqueue jobs keyed by index; store payloads in hashes.
    for (i, job) in jobs.iter().enumerate() {
        let key = format!("job:{i}");
        redis.hset(&key, "problem", &job.problem_id);
        redis.hset(&key, "script", &job.script);
        redis.hset(&key, "candidate", job.candidate_yaml());
        redis.rpush(QUEUE, i.to_string());
    }
    let workers = workers.max(1);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let redis = Arc::clone(&redis);
            scope.spawn(move || {
                while let Some(idx) = redis.blpop(QUEUE, Duration::from_millis(20)) {
                    let key = format!("job:{idx}");
                    let problem = redis.hget(&key, "problem").unwrap_or_default();
                    let script = redis.hget(&key, "script").unwrap_or_default();
                    let candidate = redis.hget(&key, "candidate").unwrap_or_default();
                    let (passed, simulated_ms) = run_one(&script, &candidate);
                    redis.hset(
                        RESULTS,
                        &idx,
                        format!(
                            "{problem}\u{1}{}\u{1}{simulated_ms}\u{1}{w}",
                            u8::from(passed)
                        ),
                    );
                    redis.incr("completed");
                }
            });
        }
    });
    let mut results = Vec::with_capacity(jobs.len());
    for i in 0..jobs.len() {
        let raw = redis
            .hget(RESULTS, &i.to_string())
            .unwrap_or_else(|| String::from("?\u{1}0\u{1}0\u{1}0"));
        let mut parts = raw.split('\u{1}');
        let problem_id = parts.next().unwrap_or("?").to_owned();
        let passed = parts.next() == Some("1");
        let simulated_ms: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        let worker: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        results.push(JobResult {
            problem_id,
            passed,
            simulated_ms,
            worker,
            // The queue wire format (the seed-faithful baseline) does not
            // carry diagnoses.
            diagnosis: None,
        });
    }
    let executed = jobs.len();
    RunReport {
        results,
        wall: start.elapsed(),
        workers,
        executed,
        cache_hits: 0,
        stolen: 0,
    }
}

/// Runs one unit test hermetically through the shell substrate. Returns
/// (passed, simulated cluster ms). Text path by construction: the
/// candidate traveled through the queue as a string, like a real
/// distributed deployment would ship it.
fn run_one(script: &str, candidate: &str) -> (bool, u64) {
    let verdict = execute_uncached_text(candidate, script);
    (verdict.passed, verdict.simulated_ms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    fn sample_jobs(n: usize) -> Vec<UnitTestJob> {
        let script = "kubectl apply -f labeled_code.yaml\nkubectl wait --for=condition=Ready pod -l app=t --timeout=60s && echo unit_test_passed";
        (0..n)
            .map(|i| {
                // Distinct pod names keep the jobs content-distinct, like
                // real problems (identical candidates are a cache test).
                // Alternate candidate representations so every engine is
                // exercised on both the text and the parse-once path.
                let yaml = format!("apiVersion: v1\nkind: Pod\nmetadata:\n  name: web-{i}\n  labels:\n    app: t\nspec:\n  containers:\n  - name: c\n    image: nginx\n");
                if i % 2 == 0 {
                    UnitTestJob::new(format!("p{i}"), script, yaml)
                } else {
                    UnitTestJob::prepared(format!("p{i}"), script, PreparedDoc::shared(yaml))
                }
            })
            .collect()
    }

    #[test]
    fn all_jobs_complete_and_pass() {
        let jobs = sample_jobs(24);
        let report = run_jobs(&jobs, 4);
        assert_eq!(report.results.len(), 24);
        assert_eq!(report.passed(), 24);
        assert_eq!(report.executed, 24);
        assert_eq!(report.cache_hits, 0);
        // Results ordered by input.
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.problem_id, format!("p{i}"));
            assert!(r.simulated_ms > 0);
        }
    }

    #[test]
    fn failing_candidate_fails() {
        let mut jobs = sample_jobs(3);
        jobs[1] = UnitTestJob::new(
            "p1",
            jobs[1].script.clone(),
            "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: x\n",
        );
        let report = run_jobs(&jobs, 2);
        assert!(report.results[0].passed);
        assert!(!report.results[1].passed);
        assert!(report.results[2].passed);
    }

    #[test]
    fn work_spreads_across_workers() {
        let jobs = sample_jobs(200);
        let report = run_jobs(&jobs, 4);
        let distinct: std::collections::HashSet<usize> =
            report.results.iter().map(|r| r.worker).collect();
        assert!(
            distinct.len() >= 2,
            "expected multiple workers, got {distinct:?}"
        );
        assert_eq!(report.passed(), 200);
    }

    #[test]
    fn single_worker_works() {
        let jobs = sample_jobs(5);
        let report = run_jobs(&jobs, 1);
        assert_eq!(report.passed(), 5);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn empty_job_list() {
        let report = run_jobs(&[], 4);
        assert!(report.results.is_empty());
        assert_eq!(report.executed, 0);
    }

    #[test]
    fn identical_candidates_execute_once() {
        // 24 copies of the same (candidate, script): one execution, 23
        // cache hits, identical verdicts in input order.
        let mut jobs = sample_jobs(1);
        let template = jobs[0].clone();
        for i in 1..24 {
            let mut dup = template.clone();
            dup.problem_id = format!("dup{i}");
            jobs.push(dup);
        }
        let report = run_jobs(&jobs, 4);
        assert_eq!(report.executed, 1);
        assert_eq!(report.cache_hits, 23);
        assert_eq!(report.passed(), 24);
        assert_eq!(report.results[23].problem_id, "dup23");
    }

    #[test]
    fn text_and_prepared_candidates_share_keys_and_verdicts() {
        let jobs = sample_jobs(2);
        let text = UnitTestJob::new("t", jobs[0].script.clone(), jobs[0].candidate_yaml());
        let prepared = UnitTestJob::prepared(
            "t",
            jobs[0].script.clone(),
            PreparedDoc::shared(jobs[0].candidate_yaml()),
        );
        // Same content → same memo key (cross-representation dedup) and
        // the same verdict from either execution path.
        assert_eq!(text.memo_key(), prepared.memo_key());
        assert_eq!(text, prepared);
        assert!(!text.is_prepared());
        assert!(prepared.is_prepared());
        let vt = execute_uncached_text(text.candidate_yaml(), &text.script);
        let vp = execute_uncached(&PreparedDoc::new(text.candidate_yaml()), &text.script);
        assert_eq!(vt, vp);
        assert!(vt.passed);
        // Garbage candidates agree too (typed invalid-input on both).
        let garbage = "not yaml {{{";
        assert_eq!(
            execute_uncached_text(garbage, &text.script),
            execute_uncached(&PreparedDoc::new(garbage), &text.script),
        );
    }

    #[test]
    fn memo_carries_across_runs() {
        let memo = ScoreMemo::new();
        let jobs = sample_jobs(6);
        let first = run_jobs_cached(&jobs, 2, &memo);
        assert_eq!(first.executed, 6);
        let second = run_jobs_cached(&jobs, 2, &memo);
        assert_eq!(second.executed, 0);
        assert_eq!(second.cache_hits, 6);
        assert_eq!(first.passed(), second.passed());
    }

    /// A pod that deploys fine while the check waits on a label no pod
    /// carries — the wait runs out its deadline (`ProbeTimeout`,
    /// retryable).
    fn timeout_job() -> UnitTestJob {
        UnitTestJob::new(
            "timeout",
            "kubectl apply -f labeled_code.yaml\nkubectl wait --for=condition=Ready pod -l app=ghost --timeout=30s && echo unit_test_passed",
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: t\nspec:\n  containers:\n  - name: c\n    image: nginx\n",
        )
    }

    /// A pod with an unknown field — strict decoding rejects it
    /// (`SchemaViolation`, deterministic: never retryable).
    fn schema_job() -> UnitTestJob {
        UnitTestJob::new(
            "schema",
            "kubectl apply -f labeled_code.yaml && echo unit_test_passed",
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containerz: []\n",
        )
    }

    #[test]
    fn retry_jobs_reexecute_only_retryable_failures() {
        let memo = ScoreMemo::new();
        let jobs = [timeout_job(), schema_job()];
        let first = run_jobs_cached(&jobs, 2, &memo);
        assert_eq!(first.executed, 2);
        assert_eq!(first.passed(), 0);
        assert_eq!(
            first.results[0].diagnosis.as_ref().map(|d| d.bucket),
            Some(substrate::taxonomy::Bucket::ProbeTimeout)
        );
        assert_eq!(
            first.results[1].diagnosis.as_ref().map(|d| d.bucket),
            Some(substrate::taxonomy::Bucket::SchemaViolation)
        );

        // Plain resubmission: everything is a memo hit (unchanged policy).
        let warm = run_jobs_cached(&jobs, 2, &memo);
        assert_eq!((warm.executed, warm.cache_hits), (0, 2));

        // Repair resubmission: the retryable timeout re-executes, the
        // deterministic schema fault is still answered from the memo.
        let retries = [timeout_job().retry(), schema_job().retry()];
        assert!(retries.iter().all(UnitTestJob::is_retry));
        let retried = run_jobs_cached(&retries, 2, &memo);
        assert_eq!((retried.executed, retried.cache_hits), (1, 1));
        // Diagnoses ride along either way.
        assert!(retried.results.iter().all(|r| r.diagnosis.is_some()));
    }

    #[test]
    fn stream_engine_retry_semantics_match_batch() {
        let memo = ScoreMemo::new();
        run_jobs_cached(&[timeout_job(), schema_job()], 2, &memo);

        let (tx, rx) = std::sync::mpsc::channel();
        tx.send((0, timeout_job().retry())).unwrap();
        tx.send((1, schema_job().retry())).unwrap();
        drop(tx);
        let results = Mutex::new(vec![None, None]);
        let stats = run_jobs_stream(rx, 2, &memo, |idx, result| {
            results.lock().unwrap()[idx] = Some(result);
        });
        assert_eq!((stats.executed, stats.cache_hits), (1, 1));
        let results = results.into_inner().unwrap();
        let timeout = results[0].as_ref().expect("timeout retry answered");
        let schema = results[1].as_ref().expect("schema retry answered");
        assert!(!timeout.passed && !schema.passed);
        assert_eq!(
            schema.diagnosis.as_ref().map(|d| d.bucket),
            Some(substrate::taxonomy::Bucket::SchemaViolation)
        );
    }

    #[test]
    fn sharded_and_queue_engines_agree() {
        let mut jobs = sample_jobs(12);
        jobs[4] = UnitTestJob::new(
            "p4",
            jobs[4].script.clone(),
            "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: x\n",
        );
        jobs[9] = UnitTestJob::prepared(
            "p9",
            jobs[9].script.clone(),
            PreparedDoc::shared("not yaml {{{"),
        );
        let sharded = run_jobs(&jobs, 3);
        let queue = run_jobs_queue(&jobs, 3);
        for (a, b) in sharded.results.iter().zip(&queue.results) {
            assert_eq!(a.problem_id, b.problem_id);
            assert_eq!(a.passed, b.passed, "{}", a.problem_id);
            assert_eq!(a.simulated_ms, b.simulated_ms, "{}", a.problem_id);
        }
    }
}
