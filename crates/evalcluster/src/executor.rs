//! The real parallel unit-test executor: master/worker over the
//! [`MiniRedis`](crate::miniredis::MiniRedis) queue, running actual
//! `minishell` unit tests against per-worker simulated clusters.
//!
//! This is the live counterpart of §3.3's "Scalable Evaluation Cluster":
//! users dispatch unit-testing jobs to the master, available workers claim
//! them, and results flow back keyed by problem. Because every job gets a
//! fresh [`minishell::ClusterSandbox`], tests are hermetic — the clean
//! environment guarantee the paper gets from tearing clusters down.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::miniredis::MiniRedis;

/// One unit-test job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitTestJob {
    /// Problem identifier.
    pub problem_id: String,
    /// The bash unit-test script.
    pub script: String,
    /// Candidate YAML mounted at `labeled_code.yaml`.
    pub candidate_yaml: String,
}

/// Result of one job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobResult {
    /// Problem identifier.
    pub problem_id: String,
    /// Did the transcript contain `unit_test_passed`?
    pub passed: bool,
    /// Simulated in-cluster seconds the test consumed (sleeps + waits).
    pub simulated_ms: u64,
    /// Which worker ran it.
    pub worker: usize,
}

/// Outcome of a full run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Per-job results, in input order.
    pub results: Vec<JobResult>,
    /// Real wall-clock time of the parallel run.
    pub wall: Duration,
    /// Worker count used.
    pub workers: usize,
}

impl RunReport {
    /// Number of passed jobs.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.passed).count()
    }
}

const QUEUE: &str = "cloudeval:jobs";
const RESULTS: &str = "cloudeval:results";

/// Runs all jobs over `workers` threads; results come back in input order.
pub fn run_jobs(jobs: &[UnitTestJob], workers: usize) -> RunReport {
    let redis = Arc::new(MiniRedis::new());
    let start = Instant::now();
    // Master: enqueue jobs keyed by index; store payloads in hashes.
    for (i, job) in jobs.iter().enumerate() {
        let key = format!("job:{i}");
        redis.hset(&key, "problem", &job.problem_id);
        redis.hset(&key, "script", &job.script);
        redis.hset(&key, "candidate", &job.candidate_yaml);
        redis.rpush(QUEUE, i.to_string());
    }
    let workers = workers.max(1);
    std::thread::scope(|scope| {
        for w in 0..workers {
            let redis = Arc::clone(&redis);
            scope.spawn(move || {
                while let Some(idx) = redis.blpop(QUEUE, Duration::from_millis(20)) {
                    let key = format!("job:{idx}");
                    let problem = redis.hget(&key, "problem").unwrap_or_default();
                    let script = redis.hget(&key, "script").unwrap_or_default();
                    let candidate = redis.hget(&key, "candidate").unwrap_or_default();
                    let (passed, simulated_ms) = run_one(&script, &candidate);
                    redis.hset(
                        RESULTS,
                        &idx,
                        format!(
                            "{problem}\u{1}{}\u{1}{simulated_ms}\u{1}{w}",
                            u8::from(passed)
                        ),
                    );
                    redis.incr("completed");
                }
            });
        }
    });
    let mut results = Vec::with_capacity(jobs.len());
    for i in 0..jobs.len() {
        let raw = redis
            .hget(RESULTS, &i.to_string())
            .unwrap_or_else(|| String::from("?\u{1}0\u{1}0\u{1}0"));
        let mut parts = raw.split('\u{1}');
        let problem_id = parts.next().unwrap_or("?").to_owned();
        let passed = parts.next() == Some("1");
        let simulated_ms: u64 = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        let worker: usize = parts.next().and_then(|s| s.parse().ok()).unwrap_or(0);
        results.push(JobResult {
            problem_id,
            passed,
            simulated_ms,
            worker,
        });
    }
    RunReport {
        results,
        wall: start.elapsed(),
        workers,
    }
}

/// Runs one unit test hermetically. Returns (passed, simulated cluster ms).
fn run_one(script: &str, candidate: &str) -> (bool, u64) {
    let mut sandbox = minishell::ClusterSandbox::new();
    let mut shell = minishell::Interp::new(&mut sandbox);
    shell
        .files
        .insert("labeled_code.yaml".to_owned(), candidate.to_owned());
    match shell.run_script(script) {
        Ok(outcome) => {
            let simulated = sandbox.cluster.now_ms();
            (outcome.combined.contains("unit_test_passed"), simulated)
        }
        Err(_) => (false, 0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_jobs(n: usize) -> Vec<UnitTestJob> {
        let manifest = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: t\nspec:\n  containers:\n  - name: c\n    image: nginx\n";
        let script = "kubectl apply -f labeled_code.yaml\nkubectl wait --for=condition=Ready pod -l app=t --timeout=60s && echo unit_test_passed";
        (0..n)
            .map(|i| UnitTestJob {
                problem_id: format!("p{i}"),
                script: script.to_owned(),
                candidate_yaml: manifest.to_owned(),
            })
            .collect()
    }

    #[test]
    fn all_jobs_complete_and_pass() {
        let jobs = sample_jobs(24);
        let report = run_jobs(&jobs, 4);
        assert_eq!(report.results.len(), 24);
        assert_eq!(report.passed(), 24);
        // Results ordered by input.
        for (i, r) in report.results.iter().enumerate() {
            assert_eq!(r.problem_id, format!("p{i}"));
            assert!(r.simulated_ms > 0);
        }
    }

    #[test]
    fn failing_candidate_fails() {
        let mut jobs = sample_jobs(3);
        jobs[1].candidate_yaml = "apiVersion: v1\nkind: ConfigMap\nmetadata:\n  name: x\n".into();
        let report = run_jobs(&jobs, 2);
        assert!(report.results[0].passed);
        assert!(!report.results[1].passed);
        assert!(report.results[2].passed);
    }

    #[test]
    fn work_spreads_across_workers() {
        // Enough jobs that a single worker cannot drain the queue before
        // its peers start pulling (scheduling is inherently racy).
        let jobs = sample_jobs(200);
        let report = run_jobs(&jobs, 4);
        let distinct: std::collections::HashSet<usize> =
            report.results.iter().map(|r| r.worker).collect();
        assert!(
            distinct.len() >= 2,
            "expected multiple workers, got {distinct:?}"
        );
        assert_eq!(report.passed(), 200);
    }

    #[test]
    fn single_worker_works() {
        let jobs = sample_jobs(5);
        let report = run_jobs(&jobs, 1);
        assert_eq!(report.passed(), 5);
        assert_eq!(report.workers, 1);
    }

    #[test]
    fn empty_job_list() {
        let report = run_jobs(&[], 4);
        assert!(report.results.is_empty());
    }
}
