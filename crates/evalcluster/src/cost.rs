//! The benchmark's running-cost model (§3.4, Table 3): LLM inference cost
//! plus cloud evaluation cost for three cluster configurations.

/// Inference pricing options from Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InferenceOption {
    /// OpenAI GPT-3.5 API (token-priced).
    Gpt35Api,
    /// Llama-7b hosted on replicate.com (time-priced).
    Llama7bReplicate,
}

/// Cloud evaluation options from Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloudOption {
    /// One GCP spot instance (4-core/8GB).
    GcpSpotX1,
    /// 64 GCP spot instances.
    GcpSpotX64,
    /// 64 GCP standard instances.
    GcpStdX64,
}

/// Hourly rate for a 4-core/8 GB GCP instance (e2-standard-4-like).
const SPOT_RATE_PER_H: f64 = 0.069;
const STD_RATE_PER_H: f64 = 0.172;

/// GPT-3.5-turbo 4k pricing at the paper's submission time (footnote 4).
const GPT35_PER_1K_TOKENS: f64 = 0.002;
/// Replicate A100 time-pricing for llama-7b, effective per problem.
const LLAMA_REPLICATE_PER_PROBLEM: f64 = 2.90 / 1011.0;

/// Average tokens per problem: prompt (≈500 per Table 1) + answer.
const AVG_TOKENS_PER_PROBLEM: f64 = 300.0;

/// Cost of running LLM inference over `problems` problems, in dollars.
pub fn inference_cost(option: InferenceOption, problems: usize) -> f64 {
    match option {
        InferenceOption::Gpt35Api => {
            problems as f64 * AVG_TOKENS_PER_PROBLEM / 1000.0 * GPT35_PER_1K_TOKENS
        }
        InferenceOption::Llama7bReplicate => problems as f64 * LLAMA_REPLICATE_PER_PROBLEM,
    }
}

/// Cost of the cloud evaluation for a given option, using evaluation hours
/// from the Figure 5 simulation.
pub fn evaluation_cost(option: CloudOption, hours_x1: f64, hours_x64: f64) -> f64 {
    match option {
        CloudOption::GcpSpotX1 => hours_x1 * SPOT_RATE_PER_H,
        CloudOption::GcpSpotX64 => hours_x64 * 64.0 * SPOT_RATE_PER_H,
        CloudOption::GcpStdX64 => hours_x64 * 64.0 * STD_RATE_PER_H,
    }
}

/// One row of the Table 3 reproduction.
#[derive(Debug, Clone, PartialEq)]
pub struct CostRow {
    /// Human-readable label.
    pub label: String,
    /// Dollars.
    pub dollars: f64,
}

/// Computes the full Table 3: inference options, evaluation options, and
/// the min/max total range.
pub fn table3(hours_x1: f64, hours_x64: f64) -> (Vec<CostRow>, f64, f64) {
    let rows = vec![
        CostRow {
            label: "GPT-3.5 inference".into(),
            dollars: inference_cost(InferenceOption::Gpt35Api, 1011),
        },
        CostRow {
            label: "Llama-7b (replicate.com) inference".into(),
            dollars: inference_cost(InferenceOption::Llama7bReplicate, 1011),
        },
        CostRow {
            label: "GCP spot x1 evaluation".into(),
            dollars: evaluation_cost(CloudOption::GcpSpotX1, hours_x1, hours_x64),
        },
        CostRow {
            label: "GCP spot x64 evaluation".into(),
            dollars: evaluation_cost(CloudOption::GcpSpotX64, hours_x1, hours_x64),
        },
        CostRow {
            label: "GCP std x64 evaluation".into(),
            dollars: evaluation_cost(CloudOption::GcpStdX64, hours_x1, hours_x64),
        },
    ];
    let inference_min = rows[0].dollars.min(rows[1].dollars);
    let inference_max = rows[0].dollars.max(rows[1].dollars);
    let eval_min = rows[2..]
        .iter()
        .map(|r| r.dollars)
        .fold(f64::INFINITY, f64::min);
    let eval_max = rows[2..].iter().map(|r| r.dollars).fold(0.0, f64::max);
    (rows, inference_min + eval_min, inference_max + eval_max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt35_inference_matches_paper() {
        // Paper: $0.60 for all 1011 problems.
        let c = inference_cost(InferenceOption::Gpt35Api, 1011);
        assert!((c - 0.60).abs() < 0.05, "{c}");
    }

    #[test]
    fn llama_inference_matches_paper() {
        let c = inference_cost(InferenceOption::Llama7bReplicate, 1011);
        assert!((c - 2.90).abs() < 0.01);
    }

    #[test]
    fn evaluation_costs_match_paper_at_paper_hours() {
        // With the paper's measured hours (10.3h x1, 0.50h x64):
        let spot1 = evaluation_cost(CloudOption::GcpSpotX1, 10.3, 0.50);
        let spot64 = evaluation_cost(CloudOption::GcpSpotX64, 10.3, 0.50);
        let std64 = evaluation_cost(CloudOption::GcpStdX64, 10.3, 0.50);
        assert!((spot1 - 0.71).abs() < 0.03, "{spot1}");
        assert!((spot64 - 2.20).abs() < 0.05, "{spot64}");
        assert!((std64 - 5.51).abs() < 0.1, "{std64}");
    }

    #[test]
    fn cheapest_total_is_about_1_31() {
        let (_, min_total, max_total) = table3(10.3, 0.50);
        assert!((min_total - 1.31).abs() < 0.1, "{min_total}");
        assert!((max_total - 8.41).abs() < 0.3, "{max_total}");
    }

    #[test]
    fn costs_scale_with_problem_count() {
        assert!(
            inference_cost(InferenceOption::Gpt35Api, 2022)
                > inference_cost(InferenceOption::Gpt35Api, 1011)
        );
    }
}
