//! Shapley value attributions for the boosted classifier (the SHAP
//! analysis of Figure 9(b)).
//!
//! Feature counts in this benchmark are tiny (5 scoring metrics), so we
//! compute **exact** Shapley values by enumerating all 2^d feature
//! coalitions, with coalition values given by the tree-conditional
//! expectation (`cover`-weighted marginalization) — the same value
//! function TreeSHAP uses.

use crate::gbdt::Classifier;

/// Exact Shapley values of the margin for one instance. Returns one value
/// per feature; they satisfy local accuracy:
/// `base + Σφ = margin(x)`.
///
/// # Panics
///
/// Panics if `x.len() > 20` (coalition enumeration is exponential; the
/// benchmark uses 5 features).
pub fn shap_values(clf: &Classifier, x: &[f64]) -> Vec<f64> {
    let d = x.len();
    assert!(d <= 20, "exact enumeration supports at most 20 features");
    let full: u32 = if d == 32 { u32::MAX } else { (1u32 << d) - 1 };
    // Precompute v(S) for all coalitions.
    let mut value = vec![0.0f64; (full as usize) + 1];
    for (mask, slot) in value.iter_mut().enumerate() {
        *slot = clf.expected_margin(x, mask as u32);
    }
    let mut factorial = vec![1.0f64; d + 1];
    for i in 1..=d {
        factorial[i] = factorial[i - 1] * i as f64;
    }
    let d_fact = factorial[d];
    let mut phi = vec![0.0f64; d];
    for (feature, phi_f) in phi.iter_mut().enumerate() {
        let bit = 1u32 << feature;
        for mask in 0..=full {
            if mask & bit != 0 {
                continue;
            }
            let s = (mask.count_ones()) as usize;
            let weight = factorial[s] * factorial[d - s - 1] / d_fact;
            *phi_f += weight * (value[(mask | bit) as usize] - value[mask as usize]);
        }
    }
    phi
}

/// The model's base value (expected margin with nothing observed).
pub fn base_value(clf: &Classifier, num_features: usize) -> f64 {
    clf.expected_margin(&vec![0.0; num_features], 0)
}

/// Mean absolute SHAP value per feature over a sample of rows — the
/// global importance ranking shown in Figure 9(b).
pub fn mean_abs_shap(clf: &Classifier, rows: &[Vec<f64>]) -> Vec<f64> {
    if rows.is_empty() {
        return Vec::new();
    }
    let d = rows[0].len();
    let mut sums = vec![0.0; d];
    for x in rows {
        for (s, phi) in sums.iter_mut().zip(shap_values(clf, x)) {
            *s += phi.abs();
        }
    }
    for s in &mut sums {
        *s /= rows.len() as f64;
    }
    sums
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gbdt::BoostParams;

    /// Label depends almost entirely on feature 0.
    fn one_feature_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..400 {
            let a = (i % 20) as f64 / 20.0;
            let b = ((i * 7) % 20) as f64 / 20.0;
            let c = ((i * 13) % 20) as f64 / 20.0;
            xs.push(vec![a, b, c]);
            ys.push(if a > 0.5 { 1.0 } else { 0.0 });
        }
        (xs, ys)
    }

    #[test]
    fn local_accuracy_holds() {
        let (xs, ys) = one_feature_data();
        let clf = Classifier::fit(&xs, &ys, &BoostParams::default());
        for x in xs.iter().take(16) {
            let phi = shap_values(&clf, x);
            let reconstructed = base_value(&clf, x.len()) + phi.iter().sum::<f64>();
            let margin = clf.margin(x);
            assert!(
                (reconstructed - margin).abs() < 1e-9,
                "{reconstructed} != {margin}"
            );
        }
    }

    #[test]
    fn dominant_feature_gets_dominant_attribution() {
        let (xs, ys) = one_feature_data();
        let clf = Classifier::fit(&xs, &ys, &BoostParams::default());
        let importance = mean_abs_shap(&clf, &xs[..100]);
        assert!(importance[0] > 5.0 * importance[1], "{importance:?}");
        assert!(importance[0] > 5.0 * importance[2], "{importance:?}");
    }

    #[test]
    fn symmetric_features_get_equal_attribution() {
        // y depends on x0 + x1 symmetrically.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..400 {
            let a = (i % 20) as f64 / 20.0;
            let b = ((i / 20) % 20) as f64 / 20.0;
            xs.push(vec![a, b]);
            ys.push(if a + b > 1.0 { 1.0 } else { 0.0 });
        }
        let clf = Classifier::fit(&xs, &ys, &BoostParams::default());
        let importance = mean_abs_shap(&clf, &xs);
        let ratio = importance[0] / importance[1];
        assert!((0.6..1.7).contains(&ratio), "asymmetric: {importance:?}");
    }

    #[test]
    fn shap_of_irrelevant_feature_is_near_zero_for_single_instance() {
        let (xs, ys) = one_feature_data();
        let clf = Classifier::fit(&xs, &ys, &BoostParams::default());
        let phi = shap_values(&clf, &[0.9, 0.5, 0.5]);
        assert!(phi[0].abs() > phi[1].abs());
    }
}
