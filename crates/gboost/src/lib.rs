//! # gboost
//!
//! Gradient-boosted decision trees with exact Shapley attributions — the
//! offline stand-in for XGBoost (Chen & Guestrin, 2016) and SHAP
//! (Lundberg et al., 2020) in the paper's §4.4 study: *can text-level and
//! YAML-aware scores predict unit-test outcomes?*
//!
//! The pieces:
//! * [`Tree`] — regression trees fit by variance reduction, with
//!   cover-weighted conditional expectations;
//! * [`Classifier`] — logistic-loss boosting over those trees;
//! * [`shap_values`] — exact coalition-enumeration Shapley values of the
//!   margin (the benchmark has 5 features, so 32 coalitions).
//!
//! # Examples
//!
//! ```
//! use gboost::{BoostParams, Classifier};
//!
//! // Pass/fail depends mostly on the first score.
//! let features: Vec<Vec<f64>> = (0..200).map(|i| vec![(i % 10) as f64 / 10.0, 0.5]).collect();
//! let labels: Vec<f64> = features.iter().map(|x| f64::from(x[0] > 0.6)).collect();
//! let clf = Classifier::fit(&features, &labels, &BoostParams::default());
//! assert!(clf.predict(&[0.9, 0.5]));
//! assert!(!clf.predict(&[0.1, 0.5]));
//!
//! let phi = gboost::shap_values(&clf, &[0.9, 0.5]);
//! assert!(phi[0].abs() > phi[1].abs());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod gbdt;
mod shap;
mod tree;

pub use gbdt::{BoostParams, Classifier};
pub use shap::{base_value, mean_abs_shap, shap_values};
pub use tree::{Tree, TreeParams};
