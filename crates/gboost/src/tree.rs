//! Regression trees fit to gradients — the weak learner inside the
//! boosted classifier.

/// A binary regression tree stored as a flat arena.
#[derive(Debug, Clone, PartialEq)]
pub struct Tree {
    nodes: Vec<Node>,
}

/// One node. Leaves have `feature == usize::MAX`.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Node {
    pub feature: usize,
    pub threshold: f64,
    pub left: usize,
    pub right: usize,
    /// Leaf output (undefined for internal nodes).
    pub value: f64,
    /// Number of training rows that reached this node ("cover").
    pub cover: f64,
}

const LEAF: usize = usize::MAX;

/// Hyper-parameters for a single tree fit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum rows in a node eligible for splitting.
    pub min_samples_split: usize,
    /// Minimum variance-reduction gain required to split.
    pub min_gain: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 3,
            min_samples_split: 10,
            min_gain: 1e-7,
        }
    }
}

impl Tree {
    /// Fits a regression tree to `(features, targets)` by greedy variance
    /// reduction.
    ///
    /// # Panics
    ///
    /// Panics if `features` and `targets` lengths differ or the matrix is
    /// empty.
    pub fn fit(features: &[Vec<f64>], targets: &[f64], params: &TreeParams) -> Tree {
        assert_eq!(features.len(), targets.len(), "row count mismatch");
        assert!(!features.is_empty(), "cannot fit an empty tree");
        let mut tree = Tree { nodes: Vec::new() };
        let rows: Vec<usize> = (0..features.len()).collect();
        tree.build(features, targets, &rows, 0, params);
        tree
    }

    fn build(
        &mut self,
        features: &[Vec<f64>],
        targets: &[f64],
        rows: &[usize],
        depth: usize,
        params: &TreeParams,
    ) -> usize {
        let mean = rows.iter().map(|&r| targets[r]).sum::<f64>() / rows.len() as f64;
        let node_idx = self.nodes.len();
        self.nodes.push(Node {
            feature: LEAF,
            threshold: 0.0,
            left: 0,
            right: 0,
            value: mean,
            cover: rows.len() as f64,
        });
        if depth >= params.max_depth || rows.len() < params.min_samples_split {
            return node_idx;
        }
        let Some((feature, threshold, gain)) = best_split(features, targets, rows) else {
            return node_idx;
        };
        if gain < params.min_gain {
            return node_idx;
        }
        let (left_rows, right_rows): (Vec<usize>, Vec<usize>) = rows
            .iter()
            .partition(|&&r| features[r][feature] <= threshold);
        if left_rows.is_empty() || right_rows.is_empty() {
            return node_idx;
        }
        let left = self.build(features, targets, &left_rows, depth + 1, params);
        let right = self.build(features, targets, &right_rows, depth + 1, params);
        let node = &mut self.nodes[node_idx];
        node.feature = feature;
        node.threshold = threshold;
        node.left = left;
        node.right = right;
        node_idx
    }

    /// Predicts the leaf value for one row.
    pub fn predict(&self, x: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            let n = &self.nodes[i];
            if n.feature == LEAF {
                return n.value;
            }
            i = if x[n.feature] <= n.threshold {
                n.left
            } else {
                n.right
            };
        }
    }

    /// Scales every leaf by the learning rate (post-fit shrinkage).
    pub fn scale(&mut self, factor: f64) {
        for n in &mut self.nodes {
            if n.feature == LEAF {
                n.value *= factor;
            }
        }
    }

    /// Expected prediction when only the features in `known_mask` are
    /// fixed to `x`'s values; unknown features marginalize over the
    /// training distribution via cover weights (the tree-conditional
    /// expectation SHAP uses).
    pub fn expected_value(&self, x: &[f64], known_mask: u32) -> f64 {
        self.expected_from(0, x, known_mask)
    }

    fn expected_from(&self, idx: usize, x: &[f64], known_mask: u32) -> f64 {
        let n = &self.nodes[idx];
        if n.feature == LEAF {
            return n.value;
        }
        if known_mask & (1 << n.feature) != 0 {
            let next = if x[n.feature] <= n.threshold {
                n.left
            } else {
                n.right
            };
            self.expected_from(next, x, known_mask)
        } else {
            let lc = self.nodes[n.left].cover;
            let rc = self.nodes[n.right].cover;
            let total = (lc + rc).max(1.0);
            (lc / total) * self.expected_from(n.left, x, known_mask)
                + (rc / total) * self.expected_from(n.right, x, known_mask)
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tree is a single leaf.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() <= 1
    }
}

/// Finds the (feature, threshold) split maximizing variance reduction.
fn best_split(features: &[Vec<f64>], targets: &[f64], rows: &[usize]) -> Option<(usize, f64, f64)> {
    let dims = features[rows[0]].len();
    let total_sum: f64 = rows.iter().map(|&r| targets[r]).sum();
    let total_sq: f64 = rows.iter().map(|&r| targets[r] * targets[r]).sum();
    let n = rows.len() as f64;
    let base_sse = total_sq - total_sum * total_sum / n;
    let mut best: Option<(usize, f64, f64)> = None;
    // `f` is a semantic feature index (it names the winning split), not an
    // iteration over `features` rows; an iterator form would obscure that.
    #[allow(clippy::needless_range_loop)]
    for f in 0..dims {
        let mut sorted: Vec<usize> = rows.to_vec();
        sorted.sort_by(|&a, &b| {
            features[a][f]
                .partial_cmp(&features[b][f])
                .expect("no NaN features")
        });
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for (k, &r) in sorted.iter().enumerate().take(sorted.len() - 1) {
            let y = targets[r];
            left_sum += y;
            left_sq += y * y;
            let x_here = features[r][f];
            let x_next = features[sorted[k + 1]][f];
            if x_here == x_next {
                continue; // cannot split between equal values
            }
            let ln = (k + 1) as f64;
            let rn = n - ln;
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let sse =
                (left_sq - left_sum * left_sum / ln) + (right_sq - right_sum * right_sum / rn);
            let gain = base_sse - sse;
            let threshold = 0.5 * (x_here + x_next);
            if best.map(|(_, _, g)| gain > g).unwrap_or(gain > 0.0) {
                best = Some((f, threshold, gain));
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_ish_data() -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 1 if x0 > 0.5, plus noise-free structure on x1.
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100 {
            let x0 = (i % 10) as f64 / 10.0;
            let x1 = (i / 10) as f64 / 10.0;
            xs.push(vec![x0, x1]);
            ys.push(if x0 > 0.45 { 1.0 } else { 0.0 });
        }
        (xs, ys)
    }

    #[test]
    fn learns_a_threshold() {
        let (xs, ys) = xor_ish_data();
        let tree = Tree::fit(&xs, &ys, &TreeParams::default());
        assert!(tree.predict(&[0.9, 0.1]) > 0.9);
        assert!(tree.predict(&[0.1, 0.9]) < 0.1);
    }

    #[test]
    fn depth_zero_is_the_mean() {
        let (xs, ys) = xor_ish_data();
        let tree = Tree::fit(
            &xs,
            &ys,
            &TreeParams {
                max_depth: 0,
                ..Default::default()
            },
        );
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!((tree.predict(&[0.0, 0.0]) - mean).abs() < 1e-12);
        assert!(tree.is_empty());
    }

    #[test]
    fn constant_targets_never_split() {
        let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64]).collect();
        let ys = vec![3.0; 50];
        let tree = Tree::fit(&xs, &ys, &TreeParams::default());
        assert!(tree.is_empty());
        assert!((tree.predict(&[17.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn expected_value_full_mask_equals_predict() {
        let (xs, ys) = xor_ish_data();
        let tree = Tree::fit(&xs, &ys, &TreeParams::default());
        for x in xs.iter().take(10) {
            assert!((tree.expected_value(x, 0b11) - tree.predict(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn expected_value_empty_mask_is_cover_weighted_mean() {
        let (xs, ys) = xor_ish_data();
        let tree = Tree::fit(&xs, &ys, &TreeParams::default());
        let mean = ys.iter().sum::<f64>() / ys.len() as f64;
        let e = tree.expected_value(&[0.0, 0.0], 0);
        assert!((e - mean).abs() < 0.05, "{e} vs {mean}");
    }

    #[test]
    fn scale_shrinks_leaves() {
        let (xs, ys) = xor_ish_data();
        let mut tree = Tree::fit(&xs, &ys, &TreeParams::default());
        let before = tree.predict(&[0.9, 0.5]);
        tree.scale(0.5);
        assert!((tree.predict(&[0.9, 0.5]) - before * 0.5).abs() < 1e-12);
    }
}
