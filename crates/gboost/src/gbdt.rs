//! Gradient-boosted binary classifier with logistic loss — the XGBoost
//! stand-in for the §4.4 unit-test predictor.

use crate::tree::{Tree, TreeParams};

/// Training hyper-parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BoostParams {
    /// Number of boosting rounds.
    pub rounds: usize,
    /// Shrinkage (learning rate).
    pub learning_rate: f64,
    /// Per-tree parameters.
    pub tree: TreeParams,
}

impl Default for BoostParams {
    fn default() -> Self {
        BoostParams {
            rounds: 60,
            learning_rate: 0.2,
            tree: TreeParams::default(),
        }
    }
}

/// A trained boosted classifier.
#[derive(Debug, Clone, PartialEq)]
pub struct Classifier {
    base_score: f64,
    trees: Vec<Tree>,
}

fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

impl Classifier {
    /// Trains on binary labels (`0.0`/`1.0`).
    ///
    /// # Panics
    ///
    /// Panics on empty input or mismatched lengths.
    pub fn fit(features: &[Vec<f64>], labels: &[f64], params: &BoostParams) -> Classifier {
        assert_eq!(features.len(), labels.len(), "row count mismatch");
        assert!(!features.is_empty(), "empty training set");
        let pos = labels
            .iter()
            .sum::<f64>()
            .clamp(1e-6, labels.len() as f64 - 1e-6);
        let prior = pos / labels.len() as f64;
        let base_score = (prior / (1.0 - prior)).ln();
        let mut margins = vec![base_score; labels.len()];
        let mut trees = Vec::with_capacity(params.rounds);
        for _ in 0..params.rounds {
            // Negative gradient of logistic loss: y - p.
            let residuals: Vec<f64> = margins
                .iter()
                .zip(labels)
                .map(|(m, y)| y - sigmoid(*m))
                .collect();
            let mut tree = Tree::fit(features, &residuals, &params.tree);
            tree.scale(params.learning_rate * 4.0); // ≈ Newton step for p(1-p)≤1/4
            for (m, x) in margins.iter_mut().zip(features) {
                *m += tree.predict(x);
            }
            trees.push(tree);
        }
        Classifier { base_score, trees }
    }

    /// Predicted probability of the positive class.
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        sigmoid(self.margin(x))
    }

    /// Predicted label with a 0.5 threshold.
    pub fn predict(&self, x: &[f64]) -> bool {
        self.predict_proba(x) >= 0.5
    }

    /// Raw margin (log-odds).
    pub fn margin(&self, x: &[f64]) -> f64 {
        self.base_score + self.trees.iter().map(|t| t.predict(x)).sum::<f64>()
    }

    /// Margin when only features in `known_mask` are observed; the rest
    /// marginalize via cover weights. Basis for Shapley values.
    pub fn expected_margin(&self, x: &[f64], known_mask: u32) -> f64 {
        self.base_score
            + self
                .trees
                .iter()
                .map(|t| t.expected_value(x, known_mask))
                .sum::<f64>()
    }

    /// The trained trees (for inspection).
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Classification accuracy on a labeled set.
    pub fn accuracy(&self, features: &[Vec<f64>], labels: &[f64]) -> f64 {
        if features.is_empty() {
            return 0.0;
        }
        let correct = features
            .iter()
            .zip(labels)
            .filter(|(x, y)| self.predict(x) == (**y >= 0.5))
            .count();
        correct as f64 / features.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Labels depend on a noisy linear score of 3 features.
    fn synthetic(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        let mut state = 0x12345678u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 1000) as f64 / 1000.0
        };
        for _ in 0..n {
            let a = rng();
            let b = rng();
            let c = rng();
            let score = 2.0 * a + 0.5 * b - 0.1 * c;
            xs.push(vec![a, b, c]);
            ys.push(if score > 1.2 { 1.0 } else { 0.0 });
        }
        (xs, ys)
    }

    #[test]
    fn learns_synthetic_rule() {
        let (xs, ys) = synthetic(600);
        let clf = Classifier::fit(&xs, &ys, &BoostParams::default());
        let acc = clf.accuracy(&xs, &ys);
        assert!(acc > 0.93, "train accuracy {acc}");
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let (xs, ys) = synthetic(900);
        let (train_x, test_x) = xs.split_at(600);
        let (train_y, test_y) = ys.split_at(600);
        let clf = Classifier::fit(train_x, train_y, &BoostParams::default());
        let acc = clf.accuracy(test_x, test_y);
        assert!(acc > 0.88, "test accuracy {acc}");
    }

    #[test]
    fn probabilities_are_calibrated_ish() {
        let (xs, ys) = synthetic(600);
        let clf = Classifier::fit(&xs, &ys, &BoostParams::default());
        let mean_p: f64 = xs.iter().map(|x| clf.predict_proba(x)).sum::<f64>() / xs.len() as f64;
        let base_rate: f64 = ys.iter().sum::<f64>() / ys.len() as f64;
        assert!(
            (mean_p - base_rate).abs() < 0.08,
            "mean p {mean_p} vs base {base_rate}"
        );
    }

    #[test]
    fn all_positive_labels_predict_positive() {
        let xs: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64]).collect();
        let ys = vec![1.0; 40];
        let clf = Classifier::fit(&xs, &ys, &BoostParams::default());
        assert!(clf.predict(&[5.0]));
        assert!(clf.predict_proba(&[5.0]) > 0.9);
    }

    #[test]
    fn expected_margin_full_mask_equals_margin() {
        let (xs, ys) = synthetic(300);
        let clf = Classifier::fit(&xs, &ys, &BoostParams::default());
        for x in xs.iter().take(5) {
            assert!((clf.expected_margin(x, 0b111) - clf.margin(x)).abs() < 1e-9);
        }
    }
}
