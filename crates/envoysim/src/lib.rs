//! # envoysim
//!
//! A model of Envoy's `static_resources` configuration — listeners, HTTP
//! connection managers, route tables and clusters — with validation and a
//! request-routing engine.
//!
//! CloudEval-YAML's Envoy problems are functionally tested by loading the
//! generated configuration into a proxy and probing it (§3.2: "We use
//! Docker to establish the cluster and perform testing on containers
//! directly for Envoy applications"). This crate replaces the container:
//! [`EnvoyConfig::parse`] performs the strict validation `envoy --mode
//! validate` would, and [`EnvoyConfig::route`] answers "which cluster
//! serves host H path P on listener port N", which is what the unit tests
//! assert.
//!
//! # Examples
//!
//! ```
//! let cfg = envoysim::EnvoyConfig::parse(envoysim::SAMPLE_CONFIG)?;
//! let out = cfg.route(10000, "example.com", "/");
//! assert_eq!(out, envoysim::RouteOutcome::Cluster("service_backend".into()));
//! # Ok::<(), envoysim::EnvoyConfigError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use yamlkit::Yaml;

/// A minimal but complete sample configuration (used in docs and tests).
pub const SAMPLE_CONFIG: &str = "\
static_resources:
  listeners:
  - name: listener_0
    address:
      socket_address:
        address: 0.0.0.0
        port_value: 10000
    filter_chains:
    - filters:
      - name: envoy.filters.network.http_connection_manager
        typed_config:
          \"@type\": type.googleapis.com/envoy.extensions.filters.network.http_connection_manager.v3.HttpConnectionManager
          stat_prefix: ingress_http
          route_config:
            name: local_route
            virtual_hosts:
            - name: backend
              domains: [\"*\"]
              routes:
              - match:
                  prefix: /
                route:
                  cluster: service_backend
  clusters:
  - name: service_backend
    connect_timeout: 0.25s
    type: STATIC
    lb_policy: ROUND_ROBIN
    load_assignment:
      cluster_name: service_backend
      endpoints:
      - lb_endpoints:
        - endpoint:
            address:
              socket_address:
                address: 127.0.0.1
                port_value: 8080
";

/// Validation failure for an Envoy configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvoyConfigError(String);

impl EnvoyConfigError {
    fn new(msg: impl Into<String>) -> Self {
        EnvoyConfigError(msg.into())
    }

    /// The error text, phrased like `envoy --mode validate` output.
    pub fn message(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for EnvoyConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "error initializing configuration: {}", self.0)
    }
}

impl std::error::Error for EnvoyConfigError {}

/// One route match rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PathMatch {
    /// `match.prefix`
    Prefix(String),
    /// `match.path` (exact)
    Exact(String),
    /// `match.safe_regex.regex` (treated as substring for simulation)
    Regex(String),
}

impl PathMatch {
    fn matches(&self, path: &str) -> bool {
        match self {
            PathMatch::Prefix(p) => path.starts_with(p.as_str()),
            PathMatch::Exact(p) => path == p,
            PathMatch::Regex(r) => {
                path.contains(r.trim_matches(['^', '$', '.', '*']).trim_matches('\\'))
            }
        }
    }
}

/// What a route does with a matched request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteAction {
    /// Forward to a cluster.
    Cluster(String),
    /// Weighted split across clusters `(name, weight)`.
    WeightedClusters(Vec<(String, u32)>),
    /// HTTP redirect.
    Redirect(String),
    /// Serve a canned response.
    DirectResponse(u16, String),
}

/// A single route: matcher plus action plus optional prefix rewrite.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Route {
    /// Path matcher.
    pub matcher: PathMatch,
    /// Action on match.
    pub action: RouteAction,
    /// `route.prefix_rewrite`, when set.
    pub prefix_rewrite: Option<String>,
}

/// A virtual host: domain set plus ordered routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VirtualHost {
    /// Host name (diagnostics only).
    pub name: String,
    /// Domains, `*` and `*.suffix` wildcards supported.
    pub domains: Vec<String>,
    /// Routes evaluated in order.
    pub routes: Vec<Route>,
}

impl VirtualHost {
    fn matches_domain(&self, host: &str) -> bool {
        let host = host.split(':').next().unwrap_or(host);
        self.domains.iter().any(|d| {
            d == "*"
                || d == host
                || (d.starts_with("*.") && host.ends_with(&d[1..]))
                || d.split(':').next() == Some(host)
        })
    }
}

/// A listener with its HTTP route table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Listener {
    /// Listener name.
    pub name: String,
    /// Bind address.
    pub address: String,
    /// Bind port.
    pub port: u16,
    /// Virtual hosts from the HTTP connection manager's route config.
    pub virtual_hosts: Vec<VirtualHost>,
}

/// An upstream cluster.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cluster {
    /// Cluster name (route targets reference this).
    pub name: String,
    /// Discovery type (`STATIC`, `STRICT_DNS`, `LOGICAL_DNS`, ...).
    pub discovery: String,
    /// Load-balancing policy.
    pub lb_policy: String,
    /// Endpoint `address:port` pairs.
    pub endpoints: Vec<(String, u16)>,
}

/// Result of routing one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouteOutcome {
    /// Forwarded to this cluster.
    Cluster(String),
    /// Redirected.
    Redirect(String),
    /// Direct response (status, body).
    DirectResponse(u16, String),
    /// No listener on that port.
    NoListener,
    /// Listener matched but no virtual host / route did.
    NotFound,
}

/// A parsed, validated Envoy static configuration.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EnvoyConfig {
    /// Listeners in file order.
    pub listeners: Vec<Listener>,
    /// Clusters in file order.
    pub clusters: Vec<Cluster>,
}

impl EnvoyConfig {
    /// Parses and validates configuration text.
    ///
    /// # Errors
    ///
    /// [`EnvoyConfigError`] for YAML errors, missing `static_resources`,
    /// listeners without ports, routes referencing unknown clusters,
    /// duplicate names, or empty domain lists.
    pub fn parse(text: &str) -> Result<EnvoyConfig, EnvoyConfigError> {
        let doc = yamlkit::parse_one(text)
            .map_err(|e| EnvoyConfigError::new(format!("malformed yaml: {e}")))?
            .to_value();
        let Some(static_resources) = doc.get("static_resources") else {
            return Err(EnvoyConfigError::new("missing static_resources"));
        };
        let mut config = EnvoyConfig::default();
        for (i, c) in static_resources
            .get("clusters")
            .into_iter()
            .flat_map(Yaml::items)
            .enumerate()
        {
            config.clusters.push(parse_cluster(c, i)?);
        }
        for (i, l) in static_resources
            .get("listeners")
            .into_iter()
            .flat_map(Yaml::items)
            .enumerate()
        {
            config.listeners.push(parse_listener(l, i)?);
        }
        config.validate()?;
        Ok(config)
    }

    fn validate(&self) -> Result<(), EnvoyConfigError> {
        let mut names: Vec<&str> = Vec::new();
        for c in &self.clusters {
            if names.contains(&c.name.as_str()) {
                return Err(EnvoyConfigError::new(format!(
                    "duplicate cluster name: {}",
                    c.name
                )));
            }
            names.push(&c.name);
        }
        for l in &self.listeners {
            for vh in &l.virtual_hosts {
                if vh.domains.is_empty() {
                    return Err(EnvoyConfigError::new(format!(
                        "virtual host {} has no domains",
                        vh.name
                    )));
                }
                for r in &vh.routes {
                    let targets: Vec<&str> = match &r.action {
                        RouteAction::Cluster(c) => vec![c.as_str()],
                        RouteAction::WeightedClusters(ws) => {
                            ws.iter().map(|(c, _)| c.as_str()).collect()
                        }
                        _ => vec![],
                    };
                    for t in targets {
                        if !self.clusters.iter().any(|c| c.name == t) {
                            return Err(EnvoyConfigError::new(format!(
                                "route: unknown cluster '{t}'"
                            )));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Routes a request arriving on `port` with the given Host header and
    /// path.
    pub fn route(&self, port: u16, host: &str, path: &str) -> RouteOutcome {
        let Some(listener) = self.listeners.iter().find(|l| l.port == port) else {
            return RouteOutcome::NoListener;
        };
        for vh in &listener.virtual_hosts {
            if !vh.matches_domain(host) {
                continue;
            }
            for r in &vh.routes {
                if r.matcher.matches(path) {
                    return match &r.action {
                        RouteAction::Cluster(c) => RouteOutcome::Cluster(c.clone()),
                        RouteAction::WeightedClusters(ws) => {
                            // Deterministic: heaviest weight wins the probe.
                            let best = ws
                                .iter()
                                .max_by_key(|(_, w)| *w)
                                .map(|(c, _)| c.clone())
                                .unwrap_or_default();
                            RouteOutcome::Cluster(best)
                        }
                        RouteAction::Redirect(to) => RouteOutcome::Redirect(to.clone()),
                        RouteAction::DirectResponse(s, b) => {
                            RouteOutcome::DirectResponse(*s, b.clone())
                        }
                    };
                }
            }
        }
        RouteOutcome::NotFound
    }

    /// Looks up a cluster by name.
    pub fn cluster(&self, name: &str) -> Option<&Cluster> {
        self.clusters.iter().find(|c| c.name == name)
    }

    /// Renders the `/config_dump`-style admin summary the unit tests grep.
    pub fn admin_summary(&self) -> String {
        let mut out = String::new();
        for l in &self.listeners {
            out.push_str(&format!("listener: {} {}:{}\n", l.name, l.address, l.port));
            for vh in &l.virtual_hosts {
                out.push_str(&format!(
                    "  virtual_host: {} domains=[{}]\n",
                    vh.name,
                    vh.domains.join(",")
                ));
                for r in &vh.routes {
                    let action = match &r.action {
                        RouteAction::Cluster(c) => format!("cluster={c}"),
                        RouteAction::WeightedClusters(ws) => format!(
                            "weighted=[{}]",
                            ws.iter()
                                .map(|(c, w)| format!("{c}:{w}"))
                                .collect::<Vec<_>>()
                                .join(",")
                        ),
                        RouteAction::Redirect(to) => format!("redirect={to}"),
                        RouteAction::DirectResponse(s, _) => format!("direct_response={s}"),
                    };
                    out.push_str(&format!("    route: {:?} -> {action}\n", r.matcher));
                }
            }
        }
        for c in &self.clusters {
            out.push_str(&format!(
                "cluster: {} type={} lb_policy={} endpoints=[{}]\n",
                c.name,
                c.discovery,
                c.lb_policy,
                c.endpoints
                    .iter()
                    .map(|(a, p)| format!("{a}:{p}"))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        out
    }
}

fn parse_socket_address(addr: &Yaml, what: &str) -> Result<(String, u16), EnvoyConfigError> {
    let sock = addr
        .get("socket_address")
        .ok_or_else(|| EnvoyConfigError::new(format!("{what}: missing socket_address")))?;
    let address = sock
        .get("address")
        .map(Yaml::render_scalar)
        .ok_or_else(|| EnvoyConfigError::new(format!("{what}: missing address")))?;
    let port = sock
        .get("port_value")
        .and_then(Yaml::as_i64)
        .ok_or_else(|| EnvoyConfigError::new(format!("{what}: missing port_value")))?;
    if !(1..=65535).contains(&port) {
        return Err(EnvoyConfigError::new(format!(
            "{what}: invalid port {port}"
        )));
    }
    Ok((address, port as u16))
}

fn parse_listener(l: &Yaml, index: usize) -> Result<Listener, EnvoyConfigError> {
    let name = l
        .get("name")
        .map(Yaml::render_scalar)
        .unwrap_or_else(|| format!("listener_{index}"));
    let (address, port) = parse_socket_address(
        l.get("address")
            .ok_or_else(|| EnvoyConfigError::new(format!("listener {name}: missing address")))?,
        &format!("listener {name}"),
    )?;
    let mut virtual_hosts = Vec::new();
    for chain in l.get("filter_chains").into_iter().flat_map(Yaml::items) {
        for filter in chain.get("filters").into_iter().flat_map(Yaml::items) {
            let cfg = filter
                .get("typed_config")
                .or_else(|| filter.get("config"))
                .cloned()
                .unwrap_or(Yaml::Null);
            let route_config = cfg.get("route_config").cloned().unwrap_or(Yaml::Null);
            for vh in route_config
                .get("virtual_hosts")
                .into_iter()
                .flat_map(Yaml::items)
            {
                virtual_hosts.push(parse_virtual_host(vh)?);
            }
        }
    }
    Ok(Listener {
        name,
        address,
        port,
        virtual_hosts,
    })
}

fn parse_virtual_host(vh: &Yaml) -> Result<VirtualHost, EnvoyConfigError> {
    let name = vh
        .get("name")
        .map(Yaml::render_scalar)
        .unwrap_or_else(|| "vh".to_owned());
    let domains: Vec<String> = vh
        .get("domains")
        .into_iter()
        .flat_map(Yaml::items)
        .map(Yaml::render_scalar)
        .collect();
    let mut routes = Vec::new();
    for r in vh.get("routes").into_iter().flat_map(Yaml::items) {
        let m = r.get("match").ok_or_else(|| {
            EnvoyConfigError::new(format!("virtual host {name}: route missing match"))
        })?;
        let matcher = if let Some(p) = m.get("prefix") {
            PathMatch::Prefix(p.render_scalar())
        } else if let Some(p) = m.get("path") {
            PathMatch::Exact(p.render_scalar())
        } else if let Some(re) = m.get_path(&["safe_regex", "regex"]) {
            PathMatch::Regex(re.render_scalar())
        } else {
            return Err(EnvoyConfigError::new(format!(
                "virtual host {name}: route match must set prefix, path or safe_regex"
            )));
        };
        let action = if let Some(route) = r.get("route") {
            if let Some(c) = route.get("cluster") {
                RouteAction::Cluster(c.render_scalar())
            } else if let Some(w) = route.get("weighted_clusters") {
                let clusters: Vec<(String, u32)> = w
                    .get("clusters")
                    .into_iter()
                    .flat_map(Yaml::items)
                    .map(|c| {
                        (
                            c.get("name").map(Yaml::render_scalar).unwrap_or_default(),
                            c.get("weight").and_then(Yaml::as_i64).unwrap_or(0) as u32,
                        )
                    })
                    .collect();
                RouteAction::WeightedClusters(clusters)
            } else {
                return Err(EnvoyConfigError::new(format!(
                    "virtual host {name}: route action missing cluster"
                )));
            }
        } else if let Some(redirect) = r.get("redirect") {
            let to = redirect
                .get("host_redirect")
                .or_else(|| redirect.get("path_redirect"))
                .map(Yaml::render_scalar)
                .unwrap_or_default();
            RouteAction::Redirect(to)
        } else if let Some(direct) = r.get("direct_response") {
            RouteAction::DirectResponse(
                direct.get("status").and_then(Yaml::as_i64).unwrap_or(200) as u16,
                direct
                    .get_path(&["body", "inline_string"])
                    .map(Yaml::render_scalar)
                    .unwrap_or_default(),
            )
        } else {
            return Err(EnvoyConfigError::new(format!(
                "virtual host {name}: route needs route/redirect/direct_response"
            )));
        };
        let prefix_rewrite = r
            .get("route")
            .and_then(|x| x.get("prefix_rewrite"))
            .map(Yaml::render_scalar);
        routes.push(Route {
            matcher,
            action,
            prefix_rewrite,
        });
    }
    Ok(VirtualHost {
        name,
        domains,
        routes,
    })
}

fn parse_cluster(c: &Yaml, index: usize) -> Result<Cluster, EnvoyConfigError> {
    let name = c
        .get("name")
        .map(Yaml::render_scalar)
        .ok_or_else(|| EnvoyConfigError::new(format!("cluster #{index}: missing name")))?;
    let discovery = c
        .get("type")
        .map(Yaml::render_scalar)
        .unwrap_or_else(|| "STATIC".to_owned());
    let lb_policy = c
        .get("lb_policy")
        .map(Yaml::render_scalar)
        .unwrap_or_else(|| "ROUND_ROBIN".to_owned());
    let mut endpoints = Vec::new();
    for ep_group in c
        .get_path(&["load_assignment", "endpoints"])
        .into_iter()
        .flat_map(Yaml::items)
    {
        for lb in ep_group
            .get("lb_endpoints")
            .into_iter()
            .flat_map(Yaml::items)
        {
            if let Some(addr) = lb.get_path(&["endpoint", "address"]) {
                endpoints.push(parse_socket_address(addr, &format!("cluster {name}"))?);
            }
        }
    }
    // Legacy `hosts:` form.
    for h in c.get("hosts").into_iter().flat_map(Yaml::items) {
        endpoints.push(parse_socket_address(h, &format!("cluster {name}"))?);
    }
    Ok(Cluster {
        name,
        discovery,
        lb_policy,
        endpoints,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_config_parses_and_routes() {
        let cfg = EnvoyConfig::parse(SAMPLE_CONFIG).unwrap();
        assert_eq!(cfg.listeners.len(), 1);
        assert_eq!(cfg.clusters.len(), 1);
        assert_eq!(
            cfg.route(10000, "anything", "/api"),
            RouteOutcome::Cluster("service_backend".into())
        );
        assert_eq!(cfg.route(9999, "x", "/"), RouteOutcome::NoListener);
    }

    #[test]
    fn unknown_cluster_is_invalid() {
        let bad = SAMPLE_CONFIG.replace("cluster: service_backend", "cluster: missing_cluster");
        let err = EnvoyConfig::parse(&bad).unwrap_err();
        assert!(err.message().contains("unknown cluster"), "{err}");
    }

    #[test]
    fn domain_matching() {
        let cfg = EnvoyConfig::parse(&SAMPLE_CONFIG.replace(
            "domains: [\"*\"]",
            "domains: [\"example.com\", \"*.internal\"]",
        ))
        .unwrap();
        assert_eq!(
            cfg.route(10000, "example.com", "/"),
            RouteOutcome::Cluster("service_backend".into())
        );
        assert_eq!(
            cfg.route(10000, "svc.internal", "/"),
            RouteOutcome::Cluster("service_backend".into())
        );
        assert_eq!(cfg.route(10000, "other.com", "/"), RouteOutcome::NotFound);
    }

    #[test]
    fn exact_path_match() {
        let cfg = EnvoyConfig::parse(&SAMPLE_CONFIG.replace("prefix: /", "path: /health")).unwrap();
        assert_eq!(
            cfg.route(10000, "h", "/health"),
            RouteOutcome::Cluster("service_backend".into())
        );
        assert_eq!(cfg.route(10000, "h", "/other"), RouteOutcome::NotFound);
    }

    #[test]
    fn missing_port_is_invalid() {
        let bad = SAMPLE_CONFIG.replace("        port_value: 10000\n", "");
        assert!(EnvoyConfig::parse(&bad).is_err());
    }

    #[test]
    fn missing_static_resources_is_invalid() {
        assert!(EnvoyConfig::parse("admin:\n  access_log_path: /dev/null\n").is_err());
    }

    #[test]
    fn duplicate_cluster_names_invalid() {
        let dup = SAMPLE_CONFIG.to_owned()
            + "  - name: service_backend\n    connect_timeout: 1s\n    type: STATIC\n";
        // Appending at clusters level requires proper indentation; build a
        // config with two clusters explicitly instead.
        let two = SAMPLE_CONFIG.replace(
            "  clusters:\n  - name: service_backend",
            "  clusters:\n  - name: service_backend\n    type: STATIC\n  - name: service_backend",
        );
        assert!(EnvoyConfig::parse(&two).is_err());
        drop(dup);
    }

    #[test]
    fn weighted_clusters_pick_heaviest() {
        let cfg_text = SAMPLE_CONFIG
            .replace(
                "                route:\n                  cluster: service_backend\n",
                "                route:\n                  weighted_clusters:\n                    clusters:\n                    - name: service_backend\n                      weight: 80\n                    - name: service_v2\n                      weight: 20\n",
            )
            + "  - name: service_v2\n    type: STATIC\n";
        let cfg = EnvoyConfig::parse(&cfg_text).unwrap();
        assert_eq!(
            cfg.route(10000, "x", "/"),
            RouteOutcome::Cluster("service_backend".into())
        );
    }

    #[test]
    fn direct_response_and_redirect() {
        let dr = SAMPLE_CONFIG.replace(
            "                route:\n                  cluster: service_backend\n",
            "                direct_response:\n                  status: 403\n                  body:\n                    inline_string: denied\n",
        );
        let cfg = EnvoyConfig::parse(&dr).unwrap();
        assert_eq!(
            cfg.route(10000, "x", "/"),
            RouteOutcome::DirectResponse(403, "denied".into())
        );
        let rd = SAMPLE_CONFIG.replace(
            "                route:\n                  cluster: service_backend\n",
            "                redirect:\n                  host_redirect: new.example.com\n",
        );
        let cfg = EnvoyConfig::parse(&rd).unwrap();
        assert_eq!(
            cfg.route(10000, "x", "/"),
            RouteOutcome::Redirect("new.example.com".into())
        );
    }

    #[test]
    fn admin_summary_lists_everything() {
        let cfg = EnvoyConfig::parse(SAMPLE_CONFIG).unwrap();
        let s = cfg.admin_summary();
        assert!(s.contains("listener: listener_0 0.0.0.0:10000"));
        assert!(s.contains("cluster: service_backend"));
        assert!(s.contains("127.0.0.1:8080"));
    }

    #[test]
    fn route_ordering_first_match_wins() {
        let cfg_text = SAMPLE_CONFIG.replace(
            "              routes:\n              - match:\n                  prefix: /\n                route:\n                  cluster: service_backend\n",
            "              routes:\n              - match:\n                  prefix: /api\n                route:\n                  cluster: api_svc\n              - match:\n                  prefix: /\n                route:\n                  cluster: service_backend\n",
        ) + "  - name: api_svc\n    type: STATIC\n";
        let cfg = EnvoyConfig::parse(&cfg_text).unwrap();
        assert_eq!(
            cfg.route(10000, "x", "/api/v1"),
            RouteOutcome::Cluster("api_svc".into())
        );
        assert_eq!(
            cfg.route(10000, "x", "/other"),
            RouteOutcome::Cluster("service_backend".into())
        );
    }
}
