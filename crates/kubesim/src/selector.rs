//! Label selectors: the `-l key=value,key2!=v` CLI syntax and the
//! `matchLabels` / `matchExpressions` spec form.

use yamlkit::Yaml;

/// One selector requirement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Requirement {
    /// `key=value`
    Equals(String, String),
    /// `key!=value`
    NotEquals(String, String),
    /// `key` — label must exist.
    Exists(String),
    /// `!key` — label must not exist.
    NotExists(String),
    /// `key in (a,b)`
    In(String, Vec<String>),
    /// `key notin (a,b)`
    NotIn(String, Vec<String>),
}

impl Requirement {
    fn matches(&self, labels: &[(String, String)]) -> bool {
        let get = |k: &str| {
            labels
                .iter()
                .find(|(lk, _)| lk == k)
                .map(|(_, v)| v.as_str())
        };
        match self {
            Requirement::Equals(k, v) => get(k) == Some(v.as_str()),
            Requirement::NotEquals(k, v) => get(k) != Some(v.as_str()),
            Requirement::Exists(k) => get(k).is_some(),
            Requirement::NotExists(k) => get(k).is_none(),
            Requirement::In(k, vs) => get(k).is_some_and(|v| vs.iter().any(|o| o == v)),
            Requirement::NotIn(k, vs) => !get(k).is_some_and(|v| vs.iter().any(|o| o == v)),
        }
    }
}

/// A conjunctive label selector.
///
/// # Examples
///
/// ```
/// use kubesim::selector::Selector;
/// let s = Selector::parse_cli("app=nginx,tier!=db").unwrap();
/// assert!(s.matches(&[("app".into(), "nginx".into()), ("tier".into(), "web".into())]));
/// assert!(!s.matches(&[("app".into(), "redis".into())]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Selector {
    requirements: Vec<Requirement>,
}

impl Selector {
    /// The empty selector, which matches everything.
    pub fn everything() -> Selector {
        Selector::default()
    }

    /// Parses the `kubectl -l` comma-separated syntax.
    ///
    /// # Errors
    ///
    /// Returns a message for malformed requirements.
    pub fn parse_cli(expr: &str) -> Result<Selector, String> {
        let mut requirements = Vec::new();
        for raw in split_requirements(expr) {
            let part = raw.trim();
            if part.is_empty() {
                continue;
            }
            if let Some((k, v)) = part.split_once("!=") {
                requirements.push(Requirement::NotEquals(k.trim().into(), v.trim().into()));
            } else if let Some((k, v)) = part.split_once("==") {
                requirements.push(Requirement::Equals(k.trim().into(), v.trim().into()));
            } else if let Some((k, v)) = part.split_once('=') {
                requirements.push(Requirement::Equals(k.trim().into(), v.trim().into()));
            } else if let Some(rest) = part.strip_prefix('!') {
                requirements.push(Requirement::NotExists(rest.trim().into()));
            } else if let Some((k, vs)) = parse_set_expr(part, " notin ") {
                requirements.push(Requirement::NotIn(k, vs));
            } else if let Some((k, vs)) = parse_set_expr(part, " in ") {
                requirements.push(Requirement::In(k, vs));
            } else if part
                .chars()
                .all(|c| c.is_alphanumeric() || "-._/".contains(c))
            {
                requirements.push(Requirement::Exists(part.into()));
            } else {
                return Err(format!("unable to parse requirement: {part:?}"));
            }
        }
        Ok(Selector { requirements })
    }

    /// Builds a selector from a `spec.selector` object: either the bare
    /// `{app: nginx}` map form (Services) or the `matchLabels` /
    /// `matchExpressions` form (workloads).
    pub fn from_spec(spec: &Yaml) -> Selector {
        let mut requirements = Vec::new();
        let label_map = spec
            .get("matchLabels")
            .or(if spec.get("matchExpressions").is_some() {
                None
            } else {
                Some(spec)
            });
        if let Some(map) = label_map {
            for (k, v) in map.entries() {
                requirements.push(Requirement::Equals(k.to_owned(), v.render_scalar()));
            }
        }
        if let Some(exprs) = spec.get("matchExpressions") {
            for e in exprs.items() {
                let key = e.get("key").map(Yaml::render_scalar).unwrap_or_default();
                let values: Vec<String> = e
                    .get("values")
                    .map(|vs| vs.items().map(Yaml::render_scalar).collect())
                    .unwrap_or_default();
                match e.get("operator").and_then(Yaml::as_str) {
                    Some("In") => requirements.push(Requirement::In(key, values)),
                    Some("NotIn") => requirements.push(Requirement::NotIn(key, values)),
                    Some("Exists") => requirements.push(Requirement::Exists(key)),
                    Some("DoesNotExist") => requirements.push(Requirement::NotExists(key)),
                    _ => {}
                }
            }
        }
        Selector { requirements }
    }

    /// Whether the selector selects nothing in particular (matches all).
    pub fn is_empty(&self) -> bool {
        self.requirements.is_empty()
    }

    /// Tests a label set.
    pub fn matches(&self, labels: &[(String, String)]) -> bool {
        self.requirements.iter().all(|r| r.matches(labels))
    }
}

/// Splits on commas that are not inside `(...)` value lists.
fn split_requirements(expr: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0;
    let mut start = 0;
    for (i, c) in expr.char_indices() {
        match c {
            '(' => depth += 1,
            ')' => depth -= 1,
            ',' if depth == 0 => {
                parts.push(&expr[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    parts.push(&expr[start..]);
    parts
}

fn parse_set_expr(part: &str, op: &str) -> Option<(String, Vec<String>)> {
    let (k, rest) = part.split_once(op)?;
    let rest = rest.trim();
    let inner = rest.strip_prefix('(')?.strip_suffix(')')?;
    Some((
        k.trim().to_owned(),
        inner.split(',').map(|v| v.trim().to_owned()).collect(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labels(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(k, v)| ((*k).into(), (*v).into()))
            .collect()
    }

    #[test]
    fn equality_and_inequality() {
        let s = Selector::parse_cli("app=nginx,tier!=db").unwrap();
        assert!(s.matches(&labels(&[("app", "nginx")])));
        assert!(!s.matches(&labels(&[("app", "nginx"), ("tier", "db")])));
    }

    #[test]
    fn double_equals() {
        let s = Selector::parse_cli("app==web").unwrap();
        assert!(s.matches(&labels(&[("app", "web")])));
    }

    #[test]
    fn exists_and_not_exists() {
        let s = Selector::parse_cli("app,!debug").unwrap();
        assert!(s.matches(&labels(&[("app", "x")])));
        assert!(!s.matches(&labels(&[("app", "x"), ("debug", "1")])));
        assert!(!s.matches(&labels(&[])));
    }

    #[test]
    fn set_expressions() {
        let s = Selector::parse_cli("env in (prod,staging),region notin (eu)").unwrap();
        assert!(s.matches(&labels(&[("env", "prod"), ("region", "us")])));
        assert!(!s.matches(&labels(&[("env", "dev")])));
        assert!(!s.matches(&labels(&[("env", "prod"), ("region", "eu")])));
    }

    #[test]
    fn empty_selector_matches_all() {
        assert!(Selector::everything().matches(&labels(&[("x", "y")])));
        assert!(Selector::parse_cli("").unwrap().matches(&[]));
    }

    #[test]
    fn from_spec_bare_map() {
        let y = yamlkit::parse_one("app: nginx\n").unwrap().to_value();
        let s = Selector::from_spec(&y);
        assert!(s.matches(&labels(&[("app", "nginx")])));
        assert!(!s.matches(&labels(&[("app", "other")])));
    }

    #[test]
    fn from_spec_match_labels_and_expressions() {
        let y = yamlkit::parse_one(
            "matchLabels:\n  app: web\nmatchExpressions:\n- key: tier\n  operator: In\n  values: [frontend, backend]\n",
        )
        .unwrap()
        .to_value();
        let s = Selector::from_spec(&y);
        assert!(s.matches(&labels(&[("app", "web"), ("tier", "frontend")])));
        assert!(!s.matches(&labels(&[("app", "web"), ("tier", "cache")])));
        assert!(!s.matches(&labels(&[("tier", "frontend")])));
    }

    #[test]
    fn malformed_requirement_is_error() {
        assert!(Selector::parse_cli("a=@=b=c,???").is_err());
    }
}
