//! The `kubectl` command facade used by unit-test scripts.
//!
//! [`run`] takes an argv (without the leading `kubectl`), a stdin string
//! (for `-f -`) and a file resolver, executes against a [`Cluster`], and
//! returns stdout/stderr/exit-code the way the CLI would.

use yamlkit::path::render_template;
use yamlkit::Yaml;

use crate::cluster::{Cluster, ClusterError};
use crate::resources::{canonical_kind, is_cluster_scoped, Resource};
use crate::selector::Selector;

/// Outcome of a kubectl invocation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KubectlResult {
    /// Standard output.
    pub stdout: String,
    /// Standard error.
    pub stderr: String,
    /// Process exit code (0 = success).
    pub code: i32,
}

impl KubectlResult {
    fn ok(stdout: impl Into<String>) -> Self {
        KubectlResult {
            stdout: stdout.into(),
            stderr: String::new(),
            code: 0,
        }
    }

    fn err(stderr: impl Into<String>, code: i32) -> Self {
        KubectlResult {
            stdout: String::new(),
            stderr: stderr.into(),
            code,
        }
    }
}

/// Parsed common flags.
#[derive(Debug, Default)]
struct Flags {
    namespace: Option<String>,
    all_namespaces: bool,
    selector: Option<String>,
    output: Option<String>,
    filename: Option<String>,
    timeout_ms: Option<u64>,
    wait_for: Option<String>,
    all: bool,
    replicas: Option<i64>,
    positional: Vec<String>,
    from_literal: Vec<(String, String)>,
    image: Option<String>,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags::default();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("flag needs an argument: {a}"))
        };
        match a {
            "-n" | "--namespace" => f.namespace = Some(take_value(&mut i)?),
            _ if a.starts_with("--namespace=") => {
                f.namespace = Some(a["--namespace=".len()..].to_owned())
            }
            "-A" | "--all-namespaces" => f.all_namespaces = true,
            "-l" | "--selector" => f.selector = Some(take_value(&mut i)?),
            _ if a.starts_with("--selector=") => {
                f.selector = Some(a["--selector=".len()..].to_owned())
            }
            _ if a.starts_with("-l") && a.len() > 2 => f.selector = Some(a[2..].to_owned()),
            "-o" | "--output" => f.output = Some(take_value(&mut i)?),
            _ if a.starts_with("--output=") => f.output = Some(a["--output=".len()..].to_owned()),
            _ if a.starts_with("-o=") => f.output = Some(a[3..].to_owned()),
            _ if a.starts_with("-o") && a.len() > 2 => f.output = Some(a[2..].to_owned()),
            "-f" | "--filename" => f.filename = Some(take_value(&mut i)?),
            _ if a.starts_with("--filename=") => {
                f.filename = Some(a["--filename=".len()..].to_owned())
            }
            _ if a.starts_with("-f=") => f.filename = Some(a[3..].to_owned()),
            _ if a.starts_with("--timeout=") => {
                f.timeout_ms = Some(parse_duration_ms(&a["--timeout=".len()..])?)
            }
            _ if a.starts_with("--for=") => f.wait_for = Some(a["--for=".len()..].to_owned()),
            "--all" => f.all = true,
            _ if a.starts_with("--replicas=") => f.replicas = a["--replicas=".len()..].parse().ok(),
            _ if a.starts_with("--from-literal=") => {
                let kv = &a["--from-literal=".len()..];
                let (k, v) = kv.split_once('=').ok_or("from-literal needs key=value")?;
                f.from_literal.push((k.to_owned(), v.to_owned()));
            }
            _ if a.starts_with("--image=") => f.image = Some(a["--image=".len()..].to_owned()),
            // Silently accepted no-op flags.
            "--record" | "--save-config" | "--overwrite" | "--force" | "--wait=true"
            | "--validate=true" | "--dry-run=none" | "--ignore-not-found" => {}
            _ if a.starts_with("--") => { /* unknown long flags are tolerated */ }
            _ => f.positional.push(a.to_owned()),
        }
        i += 1;
    }
    Ok(f)
}

/// Parses `60s`, `2m`, `1500ms`, `1h`.
fn parse_duration_ms(s: &str) -> Result<u64, String> {
    let s = s.trim();
    let (num, mult) = if let Some(n) = s.strip_suffix("ms") {
        (n, 1)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1000)
    } else if let Some(n) = s.strip_suffix('m') {
        (n, 60_000)
    } else if let Some(n) = s.strip_suffix('h') {
        (n, 3_600_000)
    } else {
        (s, 1000)
    };
    num.parse::<f64>()
        .map(|v| (v * mult as f64) as u64)
        .map_err(|_| format!("invalid duration {s:?}"))
}

/// Executes a kubectl command line.
///
/// `resolve_file` maps `-f` names to contents (the test sandbox's virtual
/// filesystem); `stdin` backs `-f -`.
pub fn run(
    cluster: &mut Cluster,
    args: &[String],
    stdin: &str,
    resolve_file: &dyn Fn(&str) -> Option<String>,
) -> KubectlResult {
    let Some(verb) = args.first().map(String::as_str) else {
        return KubectlResult::err("error: kubectl requires a subcommand", 1);
    };
    let flags = match parse_flags(&args[1..]) {
        Ok(f) => f,
        Err(e) => return KubectlResult::err(format!("error: {e}"), 1),
    };
    let ns = flags
        .namespace
        .clone()
        .unwrap_or_else(|| "default".to_owned());
    match verb {
        "apply" | "create" if flags.filename.is_some() => {
            let file = flags.filename.as_deref().expect("checked");
            let content = if file == "-" {
                Some(stdin.to_owned())
            } else {
                resolve_file(file)
            };
            let Some(content) = content else {
                return KubectlResult::err(format!("error: the path \"{file}\" does not exist"), 1);
            };
            match cluster.apply_manifest(&content, &ns) {
                Ok(messages) => KubectlResult::ok(messages.join("\n") + "\n"),
                Err(e) => render_apply_error(file, &e),
            }
        }
        "create" => create_imperative(cluster, &flags, &ns),
        "delete" => delete_cmd(cluster, &flags, &ns, stdin, resolve_file),
        "get" => get_cmd(cluster, &flags, &ns),
        "wait" => wait_cmd(cluster, &flags, &ns),
        "describe" => describe_cmd(cluster, &flags, &ns),
        "logs" => logs_cmd(cluster, &flags, &ns),
        "scale" => scale_cmd(cluster, &flags, &ns),
        "rollout" => rollout_cmd(cluster, &flags, &ns),
        "label" | "annotate" => KubectlResult::ok(""),
        "cluster-info" => {
            KubectlResult::ok("Kubernetes control plane is running at https://192.168.49.2:8443\n")
        }
        "version" => {
            KubectlResult::ok("Client Version: v1.28.0-sim\nServer Version: v1.28.0-sim\n")
        }
        "config" => KubectlResult::ok("current-context: minikube\n"),
        "exec" => exec_cmd(cluster, &args[1..]),
        "port-forward" | "top" => KubectlResult::err(
            format!("error: {verb} is not supported by the simulator"),
            1,
        ),
        other => KubectlResult::err(format!("error: unknown command \"{other}\""), 1),
    }
}

fn render_apply_error(file: &str, e: &ClusterError) -> KubectlResult {
    let msg = match e {
        ClusterError::Decoding(..) => {
            format!("Error from server (BadRequest): error when creating \"{file}\": {e}")
        }
        ClusterError::NoKindMatch(..) => {
            format!("error: unable to recognize \"{file}\": {e}")
        }
        ClusterError::NamespaceNotFound(_) => {
            format!("Error from server (NotFound): error when creating \"{file}\": {e}")
        }
        ClusterError::Invalid(m) => format!("The request is invalid: {m}"),
        ClusterError::AlreadyExists(what) => {
            format!("Error from server (AlreadyExists): {what} already exists")
        }
        ClusterError::NotFound(what) => format!("Error from server (NotFound): {what}"),
        ClusterError::Forbidden(_) => {
            format!("Error from server (Forbidden): error when creating \"{file}\": {e}")
        }
    };
    KubectlResult::err(msg, 1)
}

fn create_imperative(cluster: &mut Cluster, flags: &Flags, ns: &str) -> KubectlResult {
    match flags.positional.first().map(String::as_str) {
        Some("namespace") | Some("ns") => {
            let Some(name) = flags.positional.get(1) else {
                return KubectlResult::err("error: namespace name required", 1);
            };
            match cluster.create_namespace(name) {
                Ok(()) => KubectlResult::ok(format!("namespace/{name} created\n")),
                Err(e) => KubectlResult::err(format!("Error from server (AlreadyExists): {e}"), 1),
            }
        }
        Some("configmap") | Some("cm") => {
            let Some(name) = flags.positional.get(1) else {
                return KubectlResult::err("error: configmap name required", 1);
            };
            let data = Yaml::Map(
                flags
                    .from_literal
                    .iter()
                    .map(|(k, v)| (k.clone(), Yaml::Str(v.clone())))
                    .collect(),
            );
            let body = yamlkit::ymap! {
                "apiVersion" => "v1",
                "kind" => "ConfigMap",
                "metadata" => yamlkit::ymap! { "name" => name.as_str(), "namespace" => ns },
                "data" => data,
            };
            match cluster.apply_object(body, ns) {
                Ok(_) => KubectlResult::ok(format!("configmap/{name} created\n")),
                Err(e) => KubectlResult::err(e.to_string(), 1),
            }
        }
        Some("secret") => {
            // `kubectl create secret generic NAME --from-literal=...`
            let Some(name) = flags.positional.get(2).or_else(|| flags.positional.get(1)) else {
                return KubectlResult::err("error: secret name required", 1);
            };
            let data = Yaml::Map(
                flags
                    .from_literal
                    .iter()
                    .map(|(k, v)| (k.clone(), Yaml::Str(base64ish(v))))
                    .collect(),
            );
            let body = yamlkit::ymap! {
                "apiVersion" => "v1",
                "kind" => "Secret",
                "metadata" => yamlkit::ymap! { "name" => name.as_str(), "namespace" => ns },
                "type" => "Opaque",
                "data" => data,
            };
            match cluster.apply_object(body, ns) {
                Ok(_) => KubectlResult::ok(format!("secret/{name} created\n")),
                Err(e) => KubectlResult::err(e.to_string(), 1),
            }
        }
        Some("deployment") | Some("deploy") => {
            let Some(name) = flags.positional.get(1) else {
                return KubectlResult::err("error: deployment name required", 1);
            };
            let image = flags.image.clone().unwrap_or_else(|| "nginx".to_owned());
            let body = yamlkit::ymap! {
                "apiVersion" => "apps/v1",
                "kind" => "Deployment",
                "metadata" => yamlkit::ymap! { "name" => name.as_str(), "namespace" => ns },
                "spec" => yamlkit::ymap! {
                    "replicas" => 1i64,
                    "selector" => yamlkit::ymap! { "matchLabels" => yamlkit::ymap! { "app" => name.as_str() } },
                    "template" => yamlkit::ymap! {
                        "metadata" => yamlkit::ymap! { "labels" => yamlkit::ymap! { "app" => name.as_str() } },
                        "spec" => yamlkit::ymap! {
                            "containers" => Yaml::Seq(vec![yamlkit::ymap! { "name" => name.as_str(), "image" => image }]),
                        },
                    },
                },
            };
            match cluster.apply_object(body, ns) {
                Ok(_) => KubectlResult::ok(format!("deployment.apps/{name} created\n")),
                Err(e) => KubectlResult::err(e.to_string(), 1),
            }
        }
        Some(other) => KubectlResult::err(format!("error: unknown create target {other:?}"), 1),
        None => KubectlResult::err("error: create requires -f or a resource", 1),
    }
}

fn delete_cmd(
    cluster: &mut Cluster,
    flags: &Flags,
    ns: &str,
    stdin: &str,
    resolve_file: &dyn Fn(&str) -> Option<String>,
) -> KubectlResult {
    if let Some(file) = &flags.filename {
        let content = if file == "-" {
            Some(stdin.to_owned())
        } else {
            resolve_file(file)
        };
        let Some(content) = content else {
            return KubectlResult::err(format!("error: the path \"{file}\" does not exist"), 1);
        };
        let Ok(docs) = yamlkit::parse(&content) else {
            return KubectlResult::err("error: error parsing manifest", 1);
        };
        let mut out = String::new();
        for d in docs {
            let v = d.to_value();
            let kind = v.get("kind").map(Yaml::render_scalar).unwrap_or_default();
            let name = v
                .get_path(&["metadata", "name"])
                .map(Yaml::render_scalar)
                .unwrap_or_default();
            let target_ns = v
                .get_path(&["metadata", "namespace"])
                .map(Yaml::render_scalar)
                .unwrap_or_else(|| ns.to_owned());
            if let Ok(msg) = cluster.delete(&kind, &target_ns, &name) {
                out.push_str(&msg);
                out.push('\n');
            }
        }
        return KubectlResult::ok(out);
    }
    let Some(resource_arg) = flags.positional.first() else {
        return KubectlResult::err("error: resource type required", 1);
    };
    // `kubectl delete pod/name` and `kubectl delete pod name ...`.
    let mut targets: Vec<(String, String)> = Vec::new();
    if let Some((k, n)) = resource_arg.split_once('/') {
        targets.push((k.to_owned(), n.to_owned()));
    } else if flags.all {
        let kind = resource_arg.clone();
        for r in cluster.get(&kind, Some(ns), None) {
            targets.push((kind.clone(), r.name));
        }
    } else {
        for name in &flags.positional[1..] {
            targets.push((resource_arg.clone(), name.clone()));
        }
    }
    if targets.is_empty() {
        return KubectlResult::err("error: no resources to delete", 1);
    }
    let mut out = String::new();
    for (kind, name) in targets {
        match cluster.delete(&kind, ns, &name) {
            Ok(msg) => {
                out.push_str(&msg);
                out.push('\n');
            }
            Err(e) => return KubectlResult::err(format!("Error from server (NotFound): {e}"), 1),
        }
    }
    KubectlResult::ok(out)
}

fn lookup_resources(
    cluster: &Cluster,
    flags: &Flags,
    ns: &str,
) -> Result<(String, Vec<Resource>), KubectlResult> {
    let Some(resource_arg) = flags.positional.first() else {
        return Err(KubectlResult::err("error: resource type required", 1));
    };
    let (kind_arg, name_from_slash) = match resource_arg.split_once('/') {
        Some((k, n)) => (k.to_owned(), Some(n.to_owned())),
        None => (resource_arg.clone(), None),
    };
    let Some(kind) = canonical_kind(&kind_arg) else {
        return Err(KubectlResult::err(
            format!("error: the server doesn't have a resource type \"{kind_arg}\""),
            1,
        ));
    };
    let name = name_from_slash.or_else(|| flags.positional.get(1).cloned());
    let namespace = if flags.all_namespaces || is_cluster_scoped(kind) {
        None
    } else {
        Some(ns)
    };
    let mut resources = cluster.get(kind, namespace, name.as_deref());
    if let Some(sel) = &flags.selector {
        match Selector::parse_cli(sel) {
            Ok(s) => resources.retain(|r| s.matches(&r.labels)),
            Err(e) => return Err(KubectlResult::err(format!("error: {e}"), 1)),
        }
    }
    if let Some(n) = &name {
        if resources.is_empty() {
            return Err(KubectlResult::err(
                format!(
                    "Error from server (NotFound): {}.\"{n}\" not found",
                    kind.to_lowercase()
                ),
                1,
            ));
        }
    }
    Ok((kind.to_owned(), resources))
}

fn get_cmd(cluster: &mut Cluster, flags: &Flags, ns: &str) -> KubectlResult {
    let (kind, resources) = match lookup_resources(cluster, flags, ns) {
        Ok(r) => r,
        Err(e) => return e,
    };
    let single_named = flags.positional.len() > 1 || flags.positional[0].contains('/');
    match flags.output.as_deref() {
        Some(o) if o.starts_with("jsonpath") => {
            let template = o.trim_start_matches("jsonpath=").to_owned();
            let root = if single_named && resources.len() == 1 {
                resources[0].to_yaml()
            } else {
                items_wrapper(&resources)
            };
            match render_template(trim_quotes(&template), &root) {
                Ok(s) => KubectlResult::ok(s),
                Err(e) => KubectlResult::err(format!("error: {e}"), 1),
            }
        }
        Some("json") => {
            let root = if single_named && resources.len() == 1 {
                resources[0].to_yaml()
            } else {
                items_wrapper(&resources)
            };
            KubectlResult::ok(yamlkit::json::to_json_pretty(&root))
        }
        Some("yaml") => {
            let docs: Vec<Yaml> = resources.iter().map(Resource::to_yaml).collect();
            if single_named && docs.len() == 1 {
                KubectlResult::ok(yamlkit::emit(&docs[0]))
            } else {
                KubectlResult::ok(yamlkit::emit(&items_wrapper(&resources)))
            }
        }
        Some("name") => {
            let names: Vec<String> = resources
                .iter()
                .map(|r| format!("{}/{}", r.kind.to_lowercase(), r.name))
                .collect();
            KubectlResult::ok(names.join("\n") + if names.is_empty() { "" } else { "\n" })
        }
        Some("wide") | None => {
            if resources.is_empty() {
                return KubectlResult {
                    stdout: String::new(),
                    stderr: format!("No resources found in {ns} namespace.\n"),
                    code: 0,
                };
            }
            KubectlResult::ok(render_table(&kind, &resources, cluster.now_ms()))
        }
        Some(other) => KubectlResult::err(format!("error: unknown output format {other:?}"), 1),
    }
}

fn trim_quotes(s: &str) -> &str {
    let s = s.trim();
    if (s.starts_with('\'') && s.ends_with('\'') && s.len() >= 2)
        || (s.starts_with('"') && s.ends_with('"') && s.len() >= 2)
    {
        &s[1..s.len() - 1]
    } else {
        s
    }
}

fn items_wrapper(resources: &[Resource]) -> Yaml {
    yamlkit::ymap! {
        "apiVersion" => "v1",
        "kind" => "List",
        "items" => Yaml::Seq(resources.iter().map(Resource::to_yaml).collect()),
    }
}

fn age_str(created: u64, now: u64) -> String {
    let secs = now.saturating_sub(created) / 1000;
    if secs < 120 {
        format!("{secs}s")
    } else if secs < 7200 {
        format!("{}m", secs / 60)
    } else {
        format!("{}h", secs / 3600)
    }
}

fn render_table(kind: &str, resources: &[Resource], now: u64) -> String {
    let mut rows: Vec<Vec<String>> = Vec::new();
    let header: Vec<&str> = match kind {
        "Pod" => vec!["NAME", "READY", "STATUS", "RESTARTS", "AGE"],
        "Service" => vec![
            "NAME",
            "TYPE",
            "CLUSTER-IP",
            "EXTERNAL-IP",
            "PORT(S)",
            "AGE",
        ],
        "Deployment" | "StatefulSet" => vec!["NAME", "READY", "UP-TO-DATE", "AVAILABLE", "AGE"],
        "Job" => vec!["NAME", "COMPLETIONS", "DURATION", "AGE"],
        "Namespace" => vec!["NAME", "STATUS", "AGE"],
        _ => vec!["NAME", "AGE"],
    };
    for r in resources {
        let age = age_str(r.created_at_ms, now);
        let row = match kind {
            "Pod" => {
                let total = r.containers().len().max(1);
                let ready = if r.condition("Ready") == Some(true) {
                    total
                } else {
                    0
                };
                let phase = r
                    .status
                    .get("phase")
                    .map(Yaml::render_scalar)
                    .unwrap_or_else(|| "Pending".into());
                let status = r
                    .status
                    .get("containerStatuses")
                    .and_then(|s| s.idx(0))
                    .and_then(|c| c.get_path(&["state", "waiting", "reason"]))
                    .map(Yaml::render_scalar)
                    .unwrap_or(phase);
                vec![
                    r.name.clone(),
                    format!("{ready}/{total}"),
                    status,
                    "0".into(),
                    age,
                ]
            }
            "Service" => {
                let svc_type = r
                    .body
                    .get_path(&["spec", "type"])
                    .map(Yaml::render_scalar)
                    .unwrap_or_else(|| "ClusterIP".into());
                let cluster_ip = r
                    .status
                    .get("clusterIP")
                    .map(Yaml::render_scalar)
                    .unwrap_or_else(|| "None".into());
                let external = r
                    .status
                    .get_path(&["loadBalancer", "ingress"])
                    .and_then(|i| i.idx(0))
                    .and_then(|i| i.get("ip"))
                    .map(Yaml::render_scalar)
                    .unwrap_or_else(|| {
                        if svc_type == "LoadBalancer" {
                            "<pending>".into()
                        } else {
                            "<none>".into()
                        }
                    });
                let ports: Vec<String> = r
                    .body
                    .get_path(&["spec", "ports"])
                    .into_iter()
                    .flat_map(Yaml::items)
                    .map(|p| {
                        let port = p.get("port").map(Yaml::render_scalar).unwrap_or_default();
                        let proto = p
                            .get("protocol")
                            .map(Yaml::render_scalar)
                            .unwrap_or_else(|| "TCP".into());
                        match r.status.get("nodePort").map(Yaml::render_scalar) {
                            Some(np) if svc_type != "ClusterIP" => format!("{port}:{np}/{proto}"),
                            _ => format!("{port}/{proto}"),
                        }
                    })
                    .collect();
                vec![
                    r.name.clone(),
                    svc_type,
                    cluster_ip,
                    external,
                    ports.join(","),
                    age,
                ]
            }
            "Deployment" | "StatefulSet" => {
                let desired = r.replicas();
                let ready = r
                    .status
                    .get("readyReplicas")
                    .and_then(Yaml::as_i64)
                    .unwrap_or(0);
                vec![
                    r.name.clone(),
                    format!("{ready}/{desired}"),
                    desired.to_string(),
                    ready.to_string(),
                    age,
                ]
            }
            "Job" => {
                let succeeded = r
                    .status
                    .get("succeeded")
                    .and_then(Yaml::as_i64)
                    .unwrap_or(0);
                let completions = r
                    .body
                    .get_path(&["spec", "completions"])
                    .and_then(Yaml::as_i64)
                    .unwrap_or(1);
                vec![
                    r.name.clone(),
                    format!("{succeeded}/{completions}"),
                    "10s".into(),
                    age,
                ]
            }
            "Namespace" => vec![r.name.clone(), "Active".into(), age],
            _ => vec![r.name.clone(), age],
        };
        rows.push(row);
    }
    format_columns(&header, &rows)
}

fn format_columns(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let render_row = |cells: Vec<&str>, out: &mut String, widths: &[usize]| {
        for (i, cell) in cells.iter().enumerate() {
            out.push_str(cell);
            if i + 1 < cells.len() {
                for _ in cell.len()..widths[i] + 3 {
                    out.push(' ');
                }
            }
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    render_row(header.to_vec(), &mut out, &widths);
    for row in rows {
        render_row(row.iter().map(String::as_str).collect(), &mut out, &widths);
    }
    out
}

fn wait_cmd(cluster: &mut Cluster, flags: &Flags, ns: &str) -> KubectlResult {
    let Some(wait_for) = &flags.wait_for else {
        return KubectlResult::err("error: --for is required", 1);
    };
    let timeout = flags.timeout_ms.unwrap_or(30_000);
    let deadline = cluster.now_ms() + timeout;
    let for_delete = wait_for == "delete";
    let condition = wait_for
        .strip_prefix("condition=")
        .map(|c| c.split('=').next().unwrap_or(c).to_owned());
    loop {
        let (_, resources) = match lookup_resources(cluster, flags, ns) {
            Ok(r) => r,
            Err(e) => {
                if for_delete {
                    return KubectlResult::ok("");
                }
                // Not-found targets may appear later (e.g. wait for pods of
                // a deployment still rolling out); keep polling.
                if cluster.now_ms() >= deadline {
                    return e;
                }
                cluster.advance(500);
                continue;
            }
        };
        if for_delete {
            if resources.is_empty() {
                return KubectlResult::ok("");
            }
        } else if let Some(cond) = &condition {
            if !resources.is_empty() {
                let satisfied = resources.iter().all(|r| condition_met(r, cond));
                if satisfied {
                    let lines: Vec<String> = resources
                        .iter()
                        .map(|r| format!("{}/{} condition met", r.kind.to_lowercase(), r.name))
                        .collect();
                    return KubectlResult::ok(lines.join("\n") + "\n");
                }
            }
        } else {
            return KubectlResult::err(format!("error: unsupported --for {wait_for:?}"), 1);
        }
        if cluster.now_ms() >= deadline {
            return KubectlResult::err(
                format!(
                    "error: timed out waiting for the condition on {}",
                    flags.positional.first().cloned().unwrap_or_default()
                ),
                1,
            );
        }
        cluster.advance(500);
    }
}

/// Case-insensitive condition check with the aliases kubectl accepts.
fn condition_met(r: &Resource, cond: &str) -> bool {
    let canonical = match cond.to_lowercase().as_str() {
        "ready" => "Ready",
        "available" => "Available",
        "complete" | "completed" => "Complete",
        "progressing" => "Progressing",
        "synced" => "SYNCED",
        "reconciled" => "Reconciled",
        "initialized" => "Initialized",
        "containersready" => "ContainersReady",
        "podscheduled" => "PodScheduled",
        other => {
            return r.condition(other) == Some(true)
                || r.condition(&other.to_uppercase()) == Some(true);
        }
    };
    r.condition(canonical) == Some(true)
}

fn describe_cmd(cluster: &mut Cluster, flags: &Flags, ns: &str) -> KubectlResult {
    let (kind, resources) = match lookup_resources(cluster, flags, ns) {
        Ok(r) => r,
        Err(e) => return e,
    };
    if resources.is_empty() {
        return KubectlResult::err(format!("No resources found in {ns} namespace."), 1);
    }
    let mut out = String::new();
    for r in &resources {
        out.push_str(&describe_resource(&kind, r));
        out.push('\n');
    }
    KubectlResult::ok(out)
}

fn describe_resource(kind: &str, r: &Resource) -> String {
    let mut out = String::new();
    out.push_str(&format!("Name:             {}\n", r.name));
    if !r.namespace.is_empty() {
        out.push_str(&format!("Namespace:        {}\n", r.namespace));
    }
    if !r.labels.is_empty() {
        let labels: Vec<String> = r.labels.iter().map(|(k, v)| format!("{k}={v}")).collect();
        out.push_str(&format!("Labels:           {}\n", labels.join(",")));
    }
    if let Some(annotations) = r.body.get_path(&["metadata", "annotations"]) {
        let list: Vec<String> = annotations
            .entries()
            .map(|(k, v)| format!("{k}: {}", v.render_scalar()))
            .collect();
        out.push_str(&format!("Annotations:      {}\n", list.join(", ")));
    }
    match kind {
        "Ingress" => {
            out.push_str("Rules:\n  Host        Path  Backends\n  ----        ----  --------\n");
            for rule in r
                .body
                .get_path(&["spec", "rules"])
                .into_iter()
                .flat_map(Yaml::items)
            {
                let host = rule
                    .get("host")
                    .map(Yaml::render_scalar)
                    .unwrap_or_else(|| "*".into());
                for p in rule
                    .get_path(&["http", "paths"])
                    .into_iter()
                    .flat_map(Yaml::items)
                {
                    let path = p
                        .get("path")
                        .map(Yaml::render_scalar)
                        .unwrap_or_else(|| "/".into());
                    let svc = p
                        .get_path(&["backend", "service", "name"])
                        .map(Yaml::render_scalar)
                        .unwrap_or_default();
                    let port = p
                        .get_path(&["backend", "service", "port", "number"])
                        .or_else(|| p.get_path(&["backend", "service", "port", "name"]))
                        .map(Yaml::render_scalar)
                        .unwrap_or_default();
                    out.push_str(&format!(
                        "  {host}        {path}     {svc}:{port} (10.244.0.5:{port})\n"
                    ));
                }
            }
        }
        "Pod" => {
            out.push_str(&format!(
                "Status:           {}\n",
                r.status
                    .get("phase")
                    .map(Yaml::render_scalar)
                    .unwrap_or_default()
            ));
            out.push_str(&format!(
                "IP:               {}\n",
                r.status
                    .get("podIP")
                    .map(Yaml::render_scalar)
                    .unwrap_or_default()
            ));
            out.push_str("Containers:\n");
            for c in r.containers() {
                out.push_str(&format!(
                    "  {}:\n    Image:          {}\n",
                    c.get("name").map(Yaml::render_scalar).unwrap_or_default(),
                    c.get("image").map(Yaml::render_scalar).unwrap_or_default()
                ));
                if let Some(res) = c.get("resources") {
                    for section in ["limits", "requests"] {
                        if let Some(vals) = res.get(section) {
                            let list: Vec<String> = vals
                                .entries()
                                .map(|(k, v)| format!("{k}: {}", v.render_scalar()))
                                .collect();
                            out.push_str(&format!("    {section}: {}\n", list.join(", ")));
                        }
                    }
                }
            }
        }
        "Service" => {
            out.push_str(&format!(
                "Type:             {}\n",
                r.body
                    .get_path(&["spec", "type"])
                    .map(Yaml::render_scalar)
                    .unwrap_or_else(|| "ClusterIP".into())
            ));
            out.push_str(&format!(
                "IP:               {}\n",
                r.status
                    .get("clusterIP")
                    .map(Yaml::render_scalar)
                    .unwrap_or_default()
            ));
            let endpoints: Vec<String> = r
                .status
                .get("endpoints")
                .into_iter()
                .flat_map(Yaml::items)
                .map(Yaml::render_scalar)
                .collect();
            out.push_str(&format!("Endpoints:        {}\n", endpoints.join(",")));
        }
        _ => {
            out.push_str(&yamlkit::emit(&r.to_yaml()));
        }
    }
    out
}

fn logs_cmd(cluster: &mut Cluster, flags: &Flags, ns: &str) -> KubectlResult {
    let name = match flags.positional.first() {
        Some(n) => n.trim_start_matches("pod/").to_owned(),
        None => {
            // `kubectl logs -l app=x` uses selector.
            String::new()
        }
    };
    let pods = if name.is_empty() {
        let sel = flags
            .selector
            .as_deref()
            .and_then(|s| Selector::parse_cli(s).ok())
            .unwrap_or_default();
        cluster.select("Pod", Some(ns), &sel)
    } else {
        cluster.get("Pod", Some(ns), Some(&name))
    };
    if pods.is_empty() {
        return KubectlResult::err(
            format!("Error from server (NotFound): pods \"{name}\" not found"),
            1,
        );
    }
    let mut out = String::new();
    for pod in &pods {
        out.push_str(&pod_logs(pod));
    }
    KubectlResult::ok(out)
}

/// Synthesizes logs: echo commands print their arguments, servers print an
/// access-log line.
fn pod_logs(pod: &Resource) -> String {
    let mut out = String::new();
    for c in pod.containers() {
        let mut words: Vec<String> = Vec::new();
        for field in ["command", "args"] {
            if let Some(list) = c.get(field) {
                words.extend(list.items().map(Yaml::render_scalar));
            }
        }
        if let Some(pos) = words.iter().position(|w| w == "echo") {
            out.push_str(&words[pos + 1..].join(" "));
            out.push('\n');
        } else if words.iter().any(|w| w.contains("print")) {
            // perl/python one-liners print something deterministic.
            out.push_str("3.14159\n");
        } else {
            let image = c.get("image").map(Yaml::render_scalar).unwrap_or_default();
            if crate::images::lookup(&image).is_some() {
                out.push_str("10.244.0.1 - - \"GET / HTTP/1.1\" 200\n");
            }
        }
    }
    out
}

/// `kubectl exec [flags] POD [--] COMMAND [args...]`.
///
/// Parses its own argv because everything after `--` belongs to the
/// in-container command verbatim (the shared flag parser would eat it).
fn exec_cmd(cluster: &mut Cluster, args: &[String]) -> KubectlResult {
    let mut ns = "default".to_owned();
    let mut pod_name: Option<String> = None;
    let mut command: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = args[i].as_str();
        match a {
            "--" => {
                command.extend(args[i + 1..].iter().cloned());
                break;
            }
            "-n" | "--namespace" => {
                i += 1;
                match args.get(i) {
                    Some(v) => ns = v.clone(),
                    None => return KubectlResult::err("error: flag needs an argument: -n", 1),
                }
            }
            _ if a.starts_with("--namespace=") => ns = a["--namespace=".len()..].to_owned(),
            "-c" | "--container" => i += 1, // container choice is irrelevant here
            _ if a.starts_with("--container=") => {}
            "-i" | "-t" | "-it" | "-ti" | "--stdin" | "--tty" | "-q" | "--quiet" => {}
            // Unknown flags before the pod name are rejected (a tolerated
            // space-separated value flag would misparse its value as the
            // pod name); after the pod name they belong to the command.
            _ if a.starts_with('-') && pod_name.is_none() => {
                return KubectlResult::err(format!("error: unknown flag: {a}"), 1);
            }
            other if pod_name.is_none() => {
                pod_name = Some(other.trim_start_matches("pod/").to_owned());
            }
            other => command.push(other.to_owned()),
        }
        i += 1;
    }
    let Some(pod_name) = pod_name else {
        return KubectlResult::err("error: pod or type/name must be specified", 1);
    };
    if command.is_empty() {
        return KubectlResult::err(
            "error: you must specify at least one command for the container",
            1,
        );
    }
    let Some(pod) = cluster.get("Pod", Some(&ns), Some(&pod_name)).pop() else {
        return KubectlResult::err(
            format!("Error from server (NotFound): pods \"{pod_name}\" not found"),
            1,
        );
    };
    if pod.status.get("phase").and_then(Yaml::as_str) != Some("Running") {
        return KubectlResult::err(
            format!("Error from server (BadRequest): pod {pod_name} is not running"),
            1,
        );
    }
    container_command(&pod, &command, cluster.now_ms())
}

/// Converts days since the simulated epoch (2024-01-01) into
/// (year, month name, day-of-month), with leap years.
fn civil_from_day(mut days: u64) -> (u64, &'static str, u64) {
    const MONTHS: [&str; 12] = [
        "Jan", "Feb", "Mar", "Apr", "May", "Jun", "Jul", "Aug", "Sep", "Oct", "Nov", "Dec",
    ];
    let mut year = 2024u64;
    loop {
        let leap =
            year.is_multiple_of(4) && (!year.is_multiple_of(100) || year.is_multiple_of(400));
        let year_days = if leap { 366 } else { 365 };
        if days < year_days {
            let lengths = [
                31,
                if leap { 29 } else { 28 },
                31,
                30,
                31,
                30,
                31,
                31,
                30,
                31,
                30,
                31,
            ];
            for (month, &len) in lengths.iter().enumerate() {
                if days < len {
                    return (year, MONTHS[month], days + 1);
                }
                days -= len;
            }
        }
        days -= year_days;
        year += 1;
    }
}

/// Simulates the small command vocabulary real benchmark unit tests run
/// inside containers. Unknown binaries fail the way an OCI runtime does.
fn container_command(pod: &Resource, command: &[String], now_ms: u64) -> KubectlResult {
    let args = &command[1..];
    match command[0].as_str() {
        "echo" => KubectlResult::ok(args.join(" ") + "\n"),
        "hostname" => KubectlResult::ok(format!("{}\n", pod.name)),
        "date" => {
            // The simulated clock booted at 2024-01-01T00:00:00Z, a Monday.
            let secs = now_ms / 1000;
            let days = secs / 86_400;
            let (h, m, s) = ((secs % 86_400) / 3600, (secs % 3600) / 60, secs % 60);
            let weekday = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"][(days % 7) as usize];
            let (year, month, dom) = civil_from_day(days);
            KubectlResult::ok(format!(
                "{weekday} {month} {dom:2} {h:02}:{m:02}:{s:02} UTC {year}\n"
            ))
        }
        "uname" => KubectlResult::ok("Linux\n"),
        "true" => KubectlResult::ok(""),
        "false" => KubectlResult::err("", 1),
        "env" | "printenv" => {
            let mut out = format!("HOSTNAME={}\n", pod.name);
            out.push_str("PATH=/usr/local/sbin:/usr/local/bin:/usr/sbin:/usr/bin:/sbin:/bin\n");
            out.push_str("KUBERNETES_SERVICE_HOST=10.96.0.1\nKUBERNETES_SERVICE_PORT=443\n");
            for c in pod.containers() {
                if let Some(env) = c.get("env") {
                    for entry in env.items() {
                        let name = entry
                            .get("name")
                            .map(Yaml::render_scalar)
                            .unwrap_or_default();
                        let value = entry
                            .get("value")
                            .map(Yaml::render_scalar)
                            .unwrap_or_default();
                        out.push_str(&format!("{name}={value}\n"));
                    }
                }
            }
            KubectlResult::ok(out)
        }
        "ls" => KubectlResult::ok("bin\ndev\netc\nhome\nproc\nroot\nsys\ntmp\nusr\nvar\n"),
        "cat" => match args.first().map(String::as_str) {
            Some("/etc/hostname") => KubectlResult::ok(format!("{}\n", pod.name)),
            Some("/proc/uptime") => KubectlResult::ok(format!("{}.00 0.00\n", now_ms / 1000)),
            Some(path) => KubectlResult::err(format!("cat: {path}: No such file or directory"), 1),
            None => KubectlResult::ok(""),
        },
        other => KubectlResult::err(
            format!(
                "OCI runtime exec failed: exec failed: unable to start container process: \
                 exec: \"{other}\": executable file not found in $PATH: unknown"
            ),
            126,
        ),
    }
}

fn scale_cmd(cluster: &mut Cluster, flags: &Flags, ns: &str) -> KubectlResult {
    let Some(replicas) = flags.replicas else {
        return KubectlResult::err("error: --replicas is required", 1);
    };
    let (kind, resources) = match lookup_resources(cluster, flags, ns) {
        Ok(r) => r,
        Err(e) => return e,
    };
    let mut out = String::new();
    for r in resources {
        let mut body = r.body.clone();
        if let Some(spec) = body.get_mut("spec") {
            spec.insert("replicas", Yaml::Int(replicas));
        }
        if cluster.apply_object(body, ns).is_ok() {
            out.push_str(&format!("{}/{} scaled\n", kind.to_lowercase(), r.name));
        }
    }
    KubectlResult::ok(out)
}

fn rollout_cmd(cluster: &mut Cluster, flags: &Flags, ns: &str) -> KubectlResult {
    if flags.positional.first().map(String::as_str) != Some("status") {
        return KubectlResult::err("error: only `rollout status` is supported", 1);
    }
    let inner = Flags {
        positional: flags.positional[1..].to_vec(),
        namespace: flags.namespace.clone(),
        ..Flags::default()
    };
    let timeout = flags.timeout_ms.unwrap_or(60_000);
    let deadline = cluster.now_ms() + timeout;
    loop {
        let (_, resources) = match lookup_resources(cluster, &inner, ns) {
            Ok(r) => r,
            Err(e) => return e,
        };
        let Some(r) = resources.first() else {
            return KubectlResult::err("error: deployment not found", 1);
        };
        let desired = r.replicas();
        let ready = r
            .status
            .get("readyReplicas")
            .and_then(Yaml::as_i64)
            .unwrap_or(0);
        if ready >= desired {
            return KubectlResult::ok(format!(
                "deployment \"{}\" successfully rolled out\n",
                r.name
            ));
        }
        if cluster.now_ms() >= deadline {
            return KubectlResult::err("error: deployment exceeded its progress deadline", 1);
        }
        cluster.advance(500);
    }
}

/// Not real base64 — a stable placeholder encoding for simulated secrets.
fn base64ish(v: &str) -> String {
    const TABLE: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";
    let bytes = v.as_bytes();
    let mut out = String::new();
    for chunk in bytes.chunks(3) {
        let b = [
            chunk[0],
            *chunk.get(1).unwrap_or(&0),
            *chunk.get(2).unwrap_or(&0),
        ];
        let n = (u32::from(b[0]) << 16) | (u32::from(b[1]) << 8) | u32::from(b[2]);
        out.push(TABLE[(n >> 18) as usize & 63] as char);
        out.push(TABLE[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 {
            TABLE[(n >> 6) as usize & 63] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            TABLE[n as usize & 63] as char
        } else {
            '='
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    fn no_fs(_: &str) -> Option<String> {
        None
    }

    const POD: &str = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: nginx\nspec:\n  containers:\n  - name: c\n    image: nginx\n    ports:\n    - containerPort: 80\n";

    #[test]
    fn apply_from_stdin_and_get() {
        let mut c = Cluster::new();
        let r = run(&mut c, &argv("apply -f -"), POD, &no_fs);
        assert_eq!(r.code, 0, "{}", r.stderr);
        assert_eq!(r.stdout, "pod/web created\n");
        let r = run(&mut c, &argv("get pods"), "", &no_fs);
        assert!(r.stdout.contains("web"), "{}", r.stdout);
    }

    #[test]
    fn apply_from_file_resolver() {
        let mut c = Cluster::new();
        let fs = |name: &str| (name == "labeled_code.yaml").then(|| POD.to_owned());
        let r = run(&mut c, &argv("apply -f labeled_code.yaml"), "", &fs);
        assert_eq!(r.code, 0);
        let r = run(&mut c, &argv("apply -f missing.yaml"), "", &fs);
        assert_eq!(r.code, 1);
        assert!(r.stderr.contains("does not exist"));
    }

    #[test]
    fn wait_for_ready_advances_clock() {
        let mut c = Cluster::new();
        run(&mut c, &argv("apply -f -"), POD, &no_fs);
        let r = run(
            &mut c,
            &argv("wait --for=condition=Ready pod -l app=nginx --timeout=60s"),
            "",
            &no_fs,
        );
        assert_eq!(r.code, 0, "{}", r.stderr);
        assert!(r.stdout.contains("condition met"));
    }

    #[test]
    fn wait_times_out_on_bad_image() {
        let mut c = Cluster::new();
        let bad = POD.replace("image: nginx", "image: nope-missing");
        run(&mut c, &argv("apply -f -"), &bad, &no_fs);
        let r = run(
            &mut c,
            &argv("wait --for=condition=Ready pod/web --timeout=5s"),
            "",
            &no_fs,
        );
        assert_eq!(r.code, 1);
        assert!(r.stderr.contains("timed out"));
    }

    #[test]
    fn jsonpath_output_single_and_list() {
        let mut c = Cluster::new();
        run(&mut c, &argv("apply -f -"), POD, &no_fs);
        run(
            &mut c,
            &argv("wait --for=condition=Ready pod/web --timeout=60s"),
            "",
            &no_fs,
        );
        let r = run(
            &mut c,
            &argv("get pod web -o=jsonpath={.status.hostIP}"),
            "",
            &no_fs,
        );
        assert_eq!(r.stdout, "192.168.49.2");
        let r = run(
            &mut c,
            &argv("get pods -l app=nginx --output=jsonpath={.items..metadata.name}"),
            "",
            &no_fs,
        );
        assert_eq!(r.stdout, "web");
    }

    #[test]
    fn get_name_output() {
        let mut c = Cluster::new();
        run(&mut c, &argv("apply -f -"), POD, &no_fs);
        let r = run(&mut c, &argv("get pods -o name"), "", &no_fs);
        assert_eq!(r.stdout, "pod/web\n");
    }

    #[test]
    fn create_namespace_and_duplicate() {
        let mut c = Cluster::new();
        let r = run(&mut c, &argv("create ns development"), "", &no_fs);
        assert_eq!(r.stdout, "namespace/development created\n");
        let r = run(&mut c, &argv("create namespace development"), "", &no_fs);
        assert_eq!(r.code, 1);
        assert!(r.stderr.contains("AlreadyExists"));
    }

    #[test]
    fn namespaced_apply_via_flag() {
        let mut c = Cluster::new();
        run(&mut c, &argv("create ns dev"), "", &no_fs);
        let r = run(&mut c, &argv("apply -n dev -f -"), POD, &no_fs);
        assert_eq!(r.code, 0);
        let r = run(&mut c, &argv("get pods -n dev -o name"), "", &no_fs);
        assert_eq!(r.stdout, "pod/web\n");
        let r = run(&mut c, &argv("get pods -o name"), "", &no_fs);
        assert_eq!(r.stdout, "");
    }

    #[test]
    fn delete_by_name_and_not_found() {
        let mut c = Cluster::new();
        run(&mut c, &argv("apply -f -"), POD, &no_fs);
        let r = run(&mut c, &argv("delete pod web"), "", &no_fs);
        assert_eq!(r.stdout, "pod \"web\" deleted\n");
        let r = run(&mut c, &argv("delete pod web"), "", &no_fs);
        assert_eq!(r.code, 1);
    }

    #[test]
    fn describe_ingress_shows_backend() {
        let mut c = Cluster::new();
        let ing = "apiVersion: networking.k8s.io/v1\nkind: Ingress\nmetadata:\n  name: minimal-ingress\nspec:\n  rules:\n  - http:\n      paths:\n      - path: /\n        pathType: Prefix\n        backend:\n          service:\n            name: test-app\n            port:\n              number: 5000\n";
        run(&mut c, &argv("apply -f -"), ing, &no_fs);
        let r = run(
            &mut c,
            &argv("describe ingress minimal-ingress"),
            "",
            &no_fs,
        );
        assert!(r.stdout.contains("test-app:5000"), "{}", r.stdout);
    }

    #[test]
    fn logs_echo_command() {
        let mut c = Cluster::new();
        let pod = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: say\nspec:\n  containers:\n  - name: c\n    image: busybox\n    command: [\"echo\", \"hello\", \"world\"]\n";
        run(&mut c, &argv("apply -f -"), pod, &no_fs);
        run(
            &mut c,
            &argv("wait --for=condition=PodScheduled pod/say --timeout=10s"),
            "",
            &no_fs,
        );
        let r = run(&mut c, &argv("logs say"), "", &no_fs);
        assert_eq!(r.stdout, "hello world\n");
    }

    #[test]
    fn scale_and_rollout_status() {
        let mut c = Cluster::new();
        let deploy = "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: d\nspec:\n  replicas: 1\n  selector:\n    matchLabels:\n      app: d\n  template:\n    metadata:\n      labels:\n        app: d\n    spec:\n      containers:\n      - name: c\n        image: nginx\n";
        run(&mut c, &argv("apply -f -"), deploy, &no_fs);
        let r = run(&mut c, &argv("scale deployment d --replicas=3"), "", &no_fs);
        assert!(r.stdout.contains("scaled"));
        let r = run(
            &mut c,
            &argv("rollout status deployment/d --timeout=120s"),
            "",
            &no_fs,
        );
        assert_eq!(r.code, 0, "{}", r.stderr);
        assert!(r.stdout.contains("successfully rolled out"));
        let pods = run(&mut c, &argv("get pods -l app=d -o name"), "", &no_fs);
        assert_eq!(pods.stdout.lines().count(), 3);
    }

    #[test]
    fn bad_resource_type_errors() {
        let mut c = Cluster::new();
        let r = run(&mut c, &argv("get frobnicators"), "", &no_fs);
        assert_eq!(r.code, 1);
        assert!(r.stderr.contains("doesn't have a resource type"));
    }

    #[test]
    fn wait_for_delete() {
        let mut c = Cluster::new();
        run(&mut c, &argv("apply -f -"), POD, &no_fs);
        run(&mut c, &argv("delete pod web"), "", &no_fs);
        let r = run(
            &mut c,
            &argv("wait --for=delete pod/web --timeout=5s"),
            "",
            &no_fs,
        );
        assert_eq!(r.code, 0);
    }

    #[test]
    fn create_configmap_from_literal() {
        let mut c = Cluster::new();
        let r = run(
            &mut c,
            &argv("create configmap app-config --from-literal=mode=prod --from-literal=retries=3"),
            "",
            &no_fs,
        );
        assert_eq!(r.code, 0, "{}", r.stderr);
        let r = run(
            &mut c,
            &argv("get configmap app-config -o jsonpath={.data.mode}"),
            "",
            &no_fs,
        );
        assert_eq!(r.stdout, "prod");
    }

    #[test]
    fn get_json_output_parses() {
        let mut c = Cluster::new();
        run(&mut c, &argv("apply -f -"), POD, &no_fs);
        let r = run(&mut c, &argv("get pod web -o json"), "", &no_fs);
        assert!(r.stdout.contains("\"kind\": \"Pod\""));
    }

    #[test]
    fn civil_from_day_rolls_months_and_leap_years() {
        assert_eq!(civil_from_day(0), (2024, "Jan", 1));
        assert_eq!(civil_from_day(30), (2024, "Jan", 31));
        assert_eq!(civil_from_day(31), (2024, "Feb", 1));
        assert_eq!(civil_from_day(59), (2024, "Feb", 29)); // 2024 is a leap year
        assert_eq!(civil_from_day(60), (2024, "Mar", 1));
        assert_eq!(civil_from_day(365), (2024, "Dec", 31));
        assert_eq!(civil_from_day(366), (2025, "Jan", 1));
        assert_eq!(civil_from_day(366 + 58), (2025, "Feb", 28));
        assert_eq!(civil_from_day(366 + 59), (2025, "Mar", 1)); // 2025 is not
    }
}
