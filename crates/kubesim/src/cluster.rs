//! The in-memory cluster: resource store, simulated clock, and the
//! controller loops that stand in for kube-controller-manager + kubelet.
//!
//! Time is virtual: [`Cluster::advance`] moves the clock and reconciles.
//! Nothing sleeps for real, so a `kubectl wait --timeout=60s` in a unit
//! test costs microseconds of wall time.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use yamlkit::Yaml;

use crate::images::{self, ImageBehavior};
use crate::resources::{canonical_kind, format_sim_time, is_cluster_scoped, Resource, ResourceKey};
use crate::schema::{self, Violation};
use crate::selector::Selector;

/// Errors surfaced to kubectl (which renders them in CLI phrasing).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClusterError {
    /// Manifest failed strict decoding; payload is (kind, apiVersion, violations).
    Decoding(String, String, Vec<Violation>),
    /// Kind/apiVersion pair the API server does not serve.
    NoKindMatch(String, String),
    /// Target namespace does not exist.
    NamespaceNotFound(String),
    /// Object not found.
    NotFound(String),
    /// Semantic validation failure (selector mismatch, bad port, ...).
    Invalid(String),
    /// Object already exists (create on existing name).
    AlreadyExists(String),
    /// Admission refused the object (e.g. a `ResourceQuota` is exhausted).
    Forbidden(String),
}

impl fmt::Display for ClusterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClusterError::Decoding(kind, version, violations) => {
                let v = version.rsplit('/').next().unwrap_or(version);
                let list = violations
                    .iter()
                    .map(Violation::render)
                    .collect::<Vec<_>>()
                    .join(", ");
                write!(
                    f,
                    "{kind} in version \"{v}\" cannot be handled as a {kind}: strict decoding error: {list}"
                )
            }
            ClusterError::NoKindMatch(kind, version) => {
                write!(f, "no matches for kind \"{kind}\" in version \"{version}\"")
            }
            ClusterError::NamespaceNotFound(ns) => write!(f, "namespaces \"{ns}\" not found"),
            ClusterError::NotFound(what) => write!(f, "{what} not found"),
            ClusterError::Invalid(msg) => write!(f, "{msg}"),
            ClusterError::AlreadyExists(what) => write!(f, "{what} already exists"),
            ClusterError::Forbidden(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// A virtual worker node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeInfo {
    /// Node name (the default cluster has a single `minikube` node).
    pub name: String,
    /// Node IP, returned as pod `hostIP`.
    pub ip: String,
}

/// Per-pod runtime model: when pulls finish, when the pod is ready, when a
/// finite command terminates.
#[derive(Debug, Clone, Copy, PartialEq)]
struct PodRuntime {
    created_ms: u64,
    pull_done_ms: u64,
    ready_ms: u64,
    /// Some(t) when the pod's containers exit at simulated time t.
    terminates_ms: Option<u64>,
    /// The command exits non-zero.
    fails: bool,
    /// Image cannot be pulled (unknown reference).
    unpullable: bool,
}

/// The simulated Kubernetes cluster.
///
/// # Examples
///
/// ```
/// use kubesim::Cluster;
/// let mut cluster = Cluster::new();
/// cluster
///     .apply_manifest(
///         "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: c\n    image: nginx\n",
///         "default",
///     )
///     .unwrap();
/// cluster.advance(10_000);
/// let pod = cluster.get("Pod", Some("default"), Some("web")).pop().unwrap();
/// assert_eq!(pod.condition("Ready"), Some(true));
/// ```
#[derive(Debug, Clone)]
pub struct Cluster {
    now_ms: u64,
    resources: BTreeMap<ResourceKey, Resource>,
    namespaces: BTreeSet<String>,
    nodes: Vec<NodeInfo>,
    pod_runtime: HashMap<ResourceKey, PodRuntime>,
    name_counter: u64,
    ip_counter: u32,
    node_port_counter: u16,
    /// Bandwidth used for image pulls (minikube default: fast local link).
    pub pull_bandwidth_mbps: f64,
    /// Image pulls performed (image, at_ms) — feeds the eval-cluster cache
    /// model and `describe` events.
    pulls: Vec<(String, u64)>,
    /// Pre-parsed manifests keyed by source-text content hash
    /// ([`yamlkit::doc::content_hash`]). Seeded by [`Cluster::prime_parsed`]
    /// from a `PreparedDoc`'s shared values so that `kubectl apply -f` of
    /// the same text skips the YAML parse entirely — the candidate is
    /// parsed once per evaluation, not once per layer.
    primed: HashMap<u64, std::sync::Arc<Vec<Yaml>>>,
}

impl Default for Cluster {
    fn default() -> Self {
        Self::new()
    }
}

impl Cluster {
    /// A fresh single-node cluster with `default`, `kube-system` and
    /// `kube-public` namespaces, mirroring a minikube boot.
    pub fn new() -> Cluster {
        Cluster {
            now_ms: 0,
            resources: BTreeMap::new(),
            namespaces: ["default", "kube-system", "kube-public"]
                .into_iter()
                .map(str::to_owned)
                .collect(),
            nodes: vec![NodeInfo {
                name: "minikube".into(),
                ip: "192.168.49.2".into(),
            }],
            pod_runtime: HashMap::new(),
            name_counter: 0,
            ip_counter: 1,
            node_port_counter: 30000,
            pull_bandwidth_mbps: 400.0,
            pulls: Vec::new(),
            primed: HashMap::new(),
        }
    }

    /// Current simulated time in milliseconds.
    pub fn now_ms(&self) -> u64 {
        self.now_ms
    }

    /// The cluster's nodes.
    pub fn nodes(&self) -> &[NodeInfo] {
        &self.nodes
    }

    /// Image pulls recorded so far (image reference, time).
    pub fn pulls(&self) -> &[(String, u64)] {
        &self.pulls
    }

    /// Existing namespace names.
    pub fn namespaces(&self) -> impl Iterator<Item = &str> {
        self.namespaces.iter().map(String::as_str)
    }

    /// Advances the simulated clock, reconciling controllers as time passes.
    pub fn advance(&mut self, ms: u64) {
        let target = self.now_ms + ms;
        while self.now_ms < target {
            let step = (target - self.now_ms).min(250);
            self.now_ms += step;
            self.reconcile();
        }
    }

    /// Creates a namespace.
    ///
    /// # Errors
    ///
    /// [`ClusterError::AlreadyExists`] when it is already present.
    pub fn create_namespace(&mut self, name: &str) -> Result<(), ClusterError> {
        if !self.namespaces.insert(name.to_owned()) {
            return Err(ClusterError::AlreadyExists(format!(
                "namespaces \"{name}\""
            )));
        }
        Ok(())
    }

    /// Applies every document in a manifest, returning per-object messages
    /// (`pod/web created`).
    ///
    /// # Errors
    ///
    /// Validation, decoding and namespace errors; on error earlier
    /// documents in the stream stay applied (kubectl behaviour).
    pub fn apply_manifest(
        &mut self,
        manifest: &str,
        default_namespace: &str,
    ) -> Result<Vec<String>, ClusterError> {
        // Parse-once fast path: a substrate that already holds the parsed
        // form of this exact text (see [`Cluster::prime_parsed`]) lets
        // `kubectl apply -f` skip the parse.
        if !self.primed.is_empty() {
            let primed = self
                .primed
                .get(&yamlkit::doc::content_hash(manifest))
                .cloned();
            if let Some(docs) = primed {
                return self.apply_values(&docs, default_namespace);
            }
        }
        let docs = yamlkit::parse(manifest)
            .map_err(|e| ClusterError::Invalid(format!("error parsing YAML: {e}")))?;
        let values: Vec<Yaml> = docs.iter().map(yamlkit::Node::to_value).collect();
        self.apply_owned(values, default_namespace)
    }

    /// Registers the pre-parsed form of a manifest text so subsequent
    /// [`Cluster::apply_manifest`] calls with byte-identical text apply
    /// the shared parsed documents instead of re-parsing. `hash` must be
    /// [`yamlkit::doc::content_hash`] of the exact text (a
    /// `PreparedDoc::content_hash`).
    pub fn prime_parsed(&mut self, hash: u64, docs: std::sync::Arc<Vec<Yaml>>) {
        self.primed.insert(hash, docs);
    }

    /// Applies pre-parsed documents directly — the parse-once entry point
    /// backends with a `PreparedDoc` in hand call instead of
    /// [`Cluster::apply_manifest`]. Same per-object messages, same error
    /// classes (minus the parse error, which cannot happen here).
    pub fn apply_docs(
        &mut self,
        docs: &[Yaml],
        default_namespace: &str,
    ) -> Result<Vec<String>, ClusterError> {
        self.apply_values(docs, default_namespace)
    }

    /// Borrowed-slice apply: clones each body out of the (possibly
    /// shared) slice. Used by the primed/pre-parsed paths, where a clone
    /// replaces a full text parse; the cold text path goes through
    /// [`Cluster::apply_owned`] and never clones.
    fn apply_values(
        &mut self,
        docs: &[Yaml],
        default_namespace: &str,
    ) -> Result<Vec<String>, ClusterError> {
        self.apply_owned(docs.to_vec(), default_namespace)
    }

    /// Shared tail of the apply paths: empty-stream checks + per-object
    /// application, moving each owned body into the store.
    fn apply_owned(
        &mut self,
        docs: Vec<Yaml>,
        default_namespace: &str,
    ) -> Result<Vec<String>, ClusterError> {
        if docs.is_empty() {
            return Err(ClusterError::Invalid("no objects passed to apply".into()));
        }
        let mut messages = Vec::new();
        for body in docs {
            if body.is_null() {
                continue;
            }
            messages.push(self.apply_object(body, default_namespace)?);
        }
        if messages.is_empty() {
            return Err(ClusterError::Invalid("no objects passed to apply".into()));
        }
        Ok(messages)
    }

    /// Applies a single parsed object.
    ///
    /// # Errors
    ///
    /// Same classes as [`Cluster::apply_manifest`].
    pub fn apply_object(
        &mut self,
        body: Yaml,
        default_namespace: &str,
    ) -> Result<String, ClusterError> {
        let kind = body
            .get("kind")
            .and_then(Yaml::as_str)
            .ok_or_else(|| ClusterError::Invalid("error validating data: missing kind".into()))?
            .to_owned();
        let api_version = body
            .get("apiVersion")
            .and_then(Yaml::as_str)
            .ok_or_else(|| {
                ClusterError::Invalid("error validating data: missing apiVersion".into())
            })?
            .to_owned();
        if let Some(expected) = schema::expected_api_versions(&kind) {
            if !expected.contains(&api_version.as_str()) {
                return Err(ClusterError::NoKindMatch(kind, api_version));
            }
        }
        let violations = schema::validate(&body);
        if !violations.is_empty() {
            return Err(ClusterError::Decoding(kind, api_version, violations));
        }
        let resource = Resource::from_yaml(body, default_namespace, self.now_ms)
            .map_err(|e| ClusterError::Invalid(format!("error validating data: {e}")))?;
        if !resource.namespace.is_empty() && !self.namespaces.contains(&resource.namespace) {
            return Err(ClusterError::NamespaceNotFound(resource.namespace));
        }
        self.validate_semantics(&resource)?;
        if resource.kind == "Pod" && !self.resources.contains_key(&resource.key()) {
            self.enforce_pod_quota(&resource)?;
        }
        if resource.kind == "Namespace" {
            self.namespaces.insert(resource.name.clone());
        }
        let key = resource.key();
        let verb = if let Some(existing) = self.resources.get_mut(&key) {
            let changed = existing.body != resource.body;
            existing.body = resource.body;
            existing.labels = resource.labels;
            existing.api_version = resource.api_version;
            existing.generation += 1;
            if changed {
                "configured"
            } else {
                "unchanged"
            }
        } else {
            if resource.kind == "Pod" {
                self.track_pod(&resource);
            }
            self.resources.insert(key.clone(), resource);
            "created"
        };
        self.reconcile();
        Ok(format!("{}/{} {verb}", key.kind.to_lowercase(), key.name))
    }

    /// Deletes an object (cascading to owned children).
    ///
    /// # Errors
    ///
    /// [`ClusterError::NotFound`] when absent.
    pub fn delete(
        &mut self,
        kind: &str,
        namespace: &str,
        name: &str,
    ) -> Result<String, ClusterError> {
        let kind = canonical_kind(kind).unwrap_or(kind).to_owned();
        let ns = if is_cluster_scoped(&kind) {
            ""
        } else {
            namespace
        };
        let key = ResourceKey {
            kind: kind.clone(),
            namespace: ns.to_owned(),
            name: name.to_owned(),
        };
        if self.resources.remove(&key).is_none() {
            return Err(ClusterError::NotFound(format!(
                "{}.\"{name}\"",
                kind.to_lowercase()
            )));
        }
        self.pod_runtime.remove(&key);
        if kind == "Namespace" {
            self.namespaces.remove(name);
            self.resources.retain(|k, _| k.namespace != name);
        }
        self.cascade_delete(&key);
        Ok(format!("{} \"{name}\" deleted", kind.to_lowercase()))
    }

    fn cascade_delete(&mut self, owner: &ResourceKey) {
        let children: Vec<ResourceKey> = self
            .resources
            .values()
            .filter(|r| owned_by(r, &owner.kind, &owner.name) && r.namespace == owner.namespace)
            .map(Resource::key)
            .collect();
        for child in children {
            self.resources.remove(&child);
            self.pod_runtime.remove(&child);
            self.cascade_delete(&child);
        }
    }

    /// Fetches resources by kind with optional namespace and name filters.
    /// `namespace: None` means all namespaces.
    pub fn get(&self, kind: &str, namespace: Option<&str>, name: Option<&str>) -> Vec<Resource> {
        let kind = canonical_kind(kind).unwrap_or(kind);
        if kind == "Node" {
            return self.node_resources();
        }
        self.resources
            .values()
            .filter(|r| r.kind == kind)
            .filter(|r| {
                is_cluster_scoped(kind)
                    || namespace.is_none()
                    || namespace == Some(r.namespace.as_str())
            })
            .filter(|r| name.is_none() || name == Some(r.name.as_str()))
            .cloned()
            .collect()
    }

    /// Fetches resources matching a label selector.
    pub fn select(
        &self,
        kind: &str,
        namespace: Option<&str>,
        selector: &Selector,
    ) -> Vec<Resource> {
        self.get(kind, namespace, None)
            .into_iter()
            .filter(|r| selector.matches(&r.labels))
            .collect()
    }

    /// Direct lookup by key.
    pub fn resource(&self, key: &ResourceKey) -> Option<&Resource> {
        self.resources.get(key)
    }

    /// All stored resources (tests and describe).
    pub fn all_resources(&self) -> impl Iterator<Item = &Resource> {
        self.resources.values()
    }

    fn node_resources(&self) -> Vec<Resource> {
        self.nodes
            .iter()
            .map(|n| {
                let body = yamlkit::ymap! {
                    "apiVersion" => "v1",
                    "kind" => "Node",
                    "metadata" => yamlkit::ymap! { "name" => n.name.as_str() },
                };
                let mut r = Resource::from_yaml(body, "", 0).expect("static node yaml");
                r.status = yamlkit::ymap! {
                    "addresses" => Yaml::Seq(vec![
                        yamlkit::ymap! { "type" => "InternalIP", "address" => n.ip.as_str() },
                    ]),
                    "conditions" => Yaml::Seq(vec![
                        yamlkit::ymap! { "type" => "Ready", "status" => "True" },
                    ]),
                };
                r
            })
            .collect()
    }

    // -----------------------------------------------------------------
    // Semantic validation
    // -----------------------------------------------------------------

    fn validate_semantics(&self, r: &Resource) -> Result<(), ClusterError> {
        match r.kind.as_str() {
            "Deployment" | "ReplicaSet" | "DaemonSet" | "StatefulSet" => {
                let selector = r
                    .body
                    .get_path(&["spec", "selector"])
                    .map(Selector::from_spec)
                    .unwrap_or_default();
                let template_labels: Vec<(String, String)> = r
                    .body
                    .get_path(&["spec", "template", "metadata", "labels"])
                    .map(|l| {
                        l.entries()
                            .map(|(k, v)| (k.to_owned(), v.render_scalar()))
                            .collect()
                    })
                    .unwrap_or_default();
                if !selector.is_empty() && !selector.matches(&template_labels) {
                    return Err(ClusterError::Invalid(format!(
                        "The {} \"{}\" is invalid: spec.template.metadata.labels: Invalid value: `selector` does not match template `labels`",
                        r.kind, r.name
                    )));
                }
                self.validate_pod_spec(r, &["spec", "template", "spec"])?;
            }
            "Job" => {
                let policy = r
                    .body
                    .get_path(&["spec", "template", "spec", "restartPolicy"])
                    .map(|p| p.render_scalar())
                    .unwrap_or_else(|| "Always".to_owned());
                if policy != "Never" && policy != "OnFailure" {
                    return Err(ClusterError::Invalid(format!(
                        "Job.batch \"{}\" is invalid: spec.template.spec.restartPolicy: Required value: valid values: \"OnFailure\", \"Never\"",
                        r.name
                    )));
                }
                self.validate_pod_spec(r, &["spec", "template", "spec"])?;
            }
            "Pod" => self.validate_pod_spec(r, &["spec"])?,
            "Service" => {
                let svc_type = r
                    .body
                    .get_path(&["spec", "type"])
                    .map(|t| t.render_scalar())
                    .unwrap_or_else(|| "ClusterIP".to_owned());
                let ports = r
                    .body
                    .get_path(&["spec", "ports"])
                    .map(|p| p.items().count())
                    .unwrap_or(0);
                if svc_type != "ExternalName" && ports == 0 {
                    return Err(ClusterError::Invalid(format!(
                        "Service \"{}\" is invalid: spec.ports: Required value",
                        r.name
                    )));
                }
                for p in r
                    .body
                    .get_path(&["spec", "ports"])
                    .into_iter()
                    .flat_map(Yaml::items)
                {
                    if let Some(port) = p.get("port").and_then(Yaml::as_i64) {
                        if !(1..=65535).contains(&port) {
                            return Err(ClusterError::Invalid(format!(
                                "Service \"{}\" is invalid: spec.ports[0].port: Invalid value: {port}",
                                r.name
                            )));
                        }
                    }
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// `ResourceQuota` admission for directly-applied pods: when a quota in
    /// the target namespace pins `spec.hard.pods`, creating a pod beyond
    /// the ceiling is refused with the API server's `Forbidden` phrasing.
    /// (Controller-created pods bypass admission here, like the real
    /// quota controller's eventual-consistency window.)
    fn enforce_pod_quota(&self, pod: &Resource) -> Result<(), ClusterError> {
        for quota in self
            .resources
            .values()
            .filter(|r| r.kind == "ResourceQuota" && r.namespace == pod.namespace)
        {
            let Some(hard) = quota
                .body
                .get_path(&["spec", "hard", "pods"])
                .map(Yaml::render_scalar)
                .and_then(|s| s.trim().parse::<u64>().ok())
            else {
                continue;
            };
            let used = self
                .resources
                .values()
                .filter(|r| r.kind == "Pod" && r.namespace == pod.namespace)
                .count() as u64;
            if used >= hard {
                return Err(ClusterError::Forbidden(format!(
                    "pods \"{}\" is forbidden: exceeded quota: {}, requested: pods=1, used: pods={used}, limited: pods={hard}",
                    pod.name, quota.name
                )));
            }
        }
        Ok(())
    }

    fn validate_pod_spec(&self, r: &Resource, path: &[&str]) -> Result<(), ClusterError> {
        let Some(spec) = r.body.get_path(path) else {
            return Ok(());
        };
        let containers = spec
            .get("containers")
            .map(|c| c.items().count())
            .unwrap_or(0);
        if containers == 0 {
            return Err(ClusterError::Invalid(format!(
                "{} \"{}\" is invalid: spec.containers: Required value",
                r.kind, r.name
            )));
        }
        // volumeMounts must reference declared volumes.
        let volumes: Vec<String> = spec
            .get("volumes")
            .map(|v| {
                v.items()
                    .filter_map(|x| x.get("name").map(Yaml::render_scalar))
                    .collect()
            })
            .unwrap_or_default();
        for c in spec.get("containers").into_iter().flat_map(Yaml::items) {
            for m in c.get("volumeMounts").into_iter().flat_map(Yaml::items) {
                let name = m.get("name").map(Yaml::render_scalar).unwrap_or_default();
                if !volumes.contains(&name) && r.kind != "StatefulSet" {
                    return Err(ClusterError::Invalid(format!(
                        "{} \"{}\" is invalid: spec.containers[0].volumeMounts[0].name: Not found: \"{name}\"",
                        r.kind, r.name
                    )));
                }
            }
        }
        Ok(())
    }

    // -----------------------------------------------------------------
    // Controllers
    // -----------------------------------------------------------------

    fn reconcile(&mut self) {
        self.reconcile_deployments();
        self.reconcile_replicasets();
        self.reconcile_daemonsets();
        self.reconcile_statefulsets();
        self.reconcile_jobs();
        self.reconcile_cronjobs();
        self.update_pods();
        self.update_workload_status();
        self.reconcile_services();
        self.reconcile_ingresses();
        self.reconcile_hpas();
        self.reconcile_istio();
    }

    fn fresh_suffix(&mut self) -> String {
        self.name_counter += 1;
        let alphabet = b"abcdefghijklmnopqrstuvwxyz";
        let mut n = self.name_counter * 7919 + 13;
        let mut s = String::new();
        for _ in 0..5 {
            s.push(alphabet[(n % 26) as usize] as char);
            n /= 26;
        }
        s
    }

    fn reconcile_deployments(&mut self) {
        let deployments: Vec<Resource> = self
            .resources
            .values()
            .filter(|r| r.kind == "Deployment")
            .cloned()
            .collect();
        for d in deployments {
            let rs_name = format!("{}-{}", d.name, template_hash(&d.body));
            let rs_key = ResourceKey {
                kind: "ReplicaSet".into(),
                namespace: d.namespace.clone(),
                name: rs_name.clone(),
            };
            if self.resources.contains_key(&rs_key) {
                // Keep replica count in sync.
                let replicas = d.replicas();
                if let Some(rs) = self.resources.get_mut(&rs_key) {
                    rs.body
                        .get_mut("spec")
                        .map(|s| s.insert("replicas", Yaml::Int(replicas)));
                }
                continue;
            }
            // Old replica sets from previous template hashes are scaled away.
            let stale: Vec<ResourceKey> = self
                .resources
                .values()
                .filter(|r| {
                    r.kind == "ReplicaSet"
                        && r.namespace == d.namespace
                        && owned_by(r, "Deployment", &d.name)
                })
                .map(Resource::key)
                .collect();
            for key in stale {
                self.resources.remove(&key);
                self.cascade_delete(&key);
            }
            let mut body = yamlkit::ymap! {
                "apiVersion" => "apps/v1",
                "kind" => "ReplicaSet",
                "metadata" => yamlkit::ymap! {
                    "name" => rs_name.as_str(),
                    "namespace" => d.namespace.as_str(),
                    "ownerReferences" => Yaml::Seq(vec![owner_ref("Deployment", &d.name)]),
                },
                "spec" => yamlkit::ymap! { "replicas" => d.replicas() },
            };
            if let Some(selector) = d.body.get_path(&["spec", "selector"]) {
                body.get_mut("spec")
                    .unwrap()
                    .insert("selector", selector.clone());
            }
            if let Some(template) = d.body.get_path(&["spec", "template"]) {
                body.get_mut("spec")
                    .unwrap()
                    .insert("template", template.clone());
            }
            let r = Resource::from_yaml(body, &d.namespace, self.now_ms).expect("rs body");
            self.resources.insert(r.key(), r);
        }
    }

    fn reconcile_replicasets(&mut self) {
        let sets: Vec<Resource> = self
            .resources
            .values()
            .filter(|r| r.kind == "ReplicaSet")
            .cloned()
            .collect();
        for rs in sets {
            let desired = rs.replicas().max(0) as usize;
            let mut children: Vec<ResourceKey> = self
                .resources
                .values()
                .filter(|r| {
                    r.kind == "Pod"
                        && r.namespace == rs.namespace
                        && owned_by(r, "ReplicaSet", &rs.name)
                })
                .map(Resource::key)
                .collect();
            while children.len() > desired {
                let key = children.pop().expect("len checked");
                self.resources.remove(&key);
                self.pod_runtime.remove(&key);
            }
            let missing = desired - children.len();
            for _ in 0..missing {
                let name = format!("{}-{}", rs.name, self.fresh_suffix());
                self.spawn_pod_from_template(&rs, &name, "ReplicaSet");
            }
        }
    }

    fn reconcile_daemonsets(&mut self) {
        let sets: Vec<Resource> = self
            .resources
            .values()
            .filter(|r| r.kind == "DaemonSet")
            .cloned()
            .collect();
        for ds in sets {
            for node_idx in 0..self.nodes.len() {
                let exists = self.resources.values().any(|r| {
                    r.kind == "Pod"
                        && r.namespace == ds.namespace
                        && owned_by(r, "DaemonSet", &ds.name)
                        && r.body
                            .get_path(&["spec", "nodeName"])
                            .map(Yaml::render_scalar)
                            .as_deref()
                            == Some(self.nodes[node_idx].name.as_str())
                });
                if !exists {
                    let name = format!("{}-{}", ds.name, self.fresh_suffix());
                    let node_name = self.nodes[node_idx].name.clone();
                    if let Some(key) = self.spawn_pod_from_template(&ds, &name, "DaemonSet") {
                        if let Some(pod) = self.resources.get_mut(&key) {
                            pod.body
                                .get_mut("spec")
                                .map(|s| s.insert("nodeName", Yaml::Str(node_name)));
                        }
                    }
                }
            }
        }
    }

    fn reconcile_statefulsets(&mut self) {
        let sets: Vec<Resource> = self
            .resources
            .values()
            .filter(|r| r.kind == "StatefulSet")
            .cloned()
            .collect();
        for sts in sets {
            let desired = sts.replicas().max(0);
            for ordinal in 0..desired {
                let name = format!("{}-{ordinal}", sts.name);
                let key = ResourceKey {
                    kind: "Pod".into(),
                    namespace: sts.namespace.clone(),
                    name: name.clone(),
                };
                if !self.resources.contains_key(&key) {
                    self.spawn_pod_from_template(&sts, &name, "StatefulSet");
                }
            }
            // Scale down: remove higher ordinals.
            let extra: Vec<ResourceKey> = self
                .resources
                .values()
                .filter(|r| {
                    r.kind == "Pod"
                        && owned_by(r, "StatefulSet", &sts.name)
                        && r.namespace == sts.namespace
                        && r.name
                            .rsplit('-')
                            .next()
                            .and_then(|o| o.parse::<i64>().ok())
                            .is_some_and(|o| o >= desired)
                })
                .map(Resource::key)
                .collect();
            for key in extra {
                self.resources.remove(&key);
                self.pod_runtime.remove(&key);
            }
        }
    }

    fn reconcile_jobs(&mut self) {
        let jobs: Vec<Resource> = self
            .resources
            .values()
            .filter(|r| r.kind == "Job")
            .cloned()
            .collect();
        for job in jobs {
            let completions = job
                .body
                .get_path(&["spec", "completions"])
                .and_then(Yaml::as_i64)
                .unwrap_or(1)
                .max(1) as usize;
            let existing = self
                .resources
                .values()
                .filter(|r| {
                    r.kind == "Pod" && r.namespace == job.namespace && owned_by(r, "Job", &job.name)
                })
                .count();
            for _ in existing..completions {
                let name = format!("{}-{}", job.name, self.fresh_suffix());
                self.spawn_pod_from_template(&job, &name, "Job");
            }
        }
    }

    fn reconcile_cronjobs(&mut self) {
        let crons: Vec<Resource> = self
            .resources
            .values()
            .filter(|r| r.kind == "CronJob")
            .cloned()
            .collect();
        for cj in crons {
            // Simplified schedule model: one Job per simulated minute.
            let due = (self.now_ms / 60_000) > (cj.created_at_ms / 60_000)
                || self.now_ms.saturating_sub(cj.created_at_ms) >= 60_000;
            if !due {
                continue;
            }
            let spawned = self.resources.values().any(|r| {
                r.kind == "Job" && r.namespace == cj.namespace && owned_by(r, "CronJob", &cj.name)
            });
            if spawned {
                continue;
            }
            let Some(job_spec) = cj.body.get_path(&["spec", "jobTemplate", "spec"]) else {
                continue;
            };
            let name = format!("{}-{}", cj.name, 28000000 + self.name_counter);
            self.name_counter += 1;
            let body = yamlkit::ymap! {
                "apiVersion" => "batch/v1",
                "kind" => "Job",
                "metadata" => yamlkit::ymap! {
                    "name" => name.as_str(),
                    "namespace" => cj.namespace.as_str(),
                    "ownerReferences" => Yaml::Seq(vec![owner_ref("CronJob", &cj.name)]),
                },
                "spec" => job_spec.clone(),
            };
            if let Ok(r) = Resource::from_yaml(body, &cj.namespace, self.now_ms) {
                self.resources.insert(r.key(), r);
            }
        }
    }

    /// Creates a pod from a workload's template; returns the new key.
    fn spawn_pod_from_template(
        &mut self,
        owner: &Resource,
        pod_name: &str,
        owner_kind: &str,
    ) -> Option<ResourceKey> {
        let template = owner.pod_template()?;
        let labels = template
            .get_path(&["metadata", "labels"])
            .cloned()
            .unwrap_or(Yaml::Map(vec![]));
        let spec = template.get("spec").cloned().unwrap_or(Yaml::Map(vec![]));
        let node = self.nodes.first().cloned();
        let mut metadata = yamlkit::ymap! {
            "name" => pod_name,
            "namespace" => owner.namespace.as_str(),
            "labels" => labels,
            "ownerReferences" => Yaml::Seq(vec![owner_ref(owner_kind, &owner.name)]),
        };
        if let Some(anns) = template.get_path(&["metadata", "annotations"]) {
            metadata.insert("annotations", anns.clone());
        }
        let mut spec = spec;
        if spec.get("nodeName").is_none() {
            if let Some(n) = node {
                spec.insert("nodeName", Yaml::Str(n.name));
            }
        }
        let body = yamlkit::ymap! {
            "apiVersion" => "v1",
            "kind" => "Pod",
            "metadata" => metadata,
            "spec" => spec,
        };
        let r = Resource::from_yaml(body, &owner.namespace, self.now_ms).ok()?;
        let key = r.key();
        self.track_pod(&r);
        self.resources.insert(key.clone(), r);
        Some(key)
    }

    /// Computes the runtime model for a new pod.
    fn track_pod(&mut self, pod: &Resource) {
        let mut pull_ms = 0u64;
        let mut unpullable = false;
        let mut terminates: Option<u64> = None;
        let mut fails = false;
        let mut ready_delay = 200u64;
        for c in pod.containers() {
            let image = c.get("image").map(Yaml::render_scalar).unwrap_or_default();
            match images::lookup(&image) {
                Some(info) => {
                    pull_ms = pull_ms.max(images::pull_time_ms(
                        info.size_mib,
                        self.pull_bandwidth_mbps,
                    ));
                    self.pulls.push((image.clone(), self.now_ms));
                    let command_finite = command_duration(&c);
                    match (info.behavior, command_finite) {
                        (
                            _,
                            Some(CommandRun {
                                duration_ms,
                                fails: f,
                            }),
                        ) => {
                            terminates = Some(terminates.unwrap_or(0).max(duration_ms));
                            fails |= f;
                        }
                        (ImageBehavior::Batch, None) => {
                            // Bare shell image with no command exits at once.
                            terminates = Some(terminates.unwrap_or(0).max(300));
                        }
                        _ => {}
                    }
                }
                None => unpullable = true,
            }
            if let Some(probe) = c.get("readinessProbe") {
                let delay = probe
                    .get("initialDelaySeconds")
                    .and_then(Yaml::as_i64)
                    .unwrap_or(0)
                    .max(0) as u64;
                ready_delay = ready_delay.max(delay * 1000 + 200);
            }
        }
        let created = self.now_ms;
        let pull_done = created + pull_ms.max(300);
        self.pod_runtime.insert(
            pod.key(),
            PodRuntime {
                created_ms: created,
                pull_done_ms: pull_done,
                ready_ms: pull_done + ready_delay,
                terminates_ms: terminates.map(|d| pull_done + d),
                fails,
                unpullable,
            },
        );
    }

    fn update_pods(&mut self) {
        let now = self.now_ms;
        let node_ip = self.nodes.first().map(|n| n.ip.clone()).unwrap_or_default();
        let keys: Vec<ResourceKey> = self
            .resources
            .values()
            .filter(|r| r.kind == "Pod")
            .map(Resource::key)
            .collect();
        for key in keys {
            let runtime = match self.pod_runtime.get(&key) {
                Some(rt) => *rt,
                None => {
                    // Pod applied before tracking existed (direct insert).
                    let pod = self.resources.get(&key).expect("key from scan").clone();
                    self.track_pod(&pod);
                    self.pod_runtime[&key]
                }
            };
            let ip_suffix = {
                // Stable pod IP derived once, stored in status.
                let pod = self.resources.get(&key).expect("key from scan");
                pod.status.get("podIP").map(Yaml::render_scalar)
            };
            let pod_ip = ip_suffix.unwrap_or_else(|| {
                let ip = format!("10.244.0.{}", self.ip_counter);
                self.ip_counter += 1;
                ip
            });
            let pod = self.resources.get_mut(&key).expect("key from scan");
            let (phase, ready, waiting_reason): (&str, bool, Option<&str>) = if runtime.unpullable {
                ("Pending", false, Some("ImagePullBackOff"))
            } else if now < runtime.pull_done_ms {
                ("Pending", false, Some("ContainerCreating"))
            } else if let Some(t) = runtime.terminates_ms {
                if now >= t {
                    (
                        if runtime.fails { "Failed" } else { "Succeeded" },
                        false,
                        None,
                    )
                } else {
                    ("Running", now >= runtime.ready_ms, None)
                }
            } else {
                ("Running", now >= runtime.ready_ms, None)
            };
            let containers = pod.containers();
            let mut statuses = Vec::new();
            for c in &containers {
                let cname = c.get("name").map(Yaml::render_scalar).unwrap_or_default();
                let image = c.get("image").map(Yaml::render_scalar).unwrap_or_default();
                let state = match (phase, waiting_reason) {
                    (_, Some(reason)) => yamlkit::ymap! {
                        "waiting" => yamlkit::ymap! { "reason" => reason, "message" => "" },
                    },
                    ("Succeeded", _) | ("Failed", _) => yamlkit::ymap! {
                        "terminated" => yamlkit::ymap! {
                            "exitCode" => if runtime.fails { 1i64 } else { 0i64 },
                            "reason" => if runtime.fails { "Error" } else { "Completed" },
                        },
                    },
                    _ => yamlkit::ymap! {
                        "running" => yamlkit::ymap! { "startedAt" => format_sim_time(runtime.pull_done_ms) },
                    },
                };
                statuses.push(yamlkit::ymap! {
                    "name" => cname,
                    "image" => image,
                    "ready" => ready,
                    "restartCount" => 0i64,
                    "state" => state,
                });
            }
            pod.status = yamlkit::ymap! {
                "phase" => phase,
                "podIP" => pod_ip.as_str(),
                "hostIP" => node_ip.as_str(),
                "startTime" => format_sim_time(runtime.created_ms),
                "containerStatuses" => Yaml::Seq(statuses),
            };
            pod.set_condition("PodScheduled", true, now);
            pod.set_condition("Initialized", true, now);
            pod.set_condition("ContainersReady", ready, now);
            pod.set_condition("Ready", ready, now);
        }
    }

    fn update_workload_status(&mut self) {
        let parents: Vec<Resource> = self
            .resources
            .values()
            .filter(|r| {
                matches!(
                    r.kind.as_str(),
                    "Deployment" | "ReplicaSet" | "DaemonSet" | "StatefulSet" | "Job"
                )
            })
            .cloned()
            .collect();
        for parent in parents {
            let pods: Vec<&Resource> = self
                .resources
                .values()
                .filter(|r| {
                    r.kind == "Pod"
                        && r.namespace == parent.namespace
                        && transitively_owned(self, r, &parent.kind, &parent.name)
                })
                .collect();
            let ready = pods
                .iter()
                .filter(|p| p.condition("Ready") == Some(true))
                .count() as i64;
            let succeeded = pods
                .iter()
                .filter(|p| p.status.get("phase").and_then(Yaml::as_str) == Some("Succeeded"))
                .count() as i64;
            let failed = pods
                .iter()
                .filter(|p| p.status.get("phase").and_then(Yaml::as_str) == Some("Failed"))
                .count() as i64;
            let total = pods.len() as i64;
            let now = self.now_ms;
            let key = parent.key();
            let Some(res) = self.resources.get_mut(&key) else {
                continue;
            };
            match parent.kind.as_str() {
                "Job" => {
                    let completions = parent
                        .body
                        .get_path(&["spec", "completions"])
                        .and_then(Yaml::as_i64)
                        .unwrap_or(1);
                    res.status = yamlkit::ymap! {
                        "active" => total - succeeded - failed,
                        "succeeded" => succeeded,
                        "failed" => failed,
                    };
                    res.set_condition("Complete", succeeded >= completions, now);
                    if failed > 0 {
                        res.set_condition("Failed", true, now);
                    }
                }
                "DaemonSet" => {
                    res.status = yamlkit::ymap! {
                        "desiredNumberScheduled" => total,
                        "currentNumberScheduled" => total,
                        "numberReady" => ready,
                        "numberAvailable" => ready,
                        "numberMisscheduled" => 0i64,
                    };
                }
                _ => {
                    let desired = parent.replicas();
                    res.status = yamlkit::ymap! {
                        "replicas" => total,
                        "readyReplicas" => ready,
                        "availableReplicas" => ready,
                        "updatedReplicas" => total,
                        "observedGeneration" => res.generation as i64,
                    };
                    res.set_condition("Available", ready >= desired.min(1.max(desired)), now);
                    res.set_condition("Progressing", true, now);
                }
            }
        }
    }

    fn reconcile_services(&mut self) {
        let services: Vec<Resource> = self
            .resources
            .values()
            .filter(|r| r.kind == "Service")
            .cloned()
            .collect();
        for svc in services {
            let selector = svc
                .body
                .get_path(&["spec", "selector"])
                .map(Selector::from_spec)
                .unwrap_or_default();
            let endpoints: Vec<String> = if selector.is_empty() {
                Vec::new()
            } else {
                self.resources
                    .values()
                    .filter(|r| {
                        r.kind == "Pod"
                            && r.namespace == svc.namespace
                            && selector.matches(&r.labels)
                            && r.condition("Ready") == Some(true)
                    })
                    .filter_map(|p| p.status.get("podIP").map(Yaml::render_scalar))
                    .collect()
            };
            let now = self.now_ms;
            let created = svc.created_at_ms;
            let key = svc.key();
            let svc_type = svc
                .body
                .get_path(&["spec", "type"])
                .map(|t| t.render_scalar())
                .unwrap_or_else(|| "ClusterIP".to_owned());
            // Assign stable virtual IPs/ports once.
            let needs_cluster_ip = {
                let r = self.resources.get(&key).expect("svc key");
                r.status.get("clusterIP").is_none()
            };
            if needs_cluster_ip {
                let ip = format!("10.96.0.{}", self.ip_counter);
                self.ip_counter += 1;
                let node_port = if svc_type == "NodePort" || svc_type == "LoadBalancer" {
                    self.node_port_counter += 1;
                    Some(self.node_port_counter)
                } else {
                    None
                };
                let r = self.resources.get_mut(&key).expect("svc key");
                if r.status.is_null() {
                    r.status = Yaml::Map(vec![]);
                }
                r.status.insert("clusterIP", Yaml::Str(ip));
                if let Some(np) = node_port {
                    r.status.insert("nodePort", Yaml::Int(i64::from(np)));
                }
            }
            let r = self.resources.get_mut(&key).expect("svc key");
            r.status.insert(
                "endpoints",
                Yaml::Seq(endpoints.iter().map(|e| Yaml::Str(e.clone())).collect()),
            );
            // LoadBalancer external IP arrives after a short provisioning
            // delay, like minikube tunnel / cloud LBs.
            if svc_type == "LoadBalancer" && now.saturating_sub(created) >= 2_000 {
                r.status.insert(
                    "loadBalancer",
                    yamlkit::ymap! {
                        "ingress" => Yaml::Seq(vec![yamlkit::ymap! { "ip" => "10.110.0.10" }]),
                    },
                );
            }
        }
    }

    fn reconcile_ingresses(&mut self) {
        let keys: Vec<ResourceKey> = self
            .resources
            .values()
            .filter(|r| r.kind == "Ingress")
            .map(Resource::key)
            .collect();
        let now = self.now_ms;
        for key in keys {
            let r = self.resources.get_mut(&key).expect("ingress key");
            if r.status.is_null() {
                r.status = Yaml::Map(vec![]);
            }
            if now.saturating_sub(r.created_at_ms) >= 1_000 {
                r.status.insert(
                    "loadBalancer",
                    yamlkit::ymap! {
                        "ingress" => Yaml::Seq(vec![yamlkit::ymap! { "ip" => "192.168.49.2" }]),
                    },
                );
                // The benchmark's tests wait on a SYNCED condition.
                r.set_condition("SYNCED", true, now);
            }
        }
    }

    fn reconcile_hpas(&mut self) {
        let keys: Vec<ResourceKey> = self
            .resources
            .values()
            .filter(|r| r.kind == "HorizontalPodAutoscaler")
            .map(Resource::key)
            .collect();
        for key in keys {
            let (target_kind, target_name, min) = {
                let r = self.resources.get(&key).expect("hpa key");
                (
                    r.body
                        .get_path(&["spec", "scaleTargetRef", "kind"])
                        .map(Yaml::render_scalar)
                        .unwrap_or_default(),
                    r.body
                        .get_path(&["spec", "scaleTargetRef", "name"])
                        .map(Yaml::render_scalar)
                        .unwrap_or_default(),
                    r.body
                        .get_path(&["spec", "minReplicas"])
                        .and_then(Yaml::as_i64)
                        .unwrap_or(1),
                )
            };
            let current = self
                .get(
                    &target_kind,
                    Some(&key.namespace.clone()),
                    Some(&target_name),
                )
                .first()
                .map(Resource::replicas)
                .unwrap_or(0);
            let r = self.resources.get_mut(&key).expect("hpa key");
            r.status = yamlkit::ymap! {
                "currentReplicas" => current,
                "desiredReplicas" => current.max(min),
                "currentCPUUtilizationPercentage" => 10i64,
            };
        }
    }

    fn reconcile_istio(&mut self) {
        let keys: Vec<ResourceKey> = self
            .resources
            .values()
            .filter(|r| {
                matches!(
                    r.kind.as_str(),
                    "VirtualService" | "DestinationRule" | "Gateway"
                )
            })
            .map(Resource::key)
            .collect();
        let now = self.now_ms;
        for key in keys {
            let r = self.resources.get_mut(&key).expect("istio key");
            r.set_condition("Reconciled", true, now);
        }
    }
}

/// `metadata.ownerReferences` entry.
fn owner_ref(kind: &str, name: &str) -> Yaml {
    yamlkit::ymap! { "kind" => kind, "name" => name, "controller" => true }
}

fn owned_by(r: &Resource, kind: &str, name: &str) -> bool {
    r.body
        .get_path(&["metadata", "ownerReferences"])
        .map(|refs| {
            refs.items().any(|o| {
                o.get("kind").and_then(Yaml::as_str) == Some(kind)
                    && o.get("name").and_then(Yaml::as_str) == Some(name)
            })
        })
        .unwrap_or(false)
}

/// Pod owned by `kind/name` directly or through an intermediate ReplicaSet.
fn transitively_owned(cluster: &Cluster, pod: &Resource, kind: &str, name: &str) -> bool {
    if owned_by(pod, kind, name) {
        return true;
    }
    if kind == "Deployment" {
        // Pod -> ReplicaSet -> Deployment.
        if let Some(refs) = pod.body.get_path(&["metadata", "ownerReferences"]) {
            for o in refs.items() {
                if o.get("kind").and_then(Yaml::as_str) == Some("ReplicaSet") {
                    let rs_name = o.get("name").map(Yaml::render_scalar).unwrap_or_default();
                    let rs_key = ResourceKey {
                        kind: "ReplicaSet".into(),
                        namespace: pod.namespace.clone(),
                        name: rs_name,
                    };
                    if cluster
                        .resource(&rs_key)
                        .is_some_and(|rs| owned_by(rs, "Deployment", name))
                    {
                        return true;
                    }
                }
            }
        }
    }
    false
}

/// Short deterministic hash of the pod template, used in ReplicaSet names.
fn template_hash(deployment_body: &Yaml) -> String {
    let text = deployment_body
        .get_path(&["spec", "template"])
        .map(yamlkit::json::to_json)
        .unwrap_or_default();
    let mut h: u64 = 0xcbf29ce484222325;
    for b in text.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{:08x}", (h >> 16) as u32)
}

/// Duration model for an explicit container command.
struct CommandRun {
    duration_ms: u64,
    fails: bool,
}

/// Interprets `command`/`args` to decide whether the container terminates.
fn command_duration(container: &Yaml) -> Option<CommandRun> {
    let mut words: Vec<String> = Vec::new();
    for field in ["command", "args"] {
        if let Some(list) = container.get(field) {
            words.extend(list.items().map(Yaml::render_scalar));
        }
    }
    if words.is_empty() {
        return None;
    }
    let joined = words.join(" ");
    // Servers launched via explicit commands keep running.
    for server in [
        "nginx",
        "httpd",
        "redis-server",
        "mysqld",
        "tail -f",
        "sleep infinity",
        "http.server",
        "while true",
    ] {
        if joined.contains(server) {
            return None;
        }
    }
    if let Some(pos) = words.iter().position(|w| w == "sleep") {
        let secs = words
            .get(pos + 1)
            .and_then(|s| s.parse::<f64>().ok())
            .unwrap_or(1.0);
        return Some(CommandRun {
            duration_ms: (secs * 1000.0) as u64 + 200,
            fails: false,
        });
    }
    let fails = joined.contains("exit 1") || joined.contains("false");
    let duration_ms = if joined.contains("echo") || joined.contains("true") {
        300
    } else {
        1500
    };
    Some(CommandRun { duration_ms, fails })
}

#[cfg(test)]
mod tests {
    use super::*;

    const NGINX_DEPLOY: &str = "\
apiVersion: apps/v1
kind: Deployment
metadata:
  name: nginx-deployment
spec:
  replicas: 3
  selector:
    matchLabels:
      app: nginx
  template:
    metadata:
      labels:
        app: nginx
    spec:
      containers:
      - name: nginx-container
        image: nginx:latest
        ports:
        - containerPort: 80
";

    #[test]
    fn deployment_spawns_ready_pods() {
        let mut c = Cluster::new();
        c.apply_manifest(NGINX_DEPLOY, "default").unwrap();
        c.advance(15_000);
        let pods = c.select(
            "Pod",
            Some("default"),
            &Selector::parse_cli("app=nginx").unwrap(),
        );
        assert_eq!(pods.len(), 3);
        assert!(pods.iter().all(|p| p.condition("Ready") == Some(true)));
        let d = c
            .get("Deployment", Some("default"), Some("nginx-deployment"))
            .pop()
            .unwrap();
        assert_eq!(d.status.get("readyReplicas"), Some(&Yaml::Int(3)));
    }

    #[test]
    fn scale_down_removes_pods() {
        let mut c = Cluster::new();
        c.apply_manifest(NGINX_DEPLOY, "default").unwrap();
        c.advance(10_000);
        let scaled = NGINX_DEPLOY.replace("replicas: 3", "replicas: 1");
        c.apply_manifest(&scaled, "default").unwrap();
        c.advance(2_000);
        let pods = c.select(
            "Pod",
            Some("default"),
            &Selector::parse_cli("app=nginx").unwrap(),
        );
        assert_eq!(pods.len(), 1);
    }

    #[test]
    fn unknown_image_never_ready() {
        let mut c = Cluster::new();
        c.apply_manifest(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: bad\nspec:\n  containers:\n  - name: c\n    image: not-a-real-image:v9\n",
            "default",
        )
        .unwrap();
        c.advance(120_000);
        let pod = c.get("Pod", Some("default"), Some("bad")).pop().unwrap();
        assert_eq!(
            pod.status.get("phase").and_then(Yaml::as_str),
            Some("Pending")
        );
        assert_eq!(pod.condition("Ready"), Some(false));
        let reason = pod
            .status
            .get("containerStatuses")
            .and_then(|s| s.idx(0))
            .and_then(|c| c.get_path(&["state", "waiting", "reason"]))
            .and_then(Yaml::as_str);
        assert_eq!(reason, Some("ImagePullBackOff"));
    }

    #[test]
    fn job_completes() {
        let mut c = Cluster::new();
        c.apply_manifest(
            "apiVersion: batch/v1\nkind: Job\nmetadata:\n  name: pi\nspec:\n  template:\n    spec:\n      containers:\n      - name: pi\n        image: perl\n        command: [\"perl\", \"-e\", \"print 1\"]\n      restartPolicy: Never\n  backoffLimit: 4\n",
            "default",
        )
        .unwrap();
        c.advance(60_000);
        let job = c.get("Job", Some("default"), Some("pi")).pop().unwrap();
        assert_eq!(job.status.get("succeeded"), Some(&Yaml::Int(1)));
        assert_eq!(job.condition("Complete"), Some(true));
    }

    #[test]
    fn job_requires_restart_policy() {
        let mut c = Cluster::new();
        let err = c
            .apply_manifest(
                "apiVersion: batch/v1\nkind: Job\nmetadata:\n  name: j\nspec:\n  template:\n    spec:\n      containers:\n      - name: x\n        image: busybox\n",
                "default",
            )
            .unwrap_err();
        assert!(err.to_string().contains("restartPolicy"));
    }

    #[test]
    fn daemonset_runs_one_pod_per_node() {
        let mut c = Cluster::new();
        c.apply_manifest(
            "apiVersion: apps/v1\nkind: DaemonSet\nmetadata:\n  name: proxy\nspec:\n  selector:\n    matchLabels:\n      app: proxy\n  template:\n    metadata:\n      labels:\n        app: proxy\n    spec:\n      containers:\n      - name: c\n        image: nginx\n",
            "default",
        )
        .unwrap();
        c.advance(10_000);
        let pods = c.select(
            "Pod",
            Some("default"),
            &Selector::parse_cli("app=proxy").unwrap(),
        );
        assert_eq!(pods.len(), c.nodes().len());
        let ds = c
            .get("DaemonSet", Some("default"), Some("proxy"))
            .pop()
            .unwrap();
        assert_eq!(ds.status.get("numberReady"), Some(&Yaml::Int(1)));
    }

    #[test]
    fn statefulset_ordinal_names() {
        let mut c = Cluster::new();
        c.apply_manifest(
            "apiVersion: apps/v1\nkind: StatefulSet\nmetadata:\n  name: db\nspec:\n  serviceName: db\n  replicas: 2\n  selector:\n    matchLabels:\n      app: db\n  template:\n    metadata:\n      labels:\n        app: db\n    spec:\n      containers:\n      - name: c\n        image: mysql\n",
            "default",
        )
        .unwrap();
        c.advance(15_000);
        assert!(c.get("Pod", Some("default"), Some("db-0")).len() == 1);
        assert!(c.get("Pod", Some("default"), Some("db-1")).len() == 1);
    }

    #[test]
    fn service_collects_ready_endpoints_and_lb_ip() {
        let mut c = Cluster::new();
        c.apply_manifest(NGINX_DEPLOY, "default").unwrap();
        c.apply_manifest(
            "apiVersion: v1\nkind: Service\nmetadata:\n  name: nginx-service\nspec:\n  selector:\n    app: nginx\n  ports:\n  - port: 80\n    targetPort: 80\n  type: LoadBalancer\n",
            "default",
        )
        .unwrap();
        c.advance(15_000);
        let svc = c
            .get("Service", Some("default"), Some("nginx-service"))
            .pop()
            .unwrap();
        assert_eq!(svc.status.get("endpoints").unwrap().seq_len(), Some(3));
        assert!(svc.status.get_path(&["loadBalancer", "ingress"]).is_some());
    }

    #[test]
    fn namespace_must_exist() {
        let mut c = Cluster::new();
        let manifest = NGINX_DEPLOY.replace("name: nginx-deployment", "name: d\n  namespace: dev");
        let err = c.apply_manifest(&manifest, "default").unwrap_err();
        assert_eq!(err, ClusterError::NamespaceNotFound("dev".into()));
        c.create_namespace("dev").unwrap();
        assert!(c.apply_manifest(&manifest, "default").is_ok());
    }

    #[test]
    fn selector_template_mismatch_rejected() {
        let mut c = Cluster::new();
        let bad = NGINX_DEPLOY.replace("app: nginx\n  template", "app: other\n  template");
        let err = c.apply_manifest(&bad, "default").unwrap_err();
        assert!(err.to_string().contains("does not match template"), "{err}");
    }

    #[test]
    fn wrong_api_version_is_no_kind_match() {
        let mut c = Cluster::new();
        let bad = NGINX_DEPLOY.replace("apps/v1", "apps/v1beta1");
        let err = c.apply_manifest(&bad, "default").unwrap_err();
        assert_eq!(
            err.to_string(),
            "no matches for kind \"Deployment\" in version \"apps/v1beta1\""
        );
    }

    #[test]
    fn strict_decoding_error_message_matches_api_server() {
        let mut c = Cluster::new();
        let err = c
            .apply_manifest(
                "apiVersion: networking.k8s.io/v1\nkind: Ingress\nmetadata:\n  name: i\nspec:\n  rules:\n  - http:\n      paths:\n      - path: /\n        pathType: Prefix\n        backend:\n          serviceName: app\n          servicePort: 5000\n",
                "default",
            )
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.starts_with(
                "Ingress in version \"v1\" cannot be handled as a Ingress: strict decoding error:"
            ),
            "{msg}"
        );
        assert!(msg.contains("unknown field \"spec.rules[0].http.paths[0].backend.serviceName\""));
    }

    #[test]
    fn delete_cascades() {
        let mut c = Cluster::new();
        c.apply_manifest(NGINX_DEPLOY, "default").unwrap();
        c.advance(10_000);
        c.delete("deployment", "default", "nginx-deployment")
            .unwrap();
        assert!(c.get("Pod", Some("default"), None).is_empty());
        assert!(c.get("ReplicaSet", Some("default"), None).is_empty());
    }

    #[test]
    fn apply_is_idempotent() {
        let mut c = Cluster::new();
        let m1 = c.apply_manifest(NGINX_DEPLOY, "default").unwrap();
        assert_eq!(m1, vec!["deployment/nginx-deployment created"]);
        let m2 = c.apply_manifest(NGINX_DEPLOY, "default").unwrap();
        assert_eq!(m2, vec!["deployment/nginx-deployment unchanged"]);
    }

    #[test]
    fn cronjob_spawns_job_after_a_minute() {
        let mut c = Cluster::new();
        c.apply_manifest(
            "apiVersion: batch/v1\nkind: CronJob\nmetadata:\n  name: tick\nspec:\n  schedule: \"* * * * *\"\n  jobTemplate:\n    spec:\n      template:\n        spec:\n          containers:\n          - name: c\n            image: busybox\n            command: [\"echo\", \"hi\"]\n          restartPolicy: OnFailure\n",
            "default",
        )
        .unwrap();
        c.advance(70_000);
        let jobs = c.get("Job", Some("default"), None);
        assert_eq!(jobs.len(), 1);
        assert!(jobs[0].name.starts_with("tick-"));
    }

    #[test]
    fn pod_gets_ips() {
        let mut c = Cluster::new();
        c.apply_manifest(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: p\nspec:\n  containers:\n  - name: c\n    image: nginx\n",
            "default",
        )
        .unwrap();
        c.advance(8_000);
        let pod = c.get("Pod", Some("default"), Some("p")).pop().unwrap();
        assert!(pod
            .status
            .get("podIP")
            .map(Yaml::render_scalar)
            .unwrap()
            .starts_with("10.244."));
        assert_eq!(
            pod.status.get("hostIP").map(Yaml::render_scalar).as_deref(),
            Some("192.168.49.2")
        );
    }

    #[test]
    fn pod_quota_is_enforced_on_direct_applies() {
        let mut c = Cluster::new();
        c.apply_manifest(
            "apiVersion: v1\nkind: ResourceQuota\nmetadata:\n  name: team-quota\nspec:\n  hard:\n    pods: \"1\"\n",
            "default",
        )
        .unwrap();
        let pod = |name: &str| {
            format!(
                "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\nspec:\n  containers:\n  - name: c\n    image: nginx\n"
            )
        };
        c.apply_manifest(&pod("one"), "default").unwrap();
        let err = c.apply_manifest(&pod("two"), "default").unwrap_err();
        assert_eq!(
            err.to_string(),
            "pods \"two\" is forbidden: exceeded quota: team-quota, requested: pods=1, used: pods=1, limited: pods=1"
        );
        // Re-applying the existing pod is an update, not a new creation.
        c.apply_manifest(&pod("one"), "default").unwrap();
    }

    #[test]
    fn istio_resources_reconcile() {
        let mut c = Cluster::new();
        c.apply_manifest(
            "apiVersion: networking.istio.io/v1alpha3\nkind: DestinationRule\nmetadata:\n  name: ratings\nspec:\n  host: ratings\n  trafficPolicy:\n    loadBalancer:\n      simple: LEAST_REQUEST\n",
            "default",
        )
        .unwrap();
        c.advance(1_000);
        let dr = c
            .get("DestinationRule", Some("default"), Some("ratings"))
            .pop()
            .unwrap();
        assert_eq!(dr.condition("Reconciled"), Some(true));
    }
}
