//! Catalog of container images the simulated cluster knows how to run:
//! their pull size (drives simulated pull latency and the evaluation
//! cluster's Docker cache model) and runtime behaviour (which ports serve
//! HTTP, which are TCP-only databases, which commands terminate).

/// How a container behaves once started.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageBehavior {
    /// Serves HTTP 200 on its default port (nginx, httpd, registry, ...).
    HttpServer {
        /// Default listening port when the manifest does not say.
        default_port: u16,
    },
    /// Accepts TCP connections but speaks a non-HTTP protocol (redis,
    /// mysql, ...). `curl` against it yields an empty-reply error.
    TcpServer {
        /// Default listening port.
        default_port: u16,
    },
    /// Runs a command and exits (busybox, alpine, ubuntu, perl, ...).
    Batch,
}

/// Static description of a known image repository.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImageInfo {
    /// Repository name without tag (e.g. `nginx`).
    pub repo: &'static str,
    /// Compressed size in MiB — drives pull latency and cache economics.
    pub size_mib: f64,
    /// Runtime behaviour.
    pub behavior: ImageBehavior,
    /// Body served on HTTP 200 (empty for non-HTTP images).
    pub http_body: &'static str,
}

/// Known images: the set used across the generated dataset, matching the
/// images CloudEval-YAML unit tests pull (Figure 4 shows nginx, redis,
/// ubuntu, mysql among the cached images).
pub const CATALOG: &[ImageInfo] = &[
    ImageInfo {
        repo: "nginx",
        size_mib: 67.0,
        behavior: ImageBehavior::HttpServer { default_port: 80 },
        http_body: "<html><body><h1>Welcome to nginx!</h1></body></html>",
    },
    ImageInfo {
        repo: "httpd",
        size_mib: 59.0,
        behavior: ImageBehavior::HttpServer { default_port: 80 },
        http_body: "<html><body><h1>It works!</h1></body></html>",
    },
    ImageInfo {
        repo: "registry",
        size_mib: 26.0,
        behavior: ImageBehavior::HttpServer { default_port: 5000 },
        http_body: "{}",
    },
    ImageInfo {
        repo: "hashicorp/http-echo",
        size_mib: 6.0,
        behavior: ImageBehavior::HttpServer { default_port: 5678 },
        http_body: "hello-world",
    },
    ImageInfo {
        repo: "kennethreitz/httpbin",
        size_mib: 180.0,
        behavior: ImageBehavior::HttpServer { default_port: 80 },
        http_body: "{\"origin\": \"10.244.0.1\"}",
    },
    ImageInfo {
        repo: "gcr.io/google-samples/hello-app",
        size_mib: 12.0,
        behavior: ImageBehavior::HttpServer { default_port: 8080 },
        http_body: "Hello, world!",
    },
    ImageInfo {
        repo: "wordpress",
        size_mib: 210.0,
        behavior: ImageBehavior::HttpServer { default_port: 80 },
        http_body: "<html>WordPress setup</html>",
    },
    ImageInfo {
        repo: "ghost",
        size_mib: 150.0,
        behavior: ImageBehavior::HttpServer { default_port: 2368 },
        http_body: "<html>Ghost</html>",
    },
    ImageInfo {
        repo: "redis",
        size_mib: 40.0,
        behavior: ImageBehavior::TcpServer { default_port: 6379 },
        http_body: "",
    },
    ImageInfo {
        repo: "mysql",
        size_mib: 170.0,
        behavior: ImageBehavior::TcpServer { default_port: 3306 },
        http_body: "",
    },
    ImageInfo {
        repo: "postgres",
        size_mib: 140.0,
        behavior: ImageBehavior::TcpServer { default_port: 5432 },
        http_body: "",
    },
    ImageInfo {
        repo: "mongo",
        size_mib: 230.0,
        behavior: ImageBehavior::TcpServer {
            default_port: 27017,
        },
        http_body: "",
    },
    ImageInfo {
        repo: "memcached",
        size_mib: 30.0,
        behavior: ImageBehavior::TcpServer {
            default_port: 11211,
        },
        http_body: "",
    },
    ImageInfo {
        repo: "rabbitmq",
        size_mib: 90.0,
        behavior: ImageBehavior::TcpServer { default_port: 5672 },
        http_body: "",
    },
    ImageInfo {
        repo: "busybox",
        size_mib: 2.0,
        behavior: ImageBehavior::Batch,
        http_body: "",
    },
    ImageInfo {
        repo: "alpine",
        size_mib: 3.0,
        behavior: ImageBehavior::Batch,
        http_body: "",
    },
    ImageInfo {
        repo: "ubuntu",
        size_mib: 29.0,
        behavior: ImageBehavior::Batch,
        http_body: "",
    },
    ImageInfo {
        repo: "debian",
        size_mib: 50.0,
        behavior: ImageBehavior::Batch,
        http_body: "",
    },
    ImageInfo {
        repo: "centos",
        size_mib: 75.0,
        behavior: ImageBehavior::Batch,
        http_body: "",
    },
    ImageInfo {
        repo: "perl",
        size_mib: 300.0,
        behavior: ImageBehavior::Batch,
        http_body: "",
    },
    ImageInfo {
        repo: "python",
        size_mib: 340.0,
        behavior: ImageBehavior::Batch,
        http_body: "",
    },
    ImageInfo {
        repo: "node",
        size_mib: 380.0,
        behavior: ImageBehavior::Batch,
        http_body: "",
    },
    ImageInfo {
        repo: "envoyproxy/envoy",
        size_mib: 120.0,
        behavior: ImageBehavior::HttpServer {
            default_port: 10000,
        },
        http_body: "envoy",
    },
    ImageInfo {
        repo: "istio/examples-bookinfo-ratings-v1",
        size_mib: 160.0,
        behavior: ImageBehavior::HttpServer { default_port: 9080 },
        http_body: "{\"ratings\": {}}",
    },
    ImageInfo {
        repo: "istio/examples-bookinfo-productpage-v1",
        size_mib: 180.0,
        behavior: ImageBehavior::HttpServer { default_port: 9080 },
        http_body: "<html>productpage</html>",
    },
    ImageInfo {
        repo: "istio/examples-bookinfo-reviews-v1",
        size_mib: 170.0,
        behavior: ImageBehavior::HttpServer { default_port: 9080 },
        http_body: "{\"reviews\": []}",
    },
];

/// Splits `nginx:1.25` into repo and tag (`latest` when missing); digests
/// (`@sha256:...`) count as tags.
pub fn split_image(image: &str) -> (&str, &str) {
    if let Some((repo, digest)) = image.split_once('@') {
        return (repo, digest);
    }
    // The colon of a registry port (`host:5000/img`) precedes a slash.
    match image.rfind(':') {
        Some(i) if !image[i..].contains('/') => (&image[..i], &image[i + 1..]),
        _ => (image, "latest"),
    }
}

/// Looks up a known image by full reference.
pub fn lookup(image: &str) -> Option<&'static ImageInfo> {
    let (repo, _tag) = split_image(image);
    let repo = repo
        .trim_start_matches("docker.io/")
        .trim_start_matches("library/");
    CATALOG.iter().find(|i| i.repo == repo)
}

/// Simulated pull latency in milliseconds at `bandwidth_mbps` megabits/s,
/// plus a fixed registry round-trip overhead.
pub fn pull_time_ms(size_mib: f64, bandwidth_mbps: f64) -> u64 {
    let transfer_s = size_mib * 8.0 / bandwidth_mbps.max(0.001);
    (500.0 + transfer_s * 1000.0) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_image_handles_tags_and_registries() {
        assert_eq!(split_image("nginx:latest"), ("nginx", "latest"));
        assert_eq!(split_image("nginx"), ("nginx", "latest"));
        assert_eq!(split_image("redis:7.2"), ("redis", "7.2"));
        assert_eq!(
            split_image("localhost:5000/app"),
            ("localhost:5000/app", "latest")
        );
        assert_eq!(
            split_image("istio/examples-bookinfo-ratings-v1:1.17.0").0,
            "istio/examples-bookinfo-ratings-v1"
        );
    }

    #[test]
    fn lookup_known_images() {
        assert!(lookup("nginx:latest").is_some());
        assert!(lookup("docker.io/library/redis:7").is_some());
        assert!(lookup("no-such-image:v1").is_none());
    }

    #[test]
    fn pull_time_scales_with_bandwidth() {
        let slow = pull_time_ms(100.0, 100.0);
        let fast = pull_time_ms(100.0, 1000.0);
        assert!(slow > fast);
        // 100 MiB at 100 Mbps ≈ 8 s + overhead.
        assert!((7_000..10_500).contains(&slow), "{slow}");
    }
}
