//! Generic Kubernetes resource model.
//!
//! Resources keep their full YAML body (so JSONPath queries over arbitrary
//! fields work) alongside parsed-out metadata and a mutable `status`
//! subtree maintained by the controllers.

use std::fmt;

use yamlkit::Yaml;

/// Key uniquely identifying a resource in a cluster.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ResourceKey {
    /// Resource kind, e.g. `Pod`.
    pub kind: String,
    /// Namespace (empty for cluster-scoped resources).
    pub namespace: String,
    /// Object name.
    pub name: String,
}

impl fmt::Display for ResourceKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.namespace.is_empty() {
            write!(f, "{}/{}", self.kind.to_lowercase(), self.name)
        } else {
            write!(
                f,
                "{}/{} -n {}",
                self.kind.to_lowercase(),
                self.name,
                self.namespace
            )
        }
    }
}

/// A stored Kubernetes object.
#[derive(Debug, Clone, PartialEq)]
pub struct Resource {
    /// `apiVersion` as written.
    pub api_version: String,
    /// `kind` as written.
    pub kind: String,
    /// `metadata.name`.
    pub name: String,
    /// Effective namespace (after defaulting; empty for cluster-scoped).
    pub namespace: String,
    /// `metadata.labels` as string pairs.
    pub labels: Vec<(String, String)>,
    /// The full object body (spec, data, rules, ... everything as applied).
    pub body: Yaml,
    /// Controller-maintained `status` subtree, merged into [`Self::to_yaml`].
    pub status: Yaml,
    /// Simulated-clock timestamp (ms) when the object was created.
    pub created_at_ms: u64,
    /// Monotonic generation, bumped on every apply.
    pub generation: u64,
}

impl Resource {
    /// Builds a resource from a parsed manifest body.
    ///
    /// `default_namespace` is used when the manifest does not set one and
    /// the kind is namespaced.
    pub fn from_yaml(body: Yaml, default_namespace: &str, now_ms: u64) -> Result<Resource, String> {
        let api_version = body
            .get("apiVersion")
            .and_then(Yaml::as_str)
            .ok_or("missing required field \"apiVersion\"")?
            .to_owned();
        let kind = body
            .get("kind")
            .and_then(Yaml::as_str)
            .ok_or("missing required field \"kind\"")?
            .to_owned();
        let metadata = body
            .get("metadata")
            .ok_or("missing required field \"metadata\"")?;
        let name = metadata
            .get("name")
            .map(Yaml::render_scalar)
            .filter(|n| !n.is_empty())
            .or_else(|| {
                metadata
                    .get("generateName")
                    .map(|g| format!("{}{:05}", g.render_scalar(), now_ms % 100_000))
            })
            .ok_or("metadata.name is required")?;
        let namespace = if is_cluster_scoped(&kind) {
            String::new()
        } else {
            metadata
                .get("namespace")
                .and_then(Yaml::as_str)
                .unwrap_or(default_namespace)
                .to_owned()
        };
        let labels = extract_labels(metadata.get("labels"));
        Ok(Resource {
            api_version,
            kind,
            name,
            namespace,
            labels,
            body,
            status: Yaml::Null,
            created_at_ms: now_ms,
            generation: 1,
        })
    }

    /// The store key for this resource.
    pub fn key(&self) -> ResourceKey {
        ResourceKey {
            kind: self.kind.clone(),
            namespace: self.namespace.clone(),
            name: self.name.clone(),
        }
    }

    /// Full object view with controller status merged in, as `kubectl get
    /// -o yaml/json` would serve it.
    pub fn to_yaml(&self) -> Yaml {
        let mut full = self.body.clone();
        // Ensure namespace defaulting is visible.
        if !self.namespace.is_empty() {
            if let Some(meta) = full.get_mut("metadata") {
                if meta.get("namespace").is_none() {
                    meta.insert("namespace", Yaml::Str(self.namespace.clone()));
                }
            }
        }
        if !self.status.is_null() {
            full.insert("status", self.status.clone());
        }
        full
    }

    /// Looks up a path in the merged view.
    pub fn get_path(&self, path: &[&str]) -> Option<Yaml> {
        self.to_yaml().get_path(path).cloned()
    }

    /// The pod template spec for workload kinds, if present.
    pub fn pod_template(&self) -> Option<Yaml> {
        match self.kind.as_str() {
            "Pod" => Some(self.body.clone()),
            "CronJob" => self
                .body
                .get_path(&["spec", "jobTemplate", "spec", "template"])
                .cloned(),
            _ => self.body.get_path(&["spec", "template"]).cloned(),
        }
    }

    /// Container list of a pod-shaped body (`spec.containers`).
    pub fn containers(&self) -> Vec<Yaml> {
        self.body
            .get_path(&["spec", "containers"])
            .map(|c| c.items().cloned().collect())
            .unwrap_or_default()
    }

    /// `spec.replicas`, defaulting to 1 the way the API server does.
    pub fn replicas(&self) -> i64 {
        self.body
            .get_path(&["spec", "replicas"])
            .and_then(Yaml::as_i64)
            .unwrap_or(1)
    }

    /// Sets a status condition (replacing any with the same type), with
    /// `status: "True"` strings like the real API.
    pub fn set_condition(&mut self, condition_type: &str, value: bool, now_ms: u64) {
        if self.status.is_null() {
            self.status = Yaml::Map(vec![]);
        }
        if self.status.get("conditions").is_none() {
            self.status.insert("conditions", Yaml::Seq(vec![]));
        }
        let Some(Yaml::Seq(conditions)) = self.status.get_mut("conditions") else {
            return;
        };
        let status_str = if value { "True" } else { "False" };
        let entry = Yaml::Map(vec![
            ("type".into(), Yaml::Str(condition_type.into())),
            ("status".into(), Yaml::Str(status_str.into())),
            (
                "lastTransitionTime".into(),
                Yaml::Str(format_sim_time(now_ms)),
            ),
        ]);
        if let Some(existing) = conditions
            .iter_mut()
            .find(|c| c.get("type").and_then(Yaml::as_str) == Some(condition_type))
        {
            *existing = entry;
        } else {
            conditions.push(entry);
        }
    }

    /// Reads a status condition by type.
    pub fn condition(&self, condition_type: &str) -> Option<bool> {
        self.status
            .get("conditions")?
            .items()
            .find(|c| c.get("type").and_then(Yaml::as_str) == Some(condition_type))
            .and_then(|c| c.get("status"))
            .and_then(Yaml::as_str)
            .map(|s| s == "True")
    }
}

/// Renders the simulated clock as an ISO-ish timestamp (epoch at the
/// cluster's boot).
pub fn format_sim_time(now_ms: u64) -> String {
    let secs = now_ms / 1000;
    let (h, m, s) = (secs / 3600, (secs % 3600) / 60, secs % 60);
    format!("2024-01-01T{h:02}:{m:02}:{s:02}Z")
}

/// Whether a kind lives outside namespaces.
pub fn is_cluster_scoped(kind: &str) -> bool {
    matches!(
        kind,
        "Namespace"
            | "Node"
            | "ClusterRole"
            | "ClusterRoleBinding"
            | "PersistentVolume"
            | "StorageClass"
            | "CustomResourceDefinition"
            | "PriorityClass"
            | "IngressClass"
    )
}

/// Plural, lower-case resource name (what `kubectl get pods` uses) for a
/// kind, including the common short names.
pub fn canonical_kind(resource_arg: &str) -> Option<&'static str> {
    let lower = resource_arg.to_lowercase();
    let base = lower.split('.').next().unwrap_or(&lower);
    Some(match base {
        "pod" | "pods" | "po" => "Pod",
        "deployment" | "deployments" | "deploy" => "Deployment",
        "replicaset" | "replicasets" | "rs" => "ReplicaSet",
        "daemonset" | "daemonsets" | "ds" => "DaemonSet",
        "statefulset" | "statefulsets" | "sts" => "StatefulSet",
        "service" | "services" | "svc" => "Service",
        "job" | "jobs" => "Job",
        "cronjob" | "cronjobs" | "cj" => "CronJob",
        "configmap" | "configmaps" | "cm" => "ConfigMap",
        "secret" | "secrets" => "Secret",
        "namespace" | "namespaces" | "ns" => "Namespace",
        "serviceaccount" | "serviceaccounts" | "sa" => "ServiceAccount",
        "role" | "roles" => "Role",
        "rolebinding" | "rolebindings" => "RoleBinding",
        "clusterrole" | "clusterroles" => "ClusterRole",
        "clusterrolebinding" | "clusterrolebindings" => "ClusterRoleBinding",
        "ingress" | "ingresses" | "ing" => "Ingress",
        "networkpolicy" | "networkpolicies" | "netpol" => "NetworkPolicy",
        "persistentvolume" | "persistentvolumes" | "pv" => "PersistentVolume",
        "persistentvolumeclaim" | "persistentvolumeclaims" | "pvc" => "PersistentVolumeClaim",
        "limitrange" | "limitranges" | "limits" => "LimitRange",
        "resourcequota" | "resourcequotas" | "quota" => "ResourceQuota",
        "horizontalpodautoscaler" | "horizontalpodautoscalers" | "hpa" => "HorizontalPodAutoscaler",
        "node" | "nodes" | "no" => "Node",
        "endpoints" | "ep" => "Endpoints",
        "virtualservice" | "virtualservices" | "vs" => "VirtualService",
        "destinationrule" | "destinationrules" | "dr" => "DestinationRule",
        "gateway" | "gateways" | "gw" => "Gateway",
        "serviceentry" | "serviceentries" => "ServiceEntry",
        "event" | "events" | "ev" => "Event",
        _ => return None,
    })
}

fn extract_labels(labels: Option<&Yaml>) -> Vec<(String, String)> {
    labels
        .map(|l| {
            l.entries()
                .map(|(k, v)| (k.to_owned(), v.render_scalar()))
                .collect()
        })
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pod_yaml() -> Yaml {
        yamlkit::parse_one(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: nginx\nspec:\n  containers:\n  - name: c\n    image: nginx:latest\n",
        )
        .unwrap()
        .to_value()
    }

    #[test]
    fn builds_resource_with_defaulted_namespace() {
        let r = Resource::from_yaml(pod_yaml(), "default", 0).unwrap();
        assert_eq!(r.kind, "Pod");
        assert_eq!(r.namespace, "default");
        assert_eq!(r.labels, vec![("app".to_owned(), "nginx".to_owned())]);
    }

    #[test]
    fn explicit_namespace_wins() {
        let mut y = pod_yaml();
        y.get_mut("metadata")
            .unwrap()
            .insert("namespace", Yaml::Str("prod".into()));
        let r = Resource::from_yaml(y, "default", 0).unwrap();
        assert_eq!(r.namespace, "prod");
    }

    #[test]
    fn cluster_scoped_kinds_have_no_namespace() {
        let y = yamlkit::parse_one("apiVersion: v1\nkind: Namespace\nmetadata:\n  name: dev\n")
            .unwrap()
            .to_value();
        let r = Resource::from_yaml(y, "default", 0).unwrap();
        assert_eq!(r.namespace, "");
    }

    #[test]
    fn missing_name_is_error() {
        let y = yamlkit::parse_one("apiVersion: v1\nkind: Pod\nmetadata: {}\n")
            .unwrap()
            .to_value();
        assert!(Resource::from_yaml(y, "default", 0).is_err());
    }

    #[test]
    fn generate_name_synthesizes() {
        let y = yamlkit::parse_one(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  generateName: web-\nspec: {}\n",
        )
        .unwrap()
        .to_value();
        let r = Resource::from_yaml(y, "default", 12345).unwrap();
        assert!(r.name.starts_with("web-"));
    }

    #[test]
    fn conditions_round_trip() {
        let mut r = Resource::from_yaml(pod_yaml(), "default", 0).unwrap();
        assert_eq!(r.condition("Ready"), None);
        r.set_condition("Ready", true, 1000);
        assert_eq!(r.condition("Ready"), Some(true));
        r.set_condition("Ready", false, 2000);
        assert_eq!(r.condition("Ready"), Some(false));
        // Replaced, not duplicated.
        assert_eq!(r.status.get("conditions").unwrap().seq_len(), Some(1));
    }

    #[test]
    fn to_yaml_merges_status_and_namespace() {
        let mut r = Resource::from_yaml(pod_yaml(), "default", 0).unwrap();
        r.status = yamlkit::ymap! { "phase" => "Running" };
        let full = r.to_yaml();
        assert_eq!(
            full.get_path(&["status", "phase"]).and_then(Yaml::as_str),
            Some("Running")
        );
        assert_eq!(
            full.get_path(&["metadata", "namespace"])
                .and_then(Yaml::as_str),
            Some("default")
        );
    }

    #[test]
    fn canonical_kind_aliases() {
        assert_eq!(canonical_kind("po"), Some("Pod"));
        assert_eq!(canonical_kind("deploy"), Some("Deployment"));
        assert_eq!(canonical_kind("svc"), Some("Service"));
        assert_eq!(canonical_kind("ingress.networking.k8s.io"), Some("Ingress"));
        assert_eq!(canonical_kind("nonsense"), None);
    }

    #[test]
    fn replicas_defaults_to_one() {
        let r = Resource::from_yaml(pod_yaml(), "default", 0).unwrap();
        assert_eq!(r.replicas(), 1);
    }
}
