//! Simulated cluster networking: enough of `curl` to run the benchmark's
//! unit tests (hostPort probes, service VIPs, NodePorts, DNS names).

use yamlkit::Yaml;

use crate::cluster::Cluster;
use crate::images::{self, ImageBehavior};
use crate::resources::Resource;

/// A successful HTTP exchange.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HttpResponse {
    /// HTTP status code (200 for every simulated server).
    pub status: u16,
    /// Response body.
    pub body: String,
}

/// Failure modes `curl` distinguishes by exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CurlError {
    /// Exit 6 — hostname did not resolve.
    CouldNotResolve,
    /// Exit 7 — nothing listening on the target port.
    ConnectionRefused,
    /// Exit 52 — connected, but the peer is not an HTTP server.
    EmptyReply,
    /// Exit 28 — timed out (unused by the default backends, reserved for
    /// fault injection).
    Timeout,
}

impl CurlError {
    /// The curl CLI exit code.
    pub fn exit_code(&self) -> i32 {
        match self {
            CurlError::CouldNotResolve => 6,
            CurlError::ConnectionRefused => 7,
            CurlError::EmptyReply => 52,
            CurlError::Timeout => 28,
        }
    }
}

/// Performs a simulated HTTP GET against the cluster network.
///
/// Supported targets: node IP + hostPort/NodePort, service cluster IPs,
/// LoadBalancer ingress IPs, service DNS (`svc`, `svc.ns`,
/// `svc.ns.svc.cluster.local`) and pod IPs.
///
/// # Errors
///
/// [`CurlError`] mirroring curl exit codes.
pub fn curl(cluster: &Cluster, url: &str) -> Result<HttpResponse, CurlError> {
    let (host, port, _path) = parse_url(url);

    // 1. Node IP / localhost: hostPort bindings and NodePort services.
    let is_node = cluster.nodes().iter().any(|n| n.ip == host)
        || host == "localhost"
        || host == "127.0.0.1"
        || host == "minikube";
    if is_node {
        if let Some(resp) = serve_host_port(cluster, port) {
            return resp;
        }
        if let Some(resp) = serve_node_port(cluster, port) {
            return resp;
        }
        return Err(CurlError::ConnectionRefused);
    }

    // 2. Service by cluster IP / LB IP / DNS name.
    if let Some(svc) = find_service(cluster, &host) {
        return serve_service(cluster, svc, port);
    }

    // 3. Pod IP.
    if let Some(pod) = cluster.all_resources().find(|r| {
        r.kind == "Pod" && r.status.get("podIP").map(Yaml::render_scalar).as_deref() == Some(&host)
    }) {
        return serve_container(pod, port);
    }

    if host.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        // Unknown IPs connect nowhere.
        return Err(CurlError::ConnectionRefused);
    }
    Err(CurlError::CouldNotResolve)
}

fn parse_url(url: &str) -> (String, u16, String) {
    let rest = url
        .trim()
        .trim_start_matches("http://")
        .trim_start_matches("https://");
    let (host_port, path) = match rest.find('/') {
        Some(i) => (&rest[..i], rest[i..].to_owned()),
        None => (rest, "/".to_owned()),
    };
    match host_port.rsplit_once(':') {
        Some((h, p)) => (h.to_owned(), p.parse().unwrap_or(80), path),
        None => (host_port.to_owned(), 80, path),
    }
}

fn serve_host_port(cluster: &Cluster, port: u16) -> Option<Result<HttpResponse, CurlError>> {
    for pod in cluster.all_resources().filter(|r| r.kind == "Pod") {
        if pod.status.get("phase").and_then(Yaml::as_str) != Some("Running") {
            continue;
        }
        for c in pod.containers() {
            for p in c.get("ports").into_iter().flat_map(Yaml::items) {
                let host_port = p.get("hostPort").and_then(Yaml::as_i64);
                if host_port == Some(i64::from(port)) {
                    let target = p
                        .get("containerPort")
                        .and_then(Yaml::as_i64)
                        .unwrap_or(i64::from(port)) as u16;
                    return Some(serve_container(pod, target));
                }
            }
        }
    }
    None
}

fn serve_node_port(cluster: &Cluster, port: u16) -> Option<Result<HttpResponse, CurlError>> {
    for svc in cluster.all_resources().filter(|r| r.kind == "Service") {
        let node_port = svc.status.get("nodePort").and_then(Yaml::as_i64);
        let declared: Vec<i64> = svc
            .body
            .get_path(&["spec", "ports"])
            .into_iter()
            .flat_map(Yaml::items)
            .filter_map(|p| p.get("nodePort").and_then(Yaml::as_i64))
            .collect();
        if node_port == Some(i64::from(port)) || declared.contains(&i64::from(port)) {
            let first_port = svc
                .body
                .get_path(&["spec", "ports"])
                .and_then(|p| p.idx(0))
                .and_then(|p| p.get("port"))
                .and_then(Yaml::as_i64)
                .unwrap_or(80) as u16;
            return Some(serve_service(cluster, svc, first_port));
        }
    }
    None
}

fn find_service<'a>(cluster: &'a Cluster, host: &str) -> Option<&'a Resource> {
    cluster.all_resources().find(|r| {
        if r.kind != "Service" {
            return false;
        }
        if r.status
            .get("clusterIP")
            .map(Yaml::render_scalar)
            .as_deref()
            == Some(host)
        {
            return true;
        }
        let lb = r
            .status
            .get_path(&["loadBalancer", "ingress"])
            .and_then(|i| i.idx(0))
            .and_then(|i| i.get("ip"))
            .map(Yaml::render_scalar);
        if lb.as_deref() == Some(host) {
            return true;
        }
        // DNS forms.
        let name = &r.name;
        let ns = &r.namespace;
        host == *name
            || host == format!("{name}.{ns}")
            || host == format!("{name}.{ns}.svc")
            || host == format!("{name}.{ns}.svc.cluster.local")
    })
}

fn serve_service(cluster: &Cluster, svc: &Resource, port: u16) -> Result<HttpResponse, CurlError> {
    let ports = svc.body.get_path(&["spec", "ports"]);
    let entry = ports
        .into_iter()
        .flat_map(Yaml::items)
        .find(|p| p.get("port").and_then(Yaml::as_i64) == Some(i64::from(port)))
        .ok_or(CurlError::ConnectionRefused)?;
    // Find a ready endpoint pod.
    let endpoints: Vec<String> = svc
        .status
        .get("endpoints")
        .into_iter()
        .flat_map(Yaml::items)
        .map(Yaml::render_scalar)
        .collect();
    let pod = cluster
        .all_resources()
        .find(|r| {
            r.kind == "Pod"
                && r.status
                    .get("podIP")
                    .map(Yaml::render_scalar)
                    .is_some_and(|ip| endpoints.contains(&ip))
        })
        .ok_or(CurlError::ConnectionRefused)?;
    // Resolve targetPort: number, named container port, or the port itself.
    let target = match entry.get("targetPort") {
        Some(Yaml::Int(n)) => *n as u16,
        Some(Yaml::Str(name)) => pod
            .containers()
            .iter()
            .flat_map(|c| {
                c.get("ports")
                    .into_iter()
                    .flat_map(Yaml::items)
                    .collect::<Vec<_>>()
            })
            .find(|p| p.get("name").and_then(Yaml::as_str) == Some(name))
            .and_then(|p| p.get("containerPort").and_then(Yaml::as_i64))
            .unwrap_or(i64::from(port)) as u16,
        _ => port,
    };
    serve_container(pod, target)
}

/// Serves a request hitting a specific pod container port.
fn serve_container(pod: &Resource, port: u16) -> Result<HttpResponse, CurlError> {
    if pod.status.get("phase").and_then(Yaml::as_str) != Some("Running") {
        return Err(CurlError::ConnectionRefused);
    }
    for c in pod.containers() {
        let image = c.get("image").map(Yaml::render_scalar).unwrap_or_default();
        let Some(info) = images::lookup(&image) else {
            continue;
        };
        match info.behavior {
            ImageBehavior::HttpServer { default_port } => {
                let declared: Vec<i64> = c
                    .get("ports")
                    .into_iter()
                    .flat_map(Yaml::items)
                    .filter_map(|p| p.get("containerPort").and_then(Yaml::as_i64))
                    .collect();
                // The server listens on its image's default port; declared
                // containerPorts are documentation, as in real Kubernetes.
                if port == default_port || declared.contains(&i64::from(port)) {
                    return Ok(HttpResponse {
                        status: 200,
                        body: info.http_body.to_owned(),
                    });
                }
            }
            ImageBehavior::TcpServer { default_port } => {
                if port == default_port {
                    return Err(CurlError::EmptyReply);
                }
            }
            ImageBehavior::Batch => {}
        }
    }
    Err(CurlError::ConnectionRefused)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cluster_with_nginx() -> Cluster {
        let mut c = Cluster::new();
        c.apply_manifest(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: nginx\nspec:\n  containers:\n  - name: c\n    image: nginx\n    ports:\n    - containerPort: 80\n      hostPort: 5000\n",
            "default",
        )
        .unwrap();
        c.advance(10_000);
        c
    }

    #[test]
    fn host_port_routes_to_container() {
        let c = cluster_with_nginx();
        let r = curl(&c, "192.168.49.2:5000").unwrap();
        assert_eq!(r.status, 200);
        assert!(r.body.contains("nginx"));
    }

    #[test]
    fn unbound_port_refuses() {
        let c = cluster_with_nginx();
        assert_eq!(
            curl(&c, "192.168.49.2:9999"),
            Err(CurlError::ConnectionRefused)
        );
    }

    #[test]
    fn service_dns_and_cluster_ip() {
        let mut c = cluster_with_nginx();
        c.apply_manifest(
            "apiVersion: v1\nkind: Service\nmetadata:\n  name: web-svc\nspec:\n  selector:\n    app: nginx\n  ports:\n  - port: 8080\n    targetPort: 80\n",
            "default",
        )
        .unwrap();
        c.advance(3_000);
        assert_eq!(curl(&c, "http://web-svc:8080").unwrap().status, 200);
        assert_eq!(
            curl(&c, "web-svc.default.svc.cluster.local:8080")
                .unwrap()
                .status,
            200
        );
        let svc = c
            .get("Service", Some("default"), Some("web-svc"))
            .pop()
            .unwrap();
        let ip = svc
            .status
            .get("clusterIP")
            .map(yamlkit::Yaml::render_scalar)
            .unwrap();
        assert_eq!(curl(&c, &format!("{ip}:8080")).unwrap().status, 200);
        // Wrong service port refuses.
        assert!(curl(&c, "web-svc:9090").is_err());
    }

    #[test]
    fn named_target_port_resolves() {
        let mut c = Cluster::new();
        c.apply_manifest(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\n  labels:\n    app: w\nspec:\n  containers:\n  - name: c\n    image: nginx\n    ports:\n    - name: http\n      containerPort: 80\n",
            "default",
        )
        .unwrap();
        c.apply_manifest(
            "apiVersion: v1\nkind: Service\nmetadata:\n  name: s\nspec:\n  selector:\n    app: w\n  ports:\n  - port: 80\n    targetPort: http\n",
            "default",
        )
        .unwrap();
        c.advance(10_000);
        assert_eq!(curl(&c, "s").unwrap().status, 200);
    }

    #[test]
    fn tcp_server_yields_empty_reply() {
        let mut c = Cluster::new();
        c.apply_manifest(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: db\nspec:\n  containers:\n  - name: c\n    image: redis\n",
            "default",
        )
        .unwrap();
        c.advance(10_000);
        let pod = c.get("Pod", Some("default"), Some("db")).pop().unwrap();
        let ip = pod
            .status
            .get("podIP")
            .map(yamlkit::Yaml::render_scalar)
            .unwrap();
        assert_eq!(curl(&c, &format!("{ip}:6379")), Err(CurlError::EmptyReply));
    }

    #[test]
    fn unknown_host_does_not_resolve() {
        let c = Cluster::new();
        assert_eq!(
            curl(&c, "http://no-such-host"),
            Err(CurlError::CouldNotResolve)
        );
        assert_eq!(CurlError::CouldNotResolve.exit_code(), 6);
    }
}
