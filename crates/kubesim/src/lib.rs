//! # kubesim
//!
//! An in-memory Kubernetes cluster simulator standing in for the minikube
//! clusters CloudEval-YAML's function-level evaluation runs against (§3.2:
//! "Minikube offers the capability to set up virtual Kubernetes clusters
//! within a local testing environment. The kubectl command set ...
//! functions identically on these virtual clusters").
//!
//! What it provides:
//!
//! * [`Cluster`] — resource store + simulated clock + controller loops
//!   (Deployment→ReplicaSet→Pod, DaemonSet, StatefulSet, Job, CronJob,
//!   Service endpoints, Ingress, HPA, Istio CRDs);
//! * strict-decoding [`schema`]s that reproduce the API server's
//!   unknown-field errors (the paper's Appendix C.3 debugging problem);
//! * a [`kubectl`] facade (apply/get/wait/describe/delete/logs/scale/
//!   rollout) with JSONPath output;
//! * [`net::curl`] — simulated cluster networking for functional probes.
//!
//! Time is virtual: `kubectl wait --timeout=60s` advances the simulated
//! clock, so a full unit-test run costs microseconds of wall time.
//!
//! # Examples
//!
//! ```
//! use kubesim::{kubectl, Cluster};
//!
//! let mut cluster = Cluster::new();
//! let manifest = "apiVersion: v1\nkind: Pod\nmetadata:\n  name: web\nspec:\n  containers:\n  - name: c\n    image: nginx\n    ports:\n    - containerPort: 80\n      hostPort: 5000\n";
//! let args: Vec<String> = "apply -f -".split_whitespace().map(str::to_owned).collect();
//! let result = kubectl::run(&mut cluster, &args, manifest, &|_| None);
//! assert_eq!(result.stdout, "pod/web created\n");
//!
//! cluster.advance(10_000);
//! let response = kubesim::net::curl(&cluster, "192.168.49.2:5000").unwrap();
//! assert_eq!(response.status, 200);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod images;
pub mod kubectl;
pub mod net;
pub mod resources;
pub mod schema;
pub mod selector;

pub use cluster::{Cluster, ClusterError, NodeInfo};
pub use kubectl::{run as run_kubectl, KubectlResult};
pub use resources::{Resource, ResourceKey};
