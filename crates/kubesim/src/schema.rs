//! Strict-decoding schemas for the Kubernetes API types the benchmark
//! exercises.
//!
//! The real API server rejects manifests with unknown fields using errors
//! like the one in the paper's Appendix C.3 sample:
//!
//! ```text
//! Ingress in version "v1" cannot be handled as a Ingress: strict decoding
//! error: unknown field "spec.rules[0].http.paths[0].backend.serviceName"
//! ```
//!
//! [`validate`] reproduces that behaviour: unknown fields, missing required
//! fields, and type mismatches are reported with full JSON-style paths.

use yamlkit::Yaml;

/// Structural schema for one field subtree.
#[derive(Debug, Clone)]
pub enum Schema {
    /// Anything is accepted (used for subtrees we model loosely).
    Any,
    /// Any scalar value.
    Scalar,
    /// A string (or something that renders as one).
    Str,
    /// An integer.
    Int,
    /// A boolean.
    Bool,
    /// An integer or string (e.g. `targetPort: 80` / `targetPort: http`).
    IntOrStr,
    /// A Kubernetes quantity: `100m`, `50Mi`, `2`, `1.5`.
    Quantity,
    /// A mapping of string to scalar (labels, annotations, data).
    StrMap,
    /// A mapping of string to quantity (resource lists).
    QuantityMap,
    /// A sequence of elements.
    Seq(Box<Schema>),
    /// A closed mapping: fields not listed are strict-decoding errors.
    Map(Vec<Field>),
}

/// A named field in a closed mapping.
#[derive(Debug, Clone)]
pub struct Field {
    name: &'static str,
    required: bool,
    schema: Schema,
}

/// Optional field.
fn opt(name: &'static str, schema: Schema) -> Field {
    Field {
        name,
        required: false,
        schema,
    }
}

/// Required field.
fn req(name: &'static str, schema: Schema) -> Field {
    Field {
        name,
        required: true,
        schema,
    }
}

fn map(fields: Vec<Field>) -> Schema {
    Schema::Map(fields)
}

fn seq(s: Schema) -> Schema {
    Schema::Seq(Box::new(s))
}

/// One validation problem found in a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A field the type does not define.
    UnknownField(String),
    /// A required field that is absent.
    MissingField(String),
    /// A value of the wrong type; payload is `(path, expected)`.
    WrongType(String, &'static str),
}

impl Violation {
    /// Renders in the API server's phrasing.
    pub fn render(&self) -> String {
        match self {
            Violation::UnknownField(p) => format!("unknown field \"{p}\""),
            Violation::MissingField(p) => format!("missing required field \"{p}\""),
            Violation::WrongType(p, expected) => {
                format!("cannot unmarshal field \"{p}\": expected {expected}")
            }
        }
    }
}

/// Validates a manifest body against the schema for its kind.
/// Returns all violations (empty = valid). Unknown kinds validate loosely
/// (only `apiVersion`/`kind`/`metadata` are required).
pub fn validate(body: &Yaml) -> Vec<Violation> {
    let kind = body.get("kind").and_then(Yaml::as_str).unwrap_or("");
    let schema = top_level(kind);
    let mut violations = Vec::new();
    check(&schema, body, "", &mut violations);
    violations
}

/// Expected apiVersion prefixes per kind; [`None`] when the kind itself is
/// unknown to the cluster.
pub fn expected_api_versions(kind: &str) -> Option<&'static [&'static str]> {
    Some(match kind {
        "Pod"
        | "Service"
        | "ConfigMap"
        | "Secret"
        | "Namespace"
        | "ServiceAccount"
        | "PersistentVolume"
        | "PersistentVolumeClaim"
        | "LimitRange"
        | "ResourceQuota"
        | "Node"
        | "Endpoints" => &["v1"],
        "Deployment" | "ReplicaSet" | "DaemonSet" | "StatefulSet" => &["apps/v1"],
        "Job" | "CronJob" => &["batch/v1", "batch/v1beta1"],
        "Ingress" | "NetworkPolicy" | "IngressClass" => &["networking.k8s.io/v1"],
        "Role" | "RoleBinding" | "ClusterRole" | "ClusterRoleBinding" => {
            &["rbac.authorization.k8s.io/v1"]
        }
        "HorizontalPodAutoscaler" => &["autoscaling/v1", "autoscaling/v2"],
        "VirtualService" | "DestinationRule" | "Gateway" | "ServiceEntry" => &[
            "networking.istio.io/v1alpha3",
            "networking.istio.io/v1beta1",
            "networking.istio.io/v1",
        ],
        _ => return None,
    })
}

fn check(schema: &Schema, value: &Yaml, path: &str, out: &mut Vec<Violation>) {
    match schema {
        Schema::Any => {}
        Schema::Scalar => {
            if !value.is_scalar() {
                out.push(Violation::WrongType(path.to_owned(), "scalar"));
            }
        }
        Schema::Str => {
            if !matches!(value, Yaml::Str(_)) && !value.is_scalar() {
                out.push(Violation::WrongType(path.to_owned(), "string"));
            }
        }
        Schema::Int => {
            if !matches!(value, Yaml::Int(_)) {
                out.push(Violation::WrongType(path.to_owned(), "integer"));
            }
        }
        Schema::Bool => {
            if !matches!(value, Yaml::Bool(_)) {
                out.push(Violation::WrongType(path.to_owned(), "boolean"));
            }
        }
        Schema::IntOrStr => {
            if !matches!(value, Yaml::Int(_) | Yaml::Str(_)) {
                out.push(Violation::WrongType(path.to_owned(), "integer or string"));
            }
        }
        Schema::Quantity => {
            let ok = match value {
                Yaml::Int(_) | Yaml::Float(_) => true,
                Yaml::Str(s) => parse_quantity(s).is_some(),
                _ => false,
            };
            if !ok {
                out.push(Violation::WrongType(path.to_owned(), "quantity"));
            }
        }
        Schema::StrMap => match value {
            Yaml::Map(entries) => {
                for (k, v) in entries {
                    if !v.is_scalar() {
                        out.push(Violation::WrongType(join(path, k), "string"));
                    }
                }
            }
            _ => out.push(Violation::WrongType(path.to_owned(), "map of strings")),
        },
        Schema::QuantityMap => match value {
            Yaml::Map(entries) => {
                for (k, v) in entries {
                    check(&Schema::Quantity, v, &join(path, k), out);
                }
            }
            _ => out.push(Violation::WrongType(path.to_owned(), "map of quantities")),
        },
        Schema::Seq(inner) => match value {
            Yaml::Seq(items) => {
                for (i, item) in items.iter().enumerate() {
                    check(inner, item, &format!("{path}[{i}]"), out);
                }
            }
            _ => out.push(Violation::WrongType(path.to_owned(), "list")),
        },
        Schema::Map(fields) => match value {
            Yaml::Map(entries) => {
                for (k, v) in entries {
                    match fields.iter().find(|f| f.name == k) {
                        Some(f) => check(&f.schema, v, &join(path, k), out),
                        None => out.push(Violation::UnknownField(join(path, k))),
                    }
                }
                for f in fields.iter().filter(|f| f.required) {
                    if value.get(f.name).is_none() {
                        out.push(Violation::MissingField(join(path, f.name)));
                    }
                }
            }
            Yaml::Null => {
                for f in fields.iter().filter(|f| f.required) {
                    out.push(Violation::MissingField(join(path, f.name)));
                }
            }
            _ => out.push(Violation::WrongType(path.to_owned(), "object")),
        },
    }
}

fn join(path: &str, field: &str) -> String {
    if path.is_empty() {
        field.to_owned()
    } else {
        format!("{path}.{field}")
    }
}

/// Parses a Kubernetes quantity (`100m`, `50Mi`, `1.5`, `2Gi`) into a raw
/// f64 in base units. Returns `None` for malformed quantities.
pub fn parse_quantity(s: &str) -> Option<f64> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let suffixes: [(&str, f64); 12] = [
        ("Ki", 1024.0),
        ("Mi", 1024.0 * 1024.0),
        ("Gi", 1024.0 * 1024.0 * 1024.0),
        ("Ti", 1024f64.powi(4)),
        ("Pi", 1024f64.powi(5)),
        ("m", 1e-3),
        ("k", 1e3),
        ("M", 1e6),
        ("G", 1e9),
        ("T", 1e12),
        ("P", 1e15),
        ("E", 1e18),
    ];
    for (suffix, mult) in suffixes {
        if let Some(num) = s.strip_suffix(suffix) {
            return num.parse::<f64>().ok().map(|v| v * mult);
        }
    }
    s.parse::<f64>().ok()
}

// ---------------------------------------------------------------------------
// Schema definitions
// ---------------------------------------------------------------------------

fn metadata() -> Schema {
    map(vec![
        opt("name", Schema::Str),
        opt("generateName", Schema::Str),
        opt("namespace", Schema::Str),
        opt("labels", Schema::StrMap),
        opt("annotations", Schema::StrMap),
        opt("finalizers", seq(Schema::Str)),
        opt("ownerReferences", Schema::Any),
        opt("creationTimestamp", Schema::Scalar),
        opt("uid", Schema::Str),
        opt("resourceVersion", Schema::Str),
        opt("generation", Schema::Int),
    ])
}

fn top(kind_spec_fields: Vec<Field>) -> Schema {
    let mut fields = vec![
        req("apiVersion", Schema::Str),
        req("kind", Schema::Str),
        req("metadata", metadata()),
        opt("status", Schema::Any),
    ];
    fields.extend(kind_spec_fields);
    map(fields)
}

fn probe() -> Schema {
    map(vec![
        opt(
            "httpGet",
            map(vec![
                opt("path", Schema::Str),
                opt("port", Schema::IntOrStr),
                opt("host", Schema::Str),
                opt("scheme", Schema::Str),
                opt("httpHeaders", Schema::Any),
            ]),
        ),
        opt(
            "tcpSocket",
            map(vec![
                opt("port", Schema::IntOrStr),
                opt("host", Schema::Str),
            ]),
        ),
        opt("exec", map(vec![opt("command", seq(Schema::Str))])),
        opt("grpc", Schema::Any),
        opt("initialDelaySeconds", Schema::Int),
        opt("periodSeconds", Schema::Int),
        opt("timeoutSeconds", Schema::Int),
        opt("successThreshold", Schema::Int),
        opt("failureThreshold", Schema::Int),
        opt("terminationGracePeriodSeconds", Schema::Int),
    ])
}

fn env_var() -> Schema {
    map(vec![
        req("name", Schema::Str),
        opt("value", Schema::Scalar),
        opt(
            "valueFrom",
            map(vec![
                opt(
                    "configMapKeyRef",
                    map(vec![
                        req("name", Schema::Str),
                        req("key", Schema::Str),
                        opt("optional", Schema::Bool),
                    ]),
                ),
                opt(
                    "secretKeyRef",
                    map(vec![
                        req("name", Schema::Str),
                        req("key", Schema::Str),
                        opt("optional", Schema::Bool),
                    ]),
                ),
                opt(
                    "fieldRef",
                    map(vec![
                        req("fieldPath", Schema::Str),
                        opt("apiVersion", Schema::Str),
                    ]),
                ),
                opt("resourceFieldRef", Schema::Any),
            ]),
        ),
    ])
}

fn container() -> Schema {
    map(vec![
        req("name", Schema::Str),
        opt("image", Schema::Str),
        opt("command", seq(Schema::Scalar)),
        opt("args", seq(Schema::Scalar)),
        opt("workingDir", Schema::Str),
        opt("env", seq(env_var())),
        opt(
            "envFrom",
            seq(map(vec![
                opt(
                    "configMapRef",
                    map(vec![
                        req("name", Schema::Str),
                        opt("optional", Schema::Bool),
                    ]),
                ),
                opt(
                    "secretRef",
                    map(vec![
                        req("name", Schema::Str),
                        opt("optional", Schema::Bool),
                    ]),
                ),
                opt("prefix", Schema::Str),
            ])),
        ),
        opt(
            "ports",
            seq(map(vec![
                opt("name", Schema::Str),
                req("containerPort", Schema::Int),
                opt("hostPort", Schema::Int),
                opt("hostIP", Schema::Str),
                opt("protocol", Schema::Str),
            ])),
        ),
        opt(
            "resources",
            map(vec![
                opt("limits", Schema::QuantityMap),
                opt("requests", Schema::QuantityMap),
                opt("claims", Schema::Any),
            ]),
        ),
        opt(
            "volumeMounts",
            seq(map(vec![
                req("name", Schema::Str),
                req("mountPath", Schema::Str),
                opt("readOnly", Schema::Bool),
                opt("subPath", Schema::Str),
                opt("mountPropagation", Schema::Str),
            ])),
        ),
        opt("volumeDevices", Schema::Any),
        opt("livenessProbe", probe()),
        opt("readinessProbe", probe()),
        opt("startupProbe", probe()),
        opt("lifecycle", Schema::Any),
        opt("imagePullPolicy", Schema::Str),
        opt("securityContext", Schema::Any),
        opt("stdin", Schema::Bool),
        opt("tty", Schema::Bool),
        opt("terminationMessagePath", Schema::Str),
        opt("terminationMessagePolicy", Schema::Str),
    ])
}

fn volume() -> Schema {
    map(vec![
        req("name", Schema::Str),
        opt("emptyDir", Schema::Any),
        opt(
            "hostPath",
            map(vec![req("path", Schema::Str), opt("type", Schema::Str)]),
        ),
        opt(
            "configMap",
            map(vec![
                opt("name", Schema::Str),
                opt("items", key_to_path_items()),
                opt("defaultMode", Schema::Int),
                opt("optional", Schema::Bool),
            ]),
        ),
        opt(
            "secret",
            map(vec![
                opt("secretName", Schema::Str),
                opt("items", key_to_path_items()),
                opt("defaultMode", Schema::Int),
                opt("optional", Schema::Bool),
            ]),
        ),
        opt(
            "persistentVolumeClaim",
            map(vec![
                req("claimName", Schema::Str),
                opt("readOnly", Schema::Bool),
            ]),
        ),
        opt("nfs", Schema::Any),
        opt("downwardAPI", Schema::Any),
        opt("projected", Schema::Any),
        opt("csi", Schema::Any),
    ])
}

/// `configMap.items` / `secret.items` projections: key → path (+ mode).
fn key_to_path_items() -> Schema {
    seq(map(vec![
        req("key", Schema::Str),
        req("path", Schema::Str),
        opt("mode", Schema::Int),
    ]))
}

fn pod_spec() -> Schema {
    map(vec![
        opt("containers", seq(container())),
        opt("initContainers", seq(container())),
        opt("volumes", seq(volume())),
        opt("restartPolicy", Schema::Str),
        opt("nodeSelector", Schema::StrMap),
        opt("nodeName", Schema::Str),
        opt("serviceAccountName", Schema::Str),
        opt("serviceAccount", Schema::Str),
        opt("automountServiceAccountToken", Schema::Bool),
        opt("affinity", Schema::Any),
        opt("tolerations", Schema::Any),
        opt("hostNetwork", Schema::Bool),
        opt("hostPID", Schema::Bool),
        opt("dnsPolicy", Schema::Str),
        opt("dnsConfig", Schema::Any),
        opt("hostname", Schema::Str),
        opt("subdomain", Schema::Str),
        opt("schedulerName", Schema::Str),
        opt("priorityClassName", Schema::Str),
        opt("priority", Schema::Int),
        opt("imagePullSecrets", seq(map(vec![opt("name", Schema::Str)]))),
        opt("securityContext", Schema::Any),
        opt("terminationGracePeriodSeconds", Schema::Int),
        opt("activeDeadlineSeconds", Schema::Int),
        opt("topologySpreadConstraints", Schema::Any),
        opt("runtimeClassName", Schema::Str),
        opt("enableServiceLinks", Schema::Bool),
        opt("shareProcessNamespace", Schema::Bool),
    ])
}

fn pod_template() -> Schema {
    map(vec![opt("metadata", metadata()), opt("spec", pod_spec())])
}

fn workload_selector() -> Schema {
    map(vec![
        opt("matchLabels", Schema::StrMap),
        opt(
            "matchExpressions",
            seq(map(vec![
                req("key", Schema::Str),
                req("operator", Schema::Str),
                opt("values", seq(Schema::Scalar)),
            ])),
        ),
    ])
}

fn job_spec_fields() -> Vec<Field> {
    vec![
        req("template", pod_template()),
        opt("backoffLimit", Schema::Int),
        opt("completions", Schema::Int),
        opt("parallelism", Schema::Int),
        opt("activeDeadlineSeconds", Schema::Int),
        opt("ttlSecondsAfterFinished", Schema::Int),
        opt("completionMode", Schema::Str),
        opt("suspend", Schema::Bool),
        opt("selector", workload_selector()),
        opt("manualSelector", Schema::Bool),
    ]
}

fn service_port() -> Schema {
    map(vec![
        opt("name", Schema::Str),
        req("port", Schema::Int),
        opt("targetPort", Schema::IntOrStr),
        opt("nodePort", Schema::Int),
        opt("protocol", Schema::Str),
        opt("appProtocol", Schema::Str),
    ])
}

fn ingress_backend() -> Schema {
    // networking.k8s.io/v1 shape: `service.name` + `service.port`, NOT the
    // old `serviceName`/`servicePort` — exactly the trap in Appendix C.3.
    map(vec![
        opt(
            "service",
            map(vec![
                req("name", Schema::Str),
                opt(
                    "port",
                    map(vec![opt("number", Schema::Int), opt("name", Schema::Str)]),
                ),
            ]),
        ),
        opt("resource", Schema::Any),
    ])
}

/// A NetworkPolicy peer: pod/namespace selectors or an IP block.
fn network_policy_peer() -> Schema {
    map(vec![
        opt("podSelector", workload_selector()),
        opt("namespaceSelector", workload_selector()),
        opt(
            "ipBlock",
            map(vec![
                req("cidr", Schema::Str),
                opt("except", seq(Schema::Str)),
            ]),
        ),
    ])
}

/// A NetworkPolicy port entry.
fn network_policy_port() -> Schema {
    map(vec![
        opt("protocol", Schema::Str),
        opt("port", Schema::IntOrStr),
        opt("endPort", Schema::Int),
    ])
}

/// An `autoscaling/v2` metric spec (resource metrics modelled fully;
/// pods/object/external accepted loosely).
fn hpa_metric() -> Schema {
    map(vec![
        req("type", Schema::Str),
        opt(
            "resource",
            map(vec![
                req("name", Schema::Str),
                req(
                    "target",
                    map(vec![
                        req("type", Schema::Str),
                        opt("averageUtilization", Schema::Int),
                        opt("averageValue", Schema::Quantity),
                        opt("value", Schema::Quantity),
                    ]),
                ),
            ]),
        ),
        opt("containerResource", Schema::Any),
        opt("pods", Schema::Any),
        opt("object", Schema::Any),
        opt("external", Schema::Any),
    ])
}

/// The complete top-level schema for a kind.
pub fn top_level(kind: &str) -> Schema {
    match kind {
        "Pod" => top(vec![req("spec", pod_spec())]),
        "Deployment" | "ReplicaSet" => top(vec![req(
            "spec",
            map(vec![
                opt("replicas", Schema::Int),
                req("selector", workload_selector()),
                req("template", pod_template()),
                opt(
                    "strategy",
                    map(vec![
                        opt("type", Schema::Str),
                        opt(
                            "rollingUpdate",
                            map(vec![
                                opt("maxSurge", Schema::IntOrStr),
                                opt("maxUnavailable", Schema::IntOrStr),
                            ]),
                        ),
                    ]),
                ),
                opt("minReadySeconds", Schema::Int),
                opt("revisionHistoryLimit", Schema::Int),
                opt("progressDeadlineSeconds", Schema::Int),
                opt("paused", Schema::Bool),
            ]),
        )]),
        "DaemonSet" => top(vec![req(
            "spec",
            map(vec![
                req("selector", workload_selector()),
                req("template", pod_template()),
                opt("updateStrategy", Schema::Any),
                opt("minReadySeconds", Schema::Int),
                opt("revisionHistoryLimit", Schema::Int),
            ]),
        )]),
        "StatefulSet" => top(vec![req(
            "spec",
            map(vec![
                req("serviceName", Schema::Str),
                req("selector", workload_selector()),
                req("template", pod_template()),
                opt("replicas", Schema::Int),
                opt("volumeClaimTemplates", Schema::Any),
                opt("updateStrategy", Schema::Any),
                opt("podManagementPolicy", Schema::Str),
                opt("minReadySeconds", Schema::Int),
            ]),
        )]),
        "Job" => top(vec![req("spec", map(job_spec_fields()))]),
        "CronJob" => top(vec![req(
            "spec",
            map(vec![
                req("schedule", Schema::Str),
                req(
                    "jobTemplate",
                    map(vec![
                        opt("metadata", metadata()),
                        opt("spec", map(job_spec_fields())),
                    ]),
                ),
                opt("concurrencyPolicy", Schema::Str),
                opt("startingDeadlineSeconds", Schema::Int),
                opt("successfulJobsHistoryLimit", Schema::Int),
                opt("failedJobsHistoryLimit", Schema::Int),
                opt("suspend", Schema::Bool),
                opt("timeZone", Schema::Str),
            ]),
        )]),
        "Service" => top(vec![req(
            "spec",
            map(vec![
                opt("selector", Schema::StrMap),
                opt("ports", seq(service_port())),
                opt("type", Schema::Str),
                opt("clusterIP", Schema::Str),
                opt("externalName", Schema::Str),
                opt("sessionAffinity", Schema::Str),
                opt("externalTrafficPolicy", Schema::Str),
                opt("internalTrafficPolicy", Schema::Str),
                opt("loadBalancerIP", Schema::Str),
                opt("loadBalancerSourceRanges", seq(Schema::Str)),
                opt("externalIPs", seq(Schema::Str)),
                opt("ipFamilies", Schema::Any),
                opt("ipFamilyPolicy", Schema::Str),
                opt("publishNotReadyAddresses", Schema::Bool),
            ]),
        )]),
        "ConfigMap" => top(vec![
            opt("data", Schema::StrMap),
            opt("binaryData", Schema::StrMap),
            opt("immutable", Schema::Bool),
        ]),
        "Secret" => top(vec![
            opt("data", Schema::StrMap),
            opt("stringData", Schema::StrMap),
            opt("type", Schema::Str),
            opt("immutable", Schema::Bool),
        ]),
        "Namespace" => top(vec![opt(
            "spec",
            map(vec![opt("finalizers", seq(Schema::Str))]),
        )]),
        "ServiceAccount" => top(vec![
            opt("secrets", Schema::Any),
            opt("imagePullSecrets", Schema::Any),
            opt("automountServiceAccountToken", Schema::Bool),
        ]),
        "Role" | "ClusterRole" => top(vec![
            opt(
                "rules",
                seq(map(vec![
                    opt("apiGroups", seq(Schema::Str)),
                    opt("resources", seq(Schema::Str)),
                    req("verbs", seq(Schema::Str)),
                    opt("resourceNames", seq(Schema::Str)),
                    opt("nonResourceURLs", seq(Schema::Str)),
                ])),
            ),
            opt("aggregationRule", Schema::Any),
        ]),
        "RoleBinding" | "ClusterRoleBinding" => top(vec![
            opt(
                "subjects",
                seq(map(vec![
                    req("kind", Schema::Str),
                    req("name", Schema::Str),
                    opt("apiGroup", Schema::Str),
                    opt("namespace", Schema::Str),
                ])),
            ),
            req(
                "roleRef",
                map(vec![
                    req("kind", Schema::Str),
                    req("name", Schema::Str),
                    req("apiGroup", Schema::Str),
                ]),
            ),
        ]),
        "Ingress" => top(vec![req(
            "spec",
            map(vec![
                opt("ingressClassName", Schema::Str),
                opt("defaultBackend", ingress_backend()),
                opt(
                    "rules",
                    seq(map(vec![
                        opt("host", Schema::Str),
                        opt(
                            "http",
                            map(vec![req(
                                "paths",
                                seq(map(vec![
                                    opt("path", Schema::Str),
                                    req("pathType", Schema::Str),
                                    req("backend", ingress_backend()),
                                ])),
                            )]),
                        ),
                    ])),
                ),
                opt("tls", Schema::Any),
            ]),
        )]),
        "NetworkPolicy" => top(vec![req(
            "spec",
            map(vec![
                req("podSelector", workload_selector()),
                opt("policyTypes", seq(Schema::Str)),
                opt(
                    "ingress",
                    seq(map(vec![
                        opt("from", seq(network_policy_peer())),
                        opt("ports", seq(network_policy_port())),
                    ])),
                ),
                opt(
                    "egress",
                    seq(map(vec![
                        opt("to", seq(network_policy_peer())),
                        opt("ports", seq(network_policy_port())),
                    ])),
                ),
            ]),
        )]),
        "PersistentVolume" => top(vec![req(
            "spec",
            map(vec![
                req("capacity", Schema::QuantityMap),
                req("accessModes", seq(Schema::Str)),
                opt("persistentVolumeReclaimPolicy", Schema::Str),
                opt("storageClassName", Schema::Str),
                opt("volumeMode", Schema::Str),
                opt("mountOptions", seq(Schema::Str)),
                opt(
                    "hostPath",
                    map(vec![req("path", Schema::Str), opt("type", Schema::Str)]),
                ),
                opt("nfs", Schema::Any),
                opt("local", Schema::Any),
                opt("csi", Schema::Any),
                opt("claimRef", Schema::Any),
                opt("nodeAffinity", Schema::Any),
            ]),
        )]),
        "PersistentVolumeClaim" => top(vec![req(
            "spec",
            map(vec![
                req("accessModes", seq(Schema::Str)),
                opt(
                    "resources",
                    map(vec![
                        opt("requests", Schema::QuantityMap),
                        opt("limits", Schema::QuantityMap),
                    ]),
                ),
                opt("storageClassName", Schema::Str),
                opt("volumeName", Schema::Str),
                opt("volumeMode", Schema::Str),
                opt("selector", workload_selector()),
            ]),
        )]),
        "LimitRange" => top(vec![req(
            "spec",
            map(vec![req(
                "limits",
                seq(map(vec![
                    req("type", Schema::Str),
                    opt("default", Schema::QuantityMap),
                    opt("defaultRequest", Schema::QuantityMap),
                    opt("max", Schema::QuantityMap),
                    opt("min", Schema::QuantityMap),
                    opt("maxLimitRequestRatio", Schema::QuantityMap),
                ])),
            )]),
        )]),
        "ResourceQuota" => top(vec![req(
            "spec",
            map(vec![
                opt("hard", Schema::QuantityMap),
                opt("scopes", seq(Schema::Str)),
                opt("scopeSelector", Schema::Any),
            ]),
        )]),
        "HorizontalPodAutoscaler" => top(vec![req(
            "spec",
            map(vec![
                req(
                    "scaleTargetRef",
                    map(vec![
                        opt("apiVersion", Schema::Str),
                        req("kind", Schema::Str),
                        req("name", Schema::Str),
                    ]),
                ),
                opt("minReplicas", Schema::Int),
                req("maxReplicas", Schema::Int),
                opt("targetCPUUtilizationPercentage", Schema::Int),
                opt("metrics", seq(hpa_metric())),
                opt("behavior", Schema::Any),
            ]),
        )]),
        // --- Istio CRDs -----------------------------------------------
        "VirtualService" => top(vec![req(
            "spec",
            map(vec![
                opt("hosts", seq(Schema::Str)),
                opt("gateways", seq(Schema::Str)),
                opt("exportTo", seq(Schema::Str)),
                opt(
                    "http",
                    seq(map(vec![
                        opt("name", Schema::Str),
                        opt("match", Schema::Any),
                        opt(
                            "route",
                            seq(map(vec![
                                req(
                                    "destination",
                                    map(vec![
                                        req("host", Schema::Str),
                                        opt("subset", Schema::Str),
                                        opt("port", map(vec![opt("number", Schema::Int)])),
                                    ]),
                                ),
                                opt("weight", Schema::Int),
                                opt("headers", Schema::Any),
                            ])),
                        ),
                        opt("fault", Schema::Any),
                        opt("timeout", Schema::Str),
                        opt("retries", Schema::Any),
                        opt("rewrite", Schema::Any),
                        opt("redirect", Schema::Any),
                        opt("mirror", Schema::Any),
                        opt("mirrorPercentage", Schema::Any),
                        opt("corsPolicy", Schema::Any),
                        opt("headers", Schema::Any),
                    ])),
                ),
                opt("tcp", Schema::Any),
                opt("tls", Schema::Any),
            ]),
        )]),
        "DestinationRule" => top(vec![req(
            "spec",
            map(vec![
                req("host", Schema::Str),
                opt("trafficPolicy", traffic_policy()),
                opt(
                    "subsets",
                    seq(map(vec![
                        req("name", Schema::Str),
                        opt("labels", Schema::StrMap),
                        opt("trafficPolicy", traffic_policy()),
                    ])),
                ),
                opt("exportTo", seq(Schema::Str)),
                opt("workloadSelector", Schema::Any),
            ]),
        )]),
        "Gateway" => top(vec![req(
            "spec",
            map(vec![
                req("selector", Schema::StrMap),
                req(
                    "servers",
                    seq(map(vec![
                        req(
                            "port",
                            map(vec![
                                req("number", Schema::Int),
                                req("name", Schema::Str),
                                req("protocol", Schema::Str),
                                opt("targetPort", Schema::Int),
                            ]),
                        ),
                        req("hosts", seq(Schema::Str)),
                        opt("tls", Schema::Any),
                        opt("name", Schema::Str),
                    ])),
                ),
            ]),
        )]),
        "ServiceEntry" => top(vec![req("spec", Schema::Any)]),
        // Unknown kinds: loose validation.
        _ => top(vec![opt("spec", Schema::Any), opt("data", Schema::Any)]),
    }
}

fn traffic_policy() -> Schema {
    map(vec![
        opt(
            "loadBalancer",
            map(vec![
                opt("simple", Schema::Str),
                opt("consistentHash", Schema::Any),
                opt("localityLbSetting", Schema::Any),
            ]),
        ),
        opt("connectionPool", Schema::Any),
        opt("outlierDetection", Schema::Any),
        opt("tls", Schema::Any),
        opt("portLevelSettings", Schema::Any),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn violations(src: &str) -> Vec<Violation> {
        validate(&yamlkit::parse_one(src).unwrap().to_value())
    }

    #[test]
    fn valid_pod_passes() {
        let v = violations(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\nspec:\n  containers:\n  - name: c\n    image: nginx\n    ports:\n    - containerPort: 80\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn paper_ingress_sample_reports_unknown_fields() {
        // Appendix C.3: old extensions/v1beta1 backend fields under v1.
        let v = violations(
            "apiVersion: networking.k8s.io/v1\nkind: Ingress\nmetadata:\n  name: test-ingress\n  annotations:\n    nginx.ingress.kubernetes.io/rewrite-target: /\nspec:\n  rules:\n  - http:\n      paths:\n      - path: /\n        backend:\n          serviceName: test-app\n          servicePort: 5000\n",
        );
        let rendered: Vec<String> = v.iter().map(Violation::render).collect();
        assert!(
            rendered.contains(
                &"unknown field \"spec.rules[0].http.paths[0].backend.serviceName\"".to_owned()
            ),
            "{rendered:?}"
        );
        assert!(rendered.contains(
            &"unknown field \"spec.rules[0].http.paths[0].backend.servicePort\"".to_owned()
        ));
        assert!(rendered.contains(
            &"missing required field \"spec.rules[0].http.paths[0].pathType\"".to_owned()
        ));
    }

    #[test]
    fn fixed_ingress_passes() {
        let v = violations(
            "apiVersion: networking.k8s.io/v1\nkind: Ingress\nmetadata:\n  name: minimal-ingress\n  annotations:\n    nginx.ingress.kubernetes.io/rewrite-target: /\nspec:\n  rules:\n  - http:\n      paths:\n      - path: /\n        pathType: Prefix\n        backend:\n          service:\n            name: test-app\n            port:\n              number: 5000\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn deployment_requires_selector_and_template() {
        let v = violations(
            "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: d\nspec:\n  replicas: 2\n",
        );
        let rendered: Vec<String> = v.iter().map(Violation::render).collect();
        assert!(rendered.iter().any(|r| r.contains("spec.selector")));
        assert!(rendered.iter().any(|r| r.contains("spec.template")));
    }

    #[test]
    fn misspelled_field_is_unknown() {
        let v = violations(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\nspec:\n  containers:\n  - name: c\n    imagee: nginx\n",
        );
        assert_eq!(
            v,
            vec![Violation::UnknownField("spec.containers[0].imagee".into())]
        );
    }

    #[test]
    fn wrong_type_reported() {
        let v = violations(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\nspec:\n  containers:\n  - name: c\n    ports:\n    - containerPort: http\n",
        );
        assert!(
            matches!(&v[0], Violation::WrongType(p, _) if p == "spec.containers[0].ports[0].containerPort")
        );
    }

    #[test]
    fn quantities_validate() {
        assert_eq!(parse_quantity("100m"), Some(0.1));
        assert_eq!(parse_quantity("50Mi"), Some(50.0 * 1024.0 * 1024.0));
        assert_eq!(parse_quantity("2"), Some(2.0));
        assert_eq!(parse_quantity("1.5"), Some(1.5));
        assert_eq!(parse_quantity("abc"), None);
        let v = violations(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\nspec:\n  containers:\n  - name: c\n    resources:\n      limits:\n        cpu: wrong-cpu\n",
        );
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn rolebinding_requires_roleref() {
        let v = violations(
            "apiVersion: rbac.authorization.k8s.io/v1\nkind: RoleBinding\nmetadata:\n  name: rb\nsubjects:\n- kind: User\n  name: dave\n  apiGroup: rbac.authorization.k8s.io\n",
        );
        assert!(v
            .iter()
            .any(|x| matches!(x, Violation::MissingField(p) if p == "roleRef")));
    }

    #[test]
    fn istio_destination_rule_validates() {
        let v = violations(
            "apiVersion: networking.istio.io/v1alpha3\nkind: DestinationRule\nmetadata:\n  name: ratings\nspec:\n  host: ratings\n  trafficPolicy:\n    loadBalancer:\n      simple: LEAST_REQUEST\n  subsets:\n  - name: testversion\n    labels:\n      version: v3\n    trafficPolicy:\n      loadBalancer:\n        simple: ROUND_ROBIN\n",
        );
        assert!(v.is_empty(), "{v:?}");
    }

    #[test]
    fn network_policy_rules_validate_strictly() {
        let good = violations(
            "apiVersion: networking.k8s.io/v1\nkind: NetworkPolicy\nmetadata:\n  name: allow-db\nspec:\n  podSelector:\n    matchLabels:\n      app: db\n  policyTypes:\n  - Ingress\n  ingress:\n  - from:\n    - podSelector:\n        matchLabels:\n          role: frontend\n    - ipBlock:\n        cidr: 10.0.0.0/24\n    ports:\n    - protocol: TCP\n      port: 6379\n",
        );
        assert!(good.is_empty(), "{good:?}");
        let bad = violations(
            "apiVersion: networking.k8s.io/v1\nkind: NetworkPolicy\nmetadata:\n  name: x\nspec:\n  podSelector: {}\n  ingress:\n  - fromm: []\n",
        );
        assert!(
            bad.iter()
                .any(|v| matches!(v, Violation::UnknownField(p) if p == "spec.ingress[0].fromm")),
            "{bad:?}"
        );
    }

    #[test]
    fn hpa_v2_metrics_validate_strictly() {
        let good = violations(
            "apiVersion: autoscaling/v2\nkind: HorizontalPodAutoscaler\nmetadata:\n  name: h\nspec:\n  scaleTargetRef:\n    kind: Deployment\n    name: web\n  maxReplicas: 5\n  metrics:\n  - type: Resource\n    resource:\n      name: cpu\n      target:\n        type: Utilization\n        averageUtilization: 60\n",
        );
        assert!(good.is_empty(), "{good:?}");
        let bad = violations(
            "apiVersion: autoscaling/v2\nkind: HorizontalPodAutoscaler\nmetadata:\n  name: h\nspec:\n  scaleTargetRef:\n    kind: Deployment\n    name: web\n  maxReplicas: 5\n  metrics:\n  - type: Resource\n    resource:\n      name: cpu\n      target:\n        averageUtilization: 60\n",
        );
        assert!(
            bad.iter().any(
                |v| matches!(v, Violation::MissingField(p) if p == "spec.metrics[0].resource.target.type")
            ),
            "{bad:?}"
        );
    }

    #[test]
    fn configmap_volume_items_validate() {
        let bad = violations(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: x\nspec:\n  containers:\n  - name: c\n    image: nginx\n  volumes:\n  - name: cfg\n    configMap:\n      name: app-config\n      items:\n      - key: mode\n",
        );
        assert!(
            bad.iter().any(
                |v| matches!(v, Violation::MissingField(p) if p == "spec.volumes[0].configMap.items[0].path")
            ),
            "{bad:?}"
        );
    }

    #[test]
    fn api_versions_known() {
        assert_eq!(expected_api_versions("Deployment"), Some(&["apps/v1"][..]));
        assert!(expected_api_versions("FooBar").is_none());
    }

    #[test]
    fn unknown_kind_validates_loosely() {
        let v = violations("apiVersion: example.com/v1\nkind: Widget\nmetadata:\n  name: w\nspec:\n  anything: [1, 2]\n");
        assert!(v.is_empty());
    }
}
