//! Property tests for the cluster simulator: store invariants under
//! random apply/delete/advance sequences, and selector algebra.

use proptest::prelude::*;

fn pod_manifest(name: &str, app: &str, image: &str) -> String {
    format!(
        "apiVersion: v1\nkind: Pod\nmetadata:\n  name: {name}\n  labels:\n    app: {app}\nspec:\n  containers:\n  - name: c\n    image: {image}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Apply-then-get returns the object; delete-then-get does not.
    /// Repeated applies never duplicate.
    #[test]
    fn store_apply_delete_invariants(
        names in prop::collection::btree_set("[a-z][a-z0-9]{0,6}", 1..6),
        advance_ms in 0u64..30_000,
    ) {
        let mut cluster = kubesim::Cluster::new();
        let names: Vec<String> = names.into_iter().collect();
        for n in &names {
            let m = pod_manifest(n, "app", "nginx");
            cluster.apply_manifest(&m, "default").unwrap();
            cluster.apply_manifest(&m, "default").unwrap(); // idempotent
        }
        cluster.advance(advance_ms);
        let pods = cluster.get("Pod", Some("default"), None);
        prop_assert_eq!(pods.len(), names.len());
        // Delete half; the rest survive.
        let (gone, kept) = names.split_at(names.len() / 2);
        for n in gone {
            cluster.delete("pod", "default", n).unwrap();
        }
        for n in gone {
            prop_assert!(cluster.get("Pod", Some("default"), Some(n)).is_empty());
        }
        for n in kept {
            prop_assert_eq!(cluster.get("Pod", Some("default"), Some(n)).len(), 1);
        }
    }

    /// Advancing time never decreases readiness for pullable images, and
    /// the clock is monotonic.
    #[test]
    fn readiness_is_monotone(steps in prop::collection::vec(100u64..5000, 1..8)) {
        let mut cluster = kubesim::Cluster::new();
        cluster
            .apply_manifest(&pod_manifest("w", "web", "nginx"), "default")
            .unwrap();
        let mut was_ready = false;
        let mut last_now = 0;
        for step in steps {
            cluster.advance(step);
            prop_assert!(cluster.now_ms() > last_now);
            last_now = cluster.now_ms();
            let ready = cluster
                .get("Pod", Some("default"), Some("w"))
                .pop()
                .and_then(|p| p.condition("Ready"))
                == Some(true);
            prop_assert!(!was_ready || ready, "readiness regressed");
            was_ready = ready;
        }
    }

    /// Deployment replica counts are tracked exactly after convergence.
    #[test]
    fn deployment_converges_to_replicas(replicas in 1i64..6) {
        let manifest = format!(
            "apiVersion: apps/v1\nkind: Deployment\nmetadata:\n  name: d\nspec:\n  replicas: {replicas}\n  selector:\n    matchLabels:\n      app: d\n  template:\n    metadata:\n      labels:\n        app: d\n    spec:\n      containers:\n      - name: c\n        image: nginx\n"
        );
        let mut cluster = kubesim::Cluster::new();
        cluster.apply_manifest(&manifest, "default").unwrap();
        cluster.advance(20_000);
        let pods = cluster.get("Pod", Some("default"), None);
        prop_assert_eq!(pods.len() as i64, replicas);
        let d = cluster.get("Deployment", Some("default"), Some("d")).pop().unwrap();
        prop_assert_eq!(
            d.status.get("readyReplicas").and_then(yamlkit::Yaml::as_i64),
            Some(replicas)
        );
    }

    /// CLI selector semantics: `k=v` partitions resources exactly.
    #[test]
    fn selector_partitions(labels in prop::collection::vec(("[ab]", "[xy]"), 1..8)) {
        use kubesim::selector::Selector;
        let sets: Vec<Vec<(String, String)>> = labels
            .iter()
            .map(|(k, v)| vec![(k.clone(), v.clone())])
            .collect();
        let sel = Selector::parse_cli("a=x").unwrap();
        for set in &sets {
            let matched = sel.matches(set);
            let expected = set.iter().any(|(k, v)| k == "a" && v == "x");
            prop_assert_eq!(matched, expected);
        }
    }

    /// Strict decoding is deterministic and stable under re-validation.
    #[test]
    fn validation_is_deterministic(port in 1i64..70000) {
        let manifest = format!(
            "apiVersion: v1\nkind: Pod\nmetadata:\n  name: p\nspec:\n  containers:\n  - name: c\n    image: nginx\n    ports:\n    - containerPort: {port}\n"
        );
        let body = yamlkit::parse_one(&manifest).unwrap().to_value();
        let v1 = kubesim::schema::validate(&body);
        let v2 = kubesim::schema::validate(&body);
        prop_assert_eq!(v1, v2);
    }
}
