//! The kubectl pod lifecycle the real benchmark's unit tests rely on,
//! mirroring the kubernix smoke flow and kata-containers' `k8s-exec.bats`:
//! apply a generated manifest, wait for readiness, exec into the
//! container, read logs/fields back, and delete — asserting on exit codes
//! and output shapes the way the bats tests do.

use kubesim::kubectl::{run, KubectlResult};
use kubesim::Cluster;
use yamlkit::Yaml;

fn argv(line: &str) -> Vec<String> {
    line.split_whitespace().map(str::to_owned).collect()
}

fn no_fs(_: &str) -> Option<String> {
    None
}

fn kubectl(cluster: &mut Cluster, line: &str) -> KubectlResult {
    run(cluster, &argv(line), "", &no_fs)
}

fn kubectl_stdin(cluster: &mut Cluster, line: &str, stdin: &str) -> KubectlResult {
    run(cluster, &argv(line), stdin, &no_fs)
}

/// Builds a Pod manifest as a value tree and emits it through yamlkit, so
/// the lifecycle starts from generated YAML rather than a string literal.
fn pod_manifest(name: &str, app: &str, image: &str) -> String {
    let mut metadata = Yaml::Map(Vec::new());
    metadata.insert("name", Yaml::Str(name.to_owned()));
    metadata.insert(
        "labels",
        Yaml::Map(vec![("app".to_owned(), Yaml::Str(app.to_owned()))]),
    );
    let mut container = Yaml::Map(Vec::new());
    container.insert("name", Yaml::Str("main".to_owned()));
    container.insert("image", Yaml::Str(image.to_owned()));
    container.insert(
        "env",
        Yaml::Seq(vec![Yaml::Map(vec![
            ("name".to_owned(), Yaml::Str("MODE".to_owned())),
            ("value".to_owned(), Yaml::Str("test".to_owned())),
        ])]),
    );
    let mut spec = Yaml::Map(Vec::new());
    spec.insert("containers", Yaml::Seq(vec![container]));
    let mut root = Yaml::Map(Vec::new());
    root.insert("apiVersion", Yaml::Str("v1".to_owned()));
    root.insert("kind", Yaml::Str("Pod".to_owned()));
    root.insert("metadata", metadata);
    root.insert("spec", spec);
    yamlkit::emit(&root)
}

fn service_manifest(name: &str, app: &str, port: i64) -> String {
    let mut root = Yaml::Map(Vec::new());
    root.insert("apiVersion", Yaml::Str("v1".to_owned()));
    root.insert("kind", Yaml::Str("Service".to_owned()));
    root.insert(
        "metadata",
        Yaml::Map(vec![("name".to_owned(), Yaml::Str(name.to_owned()))]),
    );
    let mut spec = Yaml::Map(Vec::new());
    spec.insert(
        "selector",
        Yaml::Map(vec![("app".to_owned(), Yaml::Str(app.to_owned()))]),
    );
    spec.insert(
        "ports",
        Yaml::Seq(vec![Yaml::Map(vec![
            ("port".to_owned(), Yaml::Int(port)),
            ("targetPort".to_owned(), Yaml::Int(port)),
        ])]),
    );
    root.insert("spec", spec);
    yamlkit::emit(&root)
}

#[test]
fn pod_apply_wait_exec_delete_lifecycle() {
    let mut cluster = Cluster::new();

    // Apply the generated manifest via stdin, as `kubectl apply -f -`.
    let applied = kubectl_stdin(
        &mut cluster,
        "apply -f -",
        &pod_manifest("exec-pod", "exec", "nginx"),
    );
    assert_eq!(applied.code, 0, "apply failed: {}", applied.stderr);
    assert!(
        applied.stdout.contains("pod/exec-pod created"),
        "{}",
        applied.stdout
    );

    // Exec before the container is running must fail, like the real API.
    let early = kubectl(&mut cluster, "exec exec-pod -- date");
    assert_eq!(early.code, 1);
    assert!(early.stderr.contains("not running"), "{}", early.stderr);

    // Wait for readiness (advances the simulated clock).
    let waited = kubectl(
        &mut cluster,
        "wait --for=condition=Ready pod/exec-pod --timeout=60s",
    );
    assert_eq!(waited.code, 0, "wait failed: {}", waited.stderr);
    assert!(
        waited.stdout.contains("pod/exec-pod condition met"),
        "{}",
        waited.stdout
    );

    // The kata-containers k8s-exec.bats flow: date, ls, and a custom echo.
    let date = kubectl(&mut cluster, "exec exec-pod -- date");
    assert_eq!(date.code, 0, "{}", date.stderr);
    assert!(date.stdout.contains("UTC 2024"), "{}", date.stdout);

    let ls = kubectl(&mut cluster, "exec -i exec-pod -- ls");
    assert_eq!(ls.code, 0);
    assert!(ls.stdout.lines().any(|l| l == "etc"), "{}", ls.stdout);

    let echoed = kubectl(&mut cluster, "exec exec-pod -- echo hello from pod");
    assert_eq!(echoed.stdout, "hello from pod\n");

    // hostname and env reflect the pod identity and the manifest env vars.
    let hostname = kubectl(&mut cluster, "exec exec-pod -- hostname");
    assert_eq!(hostname.stdout, "exec-pod\n");
    let env = kubectl(&mut cluster, "exec exec-pod -- env");
    assert!(env.stdout.contains("HOSTNAME=exec-pod"), "{}", env.stdout);
    assert!(env.stdout.contains("MODE=test"), "{}", env.stdout);

    // Unknown binaries fail with the OCI runtime shape and exit 126.
    let missing = kubectl(&mut cluster, "exec exec-pod -- not-a-binary");
    assert_eq!(missing.code, 126);
    assert!(
        missing.stderr.contains("executable file not found"),
        "{}",
        missing.stderr
    );

    // Delete, then verify the pod is gone end to end.
    let deleted = kubectl(&mut cluster, "delete pod exec-pod");
    assert_eq!(deleted.code, 0, "{}", deleted.stderr);
    assert!(deleted.stdout.contains("deleted"), "{}", deleted.stdout);
    let gone = kubectl(&mut cluster, "get pod exec-pod");
    assert_ne!(gone.code, 0);
    assert!(gone.stderr.contains("not found"), "{}", gone.stderr);
    let exec_gone = kubectl(&mut cluster, "exec exec-pod -- date");
    assert_eq!(exec_gone.code, 1);
    assert!(
        exec_gone.stderr.contains("NotFound"),
        "{}",
        exec_gone.stderr
    );
}

#[test]
fn service_apply_get_delete_lifecycle() {
    let mut cluster = Cluster::new();
    kubectl_stdin(
        &mut cluster,
        "apply -f -",
        &pod_manifest("web-0", "web", "nginx"),
    );
    let applied = kubectl_stdin(
        &mut cluster,
        "apply -f -",
        &service_manifest("web-svc", "web", 80),
    );
    assert_eq!(applied.code, 0, "apply failed: {}", applied.stderr);
    assert!(
        applied.stdout.contains("service/web-svc created"),
        "{}",
        applied.stdout
    );
    cluster.advance(15_000);

    let got = kubectl(&mut cluster, "get service web-svc");
    assert_eq!(got.code, 0, "{}", got.stderr);
    assert!(got.stdout.contains("web-svc"), "{}", got.stdout);

    let name = kubectl(
        &mut cluster,
        "get service web-svc -o jsonpath={.metadata.name}",
    );
    assert_eq!(name.stdout, "web-svc");

    let deleted = kubectl(&mut cluster, "delete service web-svc");
    assert_eq!(deleted.code, 0, "{}", deleted.stderr);
    let gone = kubectl(&mut cluster, "get service web-svc");
    assert_ne!(gone.code, 0);
}

#[test]
fn exec_argument_errors_match_kubectl() {
    let mut cluster = Cluster::new();
    let no_pod = kubectl(&mut cluster, "exec");
    assert_eq!(no_pod.code, 1);
    assert!(
        no_pod.stderr.contains("must be specified"),
        "{}",
        no_pod.stderr
    );

    kubectl_stdin(&mut cluster, "apply -f -", &pod_manifest("p", "p", "nginx"));
    kubectl(
        &mut cluster,
        "wait --for=condition=Ready pod/p --timeout=60s",
    );
    let no_cmd = kubectl(&mut cluster, "exec p");
    assert_eq!(no_cmd.code, 1);
    assert!(
        no_cmd.stderr.contains("at least one command"),
        "{}",
        no_cmd.stderr
    );

    let absent = kubectl(&mut cluster, "exec ghost -- date");
    assert_eq!(absent.code, 1);
    assert!(absent.stderr.contains("NotFound"), "{}", absent.stderr);

    // An unknown value-taking flag is rejected rather than misparsing its
    // value as the pod name.
    let unknown_flag = kubectl(&mut cluster, "exec --request-timeout 30s p -- date");
    assert_eq!(unknown_flag.code, 1);
    assert!(
        unknown_flag
            .stderr
            .contains("unknown flag: --request-timeout"),
        "{}",
        unknown_flag.stderr
    );
}

#[test]
fn exec_date_renders_the_simulated_clock() {
    let mut cluster = Cluster::new();
    kubectl_stdin(&mut cluster, "apply -f -", &pod_manifest("p", "p", "nginx"));
    kubectl(
        &mut cluster,
        "wait --for=condition=Ready pod/p --timeout=60s",
    );
    let date = kubectl(&mut cluster, "exec p -- date");
    assert_eq!(date.code, 0, "{}", date.stderr);
    // Readiness takes a couple of simulated seconds: still Jan 1, 2024.
    assert!(
        date.stdout.starts_with("Mon Jan  1 00:00:"),
        "{}",
        date.stdout
    );
    assert!(
        date.stdout.trim_end().ends_with("UTC 2024"),
        "{}",
        date.stdout
    );
}
