//! The built-in load-generator client: N concurrent `TcpStream` clients
//! replaying a candidate corpus against `/v1/evaluate` with a Zipf-ish
//! repeat distribution — low-rank corpus entries are requested far more
//! often than the tail, exactly the traffic shape that makes the shared
//! verdict memo earn its keep.

use std::io::{self, BufReader};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use cedataset::{Dataset, Variant};
use rand::{rngs::StdRng, Rng, SeedableRng};
use yamlkit::{ymap, Yaml};

use crate::api::variant_wire;
use crate::http;

/// One corpus entry: a raw candidate for a specific problem/variant.
#[derive(Debug, Clone)]
pub struct LoadItem {
    /// Target problem id.
    pub problem_id: String,
    /// Target variant.
    pub variant: Variant,
    /// Raw candidate text (post-processing happens server-side).
    pub raw: String,
}

/// Load-generator knobs.
#[derive(Debug, Clone)]
pub struct LoadGenConfig {
    /// Concurrent client connections.
    pub clients: usize,
    /// Total requests across all clients.
    pub requests: usize,
    /// Zipf exponent: weight of corpus rank `r` is `1/(r+1)^s`. `0.0`
    /// degenerates to uniform; around `1.0` is web-like skew.
    pub zipf_exponent: f64,
    /// RNG seed (each client derives its own stream from it).
    pub seed: u64,
    /// Keep-alive connections each client thread holds open,
    /// round-robining its requests across them. `1` is the classic
    /// one-connection-per-client shape; larger values measure how the
    /// server carries many mostly-idle keep-alive connections (the C10K
    /// sweep drives 1024 connections from 16 client threads this way).
    pub connections_per_client: usize,
}

impl Default for LoadGenConfig {
    fn default() -> LoadGenConfig {
        LoadGenConfig {
            clients: 4,
            requests: 200,
            zipf_exponent: 1.0,
            seed: 7,
            connections_per_client: 1,
        }
    }
}

/// One completed request.
#[derive(Debug, Clone)]
pub struct LoadOutcome {
    /// Which corpus entry was submitted.
    pub corpus_index: usize,
    /// HTTP status of the response.
    pub status: u16,
    /// Parsed response body.
    pub body: Yaml,
    /// Client-observed latency of the successful attempt: first request
    /// byte written to last response byte read (retries restart the
    /// clock — this measures the request the server actually answered).
    pub latency: Duration,
}

/// Aggregate result of a load-generation run.
#[derive(Debug)]
pub struct LoadReport {
    /// Every completed request (unordered across clients).
    pub outcomes: Vec<LoadOutcome>,
    /// Requests that failed at the transport layer.
    pub transport_errors: usize,
    /// Wall-clock of the whole run.
    pub wall: Duration,
}

impl LoadReport {
    /// Completed requests per second.
    pub fn requests_per_sec(&self) -> f64 {
        if self.wall.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.outcomes.len() as f64 / self.wall.as_secs_f64()
    }

    /// Client-observed latency at quantile `q` (`0.0..=1.0`) across the
    /// completed requests, nearest-rank. Zero when nothing completed.
    pub fn latency_quantile(&self, q: f64) -> Duration {
        if self.outcomes.is_empty() {
            return Duration::ZERO;
        }
        let mut latencies: Vec<Duration> = self.outcomes.iter().map(|o| o.latency).collect();
        latencies.sort_unstable();
        let rank = ((q.clamp(0.0, 1.0) * latencies.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(latencies.len() - 1);
        latencies[rank]
    }

    /// Median client-observed latency.
    pub fn latency_p50(&self) -> Duration {
        self.latency_quantile(0.50)
    }

    /// Tail (p99) client-observed latency.
    pub fn latency_p99(&self) -> Duration {
        self.latency_quantile(0.99)
    }
}

/// Builds a candidate corpus from a dataset: a mix of reference-derived
/// passing candidates (fenced like real model output), lightly broken
/// ones (wrong image / dropped lines → unit-test failures) and outright
/// garbage, cycling through problems and variants deterministically.
pub fn build_corpus(dataset: &Dataset, size: usize) -> Vec<LoadItem> {
    let problems = dataset.problems();
    let mut corpus = Vec::with_capacity(size);
    for i in 0..size {
        let problem = &problems[(i * 13) % problems.len()];
        let variant = Variant::ALL[i % Variant::ALL.len()];
        let reference = problem.clean_reference();
        let raw = match i % 4 {
            // Clean pass, wrapped the way chat models answer.
            0 | 1 => format!("Here is the configuration:\n```yaml\n{reference}```\n"),
            // Likely failure: drop the tail of the reference.
            2 => {
                let keep = reference.lines().count().saturating_sub(3).max(1);
                let head: Vec<&str> = reference.lines().take(keep).collect();
                format!("```yaml\n{}\n```", head.join("\n"))
            }
            // Garbage: not YAML at all.
            _ => "I cannot produce YAML for this request {{{".to_owned(),
        };
        corpus.push(LoadItem {
            problem_id: problem.id.clone(),
            variant,
            raw,
        });
    }
    corpus
}

/// Precomputed cumulative Zipf weights over corpus ranks.
fn zipf_cumulative(n: usize, s: f64) -> Vec<f64> {
    let mut cumulative = Vec::with_capacity(n);
    let mut total = 0.0;
    for rank in 0..n {
        total += 1.0 / ((rank + 1) as f64).powf(s);
        cumulative.push(total);
    }
    cumulative
}

/// Samples a corpus index from the Zipf-ish distribution.
fn sample_index(cumulative: &[f64], rng: &mut StdRng) -> usize {
    let total = *cumulative.last().expect("non-empty corpus");
    let needle = rng.gen_range(0.0..total);
    cumulative
        .partition_point(|&c| c <= needle)
        .min(cumulative.len() - 1)
}

/// Encodes the `/v1/evaluate` body for a corpus entry.
pub fn evaluate_body(item: &LoadItem) -> String {
    yamlkit::json::to_json(&ymap! {
        "problem_id" => item.problem_id.clone(),
        "variant" => variant_wire(item.variant),
        "candidate" => item.raw.clone(),
    })
}

/// One failed request attempt, tagged with whether re-sending the
/// request on a fresh connection is safe.
///
/// Re-sending is safe only when the server cannot have *executed* the
/// request: the write itself failed, or the connection closed/reset
/// before a single response byte arrived — the ordinary stale
/// keep-alive close. A response-read timeout or a truncated response
/// means the server may be (or have finished) executing it; re-sending
/// those would run the request twice server-side and skew the
/// `executed`/`cache_hits` numbers the benches compare.
struct AttemptError {
    retriable: bool,
}

/// Issues one request on an existing connection.
fn one_request(
    stream: &mut TcpStream,
    reader: &mut BufReader<TcpStream>,
    item: &LoadItem,
) -> Result<http::Response, AttemptError> {
    if http::write_request(stream, "POST", "/v1/evaluate", Some(&evaluate_body(item))).is_err() {
        // The request never fully reached the kernel: safe to re-send.
        return Err(AttemptError { retriable: true });
    }
    http::read_response(reader).map_err(|e| AttemptError {
        // `read_response` reserves `Closed` (and a raw `Io`) for
        // failures before the first response byte; truncations surface
        // as `Malformed` and stalls as `Timeout`.
        retriable: matches!(e, http::RequestError::Closed | http::RequestError::Io(_)),
    })
}

/// Opens one keep-alive connection to the server.
fn connect(addr: SocketAddr) -> io::Result<(TcpStream, BufReader<TcpStream>)> {
    let stream = TcpStream::connect(addr)?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(30)));
    let _ = stream.set_nodelay(true);
    let read_half = stream.try_clone()?;
    Ok((stream, BufReader::new(read_half)))
}

/// Runs the load generator against a server.
///
/// Each client keeps [`LoadGenConfig::connections_per_client`]
/// persistent connections, round-robining Zipf-sampled corpus entries
/// across them. A request whose failure proves the server never
/// executed it (write failure, or a close before any response byte —
/// the ordinary stale keep-alive event) is retried **once on a fresh
/// connection** rather than losing the sample, so a run against a
/// responsive server completes exactly `requests` requests; a timeout
/// or truncated response is counted as a transport error instead of
/// re-sent, because the server may still execute the original and a
/// duplicate would skew the `executed`/`cache_hits` stats. The combined
/// outcomes come back with their corpus indices so callers can verify
/// every response against a direct pipeline run.
pub fn run(
    addr: SocketAddr,
    corpus: &[LoadItem],
    config: &LoadGenConfig,
) -> io::Result<LoadReport> {
    assert!(!corpus.is_empty(), "empty load corpus");
    let clients = config.clients.max(1);
    let conns_per_client = config.connections_per_client.max(1);
    let cumulative = zipf_cumulative(corpus.len(), config.zipf_exponent);
    let started = Instant::now();
    let mut outcomes: Vec<LoadOutcome> = Vec::with_capacity(config.requests);
    let mut transport_errors = 0usize;
    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(clients);
        for client in 0..clients {
            let share = config.requests / clients + usize::from(client < config.requests % clients);
            let cumulative = &cumulative;
            handles.push(scope.spawn(move || {
                let mut rng =
                    StdRng::seed_from_u64(config.seed ^ (client as u64).wrapping_mul(0x9e37_79b9));
                let mut conns: Vec<Option<(TcpStream, BufReader<TcpStream>)>> =
                    (0..conns_per_client).map(|_| None).collect();
                let mut outcomes = Vec::with_capacity(share);
                let mut errors = 0usize;
                for n in 0..share {
                    let index = sample_index(cumulative, &mut rng);
                    let slot = n % conns_per_client;
                    // Two attempts: the second always on a fresh
                    // connection, so a stale keep-alive close costs a
                    // reconnect, not a sample. Failures that leave the
                    // request possibly executing server-side (timeout,
                    // truncated response) are never re-sent — see
                    // [`AttemptError`].
                    let mut completed = false;
                    for _ in 0..2 {
                        if conns[slot].is_none() {
                            conns[slot] = connect(addr).ok();
                        }
                        let Some((stream, reader)) = conns[slot].as_mut() else {
                            continue;
                        };
                        let attempt_started = Instant::now();
                        match one_request(stream, reader, &corpus[index]) {
                            Ok(response) => {
                                let latency = attempt_started.elapsed();
                                let body = yamlkit::parse_one(&response.body)
                                    .map(|n| n.to_value())
                                    .unwrap_or(Yaml::Null);
                                outcomes.push(LoadOutcome {
                                    corpus_index: index,
                                    status: response.status,
                                    body,
                                    latency,
                                });
                                completed = true;
                                break;
                            }
                            Err(failure) => {
                                conns[slot] = None;
                                if !failure.retriable {
                                    break;
                                }
                            }
                        }
                    }
                    if !completed {
                        errors += 1;
                    }
                }
                (outcomes, errors)
            }));
        }
        for handle in handles {
            let (mut client_outcomes, errors) = handle.join().expect("loadgen client panicked");
            outcomes.append(&mut client_outcomes);
            transport_errors += errors;
        }
    });
    Ok(LoadReport {
        outcomes,
        transport_errors,
        wall: started.elapsed(),
    })
}

/// Fetches the Prometheus text exposition from `GET /v1/metrics` on a
/// running server.
pub fn fetch_metrics(addr: SocketAddr) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(stream.try_clone()?);
    http::write_request(&mut stream, "GET", "/v1/metrics", None)?;
    let response = http::read_response(&mut reader)
        .map_err(|e| io::Error::other(format!("bad metrics response: {e:?}")))?;
    Ok(response.body)
}

/// Fetches and parses `GET /v1/stats` from a running server.
pub fn fetch_stats(addr: SocketAddr) -> io::Result<Yaml> {
    let mut stream = TcpStream::connect(addr)?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut reader = BufReader::new(stream.try_clone()?);
    http::write_request(&mut stream, "GET", "/v1/stats", None)?;
    let response = http::read_response(&mut reader)
        .map_err(|e| io::Error::other(format!("bad stats response: {e:?}")))?;
    yamlkit::parse_one(&response.body)
        .map(|n| n.to_value())
        .map_err(|e| io::Error::other(format!("unparseable stats body: {e}")))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_sampling_is_skewed_toward_low_ranks() {
        let cumulative = zipf_cumulative(32, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 32];
        for _ in 0..4000 {
            counts[sample_index(&cumulative, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[8], "{counts:?}");
        assert!(counts[0] > counts[31] * 3, "{counts:?}");
        // Every rank still reachable-ish: the head dominates.
        let head: usize = counts[..4].iter().sum();
        assert!(head * 2 > 4000, "head too light: {counts:?}");
    }

    #[test]
    fn corpus_mixes_pass_and_fail_candidates() {
        let dataset = Dataset::generate();
        let corpus = build_corpus(&dataset, 24);
        assert_eq!(corpus.len(), 24);
        assert!(corpus.iter().any(|i| i.raw.contains("```yaml")));
        assert!(corpus.iter().any(|i| i.raw.contains("{{{")));
        let distinct: std::collections::HashSet<&str> =
            corpus.iter().map(|i| i.problem_id.as_str()).collect();
        assert!(distinct.len() > 8);
    }
}
